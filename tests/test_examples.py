"""Smoke tests that the runnable examples actually run.

Only the fast examples run in-process here; the training-heavy ones
(quickstart, comparisons) are covered by their underlying APIs in the
integration tests and by the benchmarks.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name, argv=()):
    old_argv = sys.argv
    sys.argv = [str(EXAMPLES / name), *argv]
    try:
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = old_argv


class TestExamples:
    def test_examples_directory_complete(self):
        present = {p.name for p in EXAMPLES.glob("*.py")}
        assert {
            "quickstart.py",
            "infrastructure_tour.py",
            "msd_burst_comparison.py",
            "ligo_model_accuracy.py",
            "custom_workflow.py",
            "save_and_deploy.py",
            "capacity_planning.py",
            "tracing_tour.py",
            "million_request_burst.py",
            "slo_tour.py",
        } <= present

    def test_infrastructure_tour_runs(self, capsys):
        run_example("infrastructure_tour.py")
        out = capsys.readouterr().out
        assert "request conservation holds: True" in out
        assert "TDS dependency queries" in out

    def test_tracing_tour_runs(self, capsys):
        run_example("tracing_tour.py")
        out = capsys.readouterr().out
        assert "record kinds:" in out
        assert "('consumer_crash', 'Preprocess')" in out
        assert "Per-microservice utilization" in out
        assert "Training curves" in out
        assert "manifest round-trip ok: True" in out

    def test_slo_tour_runs(self, capsys):
        run_example("slo_tour.py")
        out = capsys.readouterr().out
        assert "SLO conformance:" in out
        assert "live and replayed slo_report.json identical: True" in out
        assert "exact-sum invariant: ok" in out
        assert "critical-path bottlenecks" in out

    def test_million_request_burst_quick(self, capsys):
        run_example("million_request_burst.py", argv=["--quick"])
        out = capsys.readouterr().out
        assert "completed 4,000/4,000 workflows" in out
        assert "request conservation holds: True" in out

    def test_custom_workflow_builder(self):
        """The custom ensemble in the example is a valid ensemble."""
        import importlib.util

        spec = importlib.util.spec_from_file_location(
            "custom_workflow_example", EXAMPLES / "custom_workflow.py"
        )
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        ensemble = module.build_genomics_ensemble()
        assert ensemble.num_task_types == 5
        assert ensemble.num_workflow_types == 3
        covered = set().union(*(w.tasks for w in ensemble.workflow_types))
        assert covered == set(ensemble.task_names())
