"""Tests for the DDPG agent, including a closed-loop learning check."""

import numpy as np
import pytest

from repro.rl.ddpg import DDPGAgent, DDPGConfig
from repro.utils.rng import RngStream


def make_agent(exploration="parameter", seed=0, **overrides):
    config = DDPGConfig(
        hidden_sizes=(32, 32),
        batch_size=16,
        exploration=exploration,
        **overrides,
    )
    return DDPGAgent(
        3, 3, config=config, rng=RngStream("t", np.random.SeedSequence(seed))
    )


class TestConfig:
    def test_defaults_valid(self):
        DDPGConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"gamma": 1.5},
            {"tau": 0.0},
            {"batch_size": 0},
            {"exploration": "epsilon-greedy"},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            DDPGConfig(**kwargs)


class TestActing:
    def test_greedy_action_is_simplex(self):
        agent = make_agent()
        action = agent.act_greedy(np.array([5.0, 2.0, 1.0]))
        assert action.sum() == pytest.approx(1.0)
        assert np.all(action >= 0)

    def test_parameter_noise_exploration_stays_on_simplex(self):
        """The paper's key claim: parameter noise never violates the
        constraint, unlike action-space noise."""
        agent = make_agent(exploration="parameter")
        for i in range(100):
            action = agent.act(np.array([float(i), 1.0, 0.5]), explore=True)
            assert action.sum() == pytest.approx(1.0)
            assert np.all(action >= 0)
        assert agent.constraint_violations == 0

    def test_action_noise_violates_and_projects(self):
        agent = make_agent(exploration="action-gaussian", action_noise_sigma=0.5)
        for i in range(100):
            action = agent.act(np.array([float(i), 1.0, 0.5]), explore=True)
            # Executed action is repaired to the simplex...
            assert action.sum() == pytest.approx(1.0)
            assert np.all(action >= 0)
        # ...but raw noisy actions violated the constraint along the way.
        assert agent.constraint_violations > 50

    def test_exploration_differs_from_greedy(self):
        agent = make_agent(exploration="parameter", param_noise_sigma=0.5)
        state = np.array([5.0, 2.0, 1.0])
        agent.refresh_perturbation()
        explored = agent.act(state, explore=True)
        greedy = agent.act_greedy(state)
        assert not np.allclose(explored, greedy)

    def test_none_exploration_is_greedy(self):
        agent = make_agent(exploration="none")
        state = np.array([5.0, 2.0, 1.0])
        assert np.allclose(agent.act(state, True), agent.act_greedy(state))


class TestParameterNoiseAdaptation:
    def test_adapt_without_data_returns_none(self):
        agent = make_agent()
        agent.refresh_perturbation()
        assert agent.adapt_parameter_noise() is None

    def test_adapt_measures_distance(self):
        agent = make_agent(param_noise_sigma=0.3)
        for i in range(20):
            agent.store(
                np.array([i, 1.0, 0.5]),
                np.full(3, 1 / 3),
                -float(i),
                np.array([i + 1, 1.0, 0.5]),
            )
        agent.refresh_perturbation()
        distance = agent.adapt_parameter_noise()
        assert distance is not None and distance >= 0


class TestUpdates:
    def test_update_empty_buffer_raises(self):
        with pytest.raises(RuntimeError):
            make_agent().update()

    def test_update_runs_and_counts(self):
        agent = make_agent()
        rng = RngStream("d", np.random.SeedSequence(1))
        for _ in range(32):
            s = rng.uniform(0, 10, size=3)
            agent.store(s, np.full(3, 1 / 3), -float(s.sum()), s)
        loss, q = agent.update()
        assert np.isfinite(loss) and np.isfinite(q)
        assert agent.updates_done == 1
        mean_loss = agent.update_many(5)
        assert np.isfinite(mean_loss)
        assert agent.updates_done == 6

    def test_entropy_bonus_pulls_toward_uniform(self):
        """With a flat critic, the entropy term should spread the policy."""
        agent = make_agent(seed=5, entropy_weight=0.5, reward_scale=1e9)
        # Gigantic reward scale makes dQ/da ~ 0: entropy dominates.
        rng = RngStream("e", np.random.SeedSequence(2))
        state = np.array([5.0, 1.0, 0.5])
        for _ in range(64):
            agent.store(state, np.array([0.8, 0.1, 0.1]), -1.0, state)
        before = agent.act_greedy(state)
        for _ in range(200):
            agent.update()
        after = agent.act_greedy(state)
        spread_before = float(np.max(before) - np.min(before))
        spread_after = float(np.max(after) - np.min(after))
        assert spread_after <= spread_before + 1e-9

    def test_learning_on_synthetic_bandit(self):
        """One-step environment where allocating to dim 0 is optimal:
        reward = a[0].  DDPG should learn to put most mass on dim 0."""
        agent = make_agent(
            seed=3, gamma=0.0, actor_learning_rate=1e-3, reward_scale=1.0
        )
        rng = RngStream("bandit", np.random.SeedSequence(9))
        state = np.array([1.0, 1.0, 1.0])
        for step in range(600):
            if step % 25 == 0:
                agent.refresh_perturbation()
            action = agent.act(state, explore=True)
            reward = float(action[0])
            agent.store(state, action, reward, state)
            if len(agent.replay) >= 16:
                agent.update()
        final = agent.act_greedy(state)
        assert final[0] > 0.6  # most of the budget on the rewarded service
