"""Integration-level exploration behaviour checks."""

import numpy as np
import pytest

from repro.rl.ddpg import DDPGAgent, DDPGConfig
from repro.utils.rng import RngStream


def make_agent(**overrides):
    defaults = dict(hidden_sizes=(32, 32), batch_size=16)
    defaults.update(overrides)
    return DDPGAgent(
        3, 3, config=DDPGConfig(**defaults),
        rng=RngStream("x", np.random.SeedSequence(6)),
    )


class TestPerturbationLifecycle:
    def test_perturbation_refreshes_on_interval(self):
        agent = make_agent(perturb_interval=5, param_noise_sigma=0.3)
        state = np.array([4.0, 2.0, 1.0])
        agent.act(state, explore=True)
        first = agent._perturbed_network
        for _ in range(3):
            agent.act(state, explore=True)
        assert agent._perturbed_network is first  # within the interval
        for _ in range(5):
            agent.act(state, explore=True)
        assert agent._perturbed_network is not first  # refreshed

    def test_refresh_changes_the_perturbation(self):
        agent = make_agent(param_noise_sigma=0.3)
        agent.refresh_perturbation()
        flat_a = agent._perturbed_network.get_flat()
        agent.refresh_perturbation()
        flat_b = agent._perturbed_network.get_flat()
        assert not np.allclose(flat_a, flat_b)

    def test_perturbation_does_not_touch_clean_network(self):
        agent = make_agent(param_noise_sigma=1.0)
        clean = agent.actor.network.get_flat().copy()
        agent.refresh_perturbation()
        assert np.array_equal(agent.actor.network.get_flat(), clean)


class TestSigmaAdaptationLoop:
    def test_sigma_converges_toward_target_distance(self):
        """Closed loop: repeated perturb+adapt should keep the induced
        action distance in the vicinity of delta."""
        agent = make_agent(param_noise_sigma=1.0, param_noise_delta=0.05)
        rng = RngStream("s", np.random.SeedSequence(8))
        for _ in range(64):
            s = rng.uniform(0, 20, size=3)
            agent.store(s, np.full(3, 1 / 3), -1.0, s)
        distances = []
        for _ in range(60):
            agent.refresh_perturbation()
            distance = agent.adapt_parameter_noise()
            distances.append(distance)
        tail = np.mean(distances[-15:])
        assert 0.001 < tail < 0.5  # pulled from sigma=1.0 chaos toward delta

    def test_greedy_never_uses_perturbed_network(self):
        agent = make_agent(param_noise_sigma=5.0)
        state = np.array([3.0, 1.0, 1.0])
        greedy_before = agent.act_greedy(state)
        agent.act(state, explore=True)  # builds a wild perturbation
        greedy_after = agent.act_greedy(state)
        assert np.allclose(greedy_before, greedy_after)
