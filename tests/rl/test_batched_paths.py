"""Batched RL primitives: ``ReplayBuffer.add_batch``, batched noise
sampling, ``project_to_simplex_batch`` and ``DDPGAgent.act_batch``.

Every K=1 path is pinned *bitwise* against its serial counterpart —
these are the building blocks the batched rollout engine's determinism
contract rests on.
"""

import numpy as np
import pytest

from repro.rl.ddpg import DDPGAgent, DDPGConfig
from repro.rl.noise import (
    GaussianActionNoise,
    OrnsteinUhlenbeckNoise,
    project_to_simplex,
    project_to_simplex_batch,
)
from repro.rl.replay import ReplayBuffer
from repro.utils.rng import RngStream


def _transitions(n, rng, state_dim=3, action_dim=3):
    states = rng.normal(size=(n, state_dim))
    actions = rng.uniform(0.0, 1.0, size=(n, action_dim))
    rewards = rng.normal(size=n)
    next_states = rng.normal(size=(n, state_dim))
    return states, actions, rewards, next_states


def _buffers_equal(a, b):
    return (
        len(a) == len(b)
        and a._cursor == b._cursor
        and a.total_added == b.total_added
        and a._states.tobytes() == b._states.tobytes()
        and a._actions.tobytes() == b._actions.tobytes()
        and a._rewards.tobytes() == b._rewards.tobytes()
        and a._next_states.tobytes() == b._next_states.tobytes()
    )


class TestAddBatch:
    @pytest.mark.parametrize("n", [1, 4, 10])
    def test_matches_sequential_adds(self, rng, n):
        batch = _transitions(n, rng)
        serial = ReplayBuffer(16, 3, 3)
        batched = ReplayBuffer(16, 3, 3)
        for row in zip(*batch):
            serial.add(*row)
        batched.add_batch(*batch)
        assert _buffers_equal(serial, batched)

    def test_wraparound_matches_sequential(self, rng):
        serial = ReplayBuffer(10, 3, 3)
        batched = ReplayBuffer(10, 3, 3)
        first = _transitions(7, rng)
        second = _transitions(6, rng)  # wraps: 7 + 6 > 10
        for block in (first, second):
            for row in zip(*block):
                serial.add(*row)
        batched.add_batch(*first)
        batched.add_batch(*second)
        assert _buffers_equal(serial, batched)

    def test_oversized_batch_matches_sequential(self, rng):
        serial = ReplayBuffer(8, 3, 3)
        batched = ReplayBuffer(8, 3, 3)
        block = _transitions(20, rng)  # n > capacity: keep the newest 8
        for row in zip(*block):
            serial.add(*row)
        batched.add_batch(*block)
        assert _buffers_equal(serial, batched)

    def test_empty_batch_is_noop(self, rng):
        buffer = ReplayBuffer(8, 3, 3)
        buffer.add_batch(
            np.empty((0, 3)), np.empty((0, 3)), np.empty(0), np.empty((0, 3))
        )
        assert len(buffer) == 0
        assert buffer.total_added == 0

    def test_shape_validation(self, rng):
        buffer = ReplayBuffer(8, 3, 3)
        states, actions, rewards, next_states = _transitions(4, rng)
        with pytest.raises(ValueError):
            buffer.add_batch(states[:, :2], actions, rewards, next_states)
        with pytest.raises(ValueError):
            buffer.add_batch(states, actions[:3], rewards, next_states)
        with pytest.raises(ValueError):
            buffer.add_batch(states, actions, rewards[:3], next_states)


class TestBatchedNoise:
    def test_gaussian_k1_bitwise_equals_serial(self):
        a = RngStream("n", np.random.SeedSequence(4))
        b = RngStream("n", np.random.SeedSequence(4))
        noise = GaussianActionNoise(sigma=0.3)
        serial = noise.sample(3, a)
        batched = noise.sample_batch(1, 3, b)
        assert batched.shape == (1, 3)
        assert serial.tobytes() == batched[0].tobytes()

    def test_ou_k1_bitwise_equals_serial(self):
        a = RngStream("n", np.random.SeedSequence(4))
        b = RngStream("n", np.random.SeedSequence(4))
        serial_noise = OrnsteinUhlenbeckNoise(3, sigma=0.3)
        batched_noise = OrnsteinUhlenbeckNoise(3, sigma=0.3)
        for _ in range(5):  # OU carries state across calls
            serial = serial_noise.sample(3, a)
            batched = batched_noise.sample_batch(1, 3, b)
            assert serial.tobytes() == batched[0].tobytes()

    def test_ou_rejects_k_above_one(self, rng):
        noise = OrnsteinUhlenbeckNoise(3, sigma=0.3)
        with pytest.raises(ValueError, match="rollout_batch"):
            noise.sample_batch(2, 3, rng)

    def test_project_batch_rows_bitwise_equal_serial(self, rng):
        vectors = rng.normal(size=(6, 4))
        batched = project_to_simplex_batch(vectors)
        for row, projected in zip(vectors, batched):
            assert project_to_simplex(row).tobytes() == projected.tobytes()

    def test_project_batch_empty(self):
        out = project_to_simplex_batch(np.empty((0, 4)))
        assert out.shape == (0, 4)


def _twin_agents(exploration="parameter", seed=0, **overrides):
    def build():
        config = DDPGConfig(
            hidden_sizes=(16, 16),
            batch_size=8,
            exploration=exploration,
            **overrides,
        )
        return DDPGAgent(
            3, 3, config=config,
            rng=RngStream("t", np.random.SeedSequence(seed)),
        )

    return build(), build()


class TestActBatch:
    @pytest.mark.parametrize(
        "exploration", ["parameter", "action-gaussian", "none"]
    )
    def test_k1_bitwise_equals_act(self, exploration):
        kwargs = (
            {"action_noise_sigma": 0.4}
            if exploration == "action-gaussian"
            else {}
        )
        serial, batched = _twin_agents(exploration=exploration, **kwargs)
        for i in range(30):
            state = np.array([float(i), 1.0, 0.5])
            a1 = serial.act(state, explore=True)
            a2 = batched.act_batch(state[np.newaxis], explore=True)
            assert a2.shape == (1, 3)
            assert a1.tobytes() == a2[0].tobytes()
        assert serial.exploration_actions == batched.exploration_actions
        assert serial.constraint_violations == batched.constraint_violations

    def test_k1_greedy_bitwise_equals_act(self):
        serial, batched = _twin_agents()
        state = np.array([2.0, 1.0, 0.5])
        a1 = serial.act(state, explore=False)
        a2 = batched.act_batch(state[np.newaxis], explore=False)
        assert a1.tobytes() == a2[0].tobytes()

    def test_batch_rows_are_simplexes(self):
        agent, _ = _twin_agents()
        states = np.abs(
            RngStream("s", np.random.SeedSequence(9)).normal(size=(12, 3))
        )
        actions = agent.act_batch(states, explore=True)
        assert actions.shape == (12, 3)
        assert np.allclose(actions.sum(axis=1), 1.0)
        assert np.all(actions >= 0)

    def test_store_batch_matches_store(self, rng):
        serial, batched = _twin_agents()
        states, actions, rewards, next_states = _transitions(5, rng)
        for row in zip(states, actions, rewards, next_states):
            serial.store(*row)
        batched.store_batch(states, actions, rewards, next_states)
        assert _buffers_equal(serial.replay, batched.replay)
