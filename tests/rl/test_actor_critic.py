"""Tests for the actor and critic networks."""

import numpy as np
import pytest

from repro.rl.actor import Actor
from repro.rl.critic import Critic
from repro.utils.rng import RngStream


@pytest.fixture
def actor(rng):
    return Actor(4, 4, hidden_sizes=(16, 16), rng=rng.fork("a"))


@pytest.fixture
def critic(rng):
    return Critic(4, 4, hidden_sizes=(16, 16), rng=rng.fork("c"))


class TestActor:
    def test_action_is_distribution(self, actor, rng):
        for _ in range(20):
            action = actor.act(rng.uniform(0, 500, size=4))
            assert action.sum() == pytest.approx(1.0)
            assert np.all(action >= 0)

    def test_output_mixing_keeps_actions_off_corners(self, rng):
        actor = Actor(4, 4, hidden_sizes=(8,), output_mixing=0.1, rng=rng)
        action = actor.act(np.array([1000.0, 0, 0, 0]))
        assert np.all(action >= 0.1 / 4 - 1e-12)

    def test_batch_matches_single(self, actor, rng):
        states = rng.uniform(0, 100, size=(3, 4))
        batch = actor.act_batch(states)
        for i in range(3):
            assert np.allclose(batch[i], actor.act(states[i]))

    def test_normalize_is_log_compressed(self, actor):
        small = actor.normalize(np.zeros((1, 4)))
        large = actor.normalize(np.full((1, 4), 1e4))
        assert np.all(small == 0)
        assert np.all(large < 3.0)  # bounded even far out of range

    def test_target_network_starts_identical(self, actor, rng):
        states = rng.uniform(0, 100, size=(3, 4))
        assert np.allclose(actor.act_batch(states), actor.act_target(states))

    def test_policy_gradient_moves_toward_higher_q(self, actor, rng):
        """Ascending a fixed dQ/da direction should raise that action dim."""
        states = rng.uniform(0, 50, size=(16, 4))
        direction = np.zeros((16, 4))
        direction[:, 2] = 1.0  # pretend Q increases with a[2]
        before = actor.act_batch(states)[:, 2].mean()
        for _ in range(100):
            actor.apply_policy_gradient(states, direction)
        after = actor.act_batch(states)[:, 2].mean()
        assert after > before

    def test_policy_gradient_shape_check(self, actor):
        with pytest.raises(ValueError):
            actor.apply_policy_gradient(np.zeros((2, 4)), np.zeros((3, 4)))

    def test_invalid_mixing(self, rng):
        with pytest.raises(ValueError):
            Actor(4, 4, output_mixing=1.0, rng=rng)


class TestCritic:
    def test_q_value_shape(self, critic, rng):
        q = critic.q_values(
            rng.uniform(0, 100, size=(5, 4)), np.full((5, 4), 0.25)
        )
        assert q.shape == (5, 1)

    def test_train_batch_reduces_loss(self, critic, rng):
        states = rng.uniform(0, 100, size=(64, 4))
        actions = rng.generator.dirichlet(np.ones(4), size=64)
        targets = -states.sum(axis=1, keepdims=True) / 10.0
        first = critic.train_batch(states, actions, targets)
        for _ in range(300):
            last = critic.train_batch(states, actions, targets)
        assert last < first

    def test_action_gradient_shape(self, critic, rng):
        grad = critic.action_gradient(
            rng.uniform(0, 100, size=(5, 4)), np.full((5, 4), 0.25)
        )
        assert grad.shape == (5, 4)

    def test_action_gradient_matches_numeric(self, critic, rng):
        states = rng.uniform(0, 100, size=(2, 4))
        actions = np.full((2, 4), 0.25)
        analytic = critic.action_gradient(states, actions)
        eps = 1e-6
        for i in range(2):
            for j in range(4):
                up = actions.copy()
                up[i, j] += eps
                down = actions.copy()
                down[i, j] -= eps
                numeric = (
                    critic.q_values(states, up).sum()
                    - critic.q_values(states, down).sum()
                ) / (2 * eps) / critic.reward_scale
                assert analytic[i, j] == pytest.approx(numeric, abs=1e-5)

    def test_target_network_lags_training(self, critic, rng):
        states = rng.uniform(0, 100, size=(32, 4))
        actions = np.full((32, 4), 0.25)
        before = critic.q_values(states, actions, target=True)
        for _ in range(50):
            critic.train_batch(states, actions, np.full((32, 1), -5.0))
        after_target = critic.q_values(states, actions, target=True)
        after_online = critic.q_values(states, actions)
        assert np.allclose(before, after_target)  # target never updated here
        assert not np.allclose(after_online, after_target)

    def test_requires_hidden_layer(self, rng):
        with pytest.raises(ValueError):
            Critic(4, 4, hidden_sizes=(), rng=rng)
