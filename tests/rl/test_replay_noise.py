"""Tests for the replay buffer and exploration noise."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.rl.noise import (
    AdaptiveParameterNoise,
    GaussianActionNoise,
    OrnsteinUhlenbeckNoise,
    project_to_simplex,
)
from repro.rl.replay import ReplayBuffer


class TestReplayBuffer:
    def _filled(self, count, capacity=10):
        buffer = ReplayBuffer(capacity, state_dim=2, action_dim=2)
        for i in range(count):
            buffer.add(
                np.array([i, i]), np.array([0.5, 0.5]), float(i), np.array([i, i])
            )
        return buffer

    def test_add_and_len(self):
        assert len(self._filled(3)) == 3

    def test_fifo_eviction(self):
        buffer = self._filled(15, capacity=10)
        assert len(buffer) == 10
        assert buffer.total_added == 15
        # Oldest five evicted: all stored rewards are >= 5.
        assert buffer._rewards[:, 0].min() >= 5

    def test_sample_shapes(self, rng):
        buffer = self._filled(8)
        batch = buffer.sample(4, rng)
        assert batch["states"].shape == (4, 2)
        assert batch["actions"].shape == (4, 2)
        assert batch["rewards"].shape == (4, 1)
        assert batch["next_states"].shape == (4, 2)

    def test_sample_with_replacement_when_undersized(self, rng):
        buffer = self._filled(2)
        batch = buffer.sample(10, rng)
        assert batch["states"].shape == (10, 2)

    def test_sample_empty_raises(self, rng):
        buffer = ReplayBuffer(4, 2, 2)
        with pytest.raises(RuntimeError):
            buffer.sample(1, rng)

    def test_shape_validation(self):
        buffer = ReplayBuffer(4, 2, 2)
        with pytest.raises(ValueError):
            buffer.add(np.zeros(3), np.zeros(2), 0.0, np.zeros(2))
        with pytest.raises(ValueError):
            buffer.add(np.zeros(2), np.zeros(1), 0.0, np.zeros(2))

    def test_clear(self, rng):
        buffer = self._filled(5)
        buffer.clear()
        assert len(buffer) == 0


class TestReplayCheckpoint:
    """state_dict/load_state_dict must be bit-exact — including a buffer
    saved mid-wraparound, where the cursor sits inside live data."""

    def _filled(self, count, capacity=10):
        buffer = ReplayBuffer(capacity, state_dim=2, action_dim=2)
        for i in range(count):
            buffer.add(
                np.array([i, i]), np.array([0.5, 0.5]), float(i), np.array([i, i])
            )
        return buffer

    def _restored(self, buffer):
        clone = ReplayBuffer(buffer.capacity, 2, 2)
        clone.load_state_dict(buffer.state_dict())
        return clone

    def _assert_identical(self, a, b, rng_seed=0):
        assert len(a) == len(b)
        assert a.total_added == b.total_added
        assert a._cursor == b._cursor
        for attr in ("_states", "_actions", "_rewards", "_next_states"):
            assert np.array_equal(
                getattr(a, attr)[: len(a)], getattr(b, attr)[: len(b)]
            ), attr

    def test_partial_buffer_round_trip(self, rng):
        buffer = self._filled(4)
        restored = self._restored(buffer)
        self._assert_identical(buffer, restored)

    def test_wraparound_round_trip_is_bit_exact(self):
        # 23 adds into capacity 10: cursor is mid-ring at 3, and future
        # eviction order depends on it.  The snapshot must preserve both.
        buffer = self._filled(23, capacity=10)
        assert buffer._cursor == 3  # genuinely mid-wraparound
        restored = self._restored(buffer)
        self._assert_identical(buffer, restored)

        # Continued writes land identically: the restored ring keeps the
        # original's eviction order, not a rewound one.
        for b in (buffer, restored):
            b.add(np.array([99.0, 99.0]), np.zeros(2), 99.0, np.zeros(2))
        self._assert_identical(buffer, restored)

    def test_restored_buffer_samples_identically(self):
        from repro.utils.rng import RngStream

        buffer = self._filled(17, capacity=10)
        restored = self._restored(buffer)
        a = buffer.sample(8, RngStream("s", np.random.SeedSequence(5)))
        b = restored.sample(8, RngStream("s", np.random.SeedSequence(5)))
        for key in a:
            assert np.array_equal(a[key], b[key]), key

    def test_empty_buffer_round_trip(self):
        buffer = ReplayBuffer(4, 2, 2)
        restored = self._restored(buffer)
        assert len(restored) == 0
        assert restored.total_added == 0

    def test_oversized_snapshot_rejected(self):
        state = self._filled(8, capacity=10).state_dict()
        small = ReplayBuffer(4, 2, 2)
        with pytest.raises(ValueError, match="capacity"):
            small.load_state_dict(state)

    def test_inconsistent_cursor_rejected(self):
        state = self._filled(4, capacity=10).state_dict()
        state["cursor"] = np.int64(7)  # size 4 < capacity demands cursor 4
        buffer = ReplayBuffer(10, 2, 2)
        with pytest.raises(ValueError, match="cursor"):
            buffer.load_state_dict(state)

    def test_truncated_rows_rejected(self):
        state = self._filled(4, capacity=10).state_dict()
        state["states"] = state["states"][:2]
        buffer = ReplayBuffer(10, 2, 2)
        with pytest.raises(ValueError, match="states shape"):
            buffer.load_state_dict(state)


class TestProjectToSimplex:
    def test_already_on_simplex_unchanged(self):
        v = np.array([0.2, 0.3, 0.5])
        assert np.allclose(project_to_simplex(v), v)

    def test_output_is_valid_distribution(self, rng):
        for _ in range(100):
            v = rng.normal(size=5)
            p = project_to_simplex(v)
            assert p.sum() == pytest.approx(1.0)
            assert np.all(p >= 0)

    @given(st.lists(st.floats(-10, 10), min_size=2, max_size=10))
    @settings(max_examples=100, deadline=None)
    def test_projection_properties(self, raw):
        v = np.array(raw)
        p = project_to_simplex(v)
        assert p.sum() == pytest.approx(1.0, abs=1e-9)
        assert np.all(p >= -1e-12)

    def test_preserves_order(self):
        v = np.array([3.0, 1.0, 2.0])
        p = project_to_simplex(v)
        assert p[0] >= p[2] >= p[1]

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            project_to_simplex(np.zeros((2, 2)))


class TestActionNoise:
    def test_gaussian_scale(self, rng):
        noise = GaussianActionNoise(sigma=0.5)
        samples = np.stack([noise.sample(4, rng) for _ in range(5000)])
        assert abs(samples.std() - 0.5) < 0.05

    def test_ou_is_temporally_correlated(self, rng):
        noise = OrnsteinUhlenbeckNoise(action_dim=1, theta=0.1, sigma=0.2)
        series = np.array([noise.sample(1, rng)[0] for _ in range(2000)])
        lag1 = np.corrcoef(series[:-1], series[1:])[0, 1]
        assert lag1 > 0.5  # strongly correlated, unlike white noise

    def test_ou_reset(self, rng):
        noise = OrnsteinUhlenbeckNoise(action_dim=2)
        noise.sample(2, rng)
        noise.reset()
        assert np.array_equal(noise._state, np.zeros(2))

    def test_ou_dim_mismatch(self, rng):
        noise = OrnsteinUhlenbeckNoise(action_dim=2)
        with pytest.raises(ValueError):
            noise.sample(3, rng)


class TestAdaptiveParameterNoise:
    def test_sigma_grows_when_too_close(self):
        noise = AdaptiveParameterNoise(initial_sigma=0.1, delta=0.5)
        noise.adapt(action_distance=0.01)
        assert noise.sigma > 0.1

    def test_sigma_shrinks_when_too_far(self):
        noise = AdaptiveParameterNoise(initial_sigma=0.1, delta=0.05)
        noise.adapt(action_distance=1.0)
        assert noise.sigma < 0.1

    def test_sigma_clamped(self):
        noise = AdaptiveParameterNoise(
            initial_sigma=0.1, delta=0.5, min_sigma=0.09, max_sigma=0.11
        )
        for _ in range(100):
            noise.adapt(0.0)
        assert noise.sigma == pytest.approx(0.11)
        for _ in range(100):
            noise.adapt(10.0)
        assert noise.sigma == pytest.approx(0.09)

    def test_perturb_changes_params(self, rng):
        noise = AdaptiveParameterNoise(initial_sigma=0.5)
        flat = np.zeros(100)
        noisy = noise.perturb(flat, rng)
        assert noisy.shape == flat.shape
        assert np.std(noisy) > 0.1

    def test_action_distance(self):
        clean = np.array([[1.0, 0.0], [0.0, 1.0]])
        perturbed = np.array([[0.0, 0.0], [0.0, 0.0]])
        assert AdaptiveParameterNoise.action_distance(
            clean, perturbed
        ) == pytest.approx(1.0)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            AdaptiveParameterNoise(adapt_coefficient=1.0)
        with pytest.raises(ValueError):
            AdaptiveParameterNoise(initial_sigma=0.0)
        noise = AdaptiveParameterNoise()
        with pytest.raises(ValueError):
            noise.adapt(-1.0)
