"""Unit tests for the distributed actor/learner collection engine."""

import numpy as np
import pytest

import repro.rl.distributed as distributed_mod
from repro.rl.ddpg import DDPGAgent, DDPGConfig
from repro.rl.distributed import (
    COLLECT_MODES,
    DistributedCollector,
    EnvSpec,
    MergeOnFlushChannel,
    TransitionBlock,
    episode_plan,
    policy_payload,
    resolve_workers,
    run_collect_episode,
)
from repro.utils.rng import RngStream

ENV_FACTORY = "repro.eval.experiments:build_training_env"


def make_spec(**params):
    return EnvSpec.make(ENV_FACTORY, **params)


def make_episode_spec(episode=0, lane=0, steps=4, seed=123, env_seed=456,
                      random_fraction=1.0):
    """A self-contained worker spec (random actions — no policy needed)."""
    ddpg = DDPGAgent(
        4, 4, config=DDPGConfig(hidden_sizes=(8,), batch_size=4),
        rng=RngStream("t", np.random.SeedSequence(0)),
    )
    return {
        "episode": episode,
        "lane": lane,
        "steps": steps,
        "seed": seed,
        "env_seed": env_seed,
        "random_fraction": random_fraction,
        "env_factory": ENV_FACTORY,
        "env_params": (("dataset", "msd"),),
        "burst_probability": 0.5,
        "burst_scale": 5.0,
        "policy": policy_payload(ddpg),
    }


class TestResolveWorkers:
    def test_explicit_count_passes_through(self):
        assert resolve_workers(1) == 1
        assert resolve_workers(7) == 7

    def test_zero_auto_detects_cpu_count(self, monkeypatch):
        monkeypatch.setattr(distributed_mod.os, "cpu_count", lambda: 6)
        assert resolve_workers(0) == 6

    def test_unknown_cpu_count_falls_back_to_one(self, monkeypatch):
        monkeypatch.setattr(distributed_mod.os, "cpu_count", lambda: None)
        assert resolve_workers(0) == 1

    def test_negative_rejected(self):
        with pytest.raises(ValueError, match="workers"):
            resolve_workers(-1)


class TestEnvSpec:
    def test_requires_module_colon_callable(self):
        with pytest.raises(ValueError, match="module:callable"):
            EnvSpec("not_a_path")

    def test_unknown_attribute_rejected(self):
        spec = EnvSpec("repro.eval.experiments:no_such_factory")
        with pytest.raises(ValueError, match="no attribute"):
            spec.build(seed=0)

    def test_params_are_sorted_and_hashable(self):
        spec = make_spec(dataset="msd")
        assert spec.params == (("dataset", "msd"),)
        hash(spec)  # frozen dataclass over hashable fields

    def test_builds_a_working_environment(self):
        env = make_spec(dataset="msd").build(seed=3)
        state = env.reset()
        assert state.shape == (env.state_dim,)

    def test_same_seed_builds_identical_replicas(self):
        spec = make_spec(dataset="msd")
        a, b = spec.build(seed=11), spec.build(seed=11)
        assert np.array_equal(a.reset(), b.reset())


class TestEpisodePlan:
    def test_slices_match_serial_reset_blocks(self):
        plan = episode_plan(60, 25, lanes=4, root_seed=0)
        assert [t.steps for t in plan] == [25, 25, 10]
        assert [t.episode for t in plan] == [0, 1, 2]

    def test_lane_is_round_robin_over_fixed_width(self):
        plan = episode_plan(150, 25, lanes=4, root_seed=0)
        assert [t.lane for t in plan] == [0, 1, 2, 3, 0, 1]

    def test_first_episode_offsets_indices_and_lanes(self):
        plan = episode_plan(50, 25, lanes=4, root_seed=0, first_episode=3)
        assert [t.episode for t in plan] == [3, 4]
        assert [t.lane for t in plan] == [3, 0]

    def test_seeds_are_label_derived_and_stable(self):
        a = episode_plan(100, 25, lanes=4, root_seed=9)
        b = episode_plan(100, 25, lanes=4, root_seed=9)
        assert [(t.seed, t.env_seed) for t in a] == [
            (t.seed, t.env_seed) for t in b
        ]
        # env stream differs from the exploration stream, and episodes
        # never share seeds.
        seeds = [t.seed for t in a] + [t.env_seed for t in a]
        assert len(set(seeds)) == len(seeds)

    def test_continuation_equals_one_long_plan(self):
        """Two iterations' plans == one plan over the combined steps —
        the property that makes per-iteration collection calls
        indistinguishable from a single longer schedule."""
        combined = episode_plan(120, 25, lanes=4, root_seed=5)
        first = episode_plan(50, 25, lanes=4, root_seed=5)
        rest = episode_plan(
            70, 25, lanes=4, root_seed=5, first_episode=len(first)
        )
        assert first + rest == combined

    def test_invalid_args_rejected(self):
        with pytest.raises(ValueError):
            episode_plan(0, 25, lanes=4, root_seed=0)
        with pytest.raises(ValueError):
            episode_plan(10, 25, lanes=0, root_seed=0)


def block(episode, steps=1):
    n = steps
    return TransitionBlock(
        episode=episode, lane=episode % 4, steps=n,
        states=np.zeros((n, 2)), executed=np.zeros((n, 2), dtype=np.int64),
        rewards=np.zeros(n), next_states=np.zeros((n, 2)),
        episode_return=0.0, sim_time_end=0.0,
    )


class TestMergeOnFlushChannel:
    def test_flushes_contiguous_runs_in_episode_order(self):
        flushed = []
        channel = MergeOnFlushChannel(
            start=0, flush_interval=2,
            on_flush=lambda run: flushed.extend(b.episode for b in run),
        )
        channel.push(block(1))
        assert flushed == []  # episode 0 still missing
        channel.push(block(2))
        assert flushed == []
        channel.push(block(0))
        assert flushed == [0, 1, 2]
        channel.finish()
        assert channel.flushed == 3

    def test_finish_flushes_short_remainder(self):
        flushed = []
        channel = MergeOnFlushChannel(
            start=4, flush_interval=8,
            on_flush=lambda run: flushed.extend(b.episode for b in run),
        )
        channel.push(block(4))
        channel.push(block(5))
        assert flushed == []
        channel.finish()
        assert flushed == [4, 5]

    def test_finish_with_gap_is_a_hard_error(self):
        channel = MergeOnFlushChannel(
            start=0, flush_interval=4, on_flush=lambda run: None
        )
        channel.push(block(0))
        channel.push(block(2))  # episode 1 lost
        with pytest.raises(RuntimeError, match="gap at episode 1"):
            channel.finish()

    def test_duplicate_and_stale_episodes_rejected(self):
        channel = MergeOnFlushChannel(
            start=0, flush_interval=1, on_flush=lambda run: None
        )
        channel.push(block(0))  # flushes immediately
        with pytest.raises(ValueError, match="already merged"):
            channel.push(block(0))
        channel.push(block(2))
        with pytest.raises(ValueError, match="already merged"):
            channel.push(block(2))


class TestRunCollectEpisode:
    def test_same_spec_reproduces_the_block_bitwise(self):
        a = run_collect_episode(make_episode_spec())
        b = run_collect_episode(make_episode_spec())
        for key in ("states", "executed", "rewards", "next_states"):
            assert np.array_equal(a[key], b[key]), key
        assert a["episode_return"] == b["episode_return"]
        assert a["sim_time_end"] == b["sim_time_end"]

    def test_block_shapes_and_dtypes(self):
        out = run_collect_episode(make_episode_spec(steps=3))
        assert out["states"].shape == out["next_states"].shape == (3, 4)
        assert out["executed"].shape == (3, 4)
        assert out["executed"].dtype == np.int64
        assert out["rewards"].shape == (3,)

    def test_policy_actions_respect_budget(self):
        out = run_collect_episode(make_episode_spec(random_fraction=0.0))
        assert (out["executed"].sum(axis=1) <= 14).all()

    def test_different_seeds_diverge(self):
        a = run_collect_episode(make_episode_spec(seed=1, env_seed=10))
        b = run_collect_episode(make_episode_spec(seed=2, env_seed=20))
        assert not np.array_equal(a["states"], b["states"])


class TestDistributedCollector:
    def test_modes_registry(self):
        assert COLLECT_MODES == ("serial", "logical", "physical")

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError, match="mode"):
            DistributedCollector(make_spec(dataset="msd"), mode="serial")

    def collect(self, workers, mode="logical", steps=40):
        ddpg = DDPGAgent(
            4, 4, config=DDPGConfig(hidden_sizes=(8,), batch_size=4),
            rng=RngStream("t", np.random.SeedSequence(0)),
        )
        collector = DistributedCollector(
            make_spec(dataset="msd"), workers=workers, mode=mode,
            burst_probability=0.3, burst_scale=5.0,
        )
        plan = episode_plan(steps, 10, lanes=4, root_seed=21)
        flushed = []
        merged = collector.collect(
            policy_payload(ddpg), plan, random_fraction=0.5,
            on_flush=flushed.extend,
        )
        return merged, flushed

    def test_blocks_arrive_in_episode_order(self):
        merged, flushed = self.collect(workers=3)
        assert [b.episode for b in merged] == [0, 1, 2, 3]
        assert [b.episode for b in flushed] == [0, 1, 2, 3]

    def test_worker_count_never_changes_the_merge(self):
        one, _ = self.collect(workers=1)
        four, _ = self.collect(workers=4)
        assert len(one) == len(four)
        for a, b in zip(one, four):
            assert a.episode == b.episode and a.lane == b.lane
            assert np.array_equal(a.states, b.states)
            assert np.array_equal(a.executed, b.executed)
            assert np.array_equal(a.rewards, b.rewards)
            assert np.array_equal(a.next_states, b.next_states)

    def test_empty_plan_is_a_noop(self):
        collector = DistributedCollector(make_spec(dataset="msd"))
        assert collector.collect({}, []) == []
