"""Additional CLI coverage: every simulate allocator, LIGO paths."""

import pytest

from repro.cli import main


class TestSimulateAllAllocators:
    @pytest.mark.parametrize(
        "allocator", ["uniform", "wip", "stream", "heft", "hpa", "oracle"]
    )
    def test_allocator_runs_on_msd(self, allocator, capsys):
        code = main(
            ["simulate", "--dataset", "msd", "--allocator", allocator,
             "--steps", "4"]
        )
        assert code == 0
        out = capsys.readouterr().out
        display = {"wip": "wip-proportional"}.get(allocator, allocator)
        assert f"{display} on msd-burst1" in out
        assert "completions" in out

    def test_each_burst_selectable(self, capsys):
        for burst in (0, 1, 2):
            code = main(
                ["simulate", "--dataset", "msd", "--burst", str(burst),
                 "--steps", "2"]
            )
            assert code == 0
        out = capsys.readouterr().out
        for name in ("msd-burst1", "msd-burst2", "msd-burst3"):
            assert name in out


class TestModelAccuracyLigo:
    def test_ligo_runs_small(self, capsys):
        code = main(
            ["model-accuracy", "--dataset", "ligo", "--collect-steps", "60",
             "--test-steps", "10"]
        )
        assert code == 0
        assert "Model accuracy (ligo)" in capsys.readouterr().out


class TestParserDetails:
    def test_train_iterations_override(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["train", "--iterations", "2"])
        assert args.iterations == 2

    def test_evaluate_requires_agent(self):
        from repro.cli import build_parser

        with pytest.raises(SystemExit):
            build_parser().parse_args(["evaluate"])
