"""Tests for the Lend-Giveback model refinement (Algorithm 1)."""

import numpy as np
import pytest

from repro.core.dataset import TransitionDataset
from repro.core.environment_model import EnvironmentModel
from repro.core.refinement import RefinedModel
from repro.utils.rng import RngStream


def make_model_and_data(rng, n=200):
    dataset = TransitionDataset(2, 2)
    data_rng = np.random.default_rng(5)
    for _ in range(n):
        w = data_rng.uniform(0, 50, 2)
        m = data_rng.uniform(0, 5, 2)
        w_next = np.maximum(w + 2.0 - 2.0 * m, 0.0)
        dataset.add(w, m, w_next)
    model = EnvironmentModel(2, 2, hidden_sizes=(16, 16), rng=rng.fork("m"))
    model.fit(dataset, epochs=30)
    return model, dataset


class TestConstruction:
    def test_from_dataset_thresholds(self, rng):
        model, dataset = make_model_and_data(rng)
        refined = RefinedModel.from_dataset(model, dataset, percentile=20.0, rng=rng)
        tau_raw, omega_raw = dataset.wip_percentiles(20.0)
        assert np.all(refined.tau >= tau_raw)  # floored
        assert np.all(refined.omega >= refined.tau)

    def test_tau_floor_applies_on_zero_heavy_data(self, rng):
        dataset = TransitionDataset(1, 1)
        for _ in range(50):
            dataset.add(np.zeros(1), np.ones(1), np.zeros(1))
        model = EnvironmentModel(1, 1, hidden_sizes=(4,), rng=rng.fork("z"))
        model.fit(dataset, epochs=2)
        refined = RefinedModel.from_dataset(model, dataset, rng=rng, tau_floor=1.0)
        # Percentiles of an all-zero column are 0; the floor keeps the
        # boundary region non-empty so the refinement still fires at w=0.
        assert refined.tau[0] == 1.0
        assert refined.omega[0] >= 2.0
        refined.predict(np.zeros(1), np.ones(1))
        assert refined.lend_count == 1

    def test_shape_validation(self, rng):
        model, dataset = make_model_and_data(rng)
        with pytest.raises(ValueError):
            RefinedModel(model, np.zeros(3), np.ones(3), rng=rng)
        with pytest.raises(ValueError, match="omega"):
            RefinedModel(model, np.ones(2), np.zeros(2), rng=rng)


class TestPrediction:
    def test_above_threshold_matches_raw_model(self, rng):
        model, dataset = make_model_and_data(rng)
        refined = RefinedModel.from_dataset(model, dataset, rng=rng)
        state = refined.omega + 10.0  # far above every threshold
        action = np.array([1.0, 1.0])
        raw = np.maximum(model.predict(state, action), 0.0)
        assert np.allclose(refined.predict(state, action), raw)
        assert refined.lend_count == 0

    def test_below_threshold_triggers_lend(self, rng):
        model, dataset = make_model_and_data(rng)
        refined = RefinedModel.from_dataset(model, dataset, rng=rng)
        state = np.zeros(2)
        refined.predict(state, np.array([1.0, 1.0]))
        assert refined.lend_count == 2  # both dimensions below tau

    def test_only_low_dimensions_adjusted(self, rng):
        model, dataset = make_model_and_data(rng)
        refined = RefinedModel.from_dataset(model, dataset, rng=rng)
        state = np.array([0.0, float(refined.omega[1] + 5)])
        action = np.array([1.0, 1.0])
        raw = np.maximum(model.predict(state, action), 0.0)
        out = refined.predict(state, action)
        assert out[1] == pytest.approx(raw[1])  # high dim passes through

    def test_output_non_negative(self, rng):
        model, dataset = make_model_and_data(rng)
        refined = RefinedModel.from_dataset(model, dataset, rng=rng)
        for _ in range(20):
            state = np.abs(rng.normal(0, 5, size=2))
            out = refined.predict(state, np.array([5.0, 5.0]))
            assert np.all(out >= 0)

    def test_batch_input_rejected(self, rng):
        model, dataset = make_model_and_data(rng)
        refined = RefinedModel.from_dataset(model, dataset, rng=rng)
        with pytest.raises(ValueError, match="one state"):
            refined.predict(np.zeros((2, 2)), np.zeros((2, 2)))

    def test_below_threshold_mask(self, rng):
        model, dataset = make_model_and_data(rng)
        refined = RefinedModel.from_dataset(model, dataset, rng=rng)
        mask = refined.below_threshold(np.array([0.0, 1e9]))
        assert mask.tolist() == [True, False]


class TestRollout:
    def test_rollout_shape(self, rng):
        model, dataset = make_model_and_data(rng)
        refined = RefinedModel.from_dataset(model, dataset, rng=rng)
        actions = np.tile(np.array([2.0, 2.0]), (5, 1))
        trajectory = refined.rollout(np.array([30.0, 30.0]), actions)
        assert trajectory.shape == (5, 2)
        assert np.all(trajectory >= 0)
