"""Tests for MIRAS configuration presets."""

import pytest

from repro.core.config import MirasConfig, ModelConfig, PolicyConfig


class TestModelConfig:
    def test_defaults(self):
        config = ModelConfig()
        assert config.refinement_enabled

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"learning_rate": 0},
            {"epochs": 0},
            {"refinement_percentile": 0.0},
            {"refinement_percentile": 50.0},
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ValueError):
            ModelConfig(**kwargs)


class TestPolicyConfig:
    def test_defaults(self):
        config = PolicyConfig()
        assert config.rollout_length == 25

    @pytest.mark.parametrize(
        "kwargs", [{"rollout_length": 0}, {"patience": 0}, {"updates_per_step": 0}]
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ValueError):
            PolicyConfig(**kwargs)


class TestMirasPresets:
    def test_msd_paper_matches_section_vi_a3(self):
        """Predictive model 3x20; actor 3x256; 1000 steps/iter; 25-step
        rollouts and resets."""
        config = MirasConfig.msd_paper()
        assert tuple(config.model.hidden_sizes) == (20, 20, 20)
        assert tuple(config.policy.ddpg.hidden_sizes) == (256, 256, 256)
        assert config.steps_per_iteration == 1000
        assert config.reset_interval == 25
        assert config.policy.rollout_length == 25
        assert config.eval_steps == 25

    def test_ligo_paper_matches_section_vi_a3(self):
        """Predictive model 1x20 (smaller, to avoid overfitting); RL nets
        3x512; 2000 steps/iter; 10-step rollouts; 100-step evaluation."""
        config = MirasConfig.ligo_paper()
        assert tuple(config.model.hidden_sizes) == (20,)
        assert tuple(config.policy.ddpg.hidden_sizes) == (512, 512, 512)
        assert config.steps_per_iteration == 2000
        assert config.policy.rollout_length == 10
        assert config.eval_steps == 100

    def test_fast_presets_share_schedule_shape(self):
        for fast, paper in [
            (MirasConfig.msd_fast(), MirasConfig.msd_paper()),
            (MirasConfig.ligo_fast(), MirasConfig.ligo_paper()),
        ]:
            assert tuple(fast.model.hidden_sizes) == tuple(
                paper.model.hidden_sizes
            )
            assert fast.steps_per_iteration < paper.steps_per_iteration

    def test_scaled(self):
        config = MirasConfig.msd_paper().scaled(0.1)
        assert config.steps_per_iteration == 100
        assert config.eval_steps == 2

    def test_scaled_floors_at_one(self):
        config = MirasConfig.msd_paper().scaled(1e-6)
        assert config.steps_per_iteration == 1

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"steps_per_iteration": 0},
            {"iterations": 0},
            {"initial_random_fraction": 1.5},
            {"collect_burst_probability": -0.1},
            {"collect_burst_scale": -1.0},
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ValueError):
            MirasConfig(**kwargs)
