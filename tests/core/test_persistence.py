"""Tests for agent persistence (save/load roundtrips)."""

import numpy as np
import pytest

from repro.core.agent import MirasAgent
from repro.core.config import MirasConfig, ModelConfig, PolicyConfig
from repro.core.persistence import (
    config_from_dict,
    config_to_dict,
    load_agent,
    save_agent,
)
from repro.rl.ddpg import DDPGConfig

from tests.conftest import make_ligo_env, make_msd_env


def trained_agent(seed=41):
    config = MirasConfig(
        model=ModelConfig(hidden_sizes=(8, 8), epochs=5),
        policy=PolicyConfig(
            ddpg=DDPGConfig(hidden_sizes=(16, 16), batch_size=8),
            rollout_length=5,
            rollouts_per_iteration=3,
            patience=2,
        ),
        steps_per_iteration=30,
        reset_interval=10,
        iterations=1,
        eval_steps=4,
    )
    agent = MirasAgent(make_msd_env(seed=seed), config, seed=seed)
    agent.iterate()
    return agent


class TestConfigRoundtrip:
    def test_default_config(self):
        config = MirasConfig()
        restored = config_from_dict(config_to_dict(config))
        assert config_to_dict(restored) == config_to_dict(config)

    def test_paper_presets(self):
        for preset in (MirasConfig.msd_paper(), MirasConfig.ligo_paper()):
            restored = config_from_dict(config_to_dict(preset))
            assert tuple(restored.model.hidden_sizes) == tuple(
                preset.model.hidden_sizes
            )
            assert restored.policy.rollout_length == preset.policy.rollout_length
            assert restored.steps_per_iteration == preset.steps_per_iteration


class TestAgentRoundtrip:
    def test_policy_outputs_preserved(self, tmp_path):
        agent = trained_agent()
        save_agent(tmp_path / "agent", agent)
        loaded = load_agent(tmp_path / "agent", make_msd_env(seed=99))

        for _ in range(5):
            state = np.abs(np.random.default_rng(0).normal(0, 50, 4))
            assert np.allclose(
                loaded.ddpg.act_greedy(state), agent.ddpg.act_greedy(state)
            )

    def test_dataset_and_model_preserved(self, tmp_path):
        agent = trained_agent()
        save_agent(tmp_path / "agent", agent)
        loaded = load_agent(tmp_path / "agent", make_msd_env(seed=99))
        assert len(loaded.dataset) == len(agent.dataset)
        state = np.array([10.0, 5.0, 3.0, 2.0])
        action = np.array([4.0, 4.0, 3.0, 3.0])
        assert np.allclose(
            loaded.model.predict(state, action),
            agent.model.predict(state, action),
        )
        assert loaded.refined_model is not None

    def test_results_preserved(self, tmp_path):
        agent = trained_agent()
        save_agent(tmp_path / "agent", agent)
        loaded = load_agent(tmp_path / "agent", make_msd_env(seed=99))
        assert len(loaded.results) == 1
        assert loaded.results[0].eval_reward == agent.results[0].eval_reward

    def test_dimension_mismatch_rejected(self, tmp_path):
        agent = trained_agent()
        save_agent(tmp_path / "agent", agent)
        with pytest.raises(ValueError, match="state_dim"):
            load_agent(tmp_path / "agent", make_ligo_env(seed=99))

    def test_replay_buffer_round_trip_bit_exact(self, tmp_path):
        """Satellite pin: the saved replay buffer — contents, cursor,
        wraparound state — survives save/load bit-exactly."""
        agent = trained_agent()
        replay = agent.ddpg.replay
        assert len(replay) > 0
        save_agent(tmp_path / "agent", agent)
        loaded = load_agent(tmp_path / "agent", make_msd_env(seed=99))

        original = replay.state_dict()
        restored = loaded.ddpg.replay.state_dict()
        assert set(original) == set(restored)
        for key in original:
            assert np.array_equal(original[key], restored[key]), key

        # Identical draws from identical ring state.
        from repro.utils.rng import RngStream

        a = replay.sample(8, RngStream("s", np.random.SeedSequence(3)))
        b = loaded.ddpg.replay.sample(
            8, RngStream("s", np.random.SeedSequence(3))
        )
        for key in a:
            assert np.array_equal(a[key], b[key]), key

    def test_loaded_agent_can_continue_training(self, tmp_path):
        agent = trained_agent()
        save_agent(tmp_path / "agent", agent)
        loaded = load_agent(tmp_path / "agent", make_msd_env(seed=55))
        loaded.iterate(iterations=1)
        assert len(loaded.results) == 2
