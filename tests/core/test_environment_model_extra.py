"""Additional environment-model tests: incremental refits, encodings."""

import numpy as np
import pytest

from repro.core.dataset import TransitionDataset
from repro.core.environment_model import EnvironmentModel
from repro.utils.rng import RngStream


def queue_dataset(n, rng_seed=0, drain_rate=3.0):
    rng = np.random.default_rng(rng_seed)
    dataset = TransitionDataset(2, 2)
    for _ in range(n):
        w = rng.uniform(0, 100, 2)
        m = rng.uniform(0, 5, 2)
        dataset.add(w, m, np.maximum(w + 2.0 - drain_rate * m, 0.0))
    return dataset


class TestIncrementalRefit:
    def test_refit_on_grown_dataset_improves(self, rng):
        model = EnvironmentModel(2, 2, hidden_sizes=(16, 16), rng=rng)
        small = queue_dataset(60)
        model.fit(small, epochs=15)
        grown = queue_dataset(600, rng_seed=1)
        error_before = model.evaluate(grown)
        model.fit(grown, epochs=30)
        error_after = model.evaluate(grown)
        assert error_after < error_before

    def test_norm_refreshed_on_refit(self, rng):
        model = EnvironmentModel(2, 2, hidden_sizes=(8,), rng=rng)
        model.fit(queue_dataset(50), epochs=2)
        first_norm = model._norm["x_mean"].copy()
        shifted = TransitionDataset(2, 2)
        data_rng = np.random.default_rng(9)
        for _ in range(50):
            w = data_rng.uniform(500, 600, 2)
            shifted.add(w, data_rng.uniform(0, 5, 2), w)
        model.fit(shifted, epochs=2)
        assert not np.allclose(model._norm["x_mean"], first_norm)


class TestEncodingVariants:
    @pytest.mark.parametrize("log_space", [True, False])
    @pytest.mark.parametrize("predict_delta", [True, False])
    def test_all_encodings_learn(self, rng, log_space, predict_delta):
        model = EnvironmentModel(
            2,
            2,
            hidden_sizes=(24, 24),
            rng=rng.fork(f"{log_space}{predict_delta}"),
            log_space=log_space,
            predict_delta=predict_delta,
        )
        dataset = queue_dataset(400)
        history = model.fit(dataset, epochs=40)
        assert history[-1] < history[0]
        prediction = model.predict(np.array([50.0, 50.0]), np.array([2.0, 2.0]))
        assert prediction.shape == (2,)
        assert np.all(prediction >= 0)

    def test_untrained_model_still_predicts(self, rng):
        """Identity normalisation path before the first fit."""
        model = EnvironmentModel(2, 2, hidden_sizes=(4,), rng=rng)
        prediction = model.predict(np.array([1.0, 2.0]), np.array([1.0, 1.0]))
        assert prediction.shape == (2,)
        assert np.all(np.isfinite(prediction))
