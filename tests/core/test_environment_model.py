"""Tests for the neural environment model."""

import numpy as np
import pytest

from repro.core.dataset import TransitionDataset
from repro.core.environment_model import EnvironmentModel
from repro.utils.rng import RngStream


def linear_dynamics_dataset(n=400, seed=0):
    """Synthetic queue-like dynamics: w' = max(w + inflow - 3*m, 0)."""
    rng = np.random.default_rng(seed)
    dataset = TransitionDataset(2, 2)
    for _ in range(n):
        w = rng.uniform(0, 100, 2)
        m = rng.uniform(0, 5, 2)
        inflow = np.array([4.0, 2.0])
        w_next = np.maximum(w + inflow - 3.0 * m, 0.0)
        dataset.add(w, m, w_next)
    return dataset


@pytest.fixture
def model(rng):
    return EnvironmentModel(2, 2, hidden_sizes=(32, 32), rng=rng)


class TestFit:
    def test_loss_decreases(self, model):
        history = model.fit(linear_dynamics_dataset(), epochs=30)
        assert history[-1] < history[0]
        assert model.trained

    def test_learns_queue_dynamics(self, model):
        model.fit(linear_dynamics_dataset(), epochs=80)
        w = np.array([50.0, 50.0])
        m = np.array([2.0, 4.0])
        expected = np.maximum(w + np.array([4.0, 2.0]) - 3.0 * m, 0.0)
        predicted = model.predict(w, m)
        assert np.allclose(predicted, expected, atol=6.0)

    def test_evaluate_on_heldout(self, model, rng):
        dataset = linear_dynamics_dataset()
        train, test = dataset.split(0.2, rng)
        model.fit(train, epochs=40)
        assert model.evaluate(test) < 0.5


class TestPredict:
    def test_single_and_batch_agree(self, model):
        model.fit(linear_dynamics_dataset(), epochs=5)
        w = np.array([10.0, 20.0])
        m = np.array([1.0, 2.0])
        single = model.predict(w, m)
        batch = model.predict(w[None, :], m[None, :])
        assert np.allclose(single, batch[0])

    def test_predictions_non_negative(self, model):
        model.fit(linear_dynamics_dataset(), epochs=5)
        predicted = model.predict(np.array([0.0, 0.0]), np.array([5.0, 5.0]))
        assert np.all(predicted >= 0)

    def test_dimension_checks(self, model):
        with pytest.raises(ValueError):
            model.predict(np.zeros(3), np.zeros(2))
        with pytest.raises(ValueError):
            model.predict(np.zeros(2), np.zeros(3))
        with pytest.raises(ValueError):
            model.predict(np.zeros((2, 2)), np.zeros((3, 2)))


class TestRollout:
    def test_rollout_shape_and_feedback(self, model):
        model.fit(linear_dynamics_dataset(), epochs=40)
        actions = np.tile(np.array([2.0, 2.0]), (10, 1))
        trajectory = model.rollout(np.array([80.0, 80.0]), actions)
        assert trajectory.shape == (10, 2)
        # Queue drains under heavy allocation: trend should be downward.
        assert trajectory[-1].sum() < trajectory[0].sum()

    def test_rollout_states_non_negative(self, model):
        model.fit(linear_dynamics_dataset(), epochs=10)
        actions = np.tile(np.array([5.0, 5.0]), (20, 1))
        trajectory = model.rollout(np.array([1.0, 1.0]), actions)
        assert np.all(trajectory >= 0)


class TestDeltaParameterisation:
    def test_delta_mode_extrapolates_better_than_raw(self, rng):
        """Deltas are bounded by rates, so the model generalises to states
        beyond the training range — the property bursts rely on."""
        dataset = linear_dynamics_dataset()
        delta_model = EnvironmentModel(
            2, 2, hidden_sizes=(32, 32), rng=rng.fork("d"), predict_delta=True
        )
        delta_model.fit(dataset, epochs=60)
        w = np.array([500.0, 500.0])  # 5x the training range
        m = np.array([5.0, 5.0])
        expected = w + np.array([4.0, 2.0]) - 15.0
        predicted = delta_model.predict(w, m)
        assert np.allclose(predicted, expected, atol=30.0)
