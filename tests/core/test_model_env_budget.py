"""Budget and rollout-boundary tests for the model-backed environment,
using a real learnt model from MSD data (integration-flavoured)."""

import numpy as np
import pytest

from repro.core.agent import MirasAgent
from repro.core.config import MirasConfig, ModelConfig, PolicyConfig
from repro.rl.ddpg import DDPGConfig

from tests.conftest import make_msd_env


@pytest.fixture(scope="module")
def trained_model_env():
    config = MirasConfig(
        model=ModelConfig(hidden_sizes=(12, 12), epochs=10),
        policy=PolicyConfig(
            ddpg=DDPGConfig(hidden_sizes=(16,), batch_size=8),
            rollout_length=6,
            rollouts_per_iteration=2,
            patience=2,
        ),
        steps_per_iteration=40,
        reset_interval=20,
        iterations=1,
        eval_steps=3,
    )
    agent = MirasAgent(make_msd_env(seed=44), config, seed=44)
    agent.collect_real_interactions(40, random_fraction=1.0)
    agent.train_model()
    return agent.build_model_env()


class TestModelEnvWithLearntModel:
    def test_rollout_terminates_at_configured_length(self, trained_model_env):
        env = trained_model_env
        env.reset()
        steps = 0
        done = False
        while not done:
            _, _, done = env.step(np.array([4.0, 4.0, 3.0, 3.0]))
            steps += 1
        assert steps == 6

    def test_reset_restarts_rollout(self, trained_model_env):
        env = trained_model_env
        env.reset()
        for _ in range(6):
            env.step(np.array([4.0, 4.0, 3.0, 3.0]))
        env.reset()
        _, _, done = env.step(np.array([4.0, 4.0, 3.0, 3.0]))
        assert not done

    def test_states_match_dataset_dimensionality(self, trained_model_env):
        state = trained_model_env.reset()
        assert state.shape == (4,)
        assert np.all(state >= 0)

    def test_model_env_rejects_budget_violation(self, trained_model_env):
        trained_model_env.reset()
        with pytest.raises(ValueError, match="budget"):
            trained_model_env.step(np.array([10.0, 10.0, 10.0, 10.0]))

    def test_simplex_path_consistent_with_manual(self, trained_model_env):
        env = trained_model_env
        simplex = np.array([0.4, 0.3, 0.2, 0.1])
        manual = env.allocation_from_simplex(simplex)
        assert manual.sum() <= env.consumer_budget
        env.reset(np.array([10.0, 5.0, 3.0, 2.0]))
        state_a, _, _ = env.step_simplex(simplex)
        env.reset(np.array([10.0, 5.0, 3.0, 2.0]))
        state_b, _, _ = env.step(manual)
        assert np.allclose(state_a, state_b)
