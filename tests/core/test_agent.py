"""Tests for the MIRAS agent (Algorithm 2), scaled down for test speed."""

import numpy as np
import pytest

from repro.core.agent import MirasAgent
from repro.core.config import MirasConfig, ModelConfig, PolicyConfig
from repro.rl.ddpg import DDPGConfig

from tests.conftest import make_msd_env


def tiny_config(**overrides):
    defaults = dict(
        model=ModelConfig(hidden_sizes=(8, 8), epochs=5),
        policy=PolicyConfig(
            ddpg=DDPGConfig(hidden_sizes=(16, 16), batch_size=8),
            rollout_length=5,
            rollouts_per_iteration=3,
            patience=2,
        ),
        steps_per_iteration=30,
        reset_interval=10,
        iterations=2,
        eval_steps=5,
    )
    defaults.update(overrides)
    return MirasConfig(**defaults)


@pytest.fixture
def agent():
    return MirasAgent(make_msd_env(seed=11), tiny_config(), seed=11)


class TestCollection:
    def test_collect_grows_dataset(self, agent):
        added = agent.collect_real_interactions(10, random_fraction=1.0)
        assert added == 10
        assert len(agent.dataset) == 10

    def test_collected_actions_are_feasible(self, agent):
        agent.collect_real_interactions(20, random_fraction=1.0)
        _, actions, _ = agent.dataset.arrays()
        assert np.all(actions >= 0)
        assert np.all(actions.sum(axis=1) <= agent.env.consumer_budget)
        assert np.all(actions == np.floor(actions))  # executed integers

    def test_collect_also_fills_replay(self, agent):
        agent.collect_real_interactions(10, random_fraction=1.0)
        assert len(agent.ddpg.replay) == 10

    def test_invalid_steps(self, agent):
        with pytest.raises(ValueError):
            agent.collect_real_interactions(0)

    def test_burst_injection_produces_high_wip_states(self):
        config = tiny_config(
            collect_burst_probability=1.0, collect_burst_scale=20.0
        )
        agent = MirasAgent(make_msd_env(seed=12), config, seed=12)
        agent.collect_real_interactions(20, random_fraction=1.0)
        states, _, _ = agent.dataset.arrays()
        assert states.max() > 50  # bursts visible in the dataset

    def test_no_burst_injection_when_disabled(self):
        config = tiny_config(collect_burst_probability=0.0)
        agent = MirasAgent(make_msd_env(seed=13), config, seed=13)
        agent.collect_real_interactions(20, random_fraction=1.0)
        states, _, _ = agent.dataset.arrays()
        assert states.max() < 100


class TestModelTraining:
    def test_train_model_builds_refined_model(self, agent):
        agent.collect_real_interactions(30, random_fraction=1.0)
        loss = agent.train_model()
        assert np.isfinite(loss)
        assert agent.refined_model is not None

    def test_refinement_disabled_uses_raw_model(self):
        config = tiny_config(
            model=ModelConfig(hidden_sizes=(8,), epochs=3, refinement_enabled=False)
        )
        agent = MirasAgent(make_msd_env(seed=14), config, seed=14)
        agent.collect_real_interactions(20, random_fraction=1.0)
        agent.train_model()
        assert agent.refined_model is agent.model

    def test_build_model_env_requires_model(self, agent):
        with pytest.raises(RuntimeError, match="train_model"):
            agent.build_model_env()


class TestPolicyTraining:
    def test_train_policy_runs_rollouts(self, agent):
        agent.collect_real_interactions(30, random_fraction=1.0)
        agent.train_model()
        rollouts, mean_return = agent.train_policy()
        assert 1 <= rollouts <= 3
        assert np.isfinite(mean_return)


class TestIterate:
    def test_full_algorithm2_loop(self, agent):
        results = agent.iterate()
        assert len(results) == 2
        assert results[0].dataset_size == 30
        assert results[1].dataset_size == 60
        assert all(np.isfinite(r.eval_reward) for r in results)
        assert agent.training_trace() == [r.eval_reward for r in results]

    def test_act_returns_feasible_allocation(self, agent):
        agent.iterate(iterations=1)
        allocation = agent.act(np.array([10.0, 5.0, 3.0, 2.0]))
        assert allocation.sum() <= agent.env.consumer_budget
        assert np.all(allocation >= 0)

    def test_evaluate_records_metrics(self, agent):
        agent.iterate(iterations=1)
        result = agent.evaluate(steps=3)
        assert np.isfinite(result.eval_reward)
        assert result.eval_mean_wip >= 0
