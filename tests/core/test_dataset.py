"""Tests for the transition dataset D."""

import numpy as np
import pytest

from repro.core.dataset import TransitionDataset


def filled(n=20, state_dim=3, action_dim=2, seed=0):
    rng = np.random.default_rng(seed)
    dataset = TransitionDataset(state_dim, action_dim)
    for _ in range(n):
        dataset.add(
            rng.uniform(0, 100, state_dim),
            rng.uniform(0, 5, action_dim),
            rng.uniform(0, 100, state_dim),
        )
    return dataset


class TestAdd:
    def test_length_grows(self):
        assert len(filled(7)) == 7

    def test_shape_validation(self):
        dataset = TransitionDataset(3, 2)
        with pytest.raises(ValueError, match="state shape"):
            dataset.add(np.zeros(2), np.zeros(2), np.zeros(3))
        with pytest.raises(ValueError, match="action shape"):
            dataset.add(np.zeros(3), np.zeros(3), np.zeros(3))
        with pytest.raises(ValueError, match="next_state shape"):
            dataset.add(np.zeros(3), np.zeros(2), np.zeros(4))

    def test_extend(self):
        a, b = filled(5), filled(3, seed=1)
        a.extend(b)
        assert len(a) == 8

    def test_extend_dimension_mismatch(self):
        with pytest.raises(ValueError):
            filled(2).extend(TransitionDataset(4, 2))


class TestViews:
    def test_arrays_shapes(self):
        states, actions, next_states = filled(10).arrays()
        assert states.shape == (10, 3)
        assert actions.shape == (10, 2)
        assert next_states.shape == (10, 3)

    def test_inputs_targets_concatenation(self):
        dataset = filled(5)
        x, y = dataset.inputs_targets()
        states, actions, next_states = dataset.arrays()
        assert np.array_equal(x, np.concatenate([states, actions], axis=1))
        assert np.array_equal(y, next_states)

    def test_empty_raises(self):
        with pytest.raises(RuntimeError, match="empty"):
            TransitionDataset(3, 2).arrays()


class TestStatistics:
    def test_normalization_keys_and_floor(self):
        dataset = TransitionDataset(2, 1)
        for _ in range(5):
            dataset.add(np.array([1.0, 2.0]), np.array([3.0]), np.array([1.0, 2.0]))
        norm = dataset.normalization()
        assert np.all(norm["x_std"] >= 1e-6)  # constant columns floored
        assert norm["x_mean"].shape == (3,)

    def test_wip_percentiles_ordered(self):
        dataset = filled(100)
        tau, omega = dataset.wip_percentiles(20.0)
        assert np.all(tau <= omega)
        assert tau.shape == (3,)

    def test_percentile_bounds(self):
        dataset = filled(10)
        with pytest.raises(ValueError):
            dataset.wip_percentiles(0.0)
        with pytest.raises(ValueError):
            dataset.wip_percentiles(50.0)


class TestSplitAndBatches:
    def test_split_partitions(self, rng):
        dataset = filled(20)
        train, test = dataset.split(0.25, rng)
        assert len(train) + len(test) == 20
        assert len(test) == 5

    def test_split_too_small(self, rng):
        with pytest.raises(RuntimeError):
            filled(1).split(0.5, rng)

    def test_minibatches_cover_epoch(self, rng):
        dataset = filled(10)
        total = sum(x.shape[0] for x, _ in dataset.minibatches(3, rng))
        assert total == 10

    def test_sample_states(self, rng):
        states = filled(10).sample_states(5, rng)
        assert states.shape == (5, 3)

    def test_sample_states_oversample_allowed(self, rng):
        states = filled(3).sample_states(10, rng)
        assert states.shape == (10, 3)
