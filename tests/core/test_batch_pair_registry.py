"""The serial/batch pair registry: every vectorised hot path is declared.

PR 5 introduced the batched twins (``predict_batch``, ``act_batch``,
``reward_eq1_batch``, ``sample_batch``, ``project_to_simplex_batch``);
this suite pins that each one is *registered* via ``@batched_pair`` and
that the declared equivalence holds bit-for-bit with the same seed —
driven generically off :func:`repro.utils.batchpairs.registered_pairs`
and exercised under the sanitizer so the runtime batch-pair guard (dtype
stability, argument-mutation hashing) sees every call.
"""

import numpy as np
import pytest

from repro.core.dataset import TransitionDataset
from repro.core.environment_model import EnvironmentModel
from repro.core.refinement import RefinedModel
from repro.core.reward import reward_eq1, reward_eq1_batch
from repro.analysis.sanitizer import sanitized
from repro.rl.ddpg import DDPGAgent, DDPGConfig
from repro.rl.noise import (
    GaussianActionNoise,
    OrnsteinUhlenbeckNoise,
    project_to_simplex,
    project_to_simplex_batch,
)
from repro.utils.batchpairs import registered_pairs
from repro.utils.rng import RngStream

#: Every pair PR 5's vectorised paths rely on, by registry key.
EXPECTED_PAIRS = {
    "repro.core.environment_model.EnvironmentModel.predict": "predict_batch",
    "repro.core.refinement.RefinedModel.predict": "predict_batch",
    "repro.core.reward.reward_eq1": "reward_eq1_batch",
    "repro.rl.actor.Actor.act": "act_batch",
    "repro.rl.ddpg.DDPGAgent.act": "act_batch",
    "repro.rl.noise.project_to_simplex": "project_to_simplex_batch",
    "repro.rl.noise.GaussianActionNoise.sample": "sample_batch",
    "repro.rl.noise.OrnsteinUhlenbeckNoise.sample": "sample_batch",
}


def _stream(seed):
    return RngStream("pairs", np.random.SeedSequence(seed))


def _trained_model(seed=3):
    data_rng = _stream(seed)
    dataset = TransitionDataset(state_dim=3, action_dim=3)
    for _ in range(40):
        state = data_rng.uniform(0.0, 20.0, size=3)
        action = data_rng.uniform(0.0, 3.0, size=3)
        next_state = np.maximum(state - action, 0.0)
        dataset.add(state, action, next_state)
    model = EnvironmentModel(
        3, 3, hidden_sizes=(8,), rng=_stream(seed + 1)
    )
    model.fit(dataset, epochs=2, batch_size=16)
    return model


class TestRegistryCompleteness:
    def test_every_pr5_pair_is_registered(self):
        pairs = registered_pairs()
        for key, batch_name in EXPECTED_PAIRS.items():
            assert key in pairs, f"unregistered pair: {key}"
            assert pairs[key].batch_name == batch_name

    def test_registry_records_scope_correctly(self):
        pair = registered_pairs()["repro.core.reward.reward_eq1"]
        assert pair.module == "repro.core.reward"
        assert pair.serial_qualname == "reward_eq1"  # free function
        method = registered_pairs()[
            "repro.rl.actor.Actor.act"
        ]
        assert method.serial_qualname == "Actor.act"

    def test_decorated_functions_carry_pair_metadata(self):
        assert (
            reward_eq1_batch.__repro_batch_pair__.serial_name == "reward_eq1"
        )
        assert (
            project_to_simplex_batch.__repro_batch_pair__.serial_name
            == "project_to_simplex"
        )


class TestSameSeedBitIdentity:
    """Row k of every batch call must equal the serial call bit-for-bit,
    with the runtime guard active on the batched side."""

    def test_reward_pair(self):
        wip = _stream(11).uniform(0.0, 0.2, size=(6, 3))
        with sanitized() as state:
            batched = reward_eq1_batch(wip)
            assert state.pair_calls["repro.core.reward.reward_eq1"] == 1
        for k, row in enumerate(wip):
            assert batched[k] == reward_eq1(row)

    def test_simplex_projection_pair(self):
        vectors = _stream(12).normal(size=(5, 4))
        with sanitized():
            batched = project_to_simplex_batch(vectors)
        for k, row in enumerate(vectors):
            assert project_to_simplex(row).tobytes() == batched[k].tobytes()

    def test_gaussian_noise_pair(self):
        noise = GaussianActionNoise(sigma=0.3)
        with sanitized():
            batched = noise.sample_batch(1, 3, _stream(13))
        serial = noise.sample(3, _stream(13))
        assert serial.tobytes() == batched[0].tobytes()

    def test_ou_noise_pair(self):
        serial_noise = OrnsteinUhlenbeckNoise(3, sigma=0.2)
        batched_noise = OrnsteinUhlenbeckNoise(3, sigma=0.2)
        a, b = _stream(14), _stream(14)
        for _ in range(4):  # OU carries state across calls
            serial = serial_noise.sample(3, a)
            with sanitized():
                batched = batched_noise.sample_batch(1, 3, b)
            assert serial.tobytes() == batched[0].tobytes()

    def test_model_predict_pair(self):
        model = _trained_model()
        rng = _stream(15)
        states = rng.uniform(0.0, 10.0, size=(4, 3))
        actions = rng.uniform(0.0, 2.0, size=(4, 3))
        with sanitized() as state:
            batched_one = model.predict_batch(states[:1], actions[:1])
            batched_all = model.predict_batch(states, actions)
            key = "repro.core.environment_model.EnvironmentModel.predict"
            assert state.pair_calls[key] == 2
        # K=1 is the bitwise contract (the batched rollout engine's
        # determinism rests on it); K>1 rows agree to fp tolerance only,
        # because BLAS may block a 4-row matmul differently.
        serial = model.predict(states[0], actions[0])
        assert serial.tobytes() == batched_one[0].tobytes()
        for k in range(len(states)):
            np.testing.assert_allclose(
                batched_all[k], model.predict(states[k], actions[k]),
                rtol=1e-12,
            )

    def test_refined_predict_pair(self):
        model = _trained_model(seed=5)
        states = _stream(16).uniform(0.0, 10.0, size=(3, 3))
        actions = _stream(17).uniform(0.0, 2.0, size=(3, 3))
        tau = np.full(3, 5.0)
        omega = np.full(3, 9.0)
        # Lend–Giveback draws from the refinement stream, so serial and
        # batched runs need twin models with identical streams.
        serial_model = RefinedModel(model, tau=tau, omega=omega, rng=_stream(18))
        batched_model = RefinedModel(model, tau=tau, omega=omega, rng=_stream(18))
        with sanitized():
            batched = batched_model.predict_batch(states[:1], actions[:1])
        serial = serial_model.predict(states[0], actions[0])
        assert serial.tobytes() == batched[0].tobytes()

    def test_agent_act_pair(self):
        agent = DDPGAgent(
            3, 3,
            config=DDPGConfig(hidden_sizes=(16, 16), batch_size=8),
            rng=_stream(19),
        )
        states = _stream(20).normal(size=(5, 3))
        with sanitized():
            batched = agent.act_batch(states, explore=False)
        for k, row in enumerate(states):
            serial = agent.act(row, explore=False)
            assert serial.tobytes() == batched[k].tobytes()

    def test_actor_act_pair(self):
        agent = DDPGAgent(
            3, 3,
            config=DDPGConfig(hidden_sizes=(8,), batch_size=8),
            rng=_stream(21),
        )
        states = _stream(22).normal(size=(4, 3))
        with sanitized() as state:
            batched = agent.actor.act_batch(states)
            assert state.pair_calls["repro.rl.actor.Actor.act"] == 1
        for k, row in enumerate(states):
            assert agent.actor.act(row).tobytes() == batched[k].tobytes()


class TestGuardedDtypeStability:
    def test_reward_batch_dtype_is_stable_across_calls(self):
        with sanitized():
            for seed in (30, 31):
                wip = _stream(seed).uniform(0.0, 0.2, size=(3, 3))
                out = reward_eq1_batch(wip)
                assert out.dtype == np.float64

    def test_ou_batch_rejects_k_above_one_through_the_guard(self):
        noise = OrnsteinUhlenbeckNoise(3, sigma=0.2)
        with sanitized():
            with pytest.raises(ValueError, match="rollout_batch"):
                noise.sample_batch(2, 3, _stream(32))


class TestDeclaredShapeContracts:
    """PR 8: every registered pair also declares a ``shapes=`` contract
    that binds the leading batch axis — the runtime half of the static
    registry sweep in tests/analysis/test_shapes.py."""

    def test_every_registered_pair_declares_a_contract(self):
        from repro.analysis.shapes import parse_contract

        for key, pair in registered_pairs().items():
            assert pair.shapes is not None, f"{key} has no shapes= contract"
            contract = parse_contract(pair.shapes)  # must not raise
            assert contract.binds_batch_axis, key
            assert contract.returns_batch_axis, key

    def test_reward_contract_matches_its_signature(self):
        pair = registered_pairs()["repro.core.reward.reward_eq1"]
        assert pair.shapes == "(K, state_dim) -> (K,)"
