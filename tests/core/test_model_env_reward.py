"""Tests for the model-backed environment and reward functions."""

import numpy as np
import pytest

from repro.core.dataset import TransitionDataset
from repro.core.environment_model import EnvironmentModel
from repro.core.model_env import ModelEnv
from repro.core.reward import cumulative_discounted_reward, reward_eq1
from repro.utils.rng import RngStream


@pytest.fixture
def model_env(rng):
    dataset = TransitionDataset(2, 2)
    data_rng = np.random.default_rng(3)
    for _ in range(100):
        w = data_rng.uniform(0, 30, 2)
        m = data_rng.uniform(0, 5, 2)
        dataset.add(w, m, np.maximum(w + 1.0 - 2.0 * m, 0.0))
    model = EnvironmentModel(2, 2, hidden_sizes=(16,), rng=rng.fork("m"))
    model.fit(dataset, epochs=20)
    return ModelEnv(model, dataset, consumer_budget=10, rollout_length=5, rng=rng)


class TestRewardFunctions:
    def test_eq1_value(self):
        assert reward_eq1(np.array([2.0, 3.0])) == pytest.approx(-4.0)

    def test_eq1_empty_system(self):
        assert reward_eq1(np.zeros(3)) == pytest.approx(1.0)

    def test_eq1_rejects_negative_wip(self):
        with pytest.raises(ValueError):
            reward_eq1(np.array([-1.0]))

    def test_cumulative_discounted(self):
        assert cumulative_discounted_reward([1.0, 1.0, 1.0], 0.5) == pytest.approx(
            1.75
        )

    def test_cumulative_gamma_zero_is_first_reward(self):
        assert cumulative_discounted_reward([3.0, 99.0], 0.0) == 3.0

    def test_cumulative_invalid_gamma(self):
        with pytest.raises(ValueError):
            cumulative_discounted_reward([1.0], 1.5)


class TestModelEnv:
    def test_reset_samples_dataset_state(self, model_env):
        state = model_env.reset()
        assert state.shape == (2,)
        assert np.all(state >= 0)

    def test_reset_with_explicit_state(self, model_env):
        state = model_env.reset(np.array([7.0, 3.0]))
        assert np.array_equal(state, [7.0, 3.0])

    def test_step_before_reset_raises(self, model_env):
        with pytest.raises(RuntimeError, match="reset"):
            model_env.step(np.array([1.0, 1.0]))

    def test_step_returns_reward_consistent_with_eq1(self, model_env):
        model_env.reset(np.array([10.0, 10.0]))
        next_state, reward, done = model_env.step(np.array([2.0, 2.0]))
        assert reward == pytest.approx(reward_eq1(next_state))
        assert not done

    def test_done_after_rollout_length(self, model_env):
        model_env.reset()
        done = False
        steps = 0
        while not done:
            _, _, done = model_env.step(np.array([2.0, 2.0]))
            steps += 1
        assert steps == 5

    def test_budget_enforced(self, model_env):
        model_env.reset()
        with pytest.raises(ValueError, match="budget"):
            model_env.step(np.array([8.0, 8.0]))

    def test_simplex_step(self, model_env):
        model_env.reset()
        next_state, reward, done = model_env.step_simplex(np.array([0.5, 0.5]))
        assert next_state.shape == (2,)

    def test_allocation_from_simplex(self, model_env):
        allocation = model_env.allocation_from_simplex(np.array([0.7, 0.3]))
        assert allocation.tolist() == [7, 3]
        with pytest.raises(ValueError):
            model_env.allocation_from_simplex(np.array([0.7, 0.7]))

    def test_states_never_negative(self, model_env):
        model_env.reset(np.array([0.0, 0.0]))
        for _ in range(5):
            state, _, _ = model_env.step(np.array([5.0, 5.0]))
            assert np.all(state >= 0)
