"""Tests for best-policy keeping and burst-aligned evaluation."""

import numpy as np
import pytest

from repro.core.agent import MirasAgent
from repro.core.config import MirasConfig, ModelConfig, PolicyConfig
from repro.rl.ddpg import DDPGConfig

from tests.conftest import make_msd_env


def config(**overrides):
    defaults = dict(
        model=ModelConfig(hidden_sizes=(8,), epochs=3),
        policy=PolicyConfig(
            ddpg=DDPGConfig(hidden_sizes=(16,), batch_size=8),
            rollout_length=4,
            rollouts_per_iteration=2,
            patience=2,
        ),
        steps_per_iteration=20,
        reset_interval=10,
        iterations=2,
        eval_steps=3,
    )
    defaults.update(overrides)
    return MirasConfig(**defaults)


class TestKeepBestPolicy:
    def test_snapshot_restore_roundtrip(self):
        agent = MirasAgent(make_msd_env(seed=61), config(), seed=61)
        agent.iterate(iterations=1)
        snapshot = agent._snapshot_policy()
        state = np.array([5.0, 3.0, 2.0, 1.0])
        before = agent.ddpg.act_greedy(state).copy()
        # Corrupt the policy, then restore.
        agent.ddpg.actor.network.set_flat(
            agent.ddpg.actor.network.get_flat() * 0.0
        )
        assert not np.allclose(agent.ddpg.act_greedy(state), before)
        agent._restore_policy(snapshot)
        assert np.allclose(agent.ddpg.act_greedy(state), before)

    def test_best_policy_kept_across_iterations(self):
        agent = MirasAgent(
            make_msd_env(seed=62), config(keep_best_policy=True), seed=62
        )
        agent.iterate()
        # The restored policy's evaluation matches the best iteration
        # at least approximately: re-evaluating is stochastic, so we only
        # check that iterate() completed with the flag on and recorded
        # every iteration.
        assert len(agent.results) == 2

    def test_flag_off_keeps_last_policy(self):
        agent = MirasAgent(
            make_msd_env(seed=63), config(keep_best_policy=False), seed=63
        )
        agent.iterate()
        assert len(agent.results) == 2


class TestTargetEvalReward:
    def test_early_stop_when_target_reached(self):
        # Any policy trivially reaches a hugely negative target.
        agent = MirasAgent(
            make_msd_env(seed=65),
            config(target_eval_reward=-1e9, iterations=3),
            seed=65,
        )
        agent.iterate()
        assert len(agent.results) == 1  # stopped after the first iteration

    def test_unreachable_target_runs_all_iterations(self):
        agent = MirasAgent(
            make_msd_env(seed=66),
            config(target_eval_reward=1e9, iterations=2),
            seed=66,
        )
        agent.iterate()
        assert len(agent.results) == 2


class TestEvalBurst:
    def test_burst_eval_sees_higher_wip(self):
        env = make_msd_env(seed=64)
        agent = MirasAgent(
            env, config(eval_burst_scale=20.0, iterations=1), seed=64
        )
        agent.collect_real_interactions(20, random_fraction=1.0)
        agent.train_model()
        result = agent.evaluate(steps=3)
        # A 20 * 14 = 280-request burst must dominate the reward.
        assert result.eval_reward < -100

    def test_no_burst_eval_stays_light(self):
        env = make_msd_env(seed=64)
        agent = MirasAgent(
            env, config(eval_burst_scale=0.0, iterations=1), seed=64
        )
        agent.collect_real_interactions(20, random_fraction=1.0)
        agent.train_model()
        result = agent.evaluate(steps=3)
        assert result.eval_reward > -150

    def test_invalid_scale_rejected(self):
        with pytest.raises(ValueError):
            config(eval_burst_scale=-1.0)
