"""Agent-level determinism pins for distributed collection.

The ISSUE's acceptance property: a full ``iterate()`` pass in logical
mode is *byte* identical across ``collect_workers`` ∈ {1, 4} — traces,
iteration results, final actor weights, dataset, and replay buffer —
and physical mode agrees with logical.  Episode seeds derive from
(root seed, lane/episode labels), and blocks merge in episode order,
so neither the worker count nor process scheduling can leak into
training state.
"""

import numpy as np
import pytest

from repro.core.agent import MirasAgent
from repro.core.config import MirasConfig, ModelConfig, PolicyConfig
from repro.eval.experiments import build_training_env
from repro.rl.ddpg import DDPGConfig
from repro.rl.distributed import EnvSpec
from repro.telemetry.sinks import MemorySink
from repro.telemetry.tracer import Tracer

ENV_SPEC = EnvSpec.make(
    "repro.eval.experiments:build_training_env", dataset="msd"
)


def small_config(mode, workers):
    return MirasConfig(
        model=ModelConfig(hidden_sizes=(8, 8), epochs=2),
        policy=PolicyConfig(
            ddpg=DDPGConfig(hidden_sizes=(16,), batch_size=8),
            rollout_length=4,
            rollouts_per_iteration=2,
            patience=2,
            collect_mode=mode,
            collect_workers=workers,
        ),
        steps_per_iteration=60,
        reset_interval=25,
        iterations=1,
        eval_steps=3,
    )


def run_training(mode, workers, traced=False):
    env = build_training_env(seed=7)
    tracer = Tracer(MemorySink()) if traced else None
    agent = MirasAgent(
        env,
        small_config(mode, workers),
        seed=7,
        tracer=tracer,
        env_spec=ENV_SPEC,
    )
    results = agent.iterate()
    return agent, results, tracer


def training_state(agent):
    """Every array that collection feeds, plus the trained weights."""
    d, replay = agent.dataset, agent.ddpg.replay
    return {
        "dataset_states": d._states[: len(d)].copy(),
        "dataset_actions": d._actions[: len(d)].copy(),
        "dataset_next": d._next_states[: len(d)].copy(),
        "replay": replay.state_dict(),
        "actor": agent.ddpg.actor.network.state_dict(),
    }


def assert_states_equal(a, b):
    for key in ("dataset_states", "dataset_actions", "dataset_next"):
        assert np.array_equal(a[key], b[key]), key
    for key, value in a["replay"].items():
        assert np.array_equal(value, b["replay"][key]), f"replay/{key}"
    for layer, params in a["actor"].items():
        for key, value in params.items():
            assert np.array_equal(
                value, b["actor"][layer][key]
            ), f"actor/{layer}/{key}"


class TestLogicalByteIdentity:
    def test_worker_count_is_invisible(self):
        """The tentpole pin: logical collect_workers ∈ {1, 4} agree."""
        agent_one, results_one, tracer_one = run_training(
            "logical", 1, traced=True
        )
        agent_four, results_four, tracer_four = run_training(
            "logical", 4, traced=True
        )
        assert results_one == results_four
        assert_states_equal(
            training_state(agent_one), training_state(agent_four)
        )
        assert tracer_one.sink.records == tracer_four.sink.records

    def test_physical_matches_logical(self):
        """Real process pools replay the same logical interleave."""
        agent_logical, results_logical, _ = run_training("logical", 2)
        agent_physical, results_physical, _ = run_training("physical", 2)
        assert results_physical == results_logical
        assert_states_equal(
            training_state(agent_physical), training_state(agent_logical)
        )


class TestCollectTelemetry:
    def test_span_collect_records_cover_every_episode(self):
        _, _, tracer = run_training("logical", 4, traced=True)
        spans = [
            r for r in tracer.sink.records if r["kind"] == "span.collect"
        ]
        # 60 steps at reset_interval 25 -> episodes of 25, 25, 10 steps.
        assert [s["episode"] for s in spans] == [0, 1, 2]
        assert [s["steps"] for s in spans] == [25, 25, 10]
        assert [s["lane"] for s in spans] == [0, 1, 2]
        for span in spans:
            assert {"reward", "sim_time", "t"} <= set(span)

    def test_episode_indices_continue_across_iterations(self):
        agent, _, tracer = run_training("logical", 2, traced=True)
        agent.iterate(iterations=1)
        spans = [
            r for r in tracer.sink.records if r["kind"] == "span.collect"
        ]
        assert [s["episode"] for s in spans] == [0, 1, 2, 3, 4, 5]


class TestGuards:
    def test_missing_env_spec_is_a_hard_error(self):
        env = build_training_env(seed=7)
        agent = MirasAgent(env, small_config("logical", 1), seed=7)
        with pytest.raises(RuntimeError, match="env_spec"):
            agent.collect_distributed(10)

    def test_serial_mode_needs_no_env_spec(self):
        env = build_training_env(seed=7)
        agent = MirasAgent(env, small_config("serial", 1), seed=7)
        agent.collect_real_interactions(10, random_fraction=1.0)
        assert len(agent.dataset) == 10
