"""Batched ``train_policy`` equivalence: the K=1 engine must reproduce
the historical per-step serial loop *bitwise* — same actor and critic
weights, same replay contents, same perturbation schedule.

``_reference_serial_train_policy`` below is the pre-batching loop kept
verbatim as an executable specification; if ``MirasAgent.train_policy``
ever drifts from it at ``rollout_batch=1``, these tests fail at the
byte level rather than tolerance level.
"""

import dataclasses

import numpy as np
import pytest

from repro.core.agent import MirasAgent
from repro.telemetry.profile import PhaseProfiler

from tests.conftest import make_msd_env
from tests.core.test_agent import tiny_config


def _prepared_agent(seed=3, profiler=None, **config_overrides):
    config = tiny_config(**config_overrides)
    agent = MirasAgent(
        make_msd_env(seed=seed), config, seed=seed, profiler=profiler
    )
    agent.collect_real_interactions(
        agent.config.steps_per_iteration, random_fraction=1.0
    )
    agent.train_model()
    return agent


def _reference_serial_train_policy(agent):
    """The pre-batching ``train_policy`` loop (historical implementation)."""
    cfg = agent.config.policy
    model_env = agent.build_model_env()
    returns = []
    best_return = -np.inf
    stale = 0
    rollouts_run = 0
    for _ in range(cfg.rollouts_per_iteration):
        state = model_env.reset()
        agent.ddpg.refresh_perturbation()
        episode_return = 0.0
        done = False
        while not done:
            simplex = agent.ddpg.act(state, explore=True)
            executed = model_env.allocation_from_simplex(simplex)
            next_state, reward, done = model_env.step(executed)
            agent.ddpg.store(
                state, executed / agent.env.consumer_budget, reward, next_state
            )
            if len(agent.ddpg.replay) >= cfg.ddpg.batch_size:
                agent.ddpg.update_many(cfg.updates_per_step)
            state = next_state
            episode_return += reward
        returns.append(episode_return)
        rollouts_run += 1
        if episode_return > best_return + 1e-9:
            best_return = episode_return
            stale = 0
        else:
            stale += 1
            if stale >= cfg.patience:
                break
    tail = returns[-min(5, len(returns)):]
    return rollouts_run, float(np.mean(tail))


class TestBatchOneMatchesSerial:
    def test_weights_and_returns_bitwise_equal(self):
        batched = _prepared_agent(seed=3)
        serial = _prepared_agent(seed=3)
        result_batched = batched.train_policy()
        result_serial = _reference_serial_train_policy(serial)
        assert result_batched == result_serial
        assert (
            batched.ddpg.actor.network.get_flat().tobytes()
            == serial.ddpg.actor.network.get_flat().tobytes()
        )
        assert (
            batched.ddpg.critic.network.get_flat().tobytes()
            == serial.ddpg.critic.network.get_flat().tobytes()
        )
        assert len(batched.ddpg.replay) == len(serial.ddpg.replay)
        assert batched.ddpg._perturbs_done == serial.ddpg._perturbs_done

    def test_replay_contents_bitwise_equal(self):
        batched = _prepared_agent(seed=8)
        serial = _prepared_agent(seed=8)
        batched.train_policy()
        _reference_serial_train_policy(serial)
        for attr in ("_states", "_actions", "_rewards", "_next_states"):
            assert (
                getattr(batched.ddpg.replay, attr).tobytes()
                == getattr(serial.ddpg.replay, attr).tobytes()
            )


class TestLargerBatches:
    def test_k4_runs_and_reports_finite_returns(self):
        agent = _prepared_agent(seed=5)
        agent.config = dataclasses.replace(
            agent.config,
            policy=dataclasses.replace(
                agent.config.policy,
                rollout_batch=4,
                rollouts_per_iteration=6,
            ),
        )
        rollouts, mean_return = agent.train_policy()
        assert 1 <= rollouts <= 6
        assert np.isfinite(mean_return)

    def test_k_larger_than_remaining_rollouts_is_clamped(self):
        agent = _prepared_agent(seed=6)
        agent.config = dataclasses.replace(
            agent.config,
            policy=dataclasses.replace(
                agent.config.policy,
                rollout_batch=8,
                rollouts_per_iteration=3,
                patience=10,
            ),
        )
        rollouts, _ = agent.train_policy()
        assert rollouts == 3

    def test_profiler_records_batched_phases(self):
        profiler = PhaseProfiler(enabled=True)
        agent = _prepared_agent(seed=7, profiler=profiler)
        agent.train_policy()
        rollout_node = profiler.node("agent/rollout_batch")
        assert rollout_node is not None
        assert rollout_node.calls >= 1
        predict_node = rollout_node.children.get("model/predict_batch")
        assert predict_node is not None
        assert predict_node.calls >= 1
