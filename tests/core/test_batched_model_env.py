"""Batched synthetic-rollout engine: K=1 byte-identity vs the serial
:class:`ModelEnv`, batch shapes, and validation errors.

The determinism contract under test: ``BatchedModelEnv`` with
``batch_size=1`` draws the same RNG values and runs the same (1, n)
model forwards as :class:`ModelEnv`, so trajectories are *byte*
identical — not merely allclose — under cloned streams.
"""

import numpy as np
import pytest

from repro.core.dataset import TransitionDataset
from repro.core.environment_model import EnvironmentModel
from repro.core.model_env import BatchedModelEnv, ModelEnv
from repro.core.refinement import RefinedModel
from repro.utils.rng import RngStream


def _build_fixture():
    """A small trained model + dataset, deterministic by construction."""
    data_rng = RngStream("data", np.random.SeedSequence(7))
    dataset = TransitionDataset(state_dim=4, action_dim=4)
    for _ in range(60):
        state = data_rng.uniform(0.0, 20.0, size=4)
        action = data_rng.uniform(0.0, 3.0, size=4)
        next_state = np.maximum(
            state - action + data_rng.normal(0.0, 0.5, size=4), 0.0
        )
        dataset.add(state, action, next_state)
    model = EnvironmentModel(
        4, 4, hidden_sizes=(8,), rng=RngStream("m", np.random.SeedSequence(3))
    )
    model.fit(dataset, epochs=3, batch_size=16)
    return model, dataset


@pytest.fixture(scope="module")
def trained():
    return _build_fixture()


def _refined(model, rng_seed=5):
    return RefinedModel(
        model,
        tau=np.full(4, 5.0),
        omega=np.full(4, 9.0),
        rng=RngStream("refine", np.random.SeedSequence(rng_seed)),
    )


ACTIONS = np.array([0.4, 0.3, 0.2, 0.1])


class TestBatchOneByteIdentity:
    def test_trajectory_bitwise_equal_to_model_env(self, trained):
        model, dataset = trained
        serial = ModelEnv(
            _refined(model), dataset, consumer_budget=10, rollout_length=6,
            rng=RngStream("e", np.random.SeedSequence(11)),
        )
        batched = BatchedModelEnv(
            _refined(model), dataset, consumer_budget=10, rollout_length=6,
            batch_size=1, rng=RngStream("e", np.random.SeedSequence(11)),
        )
        s1 = serial.reset()
        s2 = batched.reset()
        assert s2.shape == (1, 4)
        assert s1.tobytes() == s2[0].tobytes()
        alloc1 = serial.allocation_from_simplex(ACTIONS)
        alloc2 = batched.allocation_from_simplex_batch(ACTIONS[np.newaxis])
        assert alloc1.tobytes() == alloc2[0].tobytes()
        done1 = done2 = False
        steps = 0
        while not done1:
            n1, rw1, done1 = serial.step(alloc1)
            n2, rw2, done2 = batched.step(alloc2)
            assert n1.tobytes() == n2[0].tobytes()
            assert np.float64(rw1).tobytes() == rw2[0].tobytes()
            steps += 1
        assert done2
        assert steps == 6
        assert serial.model.lend_count == batched.model.lend_count
        assert serial.model.lend_count > 0, "fixture never exercised lending"

    def test_refined_predict_batch_row_matches_predict(self, trained):
        model, _ = trained
        a = _refined(model, rng_seed=21)
        b = _refined(model, rng_seed=21)
        state = np.array([1.0, 2.0, 12.0, 0.5])
        out1 = a.predict(state, ACTIONS)
        out2 = b.predict_batch(state[np.newaxis], ACTIONS[np.newaxis])
        assert out2.shape == (1, 4)
        assert out1.tobytes() == out2[0].tobytes()
        assert a.lend_count == b.lend_count


class TestBatchShapes:
    def test_k5_shapes(self, trained):
        model, dataset = trained
        env = BatchedModelEnv(
            _refined(model), dataset, consumer_budget=10, rollout_length=4,
            batch_size=5, rng=RngStream("e", np.random.SeedSequence(2)),
        )
        states = env.reset()
        assert states.shape == (5, 4)
        allocs = env.allocation_from_simplex_batch(np.tile(ACTIONS, (5, 1)))
        assert allocs.shape == (5, 4)
        next_states, rewards, done = env.step(allocs)
        assert next_states.shape == (5, 4)
        assert rewards.shape == (5,)
        assert not done
        assert env.total_steps == 5

    def test_reset_override_batch_size(self, trained):
        model, dataset = trained
        env = BatchedModelEnv(
            _refined(model), dataset, consumer_budget=10, rollout_length=4,
            batch_size=2, rng=RngStream("e", np.random.SeedSequence(2)),
        )
        assert env.reset(3).shape == (3, 4)

    def test_done_at_rollout_length(self, trained):
        model, dataset = trained
        env = BatchedModelEnv(
            _refined(model), dataset, consumer_budget=10, rollout_length=3,
            batch_size=2, rng=RngStream("e", np.random.SeedSequence(2)),
        )
        env.reset()
        allocs = env.allocation_from_simplex_batch(np.tile(ACTIONS, (2, 1)))
        flags = [env.step(allocs)[2] for _ in range(3)]
        assert flags == [False, False, True]


class TestValidation:
    def test_step_before_reset_raises(self, trained):
        model, dataset = trained
        env = BatchedModelEnv(
            _refined(model), dataset, consumer_budget=10, rollout_length=3,
            rng=RngStream("e", np.random.SeedSequence(2)),
        )
        with pytest.raises(RuntimeError):
            env.step(np.tile(ACTIONS, (1, 1)))

    def test_budget_violation_raises(self, trained):
        model, dataset = trained
        env = BatchedModelEnv(
            _refined(model), dataset, consumer_budget=10, rollout_length=3,
            batch_size=2, rng=RngStream("e", np.random.SeedSequence(2)),
        )
        env.reset()
        bad = np.full((2, 4), 4.0)  # sums to 16 > 10
        with pytest.raises(ValueError):
            env.step(bad)

    def test_wrong_batch_shape_raises(self, trained):
        model, dataset = trained
        env = BatchedModelEnv(
            _refined(model), dataset, consumer_budget=10, rollout_length=3,
            batch_size=2, rng=RngStream("e", np.random.SeedSequence(2)),
        )
        env.reset()
        with pytest.raises(ValueError):
            env.step(np.tile(ACTIONS, (3, 1)))

    def test_bad_simplex_row_raises(self, trained):
        model, dataset = trained
        env = BatchedModelEnv(
            _refined(model), dataset, consumer_budget=10, rollout_length=3,
            batch_size=2, rng=RngStream("e", np.random.SeedSequence(2)),
        )
        rows = np.tile(ACTIONS, (2, 1))
        rows[1, 0] = 0.9  # row no longer sums to 1
        with pytest.raises(ValueError):
            env.allocation_from_simplex_batch(rows)
