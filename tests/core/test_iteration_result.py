"""Tests for per-iteration diagnostics and training-trace bookkeeping."""

import dataclasses

import numpy as np
import pytest

from repro.core.agent import IterationResult, MirasAgent
from repro.core.config import MirasConfig, ModelConfig, PolicyConfig
from repro.rl.ddpg import DDPGConfig

from tests.conftest import make_msd_env


class TestIterationResult:
    def test_is_a_plain_dataclass(self):
        result = IterationResult(
            iteration=0,
            dataset_size=10,
            model_loss=0.5,
            policy_rollouts=3,
            policy_mean_return=-12.0,
            eval_reward=-40.0,
            eval_mean_wip=2.0,
            eval_mean_response_time=15.0,
        )
        as_dict = dataclasses.asdict(result)
        assert as_dict["eval_reward"] == -40.0
        assert IterationResult(**as_dict) == result


class TestTrainingBookkeeping:
    @pytest.fixture(scope="class")
    def agent(self):
        config = MirasConfig(
            model=ModelConfig(hidden_sizes=(8,), epochs=3),
            policy=PolicyConfig(
                ddpg=DDPGConfig(hidden_sizes=(16,), batch_size=8),
                rollout_length=4,
                rollouts_per_iteration=2,
                patience=2,
            ),
            steps_per_iteration=20,
            reset_interval=10,
            iterations=2,
            eval_steps=3,
        )
        agent = MirasAgent(make_msd_env(seed=45), config, seed=45)
        agent.iterate()
        return agent

    def test_iteration_numbers_sequential(self, agent):
        assert [r.iteration for r in agent.results] == [0, 1]

    def test_dataset_sizes_accumulate(self, agent):
        assert [r.dataset_size for r in agent.results] == [20, 40]

    def test_diagnostics_populated(self, agent):
        for result in agent.results:
            assert np.isfinite(result.model_loss)
            assert result.policy_rollouts >= 1
            assert np.isfinite(result.policy_mean_return)
            assert result.eval_mean_wip >= 0
            assert result.eval_mean_response_time >= 0

    def test_training_trace_matches_results(self, agent):
        assert agent.training_trace() == [
            r.eval_reward for r in agent.results
        ]

    def test_iterate_extends_rather_than_resets(self, agent):
        before = len(agent.results)
        agent.iterate(iterations=1)
        assert len(agent.results) == before + 1
        assert agent.results[-1].iteration == before
