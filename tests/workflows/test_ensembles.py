"""Tests pinning the MSD and LIGO ensembles to the paper's constraints."""

import pytest

from repro.workflows.ligo import LIGO_TASKS, LIGO_WORKFLOWS, build_ligo_ensemble
from repro.workflows.msd import MSD_TASKS, MSD_WORKFLOWS, build_msd_ensemble


class TestMsdEnsemble:
    """Section VI-A1: MSD has 3 workflows (Type1-3) over 4 task types."""

    def test_counts_match_paper(self):
        ensemble = build_msd_ensemble()
        assert ensemble.num_task_types == 4
        assert ensemble.num_workflow_types == 3

    def test_names(self):
        ensemble = build_msd_ensemble()
        assert ensemble.task_names() == MSD_TASKS
        assert ensemble.workflow_names() == MSD_WORKFLOWS

    def test_workflows_share_microservices(self):
        """Sharing causes the cascading effects of Section II-C."""
        ensemble = build_msd_ensemble()
        type1 = ensemble.workflow("Type1").tasks
        type2 = ensemble.workflow("Type2").tasks
        assert type1 & type2  # shared tasks exist

    def test_all_tasks_used(self):
        ensemble = build_msd_ensemble()
        used = set().union(*(w.tasks for w in ensemble.workflow_types))
        assert used == set(MSD_TASKS)

    def test_service_time_scale(self):
        base = build_msd_ensemble()
        scaled = build_msd_ensemble(service_time_scale=2.0)
        for t_base, t_scaled in zip(base.task_types, scaled.task_types):
            assert t_scaled.mean_service_time == pytest.approx(
                2.0 * t_base.mean_service_time
            )

    def test_rejects_bad_scale(self):
        with pytest.raises(ValueError):
            build_msd_ensemble(service_time_scale=0.0)


class TestLigoEnsemble:
    """Section VI-A1: LIGO has 4 workflows over 9 task types; Section VI-D
    says task "Coire" appears in the CAT, Full and Injection workflows."""

    def test_counts_match_paper(self):
        ensemble = build_ligo_ensemble()
        assert ensemble.num_task_types == 9
        assert ensemble.num_workflow_types == 4

    def test_names(self):
        ensemble = build_ligo_ensemble()
        assert ensemble.task_names() == LIGO_TASKS
        assert ensemble.workflow_names() == LIGO_WORKFLOWS

    def test_coire_membership_matches_paper(self):
        ensemble = build_ligo_ensemble()
        assert "Coire" in ensemble.workflow("CAT").tasks
        assert "Coire" in ensemble.workflow("Full").tasks
        assert "Coire" in ensemble.workflow("Injection").tasks
        assert "Coire" not in ensemble.workflow("DataFind").tasks

    def test_all_tasks_used(self):
        ensemble = build_ligo_ensemble()
        used = set().union(*(w.tasks for w in ensemble.workflow_types))
        assert used == set(LIGO_TASKS)

    def test_full_is_most_complex(self):
        """The paper calls LIGO's Full "a more complicated workflow"."""
        ensemble = build_ligo_ensemble()
        full = ensemble.workflow("Full")
        assert full.size == max(w.size for w in ensemble.workflow_types)

    def test_upstream_stages_shared(self):
        ensemble = build_ligo_ensemble()
        shared = (
            ensemble.workflow("CAT").tasks & ensemble.workflow("Full").tasks
        )
        assert {"DataFind", "TmpltBank", "Inspiral"} <= shared

    def test_all_workflows_acyclic_with_single_component(self):
        ensemble = build_ligo_ensemble()
        for wf in ensemble.workflow_types:
            order = wf.topological_order()
            assert len(order) == wf.size
            assert wf.entry_tasks
            assert wf.exit_tasks
