"""Extra property tests for the random-ensemble generator."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.utils.rng import RngStream
from repro.workflows.generator import random_ensemble, random_workflow


class TestRandomWorkflowProperties:
    @given(
        seed=st.integers(0, 10_000),
        size=st.integers(2, 10),
        edge_probability=st.floats(0.0, 1.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_always_valid_dag_with_entries_and_exits(
        self, seed, size, edge_probability
    ):
        rng = RngStream("g", np.random.SeedSequence(seed))
        names = tuple(f"T{i}" for i in range(size))
        workflow = random_workflow(
            "W", names, rng, edge_probability=edge_probability
        )
        order = workflow.topological_order()  # raises on cycles
        assert len(order) == workflow.size
        assert workflow.entry_tasks
        assert workflow.exit_tasks
        # Every edge goes forward in the chosen index order.
        indices = {name: i for i, name in enumerate(names)}
        for up, down in workflow.edges:
            assert indices[up] < indices[down]

    @given(seed=st.integers(0, 5_000))
    @settings(max_examples=50, deadline=None)
    def test_zero_edge_probability_yields_chain_links(self, seed):
        """With p=0 the connectivity fallback still links isolated tasks."""
        rng = RngStream("g", np.random.SeedSequence(seed))
        names = tuple(f"T{i}" for i in range(5))
        workflow = random_workflow("W", names, rng, edge_probability=0.0)
        if workflow.size > 1:
            touched = {t for e in workflow.edges for t in e}
            isolated = workflow.tasks - touched
            assert len(isolated) <= 1  # at most the first task in order


class TestRandomEnsembleProperties:
    @given(seed=st.integers(0, 2_000))
    @settings(max_examples=30, deadline=None)
    def test_service_times_within_requested_range(self, seed):
        ensemble = random_ensemble(
            4, 2, seed=seed, mean_service_range=(2.0, 3.0)
        )
        for task_type in ensemble.task_types:
            assert 2.0 <= task_type.mean_service_time <= 3.0

    def test_invalid_ranges_rejected(self):
        with pytest.raises(ValueError):
            random_ensemble(3, 1, mean_service_range=(5.0, 1.0))
        with pytest.raises(ValueError):
            random_ensemble(0, 1)
