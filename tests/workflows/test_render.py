"""Tests for ASCII DAG rendering."""

import pytest

from repro.workflows import build_msd_ensemble
from repro.workflows.dag import WorkflowType
from repro.workflows.render import (
    render_dependency_table,
    render_ensemble,
    render_workflow,
)


class TestRenderWorkflow:
    def test_chain_layers_in_order(self):
        workflow = WorkflowType("W", edges=[("A", "B"), ("B", "C")])
        out = render_workflow(workflow)
        lines = out.splitlines()
        assert "W: A" in lines[0]
        assert out.index("A") < out.index("B") < out.index("C")

    def test_fork_shares_a_layer(self):
        workflow = WorkflowType("W", edges=[("A", "B"), ("A", "C")])
        out = render_workflow(workflow)
        # B and C are both at depth 1 -> same line.
        layer_line = [l for l in out.splitlines() if "B" in l][0]
        assert "C" in layer_line

    def test_single_task(self):
        workflow = WorkflowType("W", edges=[], tasks=["Only"])
        assert "Only" in render_workflow(workflow)


class TestRenderDependencyTable:
    def test_fig2_shape(self):
        workflow = WorkflowType("Type1", edges=[("A", "B")])
        table = render_dependency_table(workflow)
        assert "workflow Type1" in table
        assert "A -> B" in table
        assert "B -> (done)" in table

    def test_multiple_successors_listed(self):
        workflow = WorkflowType("W", edges=[("A", "B"), ("A", "C")])
        table = render_dependency_table(workflow)
        assert "A -> B, C" in table


class TestRenderEnsemble:
    def test_msd_summary(self):
        out = render_ensemble(build_msd_ensemble())
        assert "ensemble MSD: J=4 task types, N=3 workflow types" in out
        for name in ("Type1", "Type2", "Type3"):
            assert f"workflow {name}" in out
        assert "Ingest(2s)" in out
