"""Tests for the workflow DAG model."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.utils.rng import RngStream
from repro.workflows.dag import TaskType, WorkflowEnsemble, WorkflowType
from repro.workflows.generator import random_ensemble, random_workflow


class TestTaskType:
    def test_valid(self):
        task = TaskType("A", 2.0, cv=0.5)
        assert task.name == "A"

    def test_rejects_empty_name(self):
        with pytest.raises(ValueError):
            TaskType("", 1.0)

    def test_rejects_non_positive_service_time(self):
        with pytest.raises(ValueError):
            TaskType("A", 0.0)

    def test_rejects_negative_cv(self):
        with pytest.raises(ValueError):
            TaskType("A", 1.0, cv=-0.1)


class TestWorkflowType:
    def test_chain_entry_and_exit(self):
        wf = WorkflowType("W", edges=[("A", "B"), ("B", "C")])
        assert wf.entry_tasks == ("A",)
        assert wf.exit_tasks == ("C",)
        assert wf.size == 3

    def test_fork_join(self):
        wf = WorkflowType(
            "W", edges=[("A", "B"), ("A", "C"), ("B", "D"), ("C", "D")]
        )
        assert wf.entry_tasks == ("A",)
        assert wf.exit_tasks == ("D",)
        assert set(wf.predecessors("D")) == {"B", "C"}

    def test_cycle_detection(self):
        with pytest.raises(ValueError, match="cycle"):
            WorkflowType("W", edges=[("A", "B"), ("B", "A")])

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError, match="self-loop"):
            WorkflowType("W", edges=[("A", "A")])

    def test_duplicate_edge_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            WorkflowType("W", edges=[("A", "B"), ("A", "B")])

    def test_single_task_workflow_via_tasks_param(self):
        wf = WorkflowType("W", edges=[], tasks=["A"])
        assert wf.entry_tasks == ("A",)
        assert wf.exit_tasks == ("A",)

    def test_empty_workflow_rejected(self):
        with pytest.raises(ValueError, match="no tasks"):
            WorkflowType("W", edges=[])

    def test_unknown_task_query_raises(self):
        wf = WorkflowType("W", edges=[("A", "B")])
        with pytest.raises(KeyError):
            wf.successors("Z")

    def test_topological_order_respects_edges(self):
        wf = WorkflowType(
            "W", edges=[("A", "B"), ("A", "C"), ("C", "D"), ("B", "D")]
        )
        order = wf.topological_order()
        for up, down in wf.edges:
            assert order.index(up) < order.index(down)

    def test_critical_path_length(self):
        wf = WorkflowType("W", edges=[("A", "B"), ("A", "C")])
        times = {"A": 1.0, "B": 5.0, "C": 2.0}
        assert wf.critical_path_length(times) == 6.0


class TestWorkflowEnsemble:
    def _tasks(self, *names):
        return [TaskType(n, 1.0) for n in names]

    def test_valid_ensemble(self):
        ensemble = WorkflowEnsemble(
            "E",
            self._tasks("A", "B"),
            [WorkflowType("W1", edges=[("A", "B")])],
        )
        assert ensemble.num_task_types == 2
        assert ensemble.num_workflow_types == 1

    def test_duplicate_task_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate task"):
            WorkflowEnsemble(
                "E",
                self._tasks("A", "A"),
                [WorkflowType("W", edges=[], tasks=["A"])],
            )

    def test_unknown_task_reference_rejected(self):
        with pytest.raises(ValueError, match="unknown task"):
            WorkflowEnsemble(
                "E",
                self._tasks("A"),
                [WorkflowType("W", edges=[("A", "B")])],
            )

    def test_no_workflows_rejected(self):
        with pytest.raises(ValueError, match="no workflow"):
            WorkflowEnsemble("E", self._tasks("A"), [])

    def test_indices_are_stable(self):
        ensemble = WorkflowEnsemble(
            "E",
            self._tasks("A", "B", "C"),
            [WorkflowType("W", edges=[("A", "B"), ("B", "C")])],
        )
        assert [ensemble.task_index(n) for n in ("A", "B", "C")] == [0, 1, 2]
        assert ensemble.task_names() == ("A", "B", "C")

    def test_unknown_lookups_raise(self):
        ensemble = WorkflowEnsemble(
            "E", self._tasks("A"), [WorkflowType("W", edges=[], tasks=["A"])]
        )
        with pytest.raises(KeyError):
            ensemble.task_index("Z")
        with pytest.raises(KeyError):
            ensemble.workflow_index("Z")

    def test_service_demand(self):
        ensemble = WorkflowEnsemble(
            "E",
            [TaskType("A", 2.0), TaskType("B", 3.0)],
            [
                WorkflowType("W1", edges=[("A", "B")]),
                WorkflowType("W2", edges=[], tasks=["A"]),
            ],
        )
        demand = ensemble.service_demand({"W1": 0.5, "W2": 1.0})
        assert demand["A"] == pytest.approx(0.5 * 2.0 + 1.0 * 2.0)
        assert demand["B"] == pytest.approx(0.5 * 3.0)

    def test_service_demand_rejects_negative_rate(self):
        ensemble = WorkflowEnsemble(
            "E", self._tasks("A"), [WorkflowType("W", edges=[], tasks=["A"])]
        )
        with pytest.raises(ValueError):
            ensemble.service_demand({"W": -1.0})


class TestRandomGenerator:
    @given(st.integers(2, 8), st.integers(1, 5), st.integers(0, 1000))
    @settings(max_examples=30, deadline=None)
    def test_random_ensemble_is_valid_and_covering(self, j, n, seed):
        ensemble = random_ensemble(j, n, seed=seed)
        assert ensemble.num_task_types == j
        assert ensemble.num_workflow_types == n
        covered = set().union(*(w.tasks for w in ensemble.workflow_types))
        assert covered == set(ensemble.task_names())

    def test_random_workflow_is_acyclic(self):
        rng = RngStream("g", np.random.SeedSequence(3))
        names = tuple(f"T{i}" for i in range(6))
        for _ in range(20):
            wf = random_workflow("W", names, rng)
            order = wf.topological_order()  # raises on cycles
            assert len(order) == wf.size

    def test_min_tasks_validation(self):
        rng = RngStream("g", np.random.SeedSequence(3))
        with pytest.raises(ValueError):
            random_workflow("W", ("A",), rng, min_tasks=5)
