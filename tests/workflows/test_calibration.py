"""Calibration sanity checks for the MSD/LIGO ensembles and workloads.

These pin the properties the experiments depend on: steady-state demand
leaves headroom under the paper's consumer budgets, while the Section VI-D
bursts genuinely exceed per-window capacity (so allocation quality
matters).
"""

import pytest

from repro.workflows import build_ligo_ensemble, build_msd_ensemble
from repro.workload.bursts import (
    LIGO_BACKGROUND_RATES,
    LIGO_BURSTS,
    MSD_BACKGROUND_RATES,
    MSD_BURSTS,
)

MSD_BUDGET = 14
LIGO_BUDGET = 30


def total_demand(ensemble, rates):
    return sum(ensemble.service_demand(rates).values())


class TestSteadyStateHeadroom:
    def test_msd_background_fits_budget_with_headroom(self):
        demand = total_demand(build_msd_ensemble(), MSD_BACKGROUND_RATES)
        assert 0.1 * MSD_BUDGET < demand < 0.6 * MSD_BUDGET

    def test_ligo_background_fits_budget_with_headroom(self):
        demand = total_demand(build_ligo_ensemble(), LIGO_BACKGROUND_RATES)
        assert 0.1 * LIGO_BUDGET < demand < 0.6 * LIGO_BUDGET


class TestBurstsAreStressful:
    """Each burst's total work should take many windows at full budget —
    otherwise any allocator drains it instantly and Figs. 7-8 degenerate."""

    @pytest.mark.parametrize("scenario", MSD_BURSTS, ids=lambda s: s.name)
    def test_msd_burst_demand(self, scenario):
        ensemble = build_msd_ensemble()
        service = ensemble.mean_service_times()
        work = sum(
            count * sum(service[t] for t in ensemble.workflow(wf).tasks)
            for wf, count in scenario.burst.items()
        )
        windows_at_full_budget = work / (MSD_BUDGET * 30.0)
        assert windows_at_full_budget > 5

    @pytest.mark.parametrize("scenario", LIGO_BURSTS, ids=lambda s: s.name)
    def test_ligo_burst_demand(self, scenario):
        ensemble = build_ligo_ensemble()
        service = ensemble.mean_service_times()
        work = sum(
            count * sum(service[t] for t in ensemble.workflow(wf).tasks)
            for wf, count in scenario.burst.items()
        )
        windows_at_full_budget = work / (LIGO_BUDGET * 30.0)
        assert windows_at_full_budget > 3


class TestInspiralDominates:
    """Per Juve et al. [17], matched filtering (Inspiral) is by far the
    heaviest LIGO stage — the experiments rely on that bottleneck."""

    def test_inspiral_is_heaviest(self):
        ensemble = build_ligo_ensemble()
        services = ensemble.mean_service_times()
        inspiral = services.pop("Inspiral")
        assert inspiral == max([inspiral, *services.values()])
        assert inspiral >= 1.8 * max(services.values())
