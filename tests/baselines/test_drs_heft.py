"""Tests for the DRS (queueing) and HEFT (priority) baselines."""

import numpy as np
import pytest

from repro.baselines.drs import DrsAllocator, erlang_c, mmc_expected_number
from repro.baselines.heft import HeftAllocator, upward_ranks
from repro.sim.metrics import WindowObservation
from repro.workflows import build_ligo_ensemble, build_msd_ensemble

from tests.conftest import make_msd_env


def observation_with(publishes):
    return WindowObservation(
        index=0,
        start_time=0.0,
        end_time=30.0,
        wip=np.zeros(4),
        allocation=np.zeros(4, dtype=np.int64),
        reward=1.0,
        task_publishes=publishes,
    )


class TestErlangC:
    def test_zero_load(self):
        assert erlang_c(3, 0.0) == 0.0

    def test_unstable_load_waits_surely(self):
        assert erlang_c(2, 2.5) == 1.0

    def test_single_server_equals_rho(self):
        # For M/M/1, P(wait) = rho.
        assert erlang_c(1, 0.6) == pytest.approx(0.6)

    def test_more_servers_less_waiting(self):
        assert erlang_c(4, 2.0) < erlang_c(3, 2.0)

    def test_known_value(self):
        # Classic Erlang-C table: m=2, a=1 -> C = 1/3.
        assert erlang_c(2, 1.0) == pytest.approx(1.0 / 3.0)

    def test_invalid(self):
        with pytest.raises(ValueError):
            erlang_c(0, 1.0)
        with pytest.raises(ValueError):
            erlang_c(1, -1.0)


class TestMmcExpectedNumber:
    def test_mm1_formula(self):
        # M/M/1: E[N] = rho / (1 - rho).
        assert mmc_expected_number(0.5, 1.0, 1) == pytest.approx(1.0)

    def test_unstable_is_infinite(self):
        assert mmc_expected_number(3.0, 1.0, 2) == np.inf

    def test_zero_arrivals(self):
        assert mmc_expected_number(0.0, 1.0, 3) == 0.0

    def test_monotone_in_servers(self):
        values = [mmc_expected_number(2.0, 1.0, m) for m in range(3, 8)]
        assert all(a >= b for a, b in zip(values, values[1:]))


class TestDrsAllocator:
    def test_allocation_feasible_and_full_budget_under_load(self):
        env = make_msd_env()
        allocator = DrsAllocator()
        allocator.bind(env)
        observation = observation_with(
            {"Ingest": 60, "Preprocess": 60, "Segment": 30, "Analyze": 30}
        )
        allocation = allocator.allocate(np.zeros(4), observation)
        assert allocation.sum() <= 14
        assert np.all(allocation >= 0)

    def test_heavier_load_gets_more_servers(self):
        env = make_msd_env()
        allocator = DrsAllocator()
        allocator.bind(env)
        observation = observation_with(
            {"Ingest": 10, "Preprocess": 10, "Segment": 120, "Analyze": 10}
        )
        allocation = allocator.allocate(np.zeros(4), observation)
        segment = env.system.ensemble.task_index("Segment")
        assert allocation[segment] == allocation.max()

    def test_overload_falls_back_to_proportional(self):
        env = make_msd_env()
        allocator = DrsAllocator()
        allocator.bind(env)
        observation = observation_with(
            {"Ingest": 9000, "Preprocess": 9000, "Segment": 9000, "Analyze": 9000}
        )
        allocation = allocator.allocate(np.zeros(4), observation)
        assert allocation.sum() == 14  # spends everything

    def test_reset_clears_estimator(self):
        env = make_msd_env()
        allocator = DrsAllocator()
        allocator.bind(env)
        allocator.allocate(np.zeros(4), observation_with({"Ingest": 300}))
        allocator.reset()
        assert np.all(allocator._estimator.rates == 0)

    def test_allocate_before_bind_raises(self):
        with pytest.raises(RuntimeError):
            DrsAllocator().allocate(np.zeros(4))


class TestUpwardRanks:
    def test_chain_rank_accumulates(self):
        ranks = upward_ranks(build_msd_ensemble())
        # Ingest heads every chain: its rank includes downstream stages.
        assert ranks["Ingest"] > ranks["Segment"]
        assert ranks["Ingest"] > ranks["Analyze"]

    def test_exit_task_rank_is_service_time(self):
        ensemble = build_msd_ensemble()
        ranks = upward_ranks(ensemble)
        assert ranks["Segment"] == pytest.approx(
            ensemble.task("Segment").mean_service_time
        )

    def test_all_tasks_ranked(self):
        ensemble = build_ligo_ensemble()
        ranks = upward_ranks(ensemble)
        assert set(ranks) == set(ensemble.task_names())
        assert all(r > 0 for r in ranks.values())


class TestHeftAllocator:
    def test_weights_queue_times_priority(self):
        env = make_msd_env()
        allocator = HeftAllocator()
        allocator.bind(env)
        wip = np.array([50.0, 0.0, 0.0, 0.0])
        allocation = allocator.allocate(wip)
        ingest = env.system.ensemble.task_index("Ingest")
        assert allocation[ingest] == allocation.max()
        assert allocation.sum() == 14

    def test_empty_system_still_spends_budget(self):
        env = make_msd_env()
        allocator = HeftAllocator()
        allocator.bind(env)
        allocation = allocator.allocate(np.zeros(4))
        assert allocation.sum() == 14

    def test_invalid_smoothing(self):
        with pytest.raises(ValueError):
            HeftAllocator(smoothing=-1.0)
