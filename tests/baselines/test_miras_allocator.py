"""Tests for the MIRAS allocator adapter."""

import numpy as np
import pytest

from repro.baselines.miras_alloc import MirasAllocator
from repro.core.agent import MirasAgent
from repro.core.config import MirasConfig, ModelConfig, PolicyConfig
from repro.rl.ddpg import DDPGConfig

from tests.conftest import make_ligo_env, make_msd_env


def tiny_trained_agent(seed=46):
    config = MirasConfig(
        model=ModelConfig(hidden_sizes=(8,), epochs=3),
        policy=PolicyConfig(
            ddpg=DDPGConfig(hidden_sizes=(16,), batch_size=8),
            rollout_length=4,
            rollouts_per_iteration=2,
            patience=2,
        ),
        steps_per_iteration=20,
        reset_interval=10,
        iterations=1,
        eval_steps=3,
    )
    agent = MirasAgent(make_msd_env(seed=seed), config, seed=seed)
    agent.iterate()
    return agent


class TestMirasAllocator:
    def test_wraps_trained_agent(self):
        agent = tiny_trained_agent()
        allocator = MirasAllocator(agent=agent)
        allocator.bind(make_msd_env(seed=99))
        allocation = allocator.allocate(np.array([10.0, 5.0, 3.0, 2.0]))
        assert allocation.sum() <= 14
        assert np.all(allocation >= 0)

    def test_matches_agent_decision(self):
        agent = tiny_trained_agent()
        allocator = MirasAllocator(agent=agent)
        allocator.bind(make_msd_env(seed=99))
        state = np.array([20.0, 8.0, 4.0, 2.0])
        assert np.array_equal(allocator.allocate(state), agent.act(state))

    def test_budget_mismatch_rejected(self):
        agent = tiny_trained_agent()
        allocator = MirasAllocator(agent=agent)
        with pytest.raises(ValueError, match="consumer budget"):
            allocator.prepare(make_msd_env(seed=99, consumer_budget=20))

    def test_allocate_before_prepare_raises(self):
        allocator = MirasAllocator(agent=None)
        allocator.bind(make_msd_env(seed=99))
        with pytest.raises(RuntimeError, match="prepare"):
            allocator.allocate(np.zeros(4))
