"""Tests for the HPA-style autoscaler baseline."""

import numpy as np
import pytest

from repro.baselines.autoscaler import HpaAllocator
from repro.eval.runner import evaluate_allocator, make_env
from repro.sim.metrics import WindowObservation
from repro.sim.system import SystemConfig
from repro.workflows import build_msd_ensemble
from repro.workload.bursts import BurstScenario

from tests.conftest import make_msd_env


def observation(completions=None, publishes=None):
    return WindowObservation(
        index=0,
        start_time=0.0,
        end_time=30.0,
        wip=np.zeros(4),
        allocation=np.zeros(4, dtype=np.int64),
        reward=1.0,
        task_completions=completions or {},
        task_publishes=publishes or {},
    )


class TestHpaAllocator:
    def test_cold_start_is_uniform(self):
        allocator = HpaAllocator()
        allocator.bind(make_msd_env())
        allocation = allocator.allocate(np.zeros(4))
        assert allocation.sum() == 14
        assert allocation.max() - allocation.min() <= 1

    def test_scales_up_overloaded_service(self):
        env = make_msd_env()
        allocator = HpaAllocator(target_utilization=0.6)
        allocator.bind(env)
        allocator.allocate(np.zeros(4))  # cold start
        # Segment (6 s tasks) processed 15 completions with few replicas
        # and has a deep queue -> wants more.
        wip = np.array([0.0, 0.0, 80.0, 0.0])
        allocation = allocator.allocate(
            wip, observation(completions={"Segment": 15})
        )
        segment = env.system.ensemble.task_index("Segment")
        assert allocation[segment] == allocation.max()
        assert allocation.sum() <= 14

    def test_idle_services_shrink_toward_min(self):
        env = make_msd_env()
        allocator = HpaAllocator(min_replicas=1)
        allocator.bind(env)
        allocator.allocate(np.zeros(4))
        for _ in range(4):
            allocation = allocator.allocate(np.zeros(4), observation())
        assert np.all(allocation >= 1)
        assert allocation.sum() <= 14

    def test_budget_respected_under_pressure_everywhere(self):
        env = make_msd_env()
        allocator = HpaAllocator()
        allocator.bind(env)
        allocator.allocate(np.zeros(4))
        allocation = allocator.allocate(
            np.full(4, 500.0),
            observation(
                completions={n: 50 for n in env.system.ensemble.task_names()}
            ),
        )
        assert allocation.sum() <= 14

    def test_reset_clears_state(self):
        allocator = HpaAllocator()
        allocator.bind(make_msd_env())
        allocator.allocate(np.zeros(4))
        allocator.reset()
        assert allocator._previous is None

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"target_utilization": 0.0},
            {"target_utilization": 1.5},
            {"min_replicas": -1},
            {"scale_up_limit": 1.0},
        ],
    )
    def test_invalid_args(self, kwargs):
        with pytest.raises(ValueError):
            HpaAllocator(**kwargs)

    def test_drains_a_burst_end_to_end(self):
        scenario = BurstScenario(
            "hpa-burst", {"Type1": 60, "Type3": 30}, {"Type1": 0.05}
        )
        env = make_env(
            build_msd_ensemble(),
            config=SystemConfig(consumer_budget=14),
            seed=81,
            background_rates=dict(scenario.background_rates),
        )
        result = evaluate_allocator(HpaAllocator(), env, scenario, steps=25)
        assert result.wip_series()[-1] < result.wip_series()[0]
        assert result.total_completions() > 40
        assert env.system.conservation_ok()
