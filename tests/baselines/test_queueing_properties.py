"""Property-based tests of the queueing-theory kernels used by DRS."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines.drs import erlang_c, mmc_expected_number


class TestErlangCProperties:
    @given(
        servers=st.integers(1, 50),
        load_fraction=st.floats(0.01, 0.99),
    )
    @settings(max_examples=200, deadline=None)
    def test_is_a_probability(self, servers, load_fraction):
        offered = servers * load_fraction
        value = erlang_c(servers, offered)
        assert 0.0 <= value <= 1.0

    @given(
        servers=st.integers(1, 30),
        load_fraction=st.floats(0.05, 0.95),
    )
    @settings(max_examples=100, deadline=None)
    def test_monotone_decreasing_in_servers(self, servers, load_fraction):
        offered = servers * load_fraction
        more_servers = erlang_c(servers + 1, offered)
        fewer_servers = erlang_c(servers, offered)
        assert more_servers <= fewer_servers + 1e-12

    @given(
        servers=st.integers(1, 30),
        low=st.floats(0.05, 0.45),
        delta=st.floats(0.01, 0.45),
    )
    @settings(max_examples=100, deadline=None)
    def test_monotone_increasing_in_load(self, servers, low, delta):
        a1 = servers * low
        a2 = servers * (low + delta)
        assert erlang_c(servers, a1) <= erlang_c(servers, a2) + 1e-12

    def test_mm1_closed_form(self):
        # M/M/1: C(1, rho) = rho for rho in (0, 1).
        for rho in (0.1, 0.5, 0.9):
            assert erlang_c(1, rho) == pytest.approx(rho)


class TestExpectedNumberProperties:
    @given(
        servers=st.integers(1, 30),
        load_fraction=st.floats(0.05, 0.9),
        service_rate=st.floats(0.1, 10.0),
    )
    @settings(max_examples=150, deadline=None)
    def test_at_least_the_offered_load(self, servers, load_fraction, service_rate):
        """E[N] >= a: in-service population alone equals the offered load."""
        arrival = servers * load_fraction * service_rate
        offered = arrival / service_rate
        value = mmc_expected_number(arrival, service_rate, servers)
        assert value >= offered - 1e-9

    @given(
        servers=st.integers(1, 20),
        load_fraction=st.floats(0.1, 0.85),
    )
    @settings(max_examples=100, deadline=None)
    def test_decreasing_in_servers(self, servers, load_fraction):
        arrival = servers * load_fraction  # mu = 1
        with_more = mmc_expected_number(arrival, 1.0, servers + 1)
        with_fewer = mmc_expected_number(arrival, 1.0, servers)
        assert with_more <= with_fewer + 1e-9
