"""Tests for the MONAD (MPC) and model-free DDPG baselines."""

import numpy as np
import pytest

from repro.baselines.modelfree import ModelFreeDDPGAllocator
from repro.baselines.monad import LinearPerformanceModel, MonadAllocator
from repro.baselines.static_alloc import (
    ProportionalToWipAllocator,
    UniformAllocator,
)
from repro.core.dataset import TransitionDataset
from repro.rl.ddpg import DDPGConfig

from tests.conftest import make_msd_env


def linear_dataset(A, B, c, n=300, seed=0, state_dim=2, action_dim=2):
    rng = np.random.default_rng(seed)
    dataset = TransitionDataset(state_dim, action_dim)
    for _ in range(n):
        w = rng.uniform(0, 50, state_dim)
        m = rng.uniform(0, 5, action_dim)
        dataset.add(w, m, A @ w + B @ m + c)
    return dataset


class TestLinearPerformanceModel:
    def test_recovers_known_system(self):
        A = np.array([[0.9, 0.1], [0.0, 0.8]])
        B = np.array([[-2.0, 0.0], [0.0, -1.5]])
        c = np.array([3.0, 1.0])
        model = LinearPerformanceModel(2, 2, ridge=1e-6)
        mse = model.fit(linear_dataset(A, B, c))
        assert mse < 1e-10
        assert np.allclose(model.A, A, atol=1e-4)
        assert np.allclose(model.B, B, atol=1e-4)
        assert np.allclose(model.c, c, atol=1e-3)

    def test_predict(self):
        model = LinearPerformanceModel(2, 2)
        model.A = np.eye(2)
        model.B = -np.eye(2)
        model.c = np.zeros(2)
        out = model.predict(np.array([5.0, 3.0]), np.array([1.0, 1.0]))
        assert np.allclose(out, [4.0, 2.0])

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            LinearPerformanceModel(0, 2)
        with pytest.raises(ValueError):
            LinearPerformanceModel(2, 2, ridge=-1.0)


class TestMonadAllocator:
    def test_prepare_collects_and_fits(self):
        env = make_msd_env(seed=21)
        allocator = MonadAllocator(training_steps=30)
        allocator.prepare(env)
        assert allocator.model.fitted

    def test_fit_from_dataset(self):
        env = make_msd_env(seed=22)
        dataset = TransitionDataset(4, 4)
        rng = np.random.default_rng(0)
        for _ in range(50):
            dataset.add(
                rng.uniform(0, 50, 4), rng.uniform(0, 4, 4), rng.uniform(0, 50, 4)
            )
        allocator = MonadAllocator()
        allocator.fit_from_dataset(env, dataset)
        assert allocator.model.fitted

    def test_allocation_feasible(self):
        env = make_msd_env(seed=23)
        allocator = MonadAllocator(training_steps=30)
        allocator.prepare(env)
        for wip in [np.zeros(4), np.array([100.0, 50, 25, 10])]:
            allocation = allocator.allocate(wip)
            assert allocation.sum() <= 14
            assert np.all(allocation >= 0)

    def test_mpc_targets_the_loaded_service(self):
        """With diagonal drain dynamics, MPC should spend more on the
        service with the largest predicted backlog."""
        env = make_msd_env(seed=24)
        allocator = MonadAllocator()
        allocator.bind(env)
        model = LinearPerformanceModel(4, 4)
        model.A = np.eye(4)
        model.B = -5.0 * np.eye(4)
        model.c = np.zeros(4)
        model.fitted = True
        allocator.model = model
        allocation = allocator.allocate(np.array([200.0, 10.0, 10.0, 10.0]))
        assert allocation[0] == allocation.max()

    def test_allocate_before_fit_raises(self):
        allocator = MonadAllocator()
        allocator.bind(make_msd_env())
        with pytest.raises(RuntimeError):
            allocator.allocate(np.zeros(4))

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            MonadAllocator(horizon=0)
        with pytest.raises(ValueError):
            MonadAllocator(gradient_steps=0)


class TestModelFreeDDPG:
    def test_trains_and_allocates(self):
        env = make_msd_env(seed=25)
        allocator = ModelFreeDDPGAllocator(
            training_steps=30,
            reset_interval=10,
            config=DDPGConfig(hidden_sizes=(16, 16), batch_size=8),
        )
        allocator.prepare(env)
        assert len(allocator.episode_returns) >= 2
        allocation = allocator.allocate(np.array([10.0, 5.0, 3.0, 2.0]))
        assert allocation.sum() <= 14
        assert np.all(allocation >= 0)

    def test_allocate_before_prepare_raises(self):
        allocator = ModelFreeDDPGAllocator()
        allocator.bind(make_msd_env())
        with pytest.raises(RuntimeError):
            allocator.allocate(np.zeros(4))

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            ModelFreeDDPGAllocator(training_steps=0)
        with pytest.raises(ValueError):
            ModelFreeDDPGAllocator(burst_probability=2.0)


class TestStaticAllocators:
    def test_uniform_spends_budget(self):
        allocator = UniformAllocator()
        allocator.bind(make_msd_env())
        allocation = allocator.allocate(np.zeros(4))
        assert allocation.sum() == 14
        assert allocation.max() - allocation.min() <= 1

    def test_wip_proportional_tracks_queues(self):
        allocator = ProportionalToWipAllocator()
        allocator.bind(make_msd_env())
        allocation = allocator.allocate(np.array([90.0, 5.0, 3.0, 2.0]))
        assert allocation[0] == allocation.max()
        assert allocation.sum() == 14

    def test_wip_proportional_invalid_smoothing(self):
        with pytest.raises(ValueError):
            ProportionalToWipAllocator(smoothing=-0.5)
