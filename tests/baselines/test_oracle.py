"""Tests for the clairvoyant oracle allocator."""

import numpy as np
import pytest

from repro.baselines.oracle import OracleAllocator
from repro.baselines.static_alloc import UniformAllocator
from repro.eval.runner import evaluate_allocator, make_env
from repro.sim.system import SystemConfig
from repro.workflows import build_msd_ensemble
from repro.workload.bursts import BurstScenario

from tests.conftest import make_msd_env


class TestOracle:
    def test_allocation_feasible(self):
        env = make_msd_env(seed=71)
        env.system.inject_burst({"Type1": 50, "Type3": 20})
        allocator = OracleAllocator()
        allocator.bind(env)
        allocation = allocator.allocate(env.observe())
        assert allocation.sum() <= 14
        assert np.all(allocation >= 0)

    def test_targets_loaded_queue(self):
        env = make_msd_env(seed=72)
        env.system.inject_burst({"Type1": 100})  # all work starts at Ingest
        allocator = OracleAllocator()
        allocator.bind(env)
        allocation = allocator.allocate(env.observe())
        ingest = env.system.ensemble.task_index("Ingest")
        assert allocation[ingest] == allocation.max()

    def test_empty_system_uniformish(self):
        env = make_msd_env(seed=73)
        allocator = OracleAllocator()
        allocator.bind(env)
        allocation = allocator.allocate(np.zeros(4))
        assert allocation.sum() == 14  # falls back to uniform apportionment

    def test_oracle_beats_uniform_on_skewed_burst(self):
        """Full information should dominate a static split on a burst that
        loads one pipeline."""
        scenario = BurstScenario(
            "skewed", {"Type1": 120}, {"Type1": 0.02}
        )
        results = {}
        for allocator in (OracleAllocator(), UniformAllocator()):
            env = make_env(
                build_msd_ensemble(),
                config=SystemConfig(consumer_budget=14),
                seed=74,
                background_rates=dict(scenario.background_rates),
            )
            results[allocator.name] = evaluate_allocator(
                allocator, env, scenario, steps=25
            )
        assert (
            results["oracle"].aggregated_reward()
            > results["uniform"].aggregated_reward()
        )
