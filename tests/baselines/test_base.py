"""Tests for the allocator interface, apportionment, and rate estimators."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines.base import (
    Allocator,
    TaskArrivalRateEstimator,
    TaskInflowEstimator,
    largest_remainder_allocation,
)
from repro.sim.metrics import WindowObservation

from tests.conftest import make_msd_env


def make_observation(publishes=None, completions=None):
    return WindowObservation(
        index=0,
        start_time=0.0,
        end_time=30.0,
        wip=np.zeros(4),
        allocation=np.zeros(4, dtype=np.int64),
        reward=1.0,
        task_publishes=publishes or {},
        task_completions=completions or {},
    )


class TestLargestRemainder:
    def test_sums_to_budget(self):
        allocation = largest_remainder_allocation(np.array([1.0, 2.0, 3.0]), 10)
        assert allocation.sum() == 10

    def test_proportionality(self):
        allocation = largest_remainder_allocation(np.array([1.0, 1.0, 2.0]), 8)
        assert allocation.tolist() == [2, 2, 4]

    def test_zero_weights_fall_back_to_uniform(self):
        allocation = largest_remainder_allocation(np.zeros(4), 8)
        assert allocation.tolist() == [2, 2, 2, 2]

    def test_negative_weights_clipped(self):
        allocation = largest_remainder_allocation(np.array([-5.0, 1.0]), 4)
        assert allocation.tolist() == [0, 4]

    def test_zero_budget(self):
        assert largest_remainder_allocation(np.ones(3), 0).sum() == 0

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            largest_remainder_allocation(np.ones(3), -1)

    @given(
        st.lists(st.floats(0, 100), min_size=1, max_size=12),
        st.integers(0, 50),
    )
    @settings(max_examples=100, deadline=None)
    def test_always_exact_and_non_negative(self, weights, budget):
        allocation = largest_remainder_allocation(np.array(weights), budget)
        assert int(allocation.sum()) == budget
        assert np.all(allocation >= 0)


class TestTaskArrivalRateEstimator:
    def test_first_window_sets_rate(self):
        estimator = TaskArrivalRateEstimator(2, window_length=30.0)
        rates = estimator.update(
            make_observation({"A": 30, "B": 60}), ("A", "B")
        )
        assert rates[0] == pytest.approx(1.0)
        assert rates[1] == pytest.approx(2.0)

    def test_ewma_smooths(self):
        estimator = TaskArrivalRateEstimator(1, window_length=30.0, alpha=0.5)
        estimator.update(make_observation({"A": 30}), ("A",))
        rates = estimator.update(make_observation({"A": 90}), ("A",))
        assert rates[0] == pytest.approx(0.5 * 3.0 + 0.5 * 1.0)

    def test_rate_decays_after_burst(self):
        """The DRS-unresponsiveness mechanism: backlog is invisible."""
        estimator = TaskArrivalRateEstimator(1, window_length=30.0, alpha=0.3)
        estimator.update(make_observation({"A": 900}), ("A",))  # burst
        for _ in range(10):
            rates = estimator.update(make_observation({"A": 3}), ("A",))
        assert rates[0] < 1.0  # decayed despite any remaining backlog

    def test_reset(self):
        estimator = TaskArrivalRateEstimator(1, window_length=30.0)
        estimator.update(make_observation({"A": 30}), ("A",))
        estimator.reset()
        assert estimator.rates[0] == 0.0

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            TaskArrivalRateEstimator(0, 30.0)
        with pytest.raises(ValueError):
            TaskArrivalRateEstimator(1, 0.0)
        with pytest.raises(ValueError):
            TaskArrivalRateEstimator(1, 30.0, alpha=0.0)


class TestTaskInflowEstimator:
    def test_uses_completions_plus_wip_delta(self):
        estimator = TaskInflowEstimator(1, window_length=30.0, alpha=1.0)
        estimator.update(
            np.array([10.0]), make_observation(completions={"A": 5}), ("A",)
        )
        rates = estimator.update(
            np.array([16.0]), make_observation(completions={"A": 6}), ("A",)
        )
        # inflow = 6 completed + (16 - 10) queued growth = 12 over 30 s.
        assert rates[0] == pytest.approx(12 / 30)

    def test_negative_inflow_clamped(self):
        estimator = TaskInflowEstimator(1, window_length=30.0, alpha=1.0)
        estimator.update(np.array([10.0]), make_observation(), ("A",))
        rates = estimator.update(np.array([0.0]), make_observation(), ("A",))
        assert rates[0] == 0.0


class TestAllocatorBudgetGuard:
    def test_check_rejects_over_budget(self):
        class Bad(Allocator):
            name = "bad"

            def allocate(self, wip, observation=None):
                return self._check(np.full(self.num_services, 100))

        allocator = Bad()
        allocator.bind(make_msd_env())
        with pytest.raises(RuntimeError, match="infeasible"):
            allocator.allocate(np.zeros(4))
