"""Tests for the Dense layer and loss functions."""

import numpy as np
import pytest

from repro.nn.layers import Dense
from repro.nn.losses import HuberLoss, MeanSquaredError, get_loss
from repro.utils.rng import RngStream


@pytest.fixture
def layer_rng():
    return RngStream("layer", np.random.SeedSequence(7))


class TestDenseForward:
    def test_output_shape(self, layer_rng):
        layer = Dense(3, 5, rng=layer_rng)
        out = layer.forward(np.zeros((8, 3)))
        assert out.shape == (8, 5)

    def test_rejects_1d_input(self, layer_rng):
        layer = Dense(3, 5, rng=layer_rng)
        with pytest.raises(ValueError, match="2-D"):
            layer.forward(np.zeros(3))

    def test_aux_input_concatenated(self, layer_rng):
        layer = Dense(3, 4, aux_dim=2, activation="linear", rng=layer_rng)
        x = np.ones((2, 3))
        aux = np.ones((2, 2))
        out = layer.forward(x, aux)
        expected = np.concatenate([x, aux], axis=1) @ layer.weights + layer.bias
        assert np.allclose(out, expected)

    def test_missing_aux_raises(self, layer_rng):
        layer = Dense(3, 4, aux_dim=2, rng=layer_rng)
        with pytest.raises(ValueError, match="auxiliary"):
            layer.forward(np.zeros((2, 3)))

    def test_unexpected_aux_raises(self, layer_rng):
        layer = Dense(3, 4, rng=layer_rng)
        with pytest.raises(ValueError, match="does not accept"):
            layer.forward(np.zeros((2, 3)), np.zeros((2, 2)))

    def test_invalid_dims_raise(self, layer_rng):
        with pytest.raises(ValueError):
            Dense(0, 4, rng=layer_rng)
        with pytest.raises(ValueError):
            Dense(3, 4, aux_dim=-1, rng=layer_rng)
        with pytest.raises(ValueError):
            Dense(3, 4, init="unknown", rng=layer_rng)


class TestDenseBackward:
    def test_backward_before_forward_raises(self, layer_rng):
        layer = Dense(3, 4, rng=layer_rng)
        with pytest.raises(RuntimeError):
            layer.backward(np.zeros((2, 4)))

    def test_weight_gradient_matches_numerical(self, layer_rng):
        layer = Dense(3, 2, activation="tanh", rng=layer_rng)
        x = layer_rng.normal(size=(4, 3))
        grad_y = layer_rng.normal(size=(4, 2))

        layer.forward(x)
        layer.backward(grad_y)
        analytic = layer.grad_weights.copy()

        eps = 1e-6
        for i in range(3):
            for j in range(2):
                layer.weights[i, j] += eps
                up = float(np.sum(grad_y * layer.forward(x)))
                layer.weights[i, j] -= 2 * eps
                down = float(np.sum(grad_y * layer.forward(x)))
                layer.weights[i, j] += eps
                assert analytic[i, j] == pytest.approx(
                    (up - down) / (2 * eps), abs=1e-5
                )

    def test_aux_gradient_split(self, layer_rng):
        layer = Dense(3, 2, aux_dim=2, activation="linear", rng=layer_rng)
        x = layer_rng.normal(size=(4, 3))
        aux = layer_rng.normal(size=(4, 2))
        layer.forward(x, aux)
        grad_x, grad_aux = layer.backward(np.ones((4, 2)))
        assert grad_x.shape == (4, 3)
        assert grad_aux.shape == (4, 2)


class TestFlatParams:
    def test_roundtrip(self, layer_rng):
        layer = Dense(3, 4, rng=layer_rng)
        flat = layer.get_flat()
        assert flat.shape == (layer.num_params,)
        layer.set_flat(flat * 2.0)
        assert np.allclose(layer.get_flat(), flat * 2.0)

    def test_wrong_size_rejected(self, layer_rng):
        layer = Dense(3, 4, rng=layer_rng)
        with pytest.raises(ValueError):
            layer.set_flat(np.zeros(layer.num_params + 1))

    def test_state_dict_roundtrip(self, layer_rng):
        layer = Dense(3, 4, rng=layer_rng)
        state = layer.state_dict()
        layer.weights[:] = 0.0
        layer.load_state_dict(state)
        assert np.allclose(layer.weights, state["weights"])


class TestLosses:
    def test_mse_value_and_gradient(self):
        loss = MeanSquaredError()
        pred = np.array([[1.0, 2.0]])
        target = np.array([[0.0, 0.0]])
        value, grad = loss(pred, target)
        assert value == pytest.approx((1 + 4) / 2)
        assert np.allclose(grad, 2 * pred / 2)

    def test_huber_quadratic_region_matches_half_mse(self):
        loss = HuberLoss(delta=10.0)
        pred = np.array([[0.5, -0.5]])
        target = np.zeros((1, 2))
        value, _ = loss(pred, target)
        assert value == pytest.approx(0.5 * (0.25 + 0.25) / 2)

    def test_huber_linear_region_clips_gradient(self):
        loss = HuberLoss(delta=1.0)
        pred = np.array([[100.0]])
        target = np.array([[0.0]])
        _, grad = loss(pred, target)
        assert grad[0, 0] == pytest.approx(1.0)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            MeanSquaredError()(np.zeros((2, 2)), np.zeros((2, 3)))

    def test_registry(self):
        assert get_loss("mse").name == "mse"
        assert get_loss("huber").name == "huber"
        with pytest.raises(ValueError):
            get_loss("l1")

    def test_huber_rejects_bad_delta(self):
        with pytest.raises(ValueError):
            HuberLoss(delta=0.0)
