"""Tests for activation functions (forward values and exact gradients)."""

import numpy as np
import pytest

from repro.nn.activations import (
    LeakyReLU,
    Linear,
    ReLU,
    Sigmoid,
    Softmax,
    Tanh,
    get_activation,
)


def numeric_jvp(activation, z, grad_y, eps=1e-6):
    """Numerical gradient of sum(grad_y * f(z)) w.r.t. z."""
    out = np.zeros_like(z)
    it = np.nditer(z, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        zp = z.copy()
        zp[idx] += eps
        zm = z.copy()
        zm[idx] -= eps
        fp = float(np.sum(grad_y * activation.forward(zp)))
        fm = float(np.sum(grad_y * activation.forward(zm)))
        out[idx] = (fp - fm) / (2 * eps)
        it.iternext()
    return out


ALL_ACTIVATIONS = [ReLU(), LeakyReLU(0.1), Tanh(), Sigmoid(), Softmax(), Linear()]


class TestForwardValues:
    def test_relu_clamps_negative(self):
        z = np.array([[-1.0, 0.0, 2.0]])
        assert np.array_equal(ReLU().forward(z), [[0.0, 0.0, 2.0]])

    def test_leaky_relu_slope(self):
        z = np.array([[-10.0, 10.0]])
        assert np.allclose(LeakyReLU(0.1).forward(z), [[-1.0, 10.0]])

    def test_sigmoid_range_and_midpoint(self):
        z = np.array([[-100.0, 0.0, 100.0]])
        out = Sigmoid().forward(z)
        assert out[0, 0] == pytest.approx(0.0, abs=1e-10)
        assert out[0, 1] == pytest.approx(0.5)
        assert out[0, 2] == pytest.approx(1.0, abs=1e-10)

    def test_softmax_rows_sum_to_one(self):
        z = np.array([[1.0, 2.0, 3.0], [100.0, 100.0, 100.0]])
        out = Softmax().forward(z)
        assert np.allclose(out.sum(axis=1), 1.0)
        assert np.allclose(out[1], [1 / 3, 1 / 3, 1 / 3])

    def test_softmax_is_shift_invariant_and_stable(self):
        z = np.array([[1000.0, 1001.0, 1002.0]])
        out = Softmax().forward(z)
        assert np.all(np.isfinite(out))
        small = Softmax().forward(z - 1000.0)
        assert np.allclose(out, small)

    def test_linear_is_identity(self):
        z = np.array([[1.0, -2.0]])
        assert np.array_equal(Linear().forward(z), z)


class TestBackwardGradients:
    @pytest.mark.parametrize(
        "activation", ALL_ACTIVATIONS, ids=lambda a: a.name
    )
    def test_backward_matches_numerical(self, activation, rng):
        z = rng.normal(size=(3, 4)) + 0.01  # avoid ReLU kinks at exactly 0
        grad_y = rng.normal(size=(3, 4))
        y = activation.forward(z)
        analytic = activation.backward(grad_y, z, y)
        numeric = numeric_jvp(activation, z, grad_y)
        assert np.allclose(analytic, numeric, atol=1e-5)


class TestRegistry:
    @pytest.mark.parametrize(
        "name", ["relu", "leaky_relu", "tanh", "sigmoid", "softmax", "linear"]
    )
    def test_lookup_by_name(self, name):
        assert get_activation(name).name == name

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown activation"):
            get_activation("gelu")

    def test_leaky_relu_rejects_negative_slope(self):
        with pytest.raises(ValueError):
            LeakyReLU(-0.1)
