"""Tests for MLP save/load."""

import numpy as np
import pytest

from repro.nn import MLP
from repro.nn.serialization import load_mlp, save_mlp
from repro.utils.rng import RngStream


@pytest.fixture
def ser_rng():
    return RngStream("ser", np.random.SeedSequence(4))


class TestRoundtrip:
    def test_plain_network(self, tmp_path, ser_rng):
        net = MLP([3, 16, 2], rng=ser_rng)
        path = save_mlp(tmp_path / "net", net)
        loaded = load_mlp(path)
        x = ser_rng.normal(size=(5, 3))
        assert np.allclose(loaded.forward(x), net.forward(x))

    def test_softmax_network(self, tmp_path, ser_rng):
        net = MLP(
            [4, 8, 4], output_activation="softmax", rng=ser_rng
        )
        loaded = load_mlp(save_mlp(tmp_path / "actor", net))
        assert loaded.output_activation == "softmax"
        x = ser_rng.uniform(size=(3, 4))
        assert np.allclose(loaded.forward(x), net.forward(x))

    def test_aux_network(self, tmp_path, ser_rng):
        net = MLP([4, 8, 1], aux_dim=2, aux_layer=1, rng=ser_rng)
        loaded = load_mlp(save_mlp(tmp_path / "critic", net))
        x = ser_rng.normal(size=(3, 4))
        aux = ser_rng.normal(size=(3, 2))
        assert np.allclose(loaded.forward(x, aux), net.forward(x, aux))

    def test_npz_suffix_added(self, tmp_path, ser_rng):
        net = MLP([2, 4, 1], rng=ser_rng)
        path = save_mlp(tmp_path / "model", net)
        assert path.suffix == ".npz"
        assert path.exists()

    def test_non_mlp_archive_rejected(self, tmp_path):
        path = tmp_path / "other.npz"
        np.savez(path, foo=np.zeros(3))
        with pytest.raises(ValueError, match="not a saved MLP"):
            load_mlp(path)
