"""Tests for weight initialisers."""

import numpy as np
import pytest

from repro.nn.initializers import (
    constant_init,
    glorot_uniform,
    he_uniform,
    uniform_init,
)
from repro.utils.rng import RngStream


@pytest.fixture
def init_rng():
    return RngStream("init", np.random.SeedSequence(9))


class TestGlorot:
    def test_shape_and_bounds(self, init_rng):
        weights = glorot_uniform(100, 50, init_rng)
        assert weights.shape == (100, 50)
        limit = np.sqrt(6.0 / 150)
        assert np.all(np.abs(weights) <= limit)

    def test_variance_scales_with_fan(self, init_rng):
        small_fan = glorot_uniform(10, 10, init_rng.fork("a"))
        large_fan = glorot_uniform(1000, 1000, init_rng.fork("b"))
        assert small_fan.std() > large_fan.std()


class TestHe:
    def test_bounds_depend_on_fan_in_only(self, init_rng):
        weights = he_uniform(64, 8, init_rng)
        limit = np.sqrt(6.0 / 64)
        assert np.all(np.abs(weights) <= limit)
        assert weights.std() > 0


class TestSmallUniform:
    def test_custom_limit(self, init_rng):
        weights = uniform_init(20, 20, init_rng, limit=1e-3)
        assert np.all(np.abs(weights) <= 1e-3)
        assert np.any(weights != 0)


class TestConstant:
    def test_fill_value(self):
        weights = constant_init(3, 4, value=0.5)
        assert weights.shape == (3, 4)
        assert np.all(weights == 0.5)

    def test_default_zero(self):
        assert np.all(constant_init(2, 2) == 0.0)
