"""Tests for SGD and Adam optimisers."""

import numpy as np
import pytest

from repro.nn.optimizers import SGD, Adam, get_optimizer


def quadratic_descent(optimizer, start, steps=200):
    """Minimise f(x) = ||x||^2 / 2 from ``start``; returns final point."""
    x = np.array(start, dtype=np.float64)
    for _ in range(steps):
        optimizer.step([(x, x.copy())])  # grad of ||x||^2/2 is x
    return x


class TestSGD:
    def test_converges_on_quadratic(self):
        x = quadratic_descent(SGD(learning_rate=0.1), [5.0, -3.0])
        assert np.linalg.norm(x) < 1e-3

    def test_momentum_converges(self):
        x = quadratic_descent(SGD(learning_rate=0.05, momentum=0.9), [5.0, -3.0])
        assert np.linalg.norm(x) < 1e-3

    def test_plain_step_is_lr_times_grad(self):
        opt = SGD(learning_rate=0.5)
        x = np.array([1.0])
        opt.step([(x, np.array([2.0]))])
        assert x[0] == pytest.approx(0.0)

    def test_rejects_bad_momentum(self):
        with pytest.raises(ValueError):
            SGD(momentum=1.0)

    def test_rejects_bad_learning_rate(self):
        with pytest.raises(ValueError):
            SGD(learning_rate=0.0)


class TestAdam:
    def test_converges_on_quadratic(self):
        x = quadratic_descent(Adam(learning_rate=0.1), [5.0, -3.0], steps=500)
        assert np.linalg.norm(x) < 1e-2

    def test_first_step_is_learning_rate_sized(self):
        opt = Adam(learning_rate=0.01)
        x = np.array([1.0])
        opt.step([(x, np.array([100.0]))])
        # Bias-corrected Adam's first step is ~lr regardless of grad scale.
        assert x[0] == pytest.approx(1.0 - 0.01, abs=1e-6)

    def test_weight_decay_shrinks_params_without_gradient(self):
        opt = Adam(learning_rate=0.1, weight_decay=0.5)
        x = np.array([1.0])
        opt.step([(x, np.array([0.0]))])
        assert x[0] < 1.0

    def test_state_reset(self):
        opt = Adam()
        x = np.array([1.0])
        opt.step([(x, np.array([1.0]))])
        assert opt.iterations == 1
        opt.reset()
        assert opt.iterations == 0

    @pytest.mark.parametrize(
        "kwargs",
        [{"beta1": 1.0}, {"beta2": -0.1}, {"epsilon": 0}, {"weight_decay": -1}],
    )
    def test_rejects_bad_hyperparams(self, kwargs):
        with pytest.raises(ValueError):
            Adam(**kwargs)


class TestGradClip:
    def test_global_norm_clipping(self):
        opt = SGD(learning_rate=1.0, grad_clip=1.0)
        x = np.array([0.0, 0.0])
        opt.step([(x, np.array([30.0, 40.0]))])  # norm 50 -> scaled to 1
        assert np.linalg.norm(x) == pytest.approx(1.0)

    def test_no_clip_below_threshold(self):
        opt = SGD(learning_rate=1.0, grad_clip=100.0)
        x = np.array([0.0])
        opt.step([(x, np.array([3.0]))])
        assert x[0] == pytest.approx(-3.0)


class TestShapeChecks:
    def test_param_grad_shape_mismatch(self):
        opt = SGD()
        with pytest.raises(ValueError, match="mismatch"):
            opt.step([(np.zeros(3), np.zeros(4))])


class TestRegistry:
    def test_lookup(self):
        assert isinstance(get_optimizer("sgd"), SGD)
        assert isinstance(get_optimizer("adam", learning_rate=0.1), Adam)

    def test_unknown(self):
        with pytest.raises(ValueError):
            get_optimizer("rmsprop")
