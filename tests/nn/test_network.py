"""Tests for the MLP container: gradients, aux inputs, flat params, targets."""

import numpy as np
import pytest

from repro.nn import MLP, Adam, MeanSquaredError, soft_update
from repro.utils.rng import RngStream


@pytest.fixture
def net_rng():
    return RngStream("net", np.random.SeedSequence(11))


class TestConstruction:
    def test_requires_two_layer_sizes(self, net_rng):
        with pytest.raises(ValueError):
            MLP([4], rng=net_rng)

    def test_aux_layer_bounds(self, net_rng):
        with pytest.raises(ValueError):
            MLP([4, 8, 2], aux_dim=2, aux_layer=5, rng=net_rng)

    def test_dims(self, net_rng):
        net = MLP([4, 8, 2], rng=net_rng)
        assert net.in_dim == 4
        assert net.out_dim == 2
        assert len(net.layers) == 2


class TestForward:
    def test_batch_shape(self, net_rng):
        net = MLP([4, 8, 2], rng=net_rng)
        assert net.forward(np.zeros((5, 4))).shape == (5, 2)

    def test_predict_single_returns_1d(self, net_rng):
        net = MLP([4, 8, 2], rng=net_rng)
        assert net.predict(np.zeros(4)).shape == (2,)

    def test_softmax_output_is_distribution(self, net_rng):
        net = MLP([4, 8, 3], output_activation="softmax", rng=net_rng)
        out = net.forward(net_rng.normal(size=(10, 4)))
        assert np.allclose(out.sum(axis=1), 1.0)
        assert np.all(out >= 0)


class TestGradients:
    def test_full_parameter_gradient_check(self, net_rng):
        net = MLP([3, 6, 6, 2], aux_dim=2, aux_layer=1, rng=net_rng)
        x = net_rng.normal(size=(4, 3))
        aux = net_rng.normal(size=(4, 2))
        y = net_rng.normal(size=(4, 2))
        loss = MeanSquaredError()

        value, grad = loss(net.forward(x, aux), y)
        net.backward(grad)
        analytic = np.concatenate(
            [
                np.concatenate([l.grad_weights.ravel(), l.grad_bias.ravel()])
                for l in net.layers
            ]
        )

        flat0 = net.get_flat()
        eps = 1e-6
        indices = net_rng.integers(0, flat0.size, size=40)
        for i in indices:
            for sign, store in ((+1, "up"), (-1, "down")):
                pass
            fp = flat0.copy()
            fp[i] += eps
            net.set_flat(fp)
            up, _ = loss(net.forward(x, aux), y)
            fm = flat0.copy()
            fm[i] -= eps
            net.set_flat(fm)
            down, _ = loss(net.forward(x, aux), y)
            net.set_flat(flat0)
            assert analytic[i] == pytest.approx(
                (up - down) / (2 * eps), abs=1e-6
            )

    def test_input_gradient_matches_numerical(self, net_rng):
        net = MLP([3, 8, 1], rng=net_rng)
        x = net_rng.normal(size=(2, 3))
        analytic = net.input_gradient(x)
        eps = 1e-6
        for i in range(2):
            for j in range(3):
                xp = x.copy()
                xp[i, j] += eps
                xm = x.copy()
                xm[i, j] -= eps
                numeric = (
                    float(net.forward(xp).sum()) - float(net.forward(xm).sum())
                ) / (2 * eps)
                assert analytic[i, j] == pytest.approx(numeric, abs=1e-6)

    def test_aux_gradient_requires_aux_network(self, net_rng):
        net = MLP([3, 8, 1], rng=net_rng)
        with pytest.raises(ValueError, match="no auxiliary"):
            net.input_gradient(np.zeros((1, 3)), wrt="aux")

    def test_invalid_wrt(self, net_rng):
        net = MLP([3, 8, 1], rng=net_rng)
        with pytest.raises(ValueError, match="wrt"):
            net.input_gradient(np.zeros((1, 3)), wrt="weights")


class TestTraining:
    def test_fits_linear_function(self, net_rng):
        net = MLP([2, 32, 1], rng=net_rng)
        opt = Adam(5e-3)
        x = net_rng.normal(size=(512, 2))
        y = (2 * x[:, :1] - x[:, 1:]) * 0.5
        for _ in range(400):
            net.train_batch(x, y, optimizer=opt)
        loss, _ = MeanSquaredError()(net.forward(x), y)
        assert loss < 1e-2


class TestFlatParams:
    def test_roundtrip_preserves_predictions(self, net_rng):
        net = MLP([3, 8, 2], rng=net_rng)
        x = net_rng.normal(size=(4, 3))
        before = net.forward(x).copy()
        flat = net.get_flat()
        net.set_flat(np.zeros_like(flat))
        net.set_flat(flat)
        assert np.allclose(net.forward(x), before)

    def test_wrong_size_rejected(self, net_rng):
        net = MLP([3, 8, 2], rng=net_rng)
        with pytest.raises(ValueError):
            net.set_flat(np.zeros(net.num_params - 1))

    def test_state_dict_roundtrip(self, net_rng):
        net = MLP([3, 8, 2], rng=net_rng)
        state = net.state_dict()
        x = net_rng.normal(size=(2, 3))
        before = net.forward(x).copy()
        net.set_flat(net.get_flat() * 0.0)
        net.load_state_dict(state)
        assert np.allclose(net.forward(x), before)


class TestCloneAndSoftUpdate:
    def test_clone_is_independent(self, net_rng):
        net = MLP([3, 8, 2], rng=net_rng)
        clone = net.clone()
        net.set_flat(net.get_flat() + 1.0)
        assert not np.allclose(clone.get_flat(), net.get_flat())

    def test_soft_update_blends(self, net_rng):
        source = MLP([3, 8, 2], rng=net_rng)
        target = source.clone()
        target.set_flat(np.zeros(target.num_params))
        soft_update(target, source, tau=0.25)
        assert np.allclose(target.get_flat(), 0.25 * source.get_flat())

    def test_soft_update_tau_one_copies(self, net_rng):
        source = MLP([3, 8, 2], rng=net_rng)
        target = MLP([3, 8, 2], rng=net_rng.fork("t"))
        soft_update(target, source, tau=1.0)
        assert np.allclose(target.get_flat(), source.get_flat())

    def test_soft_update_rejects_bad_tau(self, net_rng):
        net = MLP([3, 8, 2], rng=net_rng)
        with pytest.raises(ValueError):
            soft_update(net.clone(), net, tau=0.0)

    def test_soft_update_rejects_size_mismatch(self, net_rng):
        a = MLP([3, 8, 2], rng=net_rng)
        b = MLP([3, 4, 2], rng=net_rng.fork("b"))
        with pytest.raises(ValueError):
            soft_update(a, b, tau=0.5)
