"""The Dense layer's preallocated [x | aux] concat buffer must be an
invisible optimisation: bitwise-identical outputs and gradients to the
``np.concatenate`` path, reuse while the batch size is stable, and a
clean fallback for non-float64 inputs.
"""

import numpy as np
import pytest

from repro.nn.layers import Dense
from repro.utils.rng import RngStream


@pytest.fixture
def layer_rng():
    return RngStream("layer", np.random.SeedSequence(7))


class TestConcatBuffer:
    def test_forward_bitwise_equals_concatenate(self, layer_rng):
        layer = Dense(3, 4, aux_dim=2, activation="tanh", rng=layer_rng)
        x = layer_rng.normal(size=(5, 3))
        aux = layer_rng.normal(size=(5, 2))
        out = layer.forward(x, aux)
        expected = layer.activation.forward(
            np.concatenate([x, aux], axis=1) @ layer.weights + layer.bias
        )
        assert out.tobytes() == expected.tobytes()

    def test_buffer_reused_for_stable_batch_size(self, layer_rng):
        layer = Dense(3, 4, aux_dim=2, activation="linear", rng=layer_rng)
        layer.forward(np.zeros((6, 3)), np.zeros((6, 2)))
        first_buf = layer._concat_buf
        assert first_buf is not None
        layer.forward(np.ones((6, 3)), np.ones((6, 2)))
        assert layer._concat_buf is first_buf

    def test_buffer_reallocated_on_batch_change(self, layer_rng):
        layer = Dense(3, 4, aux_dim=2, activation="linear", rng=layer_rng)
        x6 = layer_rng.normal(size=(6, 3))
        a6 = layer_rng.normal(size=(6, 2))
        x2 = layer_rng.normal(size=(2, 3))
        a2 = layer_rng.normal(size=(2, 2))
        layer.forward(x6, a6)
        out = layer.forward(x2, a2)
        assert layer._concat_buf.shape == (2, 5)
        expected = np.concatenate([x2, a2], axis=1) @ layer.weights + layer.bias
        assert out.tobytes() == expected.tobytes()

    def test_gradients_bitwise_equal_concatenate_path(self, layer_rng):
        layer = Dense(3, 2, aux_dim=2, activation="tanh", rng=layer_rng)
        x = layer_rng.normal(size=(4, 3))
        aux = layer_rng.normal(size=(4, 2))
        grad_y = layer_rng.normal(size=(4, 2))

        out = layer.forward(x, aux)
        grad_x, grad_aux = layer.backward(grad_y)

        # Reference: the pre-buffer computation spelled out with an
        # explicit np.concatenate (the activation is stateless given
        # (grad_y, z, y), so this is exactly the old code path).
        xc = np.concatenate([x, aux], axis=1)
        z = xc @ layer.weights + layer.bias
        y = layer.activation.forward(z)
        grad_z = layer.activation.backward(grad_y, z, y)
        grad_full = grad_z @ layer.weights.T

        assert out.tobytes() == y.tobytes()
        assert grad_x.tobytes() == grad_full[:, :3].tobytes()
        assert grad_aux.tobytes() == grad_full[:, 3:].tobytes()
        assert layer.grad_weights.tobytes() == (xc.T @ grad_z).tobytes()
        assert layer.grad_bias.tobytes() == grad_z.sum(axis=0).tobytes()

    def test_non_float64_inputs_fall_back(self, layer_rng):
        layer = Dense(3, 4, aux_dim=2, activation="linear", rng=layer_rng)
        x = np.ones((2, 3), dtype=np.float32)
        aux = np.ones((2, 2), dtype=np.float32)
        out = layer.forward(x, aux)
        assert layer._concat_buf is None  # buffer path never engaged
        expected = np.concatenate([x, aux], axis=1) @ layer.weights + layer.bias
        assert np.allclose(out, expected)
