"""Tests for arrival processes."""

import numpy as np
import pytest

from repro.sim.system import MicroserviceWorkflowSystem, SystemConfig
from repro.workflows import build_msd_ensemble
from repro.workload import (
    DeterministicArrivalProcess,
    ModulatedPoissonArrivalProcess,
    PoissonArrivalProcess,
    TraceArrivalProcess,
)
from repro.workload.trace import ArrivalTrace


def make_system(seed=0):
    return MicroserviceWorkflowSystem(
        build_msd_ensemble(), SystemConfig(consumer_budget=14), seed=seed
    )


class TestPoissonArrivals:
    def test_rate_is_approximately_honoured(self):
        system = make_system(seed=1)
        process = PoissonArrivalProcess({"Type1": 0.2}).attach(system)
        system.loop.run_until(5000.0)
        expected = 0.2 * 5000
        assert abs(process.submitted - expected) < 0.15 * expected

    def test_zero_rate_generates_nothing(self):
        system = make_system()
        process = PoissonArrivalProcess({"Type1": 0.0}).attach(system)
        system.loop.run_until(1000.0)
        assert process.submitted == 0

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            PoissonArrivalProcess({"Type1": -0.1})

    def test_unknown_workflow_rejected_at_attach(self):
        system = make_system()
        with pytest.raises(KeyError):
            PoissonArrivalProcess({"Nope": 0.1}).attach(system)

    def test_stop_halts_arrivals(self):
        system = make_system()
        process = PoissonArrivalProcess({"Type1": 1.0}).attach(system)
        system.loop.run_until(50.0)
        count = process.submitted
        process.stop()
        system.loop.run_until(200.0)
        assert process.submitted == count

    def test_double_attach_rejected(self):
        system = make_system()
        process = PoissonArrivalProcess({"Type1": 0.1}).attach(system)
        with pytest.raises(RuntimeError):
            process.attach(system)

    def test_same_seed_gives_identical_arrivals(self):
        def arrivals(seed):
            system = make_system(seed=seed)
            PoissonArrivalProcess({"Type1": 0.3}).attach(system)
            system.loop.run_until(300.0)
            return [
                o.arrivals.get("Type1", 0)
                for o in [system.run_window() for _ in range(3)]
            ]

        assert arrivals(5) == arrivals(5)


class TestDeterministicArrivals:
    def test_exact_count(self):
        system = make_system()
        process = DeterministicArrivalProcess({"Type1": 10.0}).attach(system)
        system.loop.run_until(100.0)
        assert process.submitted == 10

    def test_invalid_interval(self):
        with pytest.raises(ValueError):
            DeterministicArrivalProcess({"Type1": 0.0})


class TestModulatedPoisson:
    def test_phases_produce_different_volumes(self):
        system = make_system(seed=2)
        process = ModulatedPoissonArrivalProcess(
            low_rates={"Type1": 0.01},
            high_rates={"Type1": 1.0},
            mean_phase_duration=200.0,
        ).attach(system)
        system.loop.run_until(4000.0)
        # Average rate ~0.5 req/s; far more than low-only, less than high-only.
        assert 40 < process.submitted < 4000

    def test_mismatched_rate_maps_rejected(self):
        with pytest.raises(ValueError, match="same types"):
            ModulatedPoissonArrivalProcess(
                low_rates={"Type1": 0.1}, high_rates={"Type2": 0.1}
            )

    def test_invalid_phase_duration(self):
        with pytest.raises(ValueError):
            ModulatedPoissonArrivalProcess(
                low_rates={"Type1": 0.1},
                high_rates={"Type1": 0.2},
                mean_phase_duration=0.0,
            )


class TestTraceArrivals:
    def test_replays_exactly(self):
        trace = ArrivalTrace([(1.0, "Type1"), (2.0, "Type2"), (2.5, "Type1")])
        system = make_system()
        process = TraceArrivalProcess(trace).attach(system)
        system.loop.run_until(10.0)
        assert process.submitted == 3
        assert system.invoker.submitted_total == 3

    def test_trace_before_now_rejected(self):
        system = make_system()
        system.loop.run_until(10.0)
        with pytest.raises(ValueError, match="before current time"):
            TraceArrivalProcess(ArrivalTrace([(1.0, "Type1")])).attach(system)
