"""Statistical checks on the Markov-modulated Poisson process."""

import numpy as np
import pytest

from repro.sim.system import MicroserviceWorkflowSystem, SystemConfig
from repro.workflows import build_msd_ensemble
from repro.workload import ModulatedPoissonArrivalProcess, PoissonArrivalProcess


def submitted_counts(process_factory, horizon, seed, windows=None):
    system = MicroserviceWorkflowSystem(
        build_msd_ensemble(), SystemConfig(consumer_budget=14), seed=seed
    )
    process = process_factory()
    process.attach(system)
    if windows:
        per_window = []
        for _ in range(windows):
            observation = system.run_window()
            per_window.append(observation.arrivals.get("Type1", 0))
        return process.submitted, per_window
    system.loop.run_until(horizon)
    return process.submitted, None


class TestMmppRate:
    def test_long_run_rate_between_phases(self):
        low, high = 0.05, 0.5
        total, _ = submitted_counts(
            lambda: ModulatedPoissonArrivalProcess(
                low_rates={"Type1": low},
                high_rates={"Type1": high},
                mean_phase_duration=300.0,
            ),
            horizon=30_000.0,
            seed=11,
        )
        long_run_rate = total / 30_000.0
        assert low < long_run_rate < high

    def test_mmpp_is_burstier_than_poisson(self):
        """Window-count variance of an MMPP exceeds a Poisson process of
        the same long-run rate (index of dispersion > 1 regime)."""
        mean_rate = (0.02 + 0.4) / 2

        _, mmpp_windows = submitted_counts(
            lambda: ModulatedPoissonArrivalProcess(
                low_rates={"Type1": 0.02},
                high_rates={"Type1": 0.4},
                mean_phase_duration=600.0,
            ),
            horizon=None,
            seed=12,
            windows=300,
        )
        _, poisson_windows = submitted_counts(
            lambda: PoissonArrivalProcess({"Type1": mean_rate}),
            horizon=None,
            seed=12,
            windows=300,
        )
        mmpp_dispersion = np.var(mmpp_windows) / max(np.mean(mmpp_windows), 1e-9)
        poisson_dispersion = np.var(poisson_windows) / max(
            np.mean(poisson_windows), 1e-9
        )
        assert mmpp_dispersion > poisson_dispersion
