"""Tests for arrival traces and the paper's burst scenarios."""

import numpy as np
import pytest

from repro.utils.rng import RngStream
from repro.workload.bursts import (
    BurstScenario,
    LIGO_BURSTS,
    MSD_BURSTS,
)
from repro.workload.trace import ArrivalTrace


class TestArrivalTrace:
    def test_requires_time_order(self):
        with pytest.raises(ValueError, match="time-ordered"):
            ArrivalTrace([(2.0, "A"), (1.0, "A")])

    def test_rejects_negative_times(self):
        with pytest.raises(ValueError):
            ArrivalTrace([(-1.0, "A")])

    def test_rejects_empty_workflow_name(self):
        with pytest.raises(ValueError):
            ArrivalTrace([(1.0, "")])

    def test_poisson_trace_counts(self, rng):
        trace = ArrivalTrace.poisson({"A": 0.5, "B": 0.1}, horizon=2000.0, rng=rng)
        counts = trace.counts()
        assert abs(counts["A"] - 1000) < 150
        assert abs(counts["B"] - 200) < 70
        times = [t for t, _ in trace.events]
        assert times == sorted(times)
        assert trace.horizon < 2000.0

    def test_shifted(self):
        trace = ArrivalTrace([(1.0, "A")])
        shifted = trace.shifted(5.0)
        assert shifted.events == [(6.0, "A")]

    def test_save_load_roundtrip(self, tmp_path):
        trace = ArrivalTrace([(1.0, "A"), (2.5, "B")])
        path = tmp_path / "trace.jsonl"
        trace.save(path)
        loaded = ArrivalTrace.load(path)
        assert loaded.events == trace.events

    def test_len(self):
        assert len(ArrivalTrace([(1.0, "A")])) == 1


class TestBurstScenariosMatchPaper:
    """Section VI-D burst definitions, verbatim from the paper."""

    def test_msd_burst_counts(self):
        expected = [
            {"Type1": 300, "Type2": 200, "Type3": 300},
            {"Type1": 1000, "Type2": 300, "Type3": 400},
            {"Type1": 500, "Type2": 500, "Type3": 500},
        ]
        assert [dict(b.burst) for b in MSD_BURSTS] == expected

    def test_ligo_burst_counts(self):
        expected = [
            {"DataFind": 100, "CAT": 100, "Full": 50, "Injection": 30},
            {"DataFind": 150, "CAT": 150, "Full": 80, "Injection": 50},
            {"DataFind": 80, "CAT": 80, "Full": 80, "Injection": 80},
        ]
        assert [dict(b.burst) for b in LIGO_BURSTS] == expected

    def test_total_requests(self):
        assert MSD_BURSTS[0].total_burst_requests == 800
        assert MSD_BURSTS[1].total_burst_requests == 1700

    def test_scenarios_have_background_rates(self):
        for scenario in (*MSD_BURSTS, *LIGO_BURSTS):
            assert scenario.background_rates
            assert all(r >= 0 for r in scenario.background_rates.values())

    def test_invalid_scenario_rejected(self):
        with pytest.raises(ValueError):
            BurstScenario("bad", {"A": -1}, {})
        with pytest.raises(ValueError):
            BurstScenario("bad", {"A": 1}, {"A": -0.5})
