"""Prometheus 0.0.4 exposition conformance tests.

The exposition text is consumed verbatim by real scrapers (and by the
``--serve`` endpoint), so the encoding details are contract: label
escaping order, zero-observation histograms, cumulative ``le`` bucket
monotonicity up to +Inf, and the format's trailing newline.
"""

import json
import re

from repro.telemetry import MetricsRegistry
from repro.telemetry.metrics import _escape_label


class TestLabelEscaping:
    def test_backslash_quote_and_newline(self):
        # Escaping order matters: backslash first, or the escapes added
        # for quote/newline would themselves be re-escaped.
        assert _escape_label("a\\b") == "a\\\\b"
        assert _escape_label('a"b') == 'a\\"b'
        assert _escape_label("a\nb") == "a\\nb"
        assert _escape_label('\\"\n') == '\\\\\\"\\n'

    def test_exposition_round_trip_of_hostile_label(self):
        registry = MetricsRegistry()
        hostile = 'pre\\mid"post\nend'
        registry.counter("c_total", labels=("svc",)).labels(hostile).inc()
        text = registry.to_prometheus()
        (line,) = [l for l in text.splitlines() if l.startswith("c_total{")]
        value = re.search(r'svc="((?:[^"\\]|\\.)*)"', line).group(1)
        assert value == _escape_label(hostile)
        assert "\n" not in line  # the record stays one exposition line


class TestZeroObservationHistograms:
    def test_all_buckets_zero_sum_zero_count_zero(self):
        registry = MetricsRegistry()
        family = registry.histogram("h_seconds", (1.0, 5.0), labels=("q",))
        family.labels("empty")  # instantiated, never observed
        text = registry.to_prometheus()
        assert 'h_seconds_bucket{q="empty",le="1"} 0' in text
        assert 'h_seconds_bucket{q="empty",le="5"} 0' in text
        assert 'h_seconds_bucket{q="empty",le="+Inf"} 0' in text
        assert 'h_seconds_sum{q="empty"} 0' in text
        assert 'h_seconds_count{q="empty"} 0' in text

    def test_zero_observation_quantiles_are_zero(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h", (1.0,)).labels()
        assert hist.quantile(0.99) == 0.0
        assert hist.state()["p50"] == 0.0


class TestBucketMonotonicity:
    def _bucket_counts(self, text, name):
        """(le, count) pairs in exposition order for one series."""
        out = []
        for line in text.splitlines():
            match = re.match(
                rf'{name}_bucket\{{le="([^"]+)"\}} (\d+)', line
            )
            if match:
                out.append((match.group(1), int(match.group(2))))
        return out

    def test_cumulative_le_counts_nondecreasing_through_inf(self):
        registry = MetricsRegistry()
        family = registry.histogram("lat", (1.0, 2.0, 5.0, 10.0))
        hist = family.labels()
        for value in (0.5, 0.5, 1.5, 3.0, 7.0, 50.0, 50.0):
            hist.observe(value)
        pairs = self._bucket_counts(registry.to_prometheus(), "lat")
        assert [le for le, _ in pairs] == ["1", "2", "5", "10", "+Inf"]
        counts = [count for _, count in pairs]
        assert counts == sorted(counts)
        assert counts == [2, 3, 4, 5, 7]
        assert counts[-1] == hist.count

    def test_boundary_value_lands_in_its_le_bucket(self):
        """le is inclusive: an observation equal to a bound counts in
        that bound's bucket."""
        registry = MetricsRegistry()
        hist = registry.histogram("b", (1.0, 2.0)).labels()
        hist.observe(1.0)
        pairs = self._bucket_counts(registry.to_prometheus(), "b")
        assert pairs == [("1", 1), ("2", 1), ("+Inf", 1)]


class TestTrailingNewline:
    def test_exposition_text_ends_with_single_newline(self):
        registry = MetricsRegistry()
        registry.counter("c_total").labels().inc()
        text = registry.to_prometheus()
        assert text.endswith("\n") and not text.endswith("\n\n")

    def test_empty_registry_renders_empty(self):
        assert MetricsRegistry().to_prometheus() == ""

    def test_cli_prom_output_ends_with_single_newline(self, tmp_path, capsys):
        from repro.cli import main

        trace = tmp_path / "trace.jsonl"
        records = [
            {"kind": "event.arrival", "t": 1.0, "workflow": "Type1",
             "request_id": 0},
            {"kind": "event.workflow_complete", "t": 9.0,
             "workflow": "Type1", "request_id": 0, "response_time": 8.0},
        ]
        trace.write_text(
            "".join(json.dumps(r, sort_keys=True) + "\n" for r in records)
        )
        assert main(["metrics", str(tmp_path), "--format", "prom"]) == 0
        out = capsys.readouterr().out
        assert out.endswith("\n") and not out.endswith("\n\n")
        assert "repro_response_time_seconds_bucket" in out
