"""Phase profiler tests: tree shape, self-times, the disabled no-op
path, persistence, and the determinism boundary (profiling must never
change the trace)."""

import json

import pytest

from repro.telemetry import (
    NULL_PROFILER,
    PROFILE_VERSION,
    PhaseProfiler,
    read_profile,
    render_profile,
    write_profile,
)
from repro.telemetry.profile import PROFILE_FILENAME, PhaseNode, _NOOP_PHASE


class TestPhaseTree:
    def test_nested_phases_build_a_tree(self):
        profiler = PhaseProfiler()
        with profiler.phase("outer"):
            with profiler.phase("inner"):
                pass
            with profiler.phase("inner"):
                pass
        outer = profiler.node("outer")
        inner = profiler.node("outer", "inner")
        assert outer.calls == 1
        assert inner.calls == 2
        assert outer.wall >= inner.wall >= 0.0

    def test_self_time_excludes_children(self):
        node = PhaseNode("parent")
        node.calls, node.wall, node.cpu = 1, 10.0, 8.0
        child = PhaseNode("child")
        child.calls, child.wall, child.cpu = 1, 4.0, 3.0
        node.children["child"] = child
        assert node.self_wall == pytest.approx(6.0)
        assert node.self_cpu == pytest.approx(5.0)

    def test_sibling_phases_are_roots(self):
        profiler = PhaseProfiler()
        with profiler.phase("a"):
            pass
        with profiler.phase("b"):
            pass
        tree = profiler.to_dict()["tree"]
        assert tree["name"] == "total"
        assert [node["name"] for node in tree["children"]] == ["a", "b"]

    def test_phase_pops_on_exception(self):
        profiler = PhaseProfiler()
        with pytest.raises(RuntimeError):
            with profiler.phase("risky"):
                raise RuntimeError("boom")
        assert profiler.depth == 0
        # Timings were still recorded for the failed phase.
        assert profiler.node("risky").calls == 1
        # And the stack is usable afterwards.
        with profiler.phase("next"):
            pass
        assert profiler.node("next").calls == 1

    def test_missing_node_lookup(self):
        profiler = PhaseProfiler()
        with profiler.phase("a"):
            pass
        assert profiler.node("a", "nope") is None
        assert profiler.node("nope") is None

    def test_total_wall_sums_roots(self):
        profiler = PhaseProfiler()
        with profiler.phase("a"):
            pass
        with profiler.phase("b"):
            pass
        expected = profiler.node("a").wall + profiler.node("b").wall
        assert profiler.total_wall() == pytest.approx(expected)


class TestDecorator:
    def test_profiled_wraps_and_records(self):
        profiler = PhaseProfiler()

        @profiler.profiled("work")
        def work(x):
            return x * 2

        assert work(21) == 42
        assert work(1) == 2
        assert profiler.node("work").calls == 2

    def test_disabled_decorator_is_transparent(self):
        @NULL_PROFILER.profiled("work")
        def work():
            return "ok"

        assert work() == "ok"
        assert NULL_PROFILER.to_dict()["tree"]["children"] == []


class TestDisabledPath:
    def test_null_profiler_is_disabled(self):
        assert NULL_PROFILER.enabled is False
        assert PhaseProfiler().enabled is True

    def test_disabled_phase_is_the_shared_noop(self):
        profiler = PhaseProfiler(enabled=False)
        assert profiler.phase("anything") is _NOOP_PHASE
        assert profiler.phase("other") is _NOOP_PHASE
        with profiler.phase("anything"):
            pass
        assert profiler.to_dict()["tree"]["children"] == []
        assert profiler.depth == 0


class TestPersistence:
    def _populated(self):
        profiler = PhaseProfiler()
        with profiler.phase("agent/collect"):
            with profiler.phase("sim/dispatch"):
                pass
        return profiler

    def test_write_read_round_trip(self, tmp_path):
        profiler = self._populated()
        target = write_profile(tmp_path, profiler)
        assert target == tmp_path / PROFILE_FILENAME
        document = json.loads(target.read_text())
        assert document["profile_version"] == PROFILE_VERSION

        loaded = read_profile(tmp_path)  # accepts the directory...
        root = PhaseNode.from_dict(loaded["tree"])
        assert list(root.children) == ["agent/collect"]
        loaded = read_profile(target)  # ...and the file itself
        root = PhaseNode.from_dict(loaded["tree"])
        inner = root.children["agent/collect"].children["sim/dispatch"]
        assert inner.calls == 1

    def test_read_profile_rejects_foreign_json(self, tmp_path):
        path = tmp_path / "not-a-profile.json"
        path.write_text(json.dumps({"something": "else"}))
        with pytest.raises(ValueError, match="not a profile document"):
            read_profile(path)

    def test_node_dict_round_trip(self):
        original = self._populated().node("agent/collect")
        restored = PhaseNode.from_dict(original.to_dict())
        assert restored.name == original.name
        assert restored.calls == original.calls
        assert restored.wall == pytest.approx(original.wall)
        assert set(restored.children) == set(original.children)


class TestRender:
    def test_render_accepts_profiler_and_nodes(self, tmp_path):
        profiler = PhaseProfiler()
        with profiler.phase("agent/train_model"):
            with profiler.phase("model/fit"):
                pass
        text = render_profile(profiler)
        assert "agent/train_model" in text
        assert "model/fit" in text
        assert "calls" in text and "wall" in text

        write_profile(tmp_path, profiler)
        assert "model/fit" in render_profile(read_profile(tmp_path))

    def test_max_depth_truncates(self):
        profiler = PhaseProfiler()
        with profiler.phase("top"):
            with profiler.phase("deep"):
                pass
        shallow = render_profile(profiler, max_depth=0)
        assert "top" in shallow
        assert "deep" not in shallow

    def test_empty_profile(self):
        assert "(no phases recorded)" in render_profile(PhaseProfiler())


class TestDeterminismBoundary:
    """Enabling the profiler must not perturb the trace in any way."""

    def test_trace_records_identical_with_and_without_profiler(self):
        from test_metrics_engine import _traced_run

        plain_memory, plain_sink = _traced_run(profiler=None)
        prof_memory, prof_sink = _traced_run(profiler=PhaseProfiler())

        assert plain_memory.records == prof_memory.records
        from repro.telemetry import snapshot_to_json

        assert snapshot_to_json(plain_sink.snapshot()) == snapshot_to_json(
            prof_sink.snapshot()
        )

    def test_simulation_phases_are_recorded(self):
        from test_metrics_engine import _traced_run

        profiler = PhaseProfiler()
        _traced_run(profiler=profiler)
        dispatch = profiler.node("sim/dispatch")
        assert dispatch is not None
        assert dispatch.calls > 0
