"""Metrics engine tests: primitives, aggregation, and the live==replay
determinism contract."""

import json

import numpy as np
import pytest

from repro.eval.runner import make_env
from repro.sim.system import SystemConfig
from repro.telemetry import (
    MemorySink,
    MetricsAggregator,
    MetricsRegistry,
    MetricsSink,
    Tracer,
    aggregate_run,
    aggregate_trace,
    render_metrics,
    snapshot_to_json,
    write_metrics,
)
from repro.telemetry.metrics import (
    Counter,
    Ewma,
    Gauge,
    Histogram,
    RESPONSE_TIME_BUCKETS,
    SNAPSHOT_VERSION,
)
from repro.workflows import build_msd_ensemble


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        c = Counter()
        assert c.value == 0.0
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_rejects_negative_increment(self):
        with pytest.raises(ValueError, match=">= 0"):
            Counter().inc(-1)


class TestGauge:
    def test_tracks_extremes_and_mean(self):
        g = Gauge()
        for v in (3.0, 1.0, 5.0):
            g.set(v)
        state = g.state()
        assert state["value"] == 5.0
        assert state["min"] == 1.0
        assert state["max"] == 5.0
        assert state["mean"] == pytest.approx(3.0)
        assert state["observations"] == 3

    def test_unobserved_state_is_all_zero(self):
        state = Gauge().state()
        assert state == {
            "value": 0.0, "min": 0.0, "max": 0.0, "mean": 0.0,
            "observations": 0,
        }


class TestEwma:
    def test_first_observation_seeds_the_average(self):
        e = Ewma(alpha=0.5)
        e.update(10.0)
        assert e.value == 10.0

    def test_smoothing(self):
        e = Ewma(alpha=0.5)
        e.update(10.0)
        e.update(0.0)
        assert e.value == pytest.approx(5.0)
        assert e.last == 0.0

    def test_alpha_bounds(self):
        with pytest.raises(ValueError):
            Ewma(alpha=0.0)
        with pytest.raises(ValueError):
            Ewma(alpha=1.5)


class TestHistogram:
    def test_bucket_counts_and_cumulative(self):
        h = Histogram((1.0, 2.0, 5.0))
        for v in (0.5, 1.5, 1.7, 3.0, 100.0):
            h.observe(v)
        assert h.counts == [1, 2, 1, 1]
        assert h.cumulative_counts() == [1, 3, 4, 5]
        assert h.count == 5
        assert h.sum == pytest.approx(106.7)

    def test_exact_quantiles(self):
        h = Histogram((10.0, 100.0))
        for v in range(1, 101):
            h.observe(float(v))
        assert h.quantile(0.50) == 51.0  # nearest-rank on exact values
        assert h.quantile(0.95) == 96.0
        assert h.quantile(0.0) == 1.0
        assert h.quantile(1.0) == 100.0

    def test_bucket_bound_quantiles_without_tracked_values(self):
        h = Histogram((10.0, 100.0), track_values=False)
        for v in range(1, 101):
            h.observe(float(v))
        # Conservative: the upper bound of the containing bucket.
        assert h.quantile(0.05) == 10.0
        assert h.quantile(0.95) == 100.0

    def test_empty_quantile_is_zero(self):
        assert Histogram((1.0,)).quantile(0.99) == 0.0

    def test_rejects_bad_buckets(self):
        with pytest.raises(ValueError):
            Histogram(())
        with pytest.raises(ValueError):
            Histogram((2.0, 1.0))
        with pytest.raises(ValueError):
            Histogram((1.0, 1.0))

    def test_rejects_bad_quantile(self):
        with pytest.raises(ValueError):
            Histogram((1.0,)).quantile(1.5)


class TestRegistry:
    def test_labels_create_children_lazily(self):
        registry = MetricsRegistry()
        family = registry.counter("x_total", "help", ("service",))
        family.labels("a").inc()
        family.labels("a").inc()
        family.labels("b").inc()
        assert family.labels("a").value == 2.0
        assert family.labels("b").value == 1.0

    def test_label_arity_enforced(self):
        registry = MetricsRegistry()
        family = registry.gauge("y", labels=("a", "b"))
        with pytest.raises(ValueError, match="expected labels"):
            family.labels("only-one")

    def test_invalid_names_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("1bad")
        with pytest.raises(ValueError):
            registry.counter("has-dash")
        with pytest.raises(ValueError):
            registry.counter("ok", labels=("bad label",))

    def test_snapshot_is_sorted_and_versioned(self):
        registry = MetricsRegistry()
        registry.counter("z_total").labels().inc()
        registry.counter("a_total").labels().inc()
        snapshot = registry.snapshot()
        assert snapshot["snapshot_version"] == SNAPSHOT_VERSION
        assert list(snapshot["families"]) == ["a_total", "z_total"]

    def test_prometheus_exposition_shape(self):
        registry = MetricsRegistry()
        hist = registry.histogram(
            "rt_seconds", (1.0, 2.0), help_text="resp", labels=("wf",)
        )
        hist.labels("Type1").observe(0.5)
        hist.labels("Type1").observe(5.0)
        text = registry.to_prometheus()
        assert "# HELP rt_seconds resp" in text
        assert "# TYPE rt_seconds histogram" in text
        assert 'rt_seconds_bucket{wf="Type1",le="1"} 1' in text
        assert 'rt_seconds_bucket{wf="Type1",le="+Inf"} 2' in text
        assert 'rt_seconds_sum{wf="Type1"} 5.5' in text
        assert 'rt_seconds_count{wf="Type1"} 2' in text

    def test_prometheus_escapes_label_values(self):
        registry = MetricsRegistry()
        registry.counter("c_total", labels=("name",)).labels('a"b').inc()
        assert 'name="a\\"b"' in registry.to_prometheus()


class TestAggregator:
    def test_every_registered_kind_has_a_handler_or_is_counted(self):
        from repro.telemetry.records import RECORD_SCHEMAS

        handled = set(MetricsAggregator._HANDLERS)
        assert handled <= set(RECORD_SCHEMAS)
        # Every kind the simulator emits today is dispatched.
        assert handled == set(RECORD_SCHEMAS)

    def test_unknown_kind_is_ignored(self):
        agg = MetricsAggregator()
        agg.observe({"kind": "event.not_registered", "t": 1.0})
        families = agg.snapshot()["families"]
        series = families["repro_records_total"]["series"]
        assert series[0]["labels"] == {"kind": "event.not_registered"}

    def test_window_record_populates_gauges(self):
        agg = MetricsAggregator()
        agg.observe({
            "kind": "span.window", "t": 30.0, "index": 0, "start": 0.0,
            "end": 30.0, "reward": -7.5,
            "wip": {"Ingest": 4.0}, "allocation": {"Ingest": 4},
            "busy": {"Ingest": 2}, "starting": {"Ingest": 0},
            "queue_ready": {"Ingest": 1}, "arrivals": 3, "completions": 1,
        })
        families = agg.snapshot()["families"]
        util = families["repro_utilization"]["series"][0]
        assert util["labels"] == {"service": "Ingest"}
        assert util["value"] == pytest.approx(0.5)
        assert families["repro_window_reward"]["series"][0]["value"] == -7.5
        assert families["repro_sim_time_seconds"]["series"][0]["value"] == 30.0

    def test_task_span_populates_wait_retry_and_waste_families(self):
        agg = MetricsAggregator()
        agg.observe({
            "kind": "event.task_span", "t": 25.0, "service": "Ingest",
            "request_id": 3, "published": 10.0, "started": 14.0,
            "deliveries": 3, "wasted": 6.5,
        })
        families = agg.snapshot()["families"]
        wait = families["repro_queue_wait_seconds"]["series"][0]
        assert wait["labels"] == {"service": "Ingest"}
        assert wait["count"] == 1 and wait["sum"] == pytest.approx(4.0)
        retries = families["repro_task_retries_total"]["series"][0]
        assert retries["value"] == 2.0
        wasted = families["repro_wasted_work_seconds"]["series"][0]
        assert wasted["value"] == pytest.approx(6.5)

    def test_clean_task_span_emits_no_retry_or_waste_series(self):
        agg = MetricsAggregator()
        agg.observe({
            "kind": "event.task_span", "t": 5.0, "service": "Ingest",
            "request_id": 0, "published": 1.0, "started": 1.0,
            "deliveries": 1, "wasted": 0.0,
        })
        families = agg.snapshot()["families"]
        assert families["repro_task_retries_total"]["series"] == []
        assert families["repro_wasted_work_seconds"]["series"] == []

    def test_training_metric_updates_last_and_ewma(self):
        agg = MetricsAggregator()
        for value in (4.0, 2.0):
            agg.observe({
                "kind": "metric", "t": None, "name": "model/epoch_loss",
                "value": value, "step": 1,
            })
        families = agg.snapshot()["families"]
        last = families["repro_training_metric"]["series"][0]
        ewma = families["repro_training_metric_ewma"]["series"][0]
        assert last["value"] == 2.0
        assert ewma["value"] == pytest.approx(0.3 * 2.0 + 0.7 * 4.0)


def _traced_run(profiler=None, windows=4, seed=11):
    """A short traced MSD run; returns (memory_sink, metrics_sink)."""
    memory = MemorySink()
    sink = MetricsSink(downstream=memory)
    env = make_env(
        build_msd_ensemble(),
        config=SystemConfig(consumer_budget=14),
        seed=seed,
        background_rates={"Type1": 0.5, "Type2": 0.3, "Type3": 0.2},
        tracer=Tracer(sink),
        profiler=profiler,
    )
    env.reset()
    env.system.inject_burst({"Type1": 40, "Type2": 20, "Type3": 20})
    for _ in range(windows):
        env.step(np.array([4, 4, 3, 3]))
    return memory, sink


class TestDeterminismContract:
    """The acceptance criteria of the metrics engine."""

    def test_live_equals_replay_byte_identical(self):
        memory, sink = _traced_run()
        live = snapshot_to_json(sink.snapshot())
        replayed = snapshot_to_json(aggregate_trace(memory.records).snapshot())
        assert live == replayed

    def test_same_seed_runs_are_byte_identical(self):
        _, first = _traced_run()
        _, second = _traced_run()
        assert snapshot_to_json(first.snapshot()) == snapshot_to_json(
            second.snapshot()
        )
        assert first.to_prometheus() == second.to_prometheus()

    def test_different_seed_runs_differ(self):
        _, first = _traced_run(seed=11)
        _, second = _traced_run(seed=12)
        assert snapshot_to_json(first.snapshot()) != snapshot_to_json(
            second.snapshot()
        )

    def test_window_series_recorded_per_window(self):
        memory, sink = _traced_run(windows=4)
        spans = sum(
            1 for r in memory.records if r["kind"] == "span.window"
        )
        assert spans > 0
        assert len(sink.window_snapshots) == spans
        assert [row["window"] for row in sink.window_snapshots] == list(
            range(spans)
        )
        for row in sink.window_snapshots:
            assert set(row) >= {
                "completions", "response_p50", "response_p95",
                "response_p99", "wip_total", "reward", "window",
            }

    def test_snapshot_every_zero_disables_window_series(self):
        memory, _ = _traced_run()
        sink = MetricsSink(snapshot_every=0)
        for record in memory.records:
            sink.write(record)
        assert sink.window_snapshots == []
        with pytest.raises(ValueError):
            MetricsSink(snapshot_every=-1)


class TestFileOutput:
    def test_write_metrics_round_trip(self, tmp_path):
        memory, sink = _traced_run()
        target = write_metrics(tmp_path, sink)
        assert target == tmp_path / "metrics.json"
        document = json.loads(target.read_text())
        assert document["snapshot_version"] == SNAPSHOT_VERSION
        assert document["window_series"]
        prom = (tmp_path / "metrics.prom").read_text()
        assert "repro_windows_total" in prom

    def test_aggregate_run_reads_a_trace_directory(self, tmp_path):
        from repro.telemetry import JsonlSink

        memory, sink = _traced_run()
        with JsonlSink(tmp_path / "trace.jsonl") as jsonl:
            for record in memory.records:
                jsonl.write(record)
        replayed = aggregate_run(tmp_path)
        assert snapshot_to_json(replayed.snapshot()) == snapshot_to_json(
            sink.snapshot()
        )


class TestRenderMetrics:
    def test_renders_each_kind(self):
        _, sink = _traced_run()
        text = render_metrics(sink.snapshot())
        assert "repro_windows_total (counter)" in text
        assert "repro_wip (gauge)" in text
        assert "repro_response_time_seconds (histogram)" in text

    def test_empty_snapshot(self):
        assert render_metrics({"families": {}}) == "(no metric families)"
