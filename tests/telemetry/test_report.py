"""Trace-analysis tests over synthetic records."""

import pytest

from repro.telemetry import (
    consumer_summary,
    load_trace,
    queue_summary,
    render_report,
    training_curves,
    utilization_summary,
)


def window(index, **overrides):
    record = {
        "kind": "span.window", "t": 30.0 * (index + 1),
        "index": index, "start": 30.0 * index, "end": 30.0 * (index + 1),
        "reward": -10.0,
        "wip": {"Ingest": 4.0, "Analyze": 2.0},
        "allocation": {"Ingest": 4, "Analyze": 2},
        "busy": {"Ingest": 2, "Analyze": 0},
        "starting": {"Ingest": 0, "Analyze": 0},
        "queue_ready": {"Ingest": 2, "Analyze": 2},
        "arrivals": 3, "completions": 1,
    }
    record.update(overrides)
    return record


RECORDS = [
    window(0),
    window(
        1,
        wip={"Ingest": 8.0, "Analyze": 2.0},
        busy={"Ingest": 4, "Analyze": 2},
        queue_ready={"Ingest": 6, "Analyze": 0},
    ),
    {"kind": "event.publish", "t": 1.0, "queue": "Ingest", "depth": 1},
    {"kind": "event.publish", "t": 2.0, "queue": "Ingest", "depth": 2},
    {"kind": "event.redeliver", "t": 3.0, "queue": "Ingest", "depth": 3},
    {"kind": "event.consumer_start", "t": 0.0, "service": "Ingest",
     "consumer_id": 0, "node": 0, "startup_delay": 6.0},
    {"kind": "event.consumer_ready", "t": 6.0, "service": "Ingest",
     "consumer_id": 0, "startup_latency": 6.0},
    {"kind": "event.consumer_ready", "t": 10.0, "service": "Ingest",
     "consumer_id": 1, "startup_latency": 10.0},
    {"kind": "event.consumer_stop", "t": 40.0, "service": "Ingest",
     "consumer_id": 0, "mode": "drain"},
    {"kind": "metric", "t": 60.0, "name": "train/eval_reward",
     "value": -5.0, "step": 0},
    {"kind": "metric", "t": 90.0, "name": "train/eval_reward",
     "value": -2.0, "step": 1},
    {"kind": "metric", "t": 90.0, "name": "ddpg/critic_loss",
     "value": 0.5, "step": 50},
    {"kind": "metric", "t": 90.0, "name": "unstepped", "value": 1.0,
     "step": None},
]


class TestSummaries:
    def test_utilization_summary(self):
        summary = utilization_summary(RECORDS)
        assert set(summary) == {"Ingest", "Analyze"}
        ingest = summary["Ingest"]
        assert ingest["mean_wip"] == pytest.approx(6.0)
        assert ingest["mean_allocation"] == pytest.approx(4.0)
        assert ingest["mean_busy"] == pytest.approx(3.0)
        assert ingest["utilization"] == pytest.approx((0.5 + 1.0) / 2)
        # Analyze had zero busy in window 0 but non-zero allocation: both
        # windows count toward the utilization mean.
        assert summary["Analyze"]["utilization"] == pytest.approx(0.5)

    def test_queue_summary(self):
        summary = queue_summary(RECORDS)
        ingest = summary["Ingest"]
        assert ingest["publishes"] == 2
        assert ingest["redeliveries"] == 1
        assert ingest["mean_depth"] == pytest.approx(4.0)  # depths 2, 6
        assert ingest["peak_depth"] == pytest.approx(6.0)
        assert summary["Analyze"]["publishes"] == 0

    def test_consumer_summary(self):
        summary = consumer_summary(RECORDS)
        ingest = summary["Ingest"]
        assert ingest["started"] == 1
        assert ingest["ready"] == 2
        assert ingest["stopped"] == 1
        assert ingest["mean_startup_latency"] == pytest.approx(8.0)

    def test_training_curves_skip_unstepped(self):
        curves = training_curves(RECORDS)
        assert curves["train/eval_reward"] == {0: -5.0, 1: -2.0}
        assert curves["ddpg/critic_loss"] == {50: 0.5}
        assert "unstepped" not in curves

    def test_empty_records(self):
        assert utilization_summary([]) == {}
        assert queue_summary([]) == {}
        assert consumer_summary([]) == {}
        assert training_curves([]) == {}


class TestRenderReport:
    def test_sections_present(self):
        text = render_report(RECORDS, title="synthetic")
        assert "synthetic" in text
        assert "2 windows" in text
        assert "Per-microservice utilization" in text
        assert "Queue depth" in text
        assert "Container lifecycle" in text
        assert "Training curves" in text

    def test_metrics_only_trace(self):
        text = render_report([r for r in RECORDS if r["kind"] == "metric"])
        assert "no window spans" in text
        assert "Training curves" in text
        assert "Queue depth" not in text


class TestLoadTrace:
    def write(self, path, records):
        import json

        path.write_text(
            "".join(json.dumps(r) + "\n" for r in records), encoding="utf-8"
        )

    def test_file_and_directory_forms(self, tmp_path):
        self.write(tmp_path / "trace.jsonl", RECORDS)
        from_dir = load_trace(tmp_path, validate=True)
        from_file = load_trace(tmp_path / "trace.jsonl", validate=True)
        assert from_dir == from_file == RECORDS

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"kind":"event.publish","t":1.0,'
                        '"queue":"Ingest","depth":1}\n\n')
        assert len(load_trace(path)) == 1

    def test_invalid_json_reports_line(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"kind":"metric"}\nnot json\n')
        with pytest.raises(ValueError, match=":2"):
            load_trace(path)

    def test_validate_flag_rejects_bad_records(self, tmp_path):
        self.write(tmp_path / "trace.jsonl", [{"kind": "event.nope", "t": 0}])
        assert len(load_trace(tmp_path)) == 1  # lenient by default
        with pytest.raises(ValueError, match="unknown record kind"):
            load_trace(tmp_path, validate=True)
