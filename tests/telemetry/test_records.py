"""Record-schema registry tests: the emitter/consumer contract."""

import pytest

from repro.telemetry import (
    ENVELOPE_FIELDS,
    RECORD_SCHEMAS,
    SCHEMA_VERSION,
    validate_record,
)

#: One well-formed example per registered kind.
EXAMPLES = {
    "span.window": {
        "index": 0, "start": 0.0, "end": 30.0, "reward": -12.5,
        "wip": {"Ingest": 3.0}, "allocation": {"Ingest": 4},
        "busy": {"Ingest": 2}, "starting": {"Ingest": 1},
        "queue_ready": {"Ingest": 1}, "arrivals": 5, "completions": 2,
    },
    "span.collect": {
        "lane": 1, "episode": 5, "steps": 25, "reward": -140.5,
        "sim_time": 750.0,
    },
    "event.arrival": {"workflow": "Type3", "request_id": 17},
    "event.workflow_complete": {
        "workflow": "Type3", "request_id": 17, "response_time": 42.0,
    },
    "event.publish": {"queue": "Ingest", "depth": 3},
    "event.redeliver": {"queue": "Ingest", "depth": 4},
    "event.consumer_start": {
        "service": "Ingest", "consumer_id": 2, "node": 1,
        "startup_delay": 7.5,
    },
    "event.consumer_ready": {
        "service": "Ingest", "consumer_id": 2, "startup_latency": 7.5,
    },
    "event.consumer_stop": {
        "service": "Ingest", "consumer_id": 2, "mode": "drain",
    },
    "event.task_complete": {"service": "Ingest", "service_time": 9.5},
    "event.task_span": {
        "service": "Ingest", "request_id": 17, "published": 10.0,
        "started": 12.5, "deliveries": 1, "wasted": 0.0,
    },
    "event.placement": {"node": 1, "used": 3},
    "event.release": {"node": 1, "used": 2},
    "event.fault": {"fault": "consumer_crash", "target": "Ingest"},
    "metric": {"name": "train/eval_reward", "value": -3.5, "step": 0},
}


def make_record(kind):
    return {"kind": kind, "t": 30.0, **EXAMPLES[kind]}


class TestRegistry:
    def test_schema_version_is_positive_int(self):
        assert isinstance(SCHEMA_VERSION, int) and SCHEMA_VERSION >= 1

    def test_envelope_fields(self):
        assert ENVELOPE_FIELDS == {"kind", "t"}

    def test_examples_cover_every_kind(self):
        assert set(EXAMPLES) == set(RECORD_SCHEMAS)

    @pytest.mark.parametrize("kind", sorted(RECORD_SCHEMAS))
    def test_examples_validate(self, kind):
        validate_record(make_record(kind))

    def test_payload_fields_never_shadow_envelope(self):
        for kind, fields in RECORD_SCHEMAS.items():
            assert not (set(fields) & ENVELOPE_FIELDS), kind


class TestValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown record kind"):
            validate_record({"kind": "event.nope", "t": 0.0})

    def test_missing_kind_rejected(self):
        with pytest.raises(ValueError):
            validate_record({"t": 0.0, "queue": "Ingest", "depth": 1})

    @pytest.mark.parametrize("kind", sorted(RECORD_SCHEMAS))
    def test_missing_payload_field_rejected(self, kind):
        record = make_record(kind)
        record.pop(sorted(EXAMPLES[kind])[0])
        with pytest.raises(ValueError):
            validate_record(record)

    @pytest.mark.parametrize("kind", sorted(RECORD_SCHEMAS))
    def test_unexpected_payload_field_rejected(self, kind):
        record = make_record(kind)
        record["surprise"] = 1
        with pytest.raises(ValueError):
            validate_record(record)

    def test_none_timestamp_allowed(self):
        """t is None before a clock is bound — legal in the envelope."""
        record = make_record("metric")
        record["t"] = None
        validate_record(record)
