"""Report edge cases: empty traces, windowless traces, train-only
traces, and records whose ``t`` is null (unstepped training metrics)."""

import json

import pytest

from repro.telemetry import load_trace, render_report
from repro.telemetry.report import (
    consumer_summary,
    queue_summary,
    report_json,
    training_curves,
    utilization_summary,
)


def _metric(name, value, step=None):
    return {"kind": "metric", "t": None, "name": name,
            "value": value, "step": step}


#: A trace with training metrics only — what a model-only experiment
#: (no simulator attached to the tracer) produces.
TRAIN_ONLY = [
    _metric("model/epoch_loss", 4.0, 0),
    _metric("model/epoch_loss", 2.0, 1),
    _metric("train/eval_reward", -12.5, 0),
    _metric("ddpg/sigma", 0.2),  # unstepped: excluded from curves
]


class TestEmptyTrace:
    def test_summaries_are_empty(self):
        assert utilization_summary([]) == {}
        assert queue_summary([]) == {}
        assert consumer_summary([]) == {}
        assert training_curves([]) == {}

    def test_render_report_mentions_no_windows(self):
        text = render_report([])
        assert "0 records, no window spans" in text

    def test_report_json_shape(self):
        document = report_json([])
        assert document["records"] == 0
        assert document["windows"] == 0
        assert document["sim_time_end"] is None
        assert document["utilization"] == {}
        assert document["training_curves"] == {}
        json.dumps(document)  # serialisable

    def test_load_trace_empty_file(self, tmp_path):
        (tmp_path / "trace.jsonl").write_text("")
        assert load_trace(tmp_path) == []

    def test_load_trace_skips_blank_lines(self, tmp_path):
        (tmp_path / "trace.jsonl").write_text(
            '\n{"kind": "metric", "t": null, "name": "x", '
            '"value": 1.0, "step": null}\n\n'
        )
        records = load_trace(tmp_path, validate=True)
        assert len(records) == 1

    def test_load_trace_rejects_bad_json(self, tmp_path):
        (tmp_path / "trace.jsonl").write_text("{not json}\n")
        with pytest.raises(ValueError, match="invalid JSON"):
            load_trace(tmp_path)


class TestWindowlessTrace:
    """Event records only — e.g. a run that never completed a window."""

    EVENTS = [
        {"kind": "event.arrival", "t": 0.5, "workflow": "Type1",
         "request_id": 1},
        {"kind": "event.publish", "t": 0.5, "queue": "Ingest", "depth": 1},
        {"kind": "event.consumer_start", "t": 1.0, "service": "Ingest",
         "consumer_id": 7, "node": "node-0", "startup_delay": 8.0},
        {"kind": "event.consumer_ready", "t": 9.0, "service": "Ingest",
         "consumer_id": 7, "startup_latency": 8.0},
    ]

    def test_events_match_registered_schemas(self):
        from repro.telemetry.records import validate_record

        for record in self.EVENTS:
            validate_record(record)

    def test_utilization_empty_without_windows(self):
        assert utilization_summary(self.EVENTS) == {}

    def test_queue_and_consumer_summaries_still_work(self):
        queues = queue_summary(self.EVENTS)
        assert queues["Ingest"]["publishes"] == 1
        assert queues["Ingest"]["mean_depth"] == 0.0
        assert queues["Ingest"]["peak_depth"] == 0.0

        consumers = consumer_summary(self.EVENTS)
        assert consumers["Ingest"]["started"] == 1
        assert consumers["Ingest"]["ready"] == 1
        assert consumers["Ingest"]["mean_startup_latency"] == 8.0

    def test_report_json_has_null_sim_time(self):
        document = report_json(self.EVENTS)
        assert document["windows"] == 0
        assert document["sim_time_end"] is None
        assert document["records"] == len(self.EVENTS)

    def test_render_report_does_not_crash(self):
        text = render_report(self.EVENTS, title="windowless")
        assert "windowless" in text
        assert "no window spans" in text


class TestTrainOnlyTrace:
    def test_curves_index_by_step_and_skip_unstepped(self):
        curves = training_curves(TRAIN_ONLY)
        assert curves["model/epoch_loss"] == {0: 4.0, 1: 2.0}
        assert curves["train/eval_reward"] == {0: -12.5}
        assert "ddpg/sigma" not in curves

    def test_report_json_stringifies_steps(self):
        document = report_json(TRAIN_ONLY)
        assert document["training_curves"]["model/epoch_loss"] == {
            "0": 4.0, "1": 2.0,
        }
        json.dumps(document)

    def test_render_report_shows_curves_only(self):
        text = render_report(TRAIN_ONLY)
        assert "Training curves" in text
        assert "model/epoch_loss" in text
        assert "utilization" not in text.lower()

    def test_duplicate_step_last_write_wins(self):
        records = TRAIN_ONLY + [_metric("model/epoch_loss", 1.5, 1)]
        assert training_curves(records)["model/epoch_loss"][1] == 1.5


class TestNullTimestamps:
    """``t: null`` is legal (training metrics before a clock is bound)."""

    def test_report_json_with_mixed_timestamps(self):
        records = [
            _metric("model/epoch_loss", 3.0, 0),
            {"kind": "event.arrival", "t": 2.0, "workflow": "Type1",
             "request_id": 1},
        ]
        document = report_json(records)
        assert document["records"] == 2
        assert document["training_curves"]["model/epoch_loss"] == {"0": 3.0}

    def test_metrics_aggregation_accepts_null_t(self):
        from repro.telemetry import aggregate_trace

        sink = aggregate_trace([_metric("model/epoch_loss", 3.0, 0)])
        families = sink.aggregator.snapshot()["families"]
        assert families["repro_training_metric"]["series"][0]["value"] == 3.0
