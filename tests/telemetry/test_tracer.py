"""Tracer and sink behavior, including the disabled fast path."""

import json

import pytest

from repro.telemetry import (
    NULL_TRACER,
    JsonlSink,
    MemorySink,
    NullSink,
    Tracer,
    validate_record,
)


class TestDisabledTracer:
    def test_default_tracer_is_disabled(self):
        tracer = Tracer()
        assert not tracer.enabled
        assert isinstance(tracer.sink, NullSink)

    def test_disabled_tracer_never_records(self):
        tracer = Tracer()
        tracer.emit("event.publish", queue="Ingest", depth=1)
        tracer.metric("train/eval_reward", -1.0, step=0)
        tracer.count("refinement/lends")
        assert tracer.records_written == 0
        assert tracer.counters == {}

    def test_bind_clock_is_noop_when_disabled(self):
        """The shared NULL_TRACER must not retain per-run clock state."""
        tracer = Tracer()
        tracer.bind_clock(lambda: 99.0)
        assert tracer.now() is None

    def test_null_tracer_singleton_stays_clean(self):
        NULL_TRACER.bind_clock(lambda: 1.0)
        NULL_TRACER.emit("event.publish", queue="x", depth=1)
        NULL_TRACER.count("x")
        assert NULL_TRACER.now() is None
        assert NULL_TRACER.records_written == 0
        assert NULL_TRACER.counters == {}


class TestEnabledTracer:
    def test_envelope_and_clock(self):
        sink = MemorySink()
        tracer = Tracer(sink)
        assert tracer.enabled
        tracer.emit("event.publish", queue="Ingest", depth=2)
        tracer.bind_clock(lambda: 42.5)
        tracer.emit("event.publish", queue="Ingest", depth=3)
        assert len(sink) == 2
        assert sink.records[0]["t"] is None  # before the clock was bound
        assert sink.records[1] == {
            "kind": "event.publish", "t": 42.5, "queue": "Ingest", "depth": 3,
        }
        for record in sink.records:
            validate_record(record)

    def test_metric_record_shape(self):
        sink = MemorySink()
        tracer = Tracer(sink, clock=lambda: 7.0)
        tracer.metric("model/epoch_loss", 0.25, step=3)
        tracer.metric("unstepped", 1.0)
        assert sink.records[0] == {
            "kind": "metric", "t": 7.0, "name": "model/epoch_loss",
            "value": 0.25, "step": 3,
        }
        assert sink.records[1]["step"] is None
        for record in sink.records:
            validate_record(record)

    def test_counters_do_not_write_records(self):
        sink = MemorySink()
        tracer = Tracer(sink)
        tracer.count("refinement/lends")
        tracer.count("refinement/lends", 4)
        assert tracer.counters == {"refinement/lends": 5}
        assert len(sink) == 0
        assert tracer.records_written == 0


class TestJsonlSink:
    def test_writes_one_json_object_per_line(self, tmp_path):
        path = tmp_path / "runs" / "trace.jsonl"  # parent dir auto-created
        with JsonlSink(path) as sink:
            tracer = Tracer(sink, clock=lambda: 1.0)
            tracer.emit("event.publish", queue="Ingest", depth=1)
            tracer.emit("event.redeliver", queue="Ingest", depth=2)
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 2
        assert sink.records_written == 2
        first = json.loads(lines[0])
        assert first == {
            "kind": "event.publish", "t": 1.0, "queue": "Ingest", "depth": 1,
        }

    def test_close_is_idempotent_and_blocks_writes(self, tmp_path):
        sink = JsonlSink(tmp_path / "trace.jsonl")
        sink.write({"kind": "metric", "t": None, "name": "x", "value": 1.0,
                    "step": None})
        sink.close()
        sink.close()
        with pytest.raises(RuntimeError, match="closed"):
            sink.write({"kind": "metric"})
