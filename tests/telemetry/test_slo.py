"""SLO engine tests: spec loading, verdict logic, replay determinism,
and the conformance exit code."""

import json

import pytest

from repro.telemetry import (
    MemorySink,
    MetricsSink,
    Tracer,
    aggregate_trace,
    analyze_trace,
    evaluate_slos,
    load_slo_specs,
    render_slo_result,
    slo_report_json,
    write_slo_report,
)
from repro.telemetry.slo import SloError, SloSpec

from tests.telemetry.test_instrumentation import drive, traced_system


@pytest.fixture(scope="module")
def run():
    """One traced run shared by the module: records + live snapshot."""
    sink = MemorySink()
    metrics = MetricsSink(sink)
    system = traced_system(Tracer(metrics), seed=3)
    drive(system)
    return {"records": sink.records, "snapshot": metrics.snapshot()}


class TestSpecs:
    def test_requires_known_op(self):
        with pytest.raises(SloError, match="op must be one of"):
            SloSpec("x", "response_time_p99", 1.0, op="<")

    def test_burn_budget_range_checked(self):
        with pytest.raises(SloError, match="burn_budget"):
            SloSpec("x", "response_p99", 1.0, window=3, burn_budget=1.5)

    def test_window_selector_vocabulary_checked(self):
        with pytest.raises(SloError, match="burn-rate selector"):
            SloSpec("x", "response_time_p99", 1.0, window=3)

    def test_ok_direction(self):
        le = SloSpec("a", "completions", 5.0, op="<=")
        ge = SloSpec("b", "completions", 5.0, op=">=")
        assert le.ok(5.0) and not le.ok(5.1)
        assert ge.ok(5.0) and not ge.ok(4.9)


class TestLoading:
    def test_toml_tool_table(self, tmp_path):
        spec_file = tmp_path / "slo.toml"
        spec_file.write_text(
            "[[tool.repro.slo.objectives]]\n"
            'name = "deadline"\nmetric = "response_time_p99"\n'
            "threshold = 300.0\n"
            "[[tool.repro.slo.objectives]]\n"
            'name = "burn"\nmetric = "response_p95"\n'
            "threshold = 100.0\nwindow = 4\nburn_budget = 0.5\n",
            encoding="utf-8",
        )
        specs = load_slo_specs(spec_file)
        assert [s.name for s in specs] == ["deadline", "burn"]
        assert specs[1].window == 4 and specs[1].burn_budget == 0.5

    def test_json_objectives_and_bare_list(self, tmp_path):
        table = {"name": "n", "metric": "completions", "threshold": 1,
                 "op": ">="}
        wrapped = tmp_path / "a.json"
        wrapped.write_text(json.dumps({"objectives": [table]}))
        bare = tmp_path / "b.json"
        bare.write_text(json.dumps([table]))
        assert load_slo_specs(wrapped) == load_slo_specs(bare)

    def test_unknown_field_rejected(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps([{
            "name": "n", "metric": "completions", "threshold": 1,
            "severity": "page",
        }]))
        with pytest.raises(SloError, match="unknown SLO spec fields"):
            load_slo_specs(bad)

    def test_empty_file_rejected(self, tmp_path):
        empty = tmp_path / "empty.json"
        empty.write_text("[]")
        with pytest.raises(SloError, match="no SLO objectives"):
            load_slo_specs(empty)


class TestEndOfRunVerdicts:
    def test_pass_and_fail_against_real_snapshot(self, run):
        specs = [
            SloSpec("loose", "response_time_p99", 1e9),
            SloSpec("tight", "response_time_p99", 0.0),
        ]
        result = evaluate_slos(specs, run["snapshot"])
        verdicts = {v.spec.name: v for v in result.verdicts}
        assert verdicts["loose"].verdict == "pass"
        assert verdicts["tight"].verdict == "fail"
        assert not result.passed

    def test_label_filter_selects_one_series(self, run):
        labeled = SloSpec(
            "t3", "response_time_count", 0.0, op=">=", label="Type3"
        )
        value = evaluate_slos([labeled], run["snapshot"]).verdicts[0].value
        families = run["snapshot"]["families"]
        series = families["repro_response_time_seconds"]["series"]
        expected = [
            s["count"] for s in series if s["labels"]["workflow"] == "Type3"
        ]
        assert value == float(expected[0])

    def test_missing_label_is_an_error(self, run):
        spec = SloSpec("x", "response_time_p99", 1.0, label="NoSuchFlow")
        with pytest.raises(SloError, match="no .* series with label"):
            evaluate_slos([spec], run["snapshot"])

    def test_ratio_selectors(self, run):
        ratios = evaluate_slos(
            [
                SloSpec("redeliver", "redelivery_rate", 1.0),
                SloSpec("complete", "completion_ratio", 0.0, op=">="),
            ],
            run["snapshot"],
        )
        for verdict in ratios.verdicts:
            assert 0.0 <= verdict.value <= 1.0

    def test_unknown_selector_rejected(self, run):
        with pytest.raises(SloError, match="unknown metric selector"):
            evaluate_slos(
                [SloSpec("x", "latency_p99", 1.0)], run["snapshot"]
            )

    def test_why_quotes_critical_path_bottleneck(self, run):
        critical = analyze_trace(run["records"])
        result = evaluate_slos(
            [SloSpec("tight", "response_time_p99", 0.0)],
            run["snapshot"],
            critical=critical,
        )
        assert "critical-path bottlenecks" in result.verdicts[0].why


class TestBurnRateVerdicts:
    def _snapshot(self, p95_rows):
        return {
            "families": {},
            "window_series": [
                {"window": i, "response_p95": v, "completions": 1,
                 "wip_total": 0.0, "reward": 0.0}
                for i, v in enumerate(p95_rows)
            ],
        }

    def test_pass_burn_fail_thresholds(self):
        spec = SloSpec(
            "burn", "response_p95", 100.0, window=4, burn_budget=0.25
        )
        cases = {
            (50, 50, 50, 50): "pass",
            (50, 50, 50, 150): "burn",   # 1/4 <= budget
            (50, 150, 150, 150): "fail",  # 3/4 > budget
        }
        for rows, expected in cases.items():
            result = evaluate_slos([spec], self._snapshot(list(rows)))
            assert result.verdicts[0].verdict == expected, rows

    def test_burn_counts_only_last_window_rows(self):
        spec = SloSpec("burn", "response_p95", 100.0, window=2)
        result = evaluate_slos(
            [spec], self._snapshot([500, 500, 50, 50])
        )
        verdict = result.verdicts[0]
        assert verdict.verdict == "pass"
        assert verdict.windows_total == 2

    def test_burn_verdict_does_not_fail_conformance(self):
        spec = SloSpec(
            "burn", "response_p95", 100.0, window=4, burn_budget=0.5
        )
        result = evaluate_slos([spec], self._snapshot([50, 50, 50, 150]))
        assert result.verdicts[0].verdict == "burn"
        assert result.passed


class TestReportDeterminism:
    def test_live_and_replayed_reports_byte_identical(self, run):
        """Live aggregation during the run and offline replay of the
        same records produce the same slo_report.json bytes."""
        specs = [
            SloSpec("deadline", "response_time_p99", 300.0),
            SloSpec("burn", "response_p95", 100.0, window=3,
                    burn_budget=0.4),
            SloSpec("floor", "completions", 1.0, op=">="),
        ]
        live = slo_report_json(evaluate_slos(specs, run["snapshot"]))
        replayed = slo_report_json(
            evaluate_slos(specs, aggregate_trace(run["records"]).snapshot())
        )
        assert live == replayed

    def test_write_and_render(self, run, tmp_path):
        result = evaluate_slos(
            [SloSpec("loose", "response_time_p99", 1e9)], run["snapshot"]
        )
        target = write_slo_report(tmp_path, result)
        assert target.name == "slo_report.json"
        assert json.loads(target.read_text())["passed"] is True
        assert "SLO conformance: PASS" in render_slo_result(result)


class TestCli:
    @pytest.fixture()
    def trace_dir(self, run, tmp_path):
        trace = tmp_path / "trace.jsonl"
        with trace.open("w", encoding="utf-8") as fh:
            for record in run["records"]:
                fh.write(json.dumps(record, sort_keys=True) + "\n")
        return tmp_path

    def _specs_file(self, tmp_path, threshold):
        specs = tmp_path / "specs.json"
        specs.write_text(json.dumps([{
            "name": "deadline", "metric": "response_time_p99",
            "threshold": threshold,
        }]))
        return specs

    def test_exit_zero_on_pass(self, trace_dir, tmp_path, capsys):
        from repro.cli import main

        code = main([
            "slo", str(trace_dir),
            "--specs", str(self._specs_file(tmp_path, 1e9)),
        ])
        assert code == 0
        assert "SLO conformance: PASS" in capsys.readouterr().out

    def test_exit_nonzero_on_fail_and_writes_report(
        self, trace_dir, tmp_path, capsys
    ):
        from repro.cli import main

        out = tmp_path / "report"
        code = main([
            "slo", str(trace_dir),
            "--specs", str(self._specs_file(tmp_path, 0.0)),
            "--output", str(out), "--json",
        ])
        assert code == 1
        document = json.loads(capsys.readouterr().out)
        assert document["passed"] is False
        assert (out / "slo_report.json").exists()
