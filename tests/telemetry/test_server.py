"""Metrics HTTP endpoint tests (stdlib server, port 0 binds)."""

import urllib.error
import urllib.request

import pytest

from repro.telemetry import (
    PROMETHEUS_CONTENT_TYPE,
    MetricsAggregator,
    MetricsServer,
    serve_metrics,
)


@pytest.fixture()
def aggregator():
    agg = MetricsAggregator()
    agg.observe({"kind": "event.arrival", "t": 1.0,
                 "workflow": "Type1", "request_id": 0})
    agg.observe({"kind": "event.workflow_complete", "t": 11.0,
                 "workflow": "Type1", "request_id": 0,
                 "response_time": 10.0})
    return agg


def _get(url):
    with urllib.request.urlopen(url, timeout=5) as resp:
        return resp.status, resp.headers["Content-Type"], resp.read()


class TestMetricsServer:
    def test_serves_exposition_bytes(self, aggregator):
        with MetricsServer(aggregator.to_prometheus, port=0) as server:
            host, port = server.address
            status, ctype, body = _get(f"http://{host}:{port}/metrics")
        assert status == 200
        assert ctype == PROMETHEUS_CONTENT_TYPE
        assert body.decode("utf-8") == aggregator.to_prometheus()
        assert body.endswith(b"\n")

    def test_root_path_serves_too(self, aggregator):
        with MetricsServer(aggregator.to_prometheus, port=0) as server:
            host, port = server.address
            status, _, body = _get(f"http://{host}:{port}/")
        assert status == 200 and body

    def test_unknown_path_is_404(self, aggregator):
        with MetricsServer(aggregator.to_prometheus, port=0) as server:
            host, port = server.address
            with pytest.raises(urllib.error.HTTPError) as err:
                _get(f"http://{host}:{port}/healthz")
            assert err.value.code == 404

    def test_render_is_reinvoked_per_scrape(self, aggregator):
        """A long-lived process can serve live aggregates."""
        with serve_metrics(aggregator.to_prometheus, port=0) as server:
            host, port = server.address
            url = f"http://{host}:{port}/metrics"
            _, _, before = _get(url)
            aggregator.observe({"kind": "event.arrival", "t": 2.0,
                                "workflow": "Type2", "request_id": 1})
            _, _, after = _get(url)
        assert before != after
        assert b'workflow="Type2"' in after

    def test_stop_releases_port(self, aggregator):
        server = MetricsServer(aggregator.to_prometheus, port=0).start()
        host, port = server.address
        server.stop()
        with pytest.raises(Exception):
            _get(f"http://{host}:{port}/metrics")
