"""CLI round-trip: ``repro trace`` writes a run directory that
``repro report`` can summarize."""

import json

import pytest

from repro.cli import build_parser, main
from repro.telemetry import load_trace, read_manifest
from repro.telemetry.records import SCHEMA_VERSION


class TestParser:
    def test_trace_defaults(self):
        args = build_parser().parse_args(["trace", "--output", "runs/t"])
        assert args.dataset == "msd"
        assert args.mode == "simulate"
        assert args.allocator == "uniform"
        assert args.burst == 0
        assert args.seed == 0

    def test_trace_requires_output(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["trace"])

    def test_report_takes_path_and_validate(self):
        args = build_parser().parse_args(["report", "runs/t", "--validate"])
        assert args.path == "runs/t"
        assert args.validate


class TestTraceReportRoundTrip:
    @pytest.fixture(scope="class")
    def run_dir(self, tmp_path_factory):
        outdir = tmp_path_factory.mktemp("runs") / "trace-msd"
        code = main([
            "trace", "--dataset", "msd", "--allocator", "heft",
            "--burst", "0", "--steps", "3", "--seed", "1000",
            "--output", str(outdir),
        ])
        assert code == 0
        return outdir

    def test_trace_writes_jsonl_and_manifest(self, run_dir):
        records = load_trace(run_dir, validate=True)
        assert records
        manifest = read_manifest(run_dir)
        assert manifest.run_name == "trace-msd"
        assert manifest.seed == 1000
        assert manifest.records_written == len(records)
        assert manifest.config["allocator"] == "heft"
        assert manifest.sim_time_end > 0
        assert manifest.wall_time is not None
        assert "--seed 1000" in manifest.command

    def test_manifest_is_valid_json_with_sorted_keys(self, run_dir):
        raw = (run_dir / "manifest.json").read_text()
        data = json.loads(raw)
        assert list(data) == sorted(data)

    def test_report_summarizes_the_run(self, run_dir, capsys):
        code = main(["report", str(run_dir), "--validate"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Per-microservice utilization" in out
        assert "Queue depth" in out
        assert "Container lifecycle" in out
        assert "seed 1000" in out
        assert f"schema v{SCHEMA_VERSION}" in out

    def test_report_accepts_explicit_file_path(self, run_dir, capsys):
        code = main(["report", str(run_dir / "trace.jsonl")])
        assert code == 0
        out = capsys.readouterr().out
        assert "Per-microservice utilization" in out

    def test_report_missing_trace_fails(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            main(["report", str(tmp_path / "nope")])


class TestTraceTrainMode(object):
    def test_train_mode_emits_training_curves(self, tmp_path, capsys,
                                              monkeypatch):
        from repro.core.config import MirasConfig, ModelConfig, PolicyConfig
        from repro.rl.ddpg import DDPGConfig

        def tiny_config(cls):
            return MirasConfig(
                model=ModelConfig(hidden_sizes=(8,), epochs=2),
                policy=PolicyConfig(
                    ddpg=DDPGConfig(hidden_sizes=(16,), batch_size=8),
                    rollout_length=4,
                    rollouts_per_iteration=2,
                    patience=2,
                ),
                steps_per_iteration=15,
                reset_interval=10,
                iterations=1,
                eval_steps=2,
            )

        monkeypatch.setattr(MirasConfig, "msd_fast", classmethod(tiny_config))
        outdir = tmp_path / "trace-train"
        code = main([
            "trace", "--dataset", "msd", "--mode", "train",
            "--iterations", "1", "--seed", "0", "--output", str(outdir),
        ])
        assert code == 0
        records = load_trace(outdir, validate=True)
        names = {r["name"] for r in records if r["kind"] == "metric"}
        assert "model/epoch_loss" in names
        assert "train/eval_reward" in names
        capsys.readouterr()
        assert main(["report", str(outdir)]) == 0
        assert "Training curves" in capsys.readouterr().out
