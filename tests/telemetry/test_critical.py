"""Critical-path analyzer tests: chain reconstruction, the exact-sum
invariant, bottleneck rollups, and replay determinism."""

import json
import math

from repro.sim.faults import crash_one_consumer
from repro.telemetry import (
    MemorySink,
    Tracer,
    analyze_run,
    analyze_trace,
    critical_report_json,
    render_critical,
)
from repro.telemetry.critical import _reconcile

from tests.telemetry.test_instrumentation import drive, traced_system


def traced_records(seed=3, windows=4):
    sink = MemorySink()
    system = traced_system(Tracer(sink), seed=seed)
    drive(system, windows=windows)
    return sink.records


class TestExactSumInvariant:
    def test_stage_attributions_sum_bitwise_to_makespan(self):
        """The tentpole invariant: per request, stage durations fsum
        exactly — bitwise — to the measured end-to-end response time."""
        report = analyze_trace(traced_records())
        assert report.requests, "run completed no workflows"
        for request in report.requests:
            assert request.total() == request.makespan, (
                request.request_id,
                request.total().hex(),
                request.makespan.hex(),
            )
        assert report.exact_sum_ok()

    def test_invariant_holds_across_seeds(self):
        for seed in (0, 7, 41):
            report = analyze_trace(traced_records(seed=seed))
            assert report.exact_sum_ok(), seed

    def test_invariant_survives_fault_retries(self):
        """Crash-driven redeliveries route wait time through the retry
        stage without breaking the sum."""
        sink = MemorySink()
        system = traced_system(Tracer(sink), seed=5)
        system.inject_burst({"Type3": 12})
        system.apply_allocation([4, 4, 3, 3])
        system.run_window()
        crash_one_consumer(system.microservices["Segment"])
        for _ in range(4):
            system.run_window()
        report = analyze_trace(sink.records)
        assert report.requests
        assert report.exact_sum_ok()


class TestReconcile:
    def test_empty_and_exact_inputs_pass_through(self):
        assert _reconcile([], 0.0) == []
        durations = [1.0, 2.0, 3.0]
        assert _reconcile(durations, math.fsum(durations)) == durations

    def test_one_ulp_residual_is_absorbed(self):
        durations = [0.1] * 10
        makespan = math.nextafter(math.fsum(durations), math.inf)
        out = _reconcile(durations, makespan)
        assert math.fsum(out) == makespan

    def test_residual_below_largest_ulp_is_absorbed(self):
        """The round-to-even tie case: a residual smaller than the
        largest element's ulp must still reach bitwise equality."""
        durations = [
            0.8963571236148482,
            1.2579605549086352,
            3.119517088027207,
            23.405432825018018,
        ]
        makespan = math.nextafter(math.fsum(durations), -math.inf)
        out = _reconcile(durations, makespan)
        assert math.fsum(out) == makespan


class TestChains:
    def test_every_completion_is_attributed(self):
        records = traced_records()
        completions = [
            r for r in records if r["kind"] == "event.workflow_complete"
        ]
        report = analyze_trace(records)
        assert len(report.requests) == len(completions)

    def test_chains_resolve_exactly(self):
        """Exact-timestamp trigger matching covers every request in an
        ordinary run — no join fallbacks."""
        report = analyze_trace(traced_records())
        assert all(r.exact_chain for r in report.requests)
        assert all(r.hops >= 1 for r in report.requests)

    def test_stage_durations_are_nonnegative(self):
        report = analyze_trace(traced_records())
        for request in report.requests:
            for stage in request.stages:
                # The reconcile fold may perturb one duration by ulps,
                # never by more.
                assert stage.duration > -1e-9

    def test_spanless_trace_falls_back_to_join(self):
        """Pre-v3 traces (no event.task_span) still satisfy the sum
        invariant via a single whole-makespan join stage."""
        records = [
            r for r in traced_records() if r["kind"] != "event.task_span"
        ]
        report = analyze_trace(records)
        assert report.requests
        assert report.exact_sum_ok()
        for request in report.requests:
            assert not request.exact_chain
            assert [s.stage for s in request.stages] == ["join"]


class TestRollups:
    def test_bottlenecks_ranked_and_shares_sum_to_one(self):
        report = analyze_trace(traced_records())
        rows = report.bottlenecks(top_k=10_000)
        totals = [row["total_seconds"] for row in rows]
        assert totals == sorted(totals, reverse=True)
        assert math.fsum(row["share"] for row in rows) == 1.0
        for row in rows:
            assert row["requests"] >= 1

    def test_stage_totals_cover_all_attributed_time(self):
        report = analyze_trace(traced_records())
        totals = report.stage_totals()
        grand = math.fsum(totals.values())
        makespans = math.fsum(r.makespan for r in report.requests)
        assert abs(grand - makespans) < 1e-6

    def test_render_mentions_invariant(self):
        text = render_critical(analyze_trace(traced_records()))
        assert "exact-sum invariant: ok" in text


class TestDeterminism:
    def test_live_and_replayed_reports_byte_identical(self, tmp_path):
        """A trace written to disk and re-read yields the identical
        canonical report document."""
        records = traced_records(seed=9)
        trace = tmp_path / "trace.jsonl"
        with trace.open("w", encoding="utf-8") as fh:
            for record in records:
                fh.write(json.dumps(record, sort_keys=True) + "\n")
        live = critical_report_json(analyze_trace(records))
        replayed = critical_report_json(analyze_run(trace))
        assert live == replayed

    def test_report_json_is_canonical(self):
        report = analyze_trace(traced_records())
        document = critical_report_json(report)
        assert document.endswith("\n")
        parsed = json.loads(document)
        assert parsed["critical_version"] == 1
        assert parsed["exact_sum_ok"] is True
        again = json.dumps(
            parsed, sort_keys=True, separators=(",", ":")
        ) + "\n"
        assert again == document
