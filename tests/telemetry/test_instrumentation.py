"""End-to-end instrumentation tests: the simulator and training loop
emit schema-valid records, traces are deterministic, and the disabled
path stays silent."""

import json

import pytest

from repro.sim import MicroserviceEnv, MicroserviceWorkflowSystem, SystemConfig
from repro.sim.faults import crash_one_consumer
from repro.telemetry import (
    NULL_TRACER,
    JsonlSink,
    MemorySink,
    Tracer,
    validate_record,
)
from repro.workflows import build_msd_ensemble
from repro.workload import MSD_BACKGROUND_RATES, PoissonArrivalProcess


def traced_system(tracer, seed=3):
    system = MicroserviceWorkflowSystem(
        build_msd_ensemble(),
        SystemConfig(consumer_budget=14),
        seed=seed,
        tracer=tracer,
    )
    PoissonArrivalProcess(MSD_BACKGROUND_RATES).attach(system)
    return system


def drive(system, windows=4):
    system.inject_burst({"Type3": 10})
    system.apply_allocation([4, 4, 3, 3])
    system.run_window()
    crash_one_consumer(system.microservices["Preprocess"])
    system.apply_allocation([0, 6, 4, 4])  # kill path -> redeliveries
    for _ in range(windows - 1):
        system.run_window()


class TestSimInstrumentation:
    def test_emits_schema_valid_records_of_expected_kinds(self):
        sink = MemorySink()
        system = traced_system(Tracer(sink))
        drive(system)
        assert system.conservation_ok()
        for record in sink.records:
            validate_record(record)
        kinds = {record["kind"] for record in sink.records}
        assert {
            "event.arrival", "event.workflow_complete", "event.publish",
            "event.redeliver", "event.consumer_start",
            "event.consumer_ready", "event.consumer_stop",
            "event.placement", "event.release", "event.fault",
            "span.window",
        } <= kinds

    def test_timestamps_follow_simulation_clock(self):
        sink = MemorySink()
        system = traced_system(Tracer(sink))
        drive(system)
        times = [r["t"] for r in sink.records]
        assert all(t is not None for t in times)
        assert times == sorted(times)
        assert times[-1] == pytest.approx(system.loop.now)

    def test_window_span_matches_observation(self):
        sink = MemorySink()
        system = traced_system(Tracer(sink))
        system.inject_burst({"Type3": 5})
        system.apply_allocation([4, 4, 3, 3])
        observation = system.run_window()
        spans = [r for r in sink.records if r["kind"] == "span.window"]
        assert len(spans) == 1
        span = spans[0]
        assert span["index"] == 0
        assert span["reward"] == pytest.approx(observation.reward)
        assert span["end"] - span["start"] == pytest.approx(
            system.config.window_length
        )
        names = list(system.microservices)
        for i, name in enumerate(names):
            assert span["wip"][name] == pytest.approx(observation.wip[i])

    def test_startup_latency_in_configured_range(self):
        sink = MemorySink()
        system = traced_system(Tracer(sink))
        drive(system)
        low, high = system.config.startup_delay_range
        readies = [r for r in sink.records
                   if r["kind"] == "event.consumer_ready"]
        assert readies
        for record in readies:
            assert low <= record["startup_latency"] <= high


class TestDisabledPath:
    def test_untraced_run_leaves_null_tracer_silent(self):
        before = NULL_TRACER.records_written
        system = traced_system(NULL_TRACER)
        drive(system)
        assert system.tracer is NULL_TRACER
        assert NULL_TRACER.records_written == before
        assert NULL_TRACER.counters == {}
        assert NULL_TRACER.now() is None

    def test_default_system_uses_null_tracer(self):
        system = MicroserviceWorkflowSystem(
            build_msd_ensemble(), SystemConfig(consumer_budget=14), seed=0
        )
        assert system.tracer is NULL_TRACER
        for microservice in system.microservices.values():
            assert microservice.tracer is NULL_TRACER


class TestTraceDeterminism:
    def test_same_seed_produces_identical_trace_bytes(self, tmp_path):
        contents = []
        for run in ("a", "b"):
            path = tmp_path / run / "trace.jsonl"
            tracer = Tracer(JsonlSink(path))
            system = traced_system(tracer, seed=11)
            drive(system)
            tracer.close()
            contents.append(path.read_bytes())
        assert contents[0] == contents[1]
        assert len(contents[0]) > 0

    def test_different_seeds_diverge(self, tmp_path):
        contents = []
        for seed in (11, 12):
            path = tmp_path / str(seed) / "trace.jsonl"
            tracer = Tracer(JsonlSink(path))
            drive(traced_system(tracer, seed=seed))
            tracer.close()
            contents.append(path.read_bytes())
        assert contents[0] != contents[1]


class TestTrainingInstrumentation:
    @pytest.fixture(scope="class")
    def training_trace(self):
        from repro.core import MirasAgent
        from repro.core.config import MirasConfig, ModelConfig, PolicyConfig
        from repro.rl.ddpg import DDPGConfig

        tiny = MirasConfig(
            model=ModelConfig(hidden_sizes=(8,), epochs=3),
            policy=PolicyConfig(
                ddpg=DDPGConfig(hidden_sizes=(16,), batch_size=8),
                rollout_length=5,
                rollouts_per_iteration=2,
                patience=2,
            ),
            steps_per_iteration=20,
            reset_interval=10,
            iterations=1,
            eval_steps=3,
        )
        sink = MemorySink()
        tracer = Tracer(sink)
        system = traced_system(tracer, seed=0)
        agent = MirasAgent(MicroserviceEnv(system), tiny, seed=0)
        agent.iterate()
        return sink.records, tracer

    def test_training_metrics_emitted_and_valid(self, training_trace):
        records, _ = training_trace
        metrics = [r for r in records if r["kind"] == "metric"]
        for record in metrics:
            validate_record(record)
        names = {r["name"] for r in metrics}
        assert {
            "model/epoch_loss", "train/model_loss", "train/eval_reward",
            "train/dataset_size", "train/param_noise_sigma",
            "train/refinement_lends", "train/refinement_lend_delta",
        } <= names

    def test_agent_inherits_system_tracer(self, training_trace):
        _, tracer = training_trace
        assert tracer.counters.get("refinement/lends", 0) > 0

    def test_trace_serialises_to_json(self, training_trace):
        records, _ = training_trace
        for record in records:
            json.dumps(record)
