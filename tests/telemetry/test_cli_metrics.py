"""CLI round-trips for the observability surface: ``repro metrics``,
``repro profile run`` / ``repro profile report``, ``repro report --json``
— and the live-vs-replay equality of the metrics files they write."""

import json

import pytest

from repro.cli import build_parser, main
from repro.telemetry import PROFILE_VERSION, load_trace
from repro.telemetry.metrics import SNAPSHOT_VERSION


@pytest.fixture(scope="module")
def run_dir(tmp_path_factory):
    """One short traced simulate run shared by all round-trip tests."""
    outdir = tmp_path_factory.mktemp("runs") / "trace-msd"
    code = main([
        "trace", "--dataset", "msd", "--allocator", "uniform",
        "--burst", "0", "--steps", "3", "--seed", "5",
        "--output", str(outdir),
    ])
    assert code == 0
    return outdir


class TestParser:
    def test_metrics_defaults(self):
        args = build_parser().parse_args(["metrics", "runs/t"])
        assert args.path == "runs/t"
        assert args.format == "text"
        assert args.output is None
        assert not args.validate

    def test_metrics_format_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["metrics", "runs/t",
                                       "--format", "xml"])

    def test_profile_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["profile"])

    def test_profile_run_takes_trace_options(self):
        args = build_parser().parse_args([
            "profile", "run", "--dataset", "msd", "--output", "runs/p",
        ])
        assert args.profile_command == "run"
        assert args.mode == "simulate"

    def test_profile_report_takes_max_depth(self):
        args = build_parser().parse_args([
            "profile", "report", "runs/p", "--max-depth", "2",
        ])
        assert args.profile_command == "report"
        assert args.max_depth == 2

    def test_report_json_flag(self):
        args = build_parser().parse_args(["report", "runs/t", "--json"])
        assert args.json


class TestTraceWritesMetrics:
    def test_trace_run_writes_metrics_files(self, run_dir):
        document = json.loads((run_dir / "metrics.json").read_text())
        assert document["snapshot_version"] == SNAPSHOT_VERSION
        assert "repro_windows_total" in document["families"]
        assert (run_dir / "metrics.prom").read_text().startswith("# HELP")

    def test_replay_reproduces_live_metrics_file(self, run_dir, tmp_path,
                                                 capsys):
        """`repro metrics --output` on the trace must reproduce the
        metrics.json the live run wrote, byte for byte."""
        replay_dir = tmp_path / "replay"
        code = main([
            "metrics", str(run_dir), "--validate",
            "--output", str(replay_dir),
        ])
        assert code == 0
        capsys.readouterr()
        assert (
            (replay_dir / "metrics.json").read_bytes()
            == (run_dir / "metrics.json").read_bytes()
        )
        assert (
            (replay_dir / "metrics.prom").read_bytes()
            == (run_dir / "metrics.prom").read_bytes()
        )


class TestMetricsFormats:
    def test_text_format(self, run_dir, capsys):
        assert main(["metrics", str(run_dir)]) == 0
        out = capsys.readouterr().out
        assert "repro_windows_total (counter)" in out

    def test_json_format_matches_file(self, run_dir, capsys):
        assert main(["metrics", str(run_dir), "--format", "json"]) == 0
        out = capsys.readouterr().out
        assert out == (run_dir / "metrics.json").read_text()

    def test_prom_format_matches_file(self, run_dir, capsys):
        assert main(["metrics", str(run_dir), "--format", "prom"]) == 0
        out = capsys.readouterr().out
        assert out == (run_dir / "metrics.prom").read_text()


class TestReportJson:
    def test_report_json_is_valid_and_consistent(self, run_dir, capsys):
        assert main(["report", str(run_dir), "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        records = load_trace(run_dir)
        assert document["records"] == len(records)
        assert document["windows"] > 0
        assert document["sim_time_end"] > 0
        assert set(document["utilization"]) == {
            "Ingest", "Preprocess", "Segment", "Analyze",
        }

    def test_plain_report_still_prints_tables(self, run_dir, capsys):
        assert main(["report", str(run_dir)]) == 0
        out = capsys.readouterr().out
        assert "Per-microservice utilization" in out


class TestProfileRun:
    @pytest.fixture(scope="class")
    def profiled_dir(self, tmp_path_factory):
        outdir = tmp_path_factory.mktemp("runs") / "prof-msd"
        code = main([
            "profile", "run", "--dataset", "msd", "--burst", "0",
            "--steps", "3", "--seed", "5", "--output", str(outdir),
        ])
        assert code == 0
        return outdir

    def test_writes_profile_json(self, profiled_dir):
        document = json.loads((profiled_dir / "profile.json").read_text())
        assert document["profile_version"] == PROFILE_VERSION
        names = [c["name"] for c in document["tree"]["children"]]
        assert "sim/dispatch" in names

    def test_profiling_is_outside_the_determinism_contract(
        self, profiled_dir, run_dir
    ):
        """Same seed/config with the profiler on: identical trace and
        metrics bytes; only profile.json differs between the runs."""
        assert (
            (profiled_dir / "trace.jsonl").read_bytes()
            == (run_dir / "trace.jsonl").read_bytes()
        )
        assert (
            (profiled_dir / "metrics.json").read_bytes()
            == (run_dir / "metrics.json").read_bytes()
        )
        assert not (run_dir / "profile.json").exists()

    def test_profile_report_renders_saved_tree(self, profiled_dir, capsys):
        assert main(["profile", "report", str(profiled_dir)]) == 0
        out = capsys.readouterr().out
        assert "sim/dispatch" in out
        assert "calls" in out

    def test_profile_report_max_depth(self, profiled_dir, capsys):
        assert main([
            "profile", "report", str(profiled_dir), "--max-depth", "0",
        ]) == 0
        assert "sim/dispatch" in capsys.readouterr().out
