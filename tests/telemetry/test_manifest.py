"""Run-manifest serialisation and the determinism contract."""

import pytest

from repro.telemetry import (
    NONDETERMINISTIC_FIELDS,
    RunManifest,
    read_manifest,
    wall_time_now,
    write_manifest,
)


def make_manifest(**overrides):
    base = dict(
        run_name="trace-msd",
        seed=7,
        config={"dataset": "msd", "consumer_budget": 14},
        command="trace --dataset msd --seed 7",
        package_version="1.0.0",
        sim_time_end=450.0,
        records_written=3720,
        counters={"refinement/lends": 19},
        wall_time=1e9,
    )
    base.update(overrides)
    return RunManifest(**base)


class TestRunManifest:
    def test_round_trip(self):
        manifest = make_manifest()
        assert RunManifest.from_dict(manifest.to_dict()) == manifest

    def test_unknown_fields_rejected(self):
        data = make_manifest().to_dict()
        data["gpu_count"] = 8
        with pytest.raises(ValueError, match="unknown manifest fields"):
            RunManifest.from_dict(data)

    def test_deterministic_dict_drops_only_wall_time(self):
        manifest = make_manifest()
        det = manifest.deterministic_dict()
        assert set(NONDETERMINISTIC_FIELDS) == {"wall_time"}
        assert "wall_time" not in det
        assert det.keys() == manifest.to_dict().keys() - NONDETERMINISTIC_FIELDS

    def test_same_seed_manifests_agree_modulo_wall_time(self):
        a = make_manifest(wall_time=1e9)
        b = make_manifest(wall_time=2e9)
        assert a != b
        assert a.deterministic_dict() == b.deterministic_dict()

    def test_wall_time_now_is_epoch_seconds(self):
        stamp = wall_time_now()
        assert isinstance(stamp, float)
        assert stamp > 1.5e9  # after 2017; sanity, not a clock test


class TestManifestIo:
    def test_write_to_directory_lands_at_manifest_json(self, tmp_path):
        manifest = make_manifest()
        target = write_manifest(tmp_path, manifest)
        assert target == tmp_path / "manifest.json"
        assert read_manifest(tmp_path) == manifest

    def test_write_to_explicit_file(self, tmp_path):
        manifest = make_manifest()
        target = write_manifest(tmp_path / "custom.json", manifest)
        assert target.name == "custom.json"
        assert read_manifest(target) == manifest

    def test_output_is_stable_json(self, tmp_path):
        """Byte-identical re-serialisation (sorted keys, trailing newline)."""
        manifest = make_manifest()
        first = write_manifest(tmp_path / "a.json", manifest).read_text()
        second = write_manifest(tmp_path / "b.json", manifest).read_text()
        assert first == second
        assert first.endswith("\n")
