"""Window-boundary semantics: what the controller can and cannot see."""

import numpy as np
import pytest

from repro.sim.system import MicroserviceWorkflowSystem, SystemConfig
from repro.workflows import build_msd_ensemble


def make_system(**kwargs):
    kwargs.setdefault("consumer_budget", 14)
    kwargs.setdefault("startup_delay_range", (0.0, 0.0))
    return MicroserviceWorkflowSystem(
        build_msd_ensemble(), SystemConfig(**kwargs), seed=2
    )


class TestWindowBoundaries:
    def test_observation_times_are_contiguous(self):
        system = make_system()
        first = system.run_window()
        second = system.run_window()
        assert first.end_time == second.start_time
        assert second.end_time - second.start_time == 30.0

    def test_completions_attributed_to_their_window(self):
        system = make_system()
        system.apply_allocation([4, 4, 3, 3])
        system.submit("Type1")  # ~12 s of service time: finishes in window 0
        first = system.run_window()
        second = system.run_window()
        assert first.completions.get("Type1", 0) == 1
        assert second.completions.get("Type1", 0) == 0

    def test_multi_window_workflow_counted_once(self):
        # One consumer everywhere: Type3 (4 tasks, ~17 s + queueing) may
        # span windows, but its completion is recorded exactly once.
        system = make_system(window_length=5.0)
        system.apply_allocation([1, 1, 1, 1])
        system.submit("Type3")
        total = 0
        for _ in range(30):
            observation = system.run_window()
            total += observation.completions.get("Type3", 0)
        assert total == 1

    def test_response_times_by_type_partition_overall(self):
        system = make_system()
        system.apply_allocation([4, 4, 3, 3])
        system.inject_burst({"Type1": 5, "Type2": 5})
        for _ in range(5):
            observation = system.run_window()
            merged = [
                t
                for times in observation.response_times_by_type.values()
                for t in times
            ]
            assert sorted(merged) == sorted(observation.response_times)

    def test_window_index_advances(self):
        system = make_system()
        assert system.run_window().index == 0
        assert system.run_window().index == 1
        assert system.window_index == 2

    def test_allocation_snapshot_in_observation(self):
        system = make_system()
        system.apply_allocation([5, 4, 3, 2])
        observation = system.run_window()
        assert np.array_equal(observation.allocation, [5, 4, 3, 2])
