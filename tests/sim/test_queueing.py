"""Tests for the ack queue (RabbitMQ-semantics contract)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.queueing import AckQueue, QueueError
from repro.sim.requests import TaskRequest, WorkflowRequest


def make_request(task="A"):
    wf = WorkflowRequest(workflow_type="W", arrival_time=0.0, total_tasks=1)
    return TaskRequest(task_type=task, workflow=wf, published_at=0.0)


class TestPublishConsume:
    def test_fifo_order(self):
        queue = AckQueue("A")
        first, second = make_request(), make_request()
        queue.publish(first)
        queue.publish(second)
        _, got_first = queue.consume()
        _, got_second = queue.consume()
        assert got_first is first
        assert got_second is second

    def test_consume_empty_returns_none(self):
        assert AckQueue("A").consume() is None

    def test_wrong_task_type_rejected(self):
        queue = AckQueue("A")
        with pytest.raises(QueueError, match="published to"):
            queue.publish(make_request(task="B"))

    def test_depth_counts_ready_and_unacked(self):
        queue = AckQueue("A")
        queue.publish(make_request())
        queue.publish(make_request())
        assert queue.depth == 2
        queue.consume()
        assert queue.ready_count == 1
        assert queue.unacked_count == 1
        assert queue.depth == 2

    def test_deliveries_counted(self):
        queue = AckQueue("A")
        request = make_request()
        queue.publish(request)
        tag, _ = queue.consume()
        assert request.deliveries == 1
        queue.nack(tag)
        queue.consume()
        assert request.deliveries == 2


class TestAckNack:
    def test_ack_removes_message(self):
        queue = AckQueue("A")
        queue.publish(make_request())
        tag, _ = queue.consume()
        queue.ack(tag)
        assert queue.depth == 0
        assert queue.acked_total == 1

    def test_double_ack_rejected(self):
        queue = AckQueue("A")
        queue.publish(make_request())
        tag, _ = queue.consume()
        queue.ack(tag)
        with pytest.raises(QueueError):
            queue.ack(tag)

    def test_unknown_tag_rejected(self):
        with pytest.raises(QueueError):
            AckQueue("A").ack(99)

    def test_nack_requeues_at_front(self):
        queue = AckQueue("A")
        first, second = make_request(), make_request()
        queue.publish(first)
        queue.publish(second)
        tag, _ = queue.consume()
        queue.nack(tag)
        _, redelivered = queue.consume()
        assert redelivered is first  # front of the queue, not the back

    def test_nack_then_ack_of_same_tag_rejected(self):
        queue = AckQueue("A")
        queue.publish(make_request())
        tag, _ = queue.consume()
        queue.nack(tag)
        with pytest.raises(QueueError):
            queue.ack(tag)


class TestSubscribers:
    def test_publish_notifies(self):
        queue = AckQueue("A")
        calls = []
        queue.subscribe(lambda: calls.append("publish"))
        queue.publish(make_request())
        assert calls == ["publish"]

    def test_nack_notifies(self):
        queue = AckQueue("A")
        calls = []
        queue.publish(make_request())
        queue.subscribe(lambda: calls.append("n"))
        tag, _ = queue.consume()
        queue.nack(tag)
        assert calls == ["n"]


class TestConservation:
    """The paper's guarantee: requests never get lost."""

    @given(
        st.lists(
            st.sampled_from(["publish", "consume", "ack", "nack"]),
            min_size=1,
            max_size=200,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_conservation_under_random_protocol(self, operations):
        queue = AckQueue("A")
        outstanding_tags = []
        for op in operations:
            if op == "publish":
                queue.publish(make_request())
            elif op == "consume":
                item = queue.consume()
                if item is not None:
                    outstanding_tags.append(item[0])
            elif op == "ack" and outstanding_tags:
                queue.ack(outstanding_tags.pop(0))
            elif op == "nack" and outstanding_tags:
                queue.nack(outstanding_tags.pop(0))
            assert queue.conservation_ok()
