"""Tests for request records."""

import pytest

from repro.sim.requests import TaskRequest, WorkflowRequest


class TestWorkflowRequest:
    def test_ids_are_unique(self):
        a = WorkflowRequest("W", 0.0, 2)
        b = WorkflowRequest("W", 0.0, 2)
        assert a.request_id != b.request_id

    def test_response_time_requires_completion(self):
        request = WorkflowRequest("W", arrival_time=10.0, total_tasks=1)
        with pytest.raises(RuntimeError, match="not complete"):
            request.response_time()
        request.completion_time = 25.0
        assert request.response_time() == 15.0
        assert request.is_complete

    def test_completed_tasks_start_empty(self):
        request = WorkflowRequest("W", 0.0, 3)
        assert request.completed_tasks == set()
        assert not request.is_complete


class TestTaskRequest:
    def test_defaults(self):
        workflow = WorkflowRequest("W", 0.0, 1)
        task = TaskRequest("A", workflow, published_at=5.0)
        assert task.deliveries == 0
        assert task.wasted_work == 0.0
        assert task.workflow is workflow

    def test_ids_are_unique(self):
        workflow = WorkflowRequest("W", 0.0, 1)
        a = TaskRequest("A", workflow, 0.0)
        b = TaskRequest("A", workflow, 0.0)
        assert a.task_id != b.task_id
