"""Tests for the RL environment wrapper."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.env import ConstraintViolation

from tests.conftest import make_msd_env


class TestDimensions:
    def test_dims_match_ensemble(self):
        env = make_msd_env()
        assert env.state_dim == 4
        assert env.action_dim == 4
        assert env.consumer_budget == 14


class TestActionMapping:
    def test_uniform_allocation_sums_to_budget(self):
        env = make_msd_env()
        allocation = env.uniform_allocation()
        assert allocation.sum() == 14
        assert allocation.max() - allocation.min() <= 1

    def test_floor_mapping_matches_paper(self):
        env = make_msd_env()
        simplex = np.array([0.5, 0.25, 0.15, 0.10])
        allocation = env.allocation_from_simplex(simplex)
        assert np.array_equal(allocation, np.floor(14 * simplex))

    def test_floor_never_exceeds_budget(self):
        env = make_msd_env()
        rng = env.system.workload_rng.fork("t")
        for _ in range(200):
            simplex = rng.generator.dirichlet(np.ones(4))
            allocation = env.allocation_from_simplex(simplex)
            assert allocation.sum() <= 14
            assert np.all(allocation >= 0)

    @given(
        st.lists(st.floats(0.01, 10.0), min_size=4, max_size=4),
    )
    @settings(max_examples=50, deadline=None)
    def test_floor_budget_property(self, raw):
        env = make_msd_env()
        simplex = np.array(raw) / np.sum(raw)
        allocation = env.allocation_from_simplex(simplex)
        assert int(allocation.sum()) <= env.consumer_budget

    def test_non_simplex_rejected(self):
        env = make_msd_env()
        with pytest.raises(ValueError, match="simplex"):
            env.allocation_from_simplex(np.array([0.5, 0.5, 0.5, 0.5]))

    def test_wrong_shape_rejected(self):
        env = make_msd_env()
        with pytest.raises(ValueError):
            env.allocation_from_simplex(np.array([1.0]))

    def test_random_allocation_feasible(self):
        env = make_msd_env()
        rng = env.system.workload_rng.fork("r")
        for _ in range(50):
            allocation = env.random_allocation(rng)
            env.check_budget(allocation)


class TestBudgetEnforcement:
    def test_over_budget_rejected(self):
        env = make_msd_env()
        with pytest.raises(ConstraintViolation, match="budget"):
            env.step(np.array([14, 14, 14, 14]))

    def test_negative_rejected(self):
        env = make_msd_env()
        with pytest.raises(ConstraintViolation):
            env.check_budget(np.array([-1, 5, 5, 5]))

    def test_exact_budget_allowed(self):
        env = make_msd_env()
        env.check_budget(np.array([14, 0, 0, 0]))


class TestResetStep:
    def test_reset_drains_to_zero(self):
        env = make_msd_env()
        env.system.inject_burst({"Type1": 40})
        state = env.reset()
        assert float(state.sum()) == 0.0
        assert env.episodes == 1

    def test_step_returns_consistent_observation(self):
        env = make_msd_env()
        env.reset()
        state, reward, observation = env.step(env.uniform_allocation())
        assert state.shape == (4,)
        assert reward == pytest.approx(1.0 - float(state.sum()))
        assert np.array_equal(observation.wip, state)
        assert env.steps_taken == 1

    def test_step_simplex(self):
        env = make_msd_env()
        env.reset()
        state, reward, _ = env.step_simplex(np.full(4, 0.25))
        assert state.shape == (4,)

    def test_observe_does_not_advance_time(self):
        env = make_msd_env()
        before = env.system.loop.now
        env.observe()
        assert env.system.loop.now == before


class TestStarvation:
    def test_zero_allocation_accumulates_wip(self):
        env = make_msd_env(seed=3)
        env.reset()
        for _ in range(10):
            state, _, _ = env.step(np.array([0, 0, 0, 0]))
        assert float(state.sum()) > 0
        assert env.system.conservation_ok()
