"""Tests for fault injection: crashes and TDS outages."""

import numpy as np
import pytest

from repro.sim.consumer import ConsumerState
from repro.sim.faults import ChaosInjector, crash_one_consumer

from tests.conftest import make_msd_env


class TestCrashOneConsumer:
    def test_busy_consumer_crash_redelivers_and_replaces(self):
        env = make_msd_env(seed=51, startup_delay_range=(0.0, 0.0))
        env.system.inject_burst({"Type1": 10})
        env.system.apply_allocation([2, 0, 0, 0])
        env.system.loop.run_until(1.0)
        ingest = env.system.microservices["Ingest"]
        assert ingest.busy_consumers == 2

        before_redelivered = ingest.queue.redelivered_total
        assert crash_one_consumer(ingest)
        assert ingest.queue.redelivered_total == before_redelivered + 1
        assert ingest.allocated == 2  # replacement launched immediately
        env.system.loop.run_until(200.0)
        assert ingest.queue.conservation_ok()
        assert env.system.conservation_ok()

    def test_crash_with_no_consumers_returns_false(self):
        env = make_msd_env(seed=52)
        ingest = env.system.microservices["Ingest"]
        assert not crash_one_consumer(ingest)

    def test_crash_idle_consumer(self):
        env = make_msd_env(seed=53, startup_delay_range=(0.0, 0.0))
        env.system.apply_allocation([1, 0, 0, 0])
        env.system.loop.run_until(1.0)
        ingest = env.system.microservices["Ingest"]
        assert crash_one_consumer(ingest)
        assert ingest.allocated == 1  # replaced


class TestChaosInjector:
    def test_crashes_do_not_lose_requests(self):
        env = make_msd_env(seed=54)
        env.system.inject_burst({"Type1": 30, "Type3": 20})
        env.system.apply_allocation([4, 4, 3, 3])
        chaos = ChaosInjector(
            env.system, consumer_crash_rate=1.0 / 20.0
        ).start()
        for _ in range(15):
            env.system.run_window()
        assert chaos.crashes_injected > 0
        assert env.system.conservation_ok()

    def test_outages_respect_quorum(self):
        env = make_msd_env(seed=55)
        chaos = ChaosInjector(
            env.system,
            tds_outage_rate=1.0 / 15.0,
            tds_outage_duration=30.0,
        ).start()
        env.system.inject_burst({"Type3": 10})
        env.system.apply_allocation([3, 3, 3, 3])
        for _ in range(20):
            env.system.run_window()
            # A majority stays up at all times.
            assert env.system.tds.healthy_count >= env.system.tds.quorum
        assert chaos.outages_injected > 0
        assert env.system.invoker.completed_total > 0

    def test_stop_halts_faults(self):
        env = make_msd_env(seed=56)
        env.system.apply_allocation([3, 3, 3, 3])
        chaos = ChaosInjector(
            env.system, consumer_crash_rate=1.0 / 5.0
        ).start()
        env.system.run_window()
        chaos.stop()
        count = chaos.crashes_injected
        for _ in range(5):
            env.system.run_window()
        assert chaos.crashes_injected == count

    def test_double_start_rejected(self):
        env = make_msd_env(seed=57)
        chaos = ChaosInjector(env.system, consumer_crash_rate=0.1).start()
        with pytest.raises(RuntimeError):
            chaos.start()

    def test_invalid_rates(self):
        env = make_msd_env(seed=58)
        with pytest.raises(ValueError):
            ChaosInjector(env.system, consumer_crash_rate=-1.0)
        with pytest.raises(ValueError):
            ChaosInjector(env.system, tds_outage_duration=0.0)

    def test_training_survives_chaos(self):
        """MIRAS training continues under faults (robustness check)."""
        from repro.core.agent import MirasAgent
        from repro.core.config import MirasConfig, ModelConfig, PolicyConfig
        from repro.rl.ddpg import DDPGConfig

        env = make_msd_env(seed=59)
        ChaosInjector(
            env.system,
            consumer_crash_rate=1.0 / 60.0,
            tds_outage_rate=1.0 / 120.0,
        ).start()
        config = MirasConfig(
            model=ModelConfig(hidden_sizes=(8,), epochs=3),
            policy=PolicyConfig(
                ddpg=DDPGConfig(hidden_sizes=(16,), batch_size=8),
                rollout_length=5,
                rollouts_per_iteration=2,
                patience=2,
            ),
            steps_per_iteration=25,
            reset_interval=10,
            iterations=1,
            eval_steps=3,
        )
        agent = MirasAgent(env, config, seed=59)
        results = agent.iterate()
        assert np.isfinite(results[0].eval_reward)
        assert env.system.conservation_ok()
