"""Direct tests of the workflow invoker's routing logic."""

import pytest

from repro.sim.events import EventLoop
from repro.sim.invoker import WorkflowInvoker
from repro.sim.queueing import AckQueue
from repro.sim.requests import TaskRequest
from repro.sim.tds import TaskDependencyService
from repro.workflows.dag import TaskType, WorkflowEnsemble, WorkflowType


def build_invoker(edges, tasks=()):
    names = set(tasks)
    for up, down in edges:
        names.add(up)
        names.add(down)
    ensemble = WorkflowEnsemble(
        "T",
        [TaskType(n, 1.0) for n in sorted(names)],
        [WorkflowType("W", edges=edges, tasks=tasks)],
    )
    loop = EventLoop()
    queues = {n: AckQueue(n) for n in ensemble.task_names()}
    completed = []
    invoker = WorkflowInvoker(
        loop,
        TaskDependencyService(ensemble),
        queues,
        on_workflow_complete=completed.append,
    )
    return loop, invoker, queues, completed


def finish(invoker, queue, now=0.0):
    """Consume + complete the next task in a queue."""
    tag, request = queue.consume()
    queue.ack(tag)
    invoker.handle_task_completion(request, now)
    return request


class TestRouting:
    def test_entry_task_published_on_submit(self):
        loop, invoker, queues, _ = build_invoker([("A", "B")])
        invoker.submit("W")
        assert queues["A"].depth == 1
        assert queues["B"].depth == 0

    def test_successor_published_after_completion(self):
        loop, invoker, queues, _ = build_invoker([("A", "B")])
        invoker.submit("W")
        finish(invoker, queues["A"])
        assert queues["B"].depth == 1

    def test_and_join_waits_for_all_predecessors(self):
        loop, invoker, queues, _ = build_invoker(
            [("A", "C"), ("B", "C")], tasks=("A", "B", "C")
        )
        invoker.submit("W")
        finish(invoker, queues["A"])
        assert queues["C"].depth == 0  # B not done yet
        finish(invoker, queues["B"])
        assert queues["C"].depth == 1

    def test_fork_publishes_all_branches(self):
        loop, invoker, queues, _ = build_invoker([("A", "B"), ("A", "C")])
        invoker.submit("W")
        finish(invoker, queues["A"])
        assert queues["B"].depth == 1
        assert queues["C"].depth == 1

    def test_completion_callback_and_time(self):
        loop, invoker, queues, completed = build_invoker([("A", "B")])
        request = invoker.submit("W")
        finish(invoker, queues["A"], now=5.0)
        finish(invoker, queues["B"], now=12.0)
        assert completed == [request]
        assert request.completion_time == 12.0
        assert request.response_time() == 12.0
        assert invoker.completed_total == 1

    def test_double_completion_raises(self):
        loop, invoker, queues, _ = build_invoker([("A", "B")])
        invoker.submit("W")
        request = finish(invoker, queues["A"])
        with pytest.raises(RuntimeError, match="completed twice"):
            invoker.handle_task_completion(request, 1.0)

    def test_unknown_queue_raises(self):
        loop, invoker, queues, _ = build_invoker([("A", "B")])
        del queues["A"]
        with pytest.raises(KeyError, match="no queue"):
            invoker.submit("W")

    def test_multi_entry_workflow(self):
        loop, invoker, queues, _ = build_invoker(
            [("A", "C"), ("B", "C")], tasks=("A", "B", "C")
        )
        invoker.submit("W")
        assert queues["A"].depth == 1
        assert queues["B"].depth == 1
