"""Unit tests for the batched-substrate building blocks.

Each registered serial/batch pair (``push``/``push_many``,
``publish``/``publish_many``, ``add_workflow``/``add_workflows``,
``add_task``/``add_tasks``, ``sample_service_time``/``sample_service_times``,
``record_arrival``/``record_arrivals``, ``entry_tasks`` et al./
``account_reads``) is exercised against its serial twin here; the
system-level equivalence suite is tests/sim/test_batched_substrate.py.
"""

import numpy as np
import pytest

from repro.sim.consumer import sample_service_time, sample_service_times
from repro.sim.metrics import DelayByArrivalWindow
from repro.sim.queueing import IndexFifo
from repro.sim.requests import RequestPool
from repro.sim.substrate import PrefetchStream
from repro.sim.tds import CompiledDependencyTable, TaskDependencyService
from repro.utils.rng import RngStream
from repro.workflows import build_ligo_ensemble, build_msd_ensemble


def make_stream(label="test", seed=0):
    return RngStream(label, np.random.SeedSequence(seed))


class TestIndexFifo:
    def test_fifo_order(self):
        fifo = IndexFifo()
        for i in (5, 3, 9):
            fifo.push(i)
        assert [fifo.pop() for _ in range(3)] == [5, 3, 9]
        assert len(fifo) == 0

    def test_push_front_redelivery_order(self):
        fifo = IndexFifo()
        fifo.push(1)
        fifo.push(2)
        fifo.push_front(7)
        assert fifo.to_list() == [7, 1, 2]

    def test_push_many_matches_serial_pushes(self):
        serial, batch = IndexFifo(), IndexFifo()
        items = list(range(100, 200))
        for i in items:
            serial.push(i)
        batch.push_many(np.array(items, dtype=np.int64))
        assert serial.to_list() == batch.to_list() == items

    def test_wraparound_growth(self):
        fifo = IndexFifo(capacity=4)
        out = []
        for i in range(1000):
            fifo.push(i)
            if i % 3 == 0:
                out.append(fifo.pop())
        out.extend(fifo.pop() for _ in range(len(fifo)))
        assert out != sorted(out) or out == sorted(out)  # drained fully
        assert sorted(out) == list(range(1000))

    def test_peek_prefix_and_consume(self):
        fifo = IndexFifo()
        fifo.push_many(np.arange(10, dtype=np.int64))
        assert fifo.peek_prefix(4).tolist() == [0, 1, 2, 3]
        fifo.consume(4)
        assert fifo.to_list() == [4, 5, 6, 7, 8, 9]

    def test_push_front_after_consume(self):
        fifo = IndexFifo()
        fifo.push_many(np.arange(20, dtype=np.int64))
        fifo.consume(20)
        for i in (42, 41, 40):
            fifo.push_front(i)
        assert fifo.to_list() == [40, 41, 42]


class TestPrefetchStream:
    def test_lognormal_bitwise_equal_to_scalar(self):
        scalar, prefetched = make_stream(seed=1), make_stream(seed=1)
        stream = PrefetchStream(prefetched, block=16)
        for _ in range(50):
            expected = float(scalar.generator.lognormal(1.0, 0.5))
            assert stream.lognormal(1.0, 0.5) == expected

    def test_interleaved_kinds_resync(self):
        """Switching draw kinds mid-stream matches the scalar sequence."""
        scalar, prefetched = make_stream(seed=2), make_stream(seed=2)
        stream = PrefetchStream(prefetched, block=8)
        pattern = ["l", "l", "u", "l", "u", "u", "l"] * 10
        for kind in pattern:
            if kind == "l":
                expected = float(scalar.generator.lognormal(2.0, 0.3))
                got = stream.lognormal(2.0, 0.3)
            else:
                expected = float(scalar.generator.uniform(5.0, 10.0))
                got = stream.uniform(5.0, 10.0)
            assert got == expected

    def test_parameter_change_resyncs(self):
        scalar, prefetched = make_stream(seed=3), make_stream(seed=3)
        stream = PrefetchStream(prefetched, block=8)
        for mean in (1.0, 2.0, 1.0):
            for _ in range(3):
                expected = float(scalar.generator.lognormal(mean, 0.5))
                assert stream.lognormal(mean, 0.5) == expected

    def test_sync_normalises_generator_state(self):
        scalar, prefetched = make_stream(seed=4), make_stream(seed=4)
        stream = PrefetchStream(prefetched, block=32)
        for _ in range(5):
            scalar.generator.lognormal(1.0, 0.5)
            stream.lognormal(1.0, 0.5)
        stream.sync()
        assert (
            prefetched.generator.bit_generator.state
            == scalar.generator.bit_generator.state
        )

    def test_begin_rollback_consumes_nothing(self):
        reference, speculative = make_stream(seed=5), make_stream(seed=5)
        stream = PrefetchStream(speculative, block=8)
        stream.lognormal(1.0, 0.5)  # consume one for a non-trivial mark
        reference.generator.lognormal(1.0, 0.5)
        mark = stream.begin()
        for _ in range(20):
            stream.lognormal(1.0, 0.5)
        stream.rollback(mark)
        for _ in range(10):
            expected = float(reference.generator.lognormal(1.0, 0.5))
            assert stream.lognormal(1.0, 0.5) == expected


class TestServiceTimeSampling:
    def test_batch_matches_serial_draws(self):
        serial, batch = make_stream(seed=6), make_stream(seed=6)
        expected = [
            sample_service_time(12.0, 0.4, serial) for _ in range(64)
        ]
        got = sample_service_times(64, 12.0, 0.4, batch)
        assert got.tolist() == expected

    def test_zero_cv_is_deterministic(self):
        assert sample_service_times(4, 7.0, 0.0, make_stream()).tolist() == [
            7.0
        ] * 4


class TestAccountReads:
    def test_matches_sequential_reads_all_healthy(self):
        ensemble = build_msd_ensemble()
        serial = TaskDependencyService(ensemble, replicas=3)
        batch = TaskDependencyService(ensemble, replicas=3)
        for _ in range(7):
            serial.entry_tasks("Type1")
        batch.account_reads(7)
        assert serial.read_distribution() == batch.read_distribution()
        # Continue mixing: the round-robin pointer must line up too.
        serial.entry_tasks("Type2")
        batch.account_reads(1)
        assert serial.read_distribution() == batch.read_distribution()

    def test_matches_sequential_reads_degraded(self):
        ensemble = build_msd_ensemble()
        serial = TaskDependencyService(ensemble, replicas=3)
        batch = TaskDependencyService(ensemble, replicas=3)
        serial.fail_server(1)
        batch.fail_server(1)
        for _ in range(11):
            serial.entry_tasks("Type1")
        batch.account_reads(11)
        assert serial.read_distribution() == batch.read_distribution()

    def test_zero_and_negative(self):
        tds = TaskDependencyService(build_msd_ensemble(), replicas=3)
        tds.account_reads(0)
        assert sum(tds.read_distribution().values()) == 0
        with pytest.raises(ValueError):
            tds.account_reads(-1)


class TestCompiledDependencyTable:
    @pytest.mark.parametrize("build", [build_msd_ensemble, build_ligo_ensemble])
    def test_matches_workflow_dags(self, build):
        ensemble = build()
        table = CompiledDependencyTable(ensemble)
        task_names = list(ensemble.task_names())
        for w, w_name in enumerate(table.workflow_names):
            workflow = ensemble.workflow(w_name)
            assert table.size[w] == workflow.size
            # Entry tasks, in the serial invoker's iteration order.
            entry_names = [task_names[g] for _local, g in table.entries[w]]
            assert entry_names == list(workflow.entry_tasks)
            # Per-task successor edges and predecessor counts.
            for t_name in workflow.tasks:
                g = ensemble.task_index(t_name)
                local = int(table.local_of_task[w][g])
                assert local >= 0
                successor_names = [
                    task_names[s_g]
                    for _s_local, s_g in table.successors[w][local]
                ]
                assert successor_names == list(workflow.successors(t_name))
                assert table.pred_counts[w][local] == len(
                    workflow.predecessors(t_name)
                )
            # Absent tasks map to -1.
            for g, name in enumerate(task_names):
                if name not in workflow.tasks:
                    assert table.local_of_task[w][g] == -1


class TestRequestPool:
    def test_add_workflows_matches_serial(self):
        preds = np.array([0, 1, 2], dtype=np.int16)
        serial, batch = RequestPool(3, capacity=2), RequestPool(3, capacity=2)
        for _ in range(50):
            serial.add_workflow(1, 10.0, 3, 4, preds)
        batch.add_workflows(50, 1, 10.0, 3, 4, preds)
        assert serial.num_workflows == batch.num_workflows == 50
        for name in ("wf_type", "wf_arrival", "wf_total_tasks",
                     "wf_done_count", "wf_arrival_window"):
            np.testing.assert_array_equal(
                getattr(serial, name)[:50], getattr(batch, name)[:50]
            )
        np.testing.assert_array_equal(
            serial.wf_pred_remaining[:50], batch.wf_pred_remaining[:50]
        )

    def test_add_tasks_matches_serial(self):
        serial, batch = RequestPool(2, capacity=2), RequestPool(2, capacity=2)
        types = np.array([0, 1, 0, 1, 1], dtype=np.int32)
        workflows = np.array([0, 0, 1, 1, 2], dtype=np.int64)
        expected = [
            serial.add_task(int(t), int(w), 5.0)
            for t, w in zip(types, workflows)
        ]
        got = batch.add_tasks(types, workflows, 5.0)
        assert got.tolist() == expected
        np.testing.assert_array_equal(
            serial.task_published_at[:5], batch.task_published_at[:5]
        )

    def test_add_tasks_per_row_timestamps(self):
        pool = RequestPool(2)
        times = np.array([1.0, 2.5, 9.0])
        pool.add_tasks(
            np.zeros(3, dtype=np.int32), np.zeros(3, dtype=np.int64), times
        )
        np.testing.assert_array_equal(pool.task_published_at[:3], times)


class TestRecordArrivals:
    def test_matches_serial_calls(self):
        serial, batch = DelayByArrivalWindow(), DelayByArrivalWindow()
        for _ in range(9):
            serial.record_arrival(2, "Type1")
        batch.record_arrivals(9, 2, "Type1")
        assert serial._arrived == batch._arrived

    def test_zero_count_is_a_noop(self):
        tracker = DelayByArrivalWindow()
        tracker.record_arrivals(0, 1, "Type1")
        assert (1, "Type1") not in tracker._arrived

    def test_negative_count_raises(self):
        with pytest.raises(ValueError, match="non-negative"):
            DelayByArrivalWindow().record_arrivals(-1, 0, "Type1")


class TestPublishMany:
    def test_matches_serial_publishes(self):
        """``publish_many`` == per-message ``publish`` (untraced path)."""
        from repro.sim import BatchedWorkflowSystem, SystemConfig

        def run(bulk):
            system = BatchedWorkflowSystem(
                build_msd_ensemble(), SystemConfig(consumer_budget=14), seed=41
            )
            system.apply_allocation([2, 2, 2, 2])
            tasks = system.pool.add_tasks(
                np.zeros(6, dtype=np.int32),
                np.zeros(6, dtype=np.int64),
                0.0,
            )
            service = system.microservices["Ingest"]
            if bulk:
                service.publish_many(tasks)
            else:
                for t in tasks.tolist():
                    service.publish(t)
            return (
                service.fifo.to_list(),
                service.published_total,
                service.unacked,
                [service.current_task[s] for s in service.order],
            )

        assert run(bulk=True) == run(bulk=False)
