"""Tests for the TDS ensemble and the cluster/placement model."""

import pytest

from repro.sim.cluster import CapacityError, Cluster, Node
from repro.sim.tds import TaskDependencyService, TdsUnavailableError
from repro.workflows import build_msd_ensemble


class TestTdsQueries:
    def test_entry_tasks(self, msd_ensemble):
        tds = TaskDependencyService(msd_ensemble)
        assert tds.entry_tasks("Type1") == ("Ingest",)

    def test_successors_follow_dag(self, msd_ensemble):
        tds = TaskDependencyService(msd_ensemble)
        assert tds.successors("Type1", "Ingest") == ("Preprocess",)
        assert set(tds.successors("Type3", "Preprocess")) == {
            "Segment",
            "Analyze",
        }

    def test_predecessors(self, msd_ensemble):
        tds = TaskDependencyService(msd_ensemble)
        assert tds.predecessors("Type1", "Preprocess") == ("Ingest",)

    def test_reads_are_load_balanced(self, msd_ensemble):
        tds = TaskDependencyService(msd_ensemble, replicas=3)
        for _ in range(30):
            tds.entry_tasks("Type1")
        reads = tds.read_distribution()
        assert all(count == 10 for count in reads.values())


class TestTdsAvailability:
    def test_survives_minority_failure(self, msd_ensemble):
        tds = TaskDependencyService(msd_ensemble, replicas=3)
        tds.fail_server(0)
        assert tds.entry_tasks("Type1") == ("Ingest",)
        assert tds.healthy_count == 2

    def test_majority_failure_raises(self, msd_ensemble):
        tds = TaskDependencyService(msd_ensemble, replicas=3)
        tds.fail_server(0)
        tds.fail_server(1)
        with pytest.raises(TdsUnavailableError, match="quorum"):
            tds.entry_tasks("Type1")

    def test_recovery_restores_service(self, msd_ensemble):
        tds = TaskDependencyService(msd_ensemble, replicas=3)
        tds.fail_server(0)
        tds.fail_server(1)
        tds.recover_server(0)
        assert tds.entry_tasks("Type1") == ("Ingest",)

    def test_failed_replica_not_queried(self, msd_ensemble):
        tds = TaskDependencyService(msd_ensemble, replicas=3)
        tds.fail_server(1)
        for _ in range(10):
            tds.entry_tasks("Type1")
        assert tds.read_distribution()[1] == 0

    def test_quorum_sizes(self, msd_ensemble):
        assert TaskDependencyService(msd_ensemble, replicas=1).quorum == 1
        assert TaskDependencyService(msd_ensemble, replicas=3).quorum == 2
        assert TaskDependencyService(msd_ensemble, replicas=5).quorum == 3

    def test_unknown_server_id(self, msd_ensemble):
        tds = TaskDependencyService(msd_ensemble)
        with pytest.raises(KeyError):
            tds.fail_server(99)

    def test_invalid_replica_count(self, msd_ensemble):
        with pytest.raises(ValueError):
            TaskDependencyService(msd_ensemble, replicas=0)


class TestNode:
    def test_allocate_release(self):
        node = Node(0, capacity=2)
        node.allocate()
        node.allocate()
        assert node.free == 0
        with pytest.raises(CapacityError):
            node.allocate()
        node.release()
        assert node.free == 1

    def test_release_empty_raises(self):
        with pytest.raises(RuntimeError):
            Node(0, capacity=1).release()

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            Node(0, capacity=0)


class TestCluster:
    def test_least_loaded_placement_balances(self):
        cluster = Cluster(num_nodes=3, node_capacity=10)
        for _ in range(9):
            cluster.place()
        assert cluster.imbalance() == 0
        assert cluster.total_used == 9

    def test_imbalance_never_exceeds_one(self):
        cluster = Cluster(num_nodes=3, node_capacity=10)
        for _ in range(10):
            cluster.place()
            assert cluster.imbalance() <= 1

    def test_capacity_error_when_full(self):
        cluster = Cluster(num_nodes=2, node_capacity=1)
        cluster.place()
        cluster.place()
        with pytest.raises(CapacityError, match="full"):
            cluster.place()

    def test_release_frees_slot(self):
        cluster = Cluster(num_nodes=1, node_capacity=1)
        node = cluster.place()
        cluster.release(node)
        assert cluster.total_free == 1
        cluster.place()

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            Cluster(num_nodes=0)
