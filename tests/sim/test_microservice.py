"""Tests for the microservice consumer pool: scaling, processing, draining."""

import numpy as np
import pytest

from repro.sim.cluster import Cluster
from repro.sim.consumer import ConsumerState, sample_service_time
from repro.sim.events import EventLoop
from repro.sim.microservice import Microservice
from repro.sim.requests import TaskRequest, WorkflowRequest
from repro.utils.rng import RngStream
from repro.workflows.dag import TaskType


def build(
    mean=2.0,
    cv=0.0,
    startup=(0.0, 0.0),
    scale_down_mode="drain",
    capacity=50,
    seed=5,
):
    loop = EventLoop()
    cluster = Cluster(num_nodes=3, node_capacity=capacity)
    completed = []
    ms = Microservice(
        TaskType("A", mean, cv=cv),
        loop=loop,
        cluster=cluster,
        rng=RngStream("ms", np.random.SeedSequence(seed)),
        on_task_complete=lambda req, now: completed.append((req, now)),
        startup_delay_range=startup,
        scale_down_mode=scale_down_mode,
    )
    return loop, cluster, ms, completed


def publish(ms, count=1):
    requests = []
    for _ in range(count):
        wf = WorkflowRequest(workflow_type="W", arrival_time=0.0, total_tasks=1)
        req = TaskRequest(task_type="A", workflow=wf, published_at=0.0)
        ms.queue.publish(req)
        requests.append(req)
    return requests


class TestSampleServiceTime:
    def test_zero_cv_is_deterministic(self, rng):
        assert sample_service_time(3.0, 0.0, rng) == 3.0

    def test_mean_is_preserved(self, rng):
        samples = [sample_service_time(4.0, 0.6, rng) for _ in range(20_000)]
        assert abs(np.mean(samples) - 4.0) < 0.1

    def test_cv_is_preserved(self, rng):
        samples = np.array(
            [sample_service_time(4.0, 0.5, rng) for _ in range(20_000)]
        )
        assert abs(samples.std() / samples.mean() - 0.5) < 0.05

    def test_invalid_args(self, rng):
        with pytest.raises(ValueError):
            sample_service_time(0.0, 0.5, rng)
        with pytest.raises(ValueError):
            sample_service_time(1.0, -0.5, rng)


class TestScaling:
    def test_scale_up_creates_consumers(self):
        loop, cluster, ms, _ = build()
        ms.scale_to(3)
        assert ms.allocated == 3
        assert cluster.total_used == 3

    def test_scale_down_removes_consumers(self):
        loop, cluster, ms, _ = build()
        ms.scale_to(3)
        ms.scale_to(1)
        assert ms.allocated == 1
        assert cluster.total_used == 1

    def test_scale_to_zero(self):
        loop, cluster, ms, _ = build()
        ms.scale_to(2)
        ms.scale_to(0)
        assert ms.allocated == 0
        assert cluster.total_used == 0

    def test_negative_rejected(self):
        loop, cluster, ms, _ = build()
        with pytest.raises(ValueError):
            ms.scale_to(-1)

    def test_startup_delay_gates_processing(self):
        loop, cluster, ms, completed = build(mean=1.0, startup=(5.0, 5.0))
        publish(ms, 1)
        ms.scale_to(1)
        loop.run_until(4.0)
        assert not completed  # still starting
        loop.run_until(6.5)
        assert len(completed) == 1  # started at 5, processed 1s task

    def test_starting_consumer_cancelled_cleanly(self):
        loop, cluster, ms, completed = build(mean=1.0, startup=(5.0, 5.0))
        ms.scale_to(1)
        ms.scale_to(0)
        loop.run_until(10.0)
        assert ms.allocated == 0
        assert ms.consumers_killed_starting == 1
        assert cluster.total_used == 0


class TestProcessing:
    def test_tasks_complete_and_ack(self):
        loop, cluster, ms, completed = build(mean=2.0)
        requests = publish(ms, 3)
        ms.scale_to(1)
        loop.run_until(6.0)
        assert len(completed) == 3
        assert [r for r, _ in completed] == requests  # FIFO
        assert ms.queue.conservation_ok()
        assert ms.wip == 0

    def test_parallel_consumers_speed_up(self):
        loop, _, ms, completed = build(mean=2.0)
        publish(ms, 4)
        ms.scale_to(4)
        loop.run_until(2.0)
        assert len(completed) == 4

    def test_wip_counts_queued_plus_in_service(self):
        loop, _, ms, _ = build(mean=10.0)
        publish(ms, 3)
        ms.scale_to(1)
        loop.run_until(1.0)
        assert ms.wip == 3  # 1 in service + 2 queued
        assert ms.busy_consumers == 1

    def test_idle_consumer_wakes_on_publish(self):
        loop, _, ms, completed = build(mean=1.0)
        ms.scale_to(1)
        loop.run_until(5.0)
        publish(ms, 1)
        loop.run_until(6.5)
        assert len(completed) == 1


class TestScaleDownDrain:
    def test_busy_consumer_finishes_task_then_exits(self):
        loop, cluster, ms, completed = build(mean=4.0, scale_down_mode="drain")
        publish(ms, 1)
        ms.scale_to(1)
        loop.run_until(1.0)
        ms.scale_to(0)
        assert ms.allocated == 0  # leaves the allocation immediately
        assert cluster.total_used == 1  # still occupies a slot while draining
        loop.run_until(5.0)
        assert len(completed) == 1  # task finished, not redelivered
        assert cluster.total_used == 0
        assert ms.queue.redelivered_total == 0

    def test_draining_consumer_takes_no_more_work(self):
        loop, _, ms, completed = build(mean=2.0, scale_down_mode="drain")
        publish(ms, 2)
        ms.scale_to(1)
        loop.run_until(0.5)
        ms.scale_to(0)
        loop.run_until(10.0)
        assert len(completed) == 1  # only the in-flight task
        assert ms.wip == 1


class TestScaleDownKill:
    def test_busy_consumer_killed_and_task_redelivered(self):
        loop, cluster, ms, completed = build(mean=4.0, scale_down_mode="kill")
        (request,) = publish(ms, 1)
        ms.scale_to(1)
        loop.run_until(1.0)
        ms.scale_to(0)
        assert ms.consumers_killed_busy == 1
        assert cluster.total_used == 0
        assert ms.queue.redelivered_total == 1
        assert request.wasted_work == pytest.approx(1.0)
        # Another consumer picks the redelivered request up.
        ms.scale_to(1)
        loop.run_until(10.0)
        assert len(completed) == 1
        assert ms.queue.conservation_ok()

    def test_victim_preference_spares_busy(self):
        loop, _, ms, _ = build(mean=100.0, scale_down_mode="kill")
        publish(ms, 1)
        ms.scale_to(3)  # one busy, two idle
        loop.run_until(1.0)
        assert ms.busy_consumers == 1
        ms.scale_to(1)  # removes the two idle ones
        assert ms.consumers_killed_busy == 0
        assert ms.busy_consumers == 1

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError, match="scale_down_mode"):
            build(scale_down_mode="nuke")
