"""Tests for SystemConfig capacity/drain derivations."""

import pytest

from repro.sim.system import SystemConfig


class TestDrainConsumers:
    def test_default_scales_with_task_count(self):
        config = SystemConfig(consumer_budget=30)
        # 3 budgets' worth over J services.
        assert config.resolved_drain_consumers(9) == 10
        assert config.resolved_drain_consumers(4) == 23

    def test_explicit_value_wins(self):
        config = SystemConfig(consumer_budget=30, drain_consumers_per_service=5)
        assert config.resolved_drain_consumers(9) == 5

    def test_floor_of_two(self):
        config = SystemConfig(consumer_budget=2)
        assert config.resolved_drain_consumers(100) == 2


class TestNodeCapacity:
    def test_headroom_covers_drain_total(self):
        config = SystemConfig(consumer_budget=30, num_nodes=3)
        capacity = config.resolved_node_capacity(9)
        drain_total = config.resolved_drain_consumers(9) * 9
        assert 3 * capacity >= 1.3 * drain_total

    def test_explicit_capacity_wins(self):
        config = SystemConfig(consumer_budget=30, node_capacity=7)
        assert config.resolved_node_capacity(9) == 7

    def test_budget_floor(self):
        config = SystemConfig(
            consumer_budget=100, drain_consumers_per_service=1, num_nodes=3
        )
        capacity = config.resolved_node_capacity(2)
        assert 3 * capacity >= 100
