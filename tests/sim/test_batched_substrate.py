"""Serial/batched substrate equivalence: the pinning suite.

docs/SIMULATOR.md states the contract these tests enforce: a
:class:`repro.sim.batched.BatchedWorkflowSystem` driven through any
scenario from the same seed produces **byte-identical traces** and
**equal state snapshots** to the serial
:class:`repro.sim.system.MicroserviceWorkflowSystem`.  Every scenario
here runs both substrates side by side and compares
:func:`repro.sim.substrate.substrate_snapshot` after every window (and
raw trace bytes where tracing is on), so any divergence pins to the
first window it appears in.
"""

import numpy as np
import pytest

from repro.sim import (
    BatchedWorkflowSystem,
    ChaosInjector,
    MicroserviceWorkflowSystem,
    SystemConfig,
    substrate_snapshot,
)
from repro.telemetry import JsonlSink, Tracer
from repro.workflows import build_ligo_ensemble, build_msd_ensemble
from repro.workload import PoissonArrivalProcess
from repro.workload.bursts import MSD_BACKGROUND_RATES

SUBSTRATES = (MicroserviceWorkflowSystem, BatchedWorkflowSystem)


def run_both(scenario, **kwargs):
    """Run ``scenario(cls, **kwargs)`` on both substrates; return results."""
    return [scenario(cls, **kwargs) for cls in SUBSTRATES]


def assert_window_snapshots_equal(serial, batched):
    for k, (a, b) in enumerate(zip(serial, batched)):
        assert a == b, f"snapshot diverged at window {k}"
    assert len(serial) == len(batched)


class TestBurstEquivalence:
    """Same seed, same burst -> same snapshot, at every burst size."""

    @pytest.mark.parametrize("burst", [1, 7, 1024])
    def test_msd_burst_snapshots(self, burst):
        def scenario(cls):
            system = cls(
                build_msd_ensemble(),
                SystemConfig(consumer_budget=14),
                seed=3,
            )
            system.apply_allocation([4, 4, 3, 3])
            system.inject_burst({"Type1": burst, "Type2": max(1, burst // 2)})
            snaps = []
            for _ in range(6):
                system.run_window()
                snaps.append(substrate_snapshot(system))
            assert system.conservation_ok()
            return snaps

        serial, batched = run_both(scenario)
        assert_window_snapshots_equal(serial, batched)

    def test_scaling_mid_run(self):
        """Allocation changes (scale up, drain down, to-zero) match."""

        def scenario(cls):
            system = cls(
                build_msd_ensemble(), SystemConfig(consumer_budget=14), seed=5
            )
            allocations = [
                [4, 4, 3, 3],
                [1, 1, 1, 1],
                [0, 6, 0, 6],
                [3, 3, 3, 3],
            ]
            system.inject_burst({"Type1": 40, "Type2": 10, "Type3": 10})
            snaps = []
            for allocation in allocations:
                system.apply_allocation(allocation)
                system.run_window()
                snaps.append(substrate_snapshot(system))
            return snaps

        serial, batched = run_both(scenario)
        assert_window_snapshots_equal(serial, batched)

    def test_kill_mode_redelivery(self):
        """Scale-down kills redeliver in the same order on both sides."""

        def scenario(cls):
            system = cls(
                build_msd_ensemble(),
                SystemConfig(consumer_budget=14, scale_down_mode="kill"),
                seed=7,
            )
            system.apply_allocation([4, 4, 3, 3])
            system.inject_burst({"Type1": 30, "Type3": 10})
            snaps = []
            for k in range(6):
                if k == 1:
                    system.apply_allocation([1, 1, 1, 1])  # busy kills
                if k == 3:
                    system.apply_allocation([4, 4, 3, 3])
                system.run_window()
                snaps.append(substrate_snapshot(system))
            redelivered = sum(
                ms.queue.redelivered_total
                for ms in system.microservices.values()
            )
            return snaps, redelivered

        (serial, redelivered_s), (batched, redelivered_b) = run_both(scenario)
        assert redelivered_s == redelivered_b
        assert redelivered_s > 0, "scenario must actually exercise redelivery"
        assert_window_snapshots_equal(serial, batched)

    def test_kill_while_starting_cancels_identically(self):
        """Scale up then immediately down: cancelled ready events match."""

        def scenario(cls):
            system = cls(
                build_msd_ensemble(), SystemConfig(consumer_budget=14), seed=9
            )
            system.apply_allocation([4, 4, 3, 3])
            system.apply_allocation([1, 0, 1, 0])  # kill mid-startup
            system.apply_allocation([2, 2, 2, 2])
            system.inject_burst({"Type1": 5})
            snaps = []
            for _ in range(4):
                system.run_window()
                snaps.append(substrate_snapshot(system))
            killed = sum(
                ms.consumers_killed_starting
                for ms in system.microservices.values()
            )
            return snaps, killed

        (serial, killed_s), (batched, killed_b) = run_both(scenario)
        assert killed_s == killed_b
        assert killed_s > 0, "scenario must cancel starting consumers"
        assert_window_snapshots_equal(serial, batched)


class TestTracedEquivalence:
    """With tracing on, the trace files are byte-for-byte identical."""

    def _traced_run(self, cls, path, scale_down_mode="drain", chaos=False):
        ensemble = build_msd_ensemble()
        with JsonlSink(path) as sink:
            system = cls(
                ensemble,
                SystemConfig(
                    consumer_budget=14, scale_down_mode=scale_down_mode
                ),
                seed=11,
                tracer=Tracer(sink),
            )
            system.apply_allocation([4, 4, 3, 3])
            system.inject_burst({"Type1": 7, "Type2": 3})
            injector = None
            if chaos:
                injector = ChaosInjector(
                    system,
                    consumer_crash_rate=0.05,
                    tds_outage_rate=0.01,
                ).start()
            for k in range(8):
                if k == 2:
                    system.apply_allocation([1, 1, 1, 1])
                if k == 4:
                    system.apply_allocation([4, 4, 3, 3])
                system.run_window()
            if injector is not None:
                injector.stop()
            snapshot = substrate_snapshot(system)
        return snapshot, path.read_bytes()

    @pytest.mark.parametrize("mode", ["drain", "kill"])
    def test_trace_bytes_identical(self, tmp_path, mode):
        snap_s, bytes_s = self._traced_run(
            MicroserviceWorkflowSystem, tmp_path / "serial.jsonl", mode
        )
        snap_b, bytes_b = self._traced_run(
            BatchedWorkflowSystem, tmp_path / "batched.jsonl", mode
        )
        assert bytes_s == bytes_b
        assert len(bytes_s) > 0
        assert snap_s == snap_b

    def test_trace_bytes_identical_under_chaos(self, tmp_path):
        """Redelivery-under-fault: crashes + TDS outages, traced."""
        snap_s, bytes_s = self._traced_run(
            MicroserviceWorkflowSystem,
            tmp_path / "serial.jsonl",
            "kill",
            chaos=True,
        )
        snap_b, bytes_b = self._traced_run(
            BatchedWorkflowSystem,
            tmp_path / "batched.jsonl",
            "kill",
            chaos=True,
        )
        assert bytes_s == bytes_b
        assert b"consumer_crash" in bytes_s
        assert snap_s == snap_b


class TestFaultEquivalence:
    def test_chaos_untraced_snapshots(self):
        """Crashes and outages land identically without a tracer."""

        def scenario(cls):
            system = cls(
                build_ligo_ensemble(),
                SystemConfig(consumer_budget=30, scale_down_mode="kill"),
                seed=13,
            )
            names = list(system.ensemble.workflow_names())
            system.apply_allocation(
                np.full(system.ensemble.num_task_types, 2)
            )
            system.inject_burst({names[0]: 10, names[-1]: 5})
            injector = ChaosInjector(
                system,
                consumer_crash_rate=0.1,
                tds_outage_rate=0.02,
                tds_outage_duration=45.0,
            ).start()
            snaps = []
            for _ in range(8):
                system.run_window()
                snaps.append(substrate_snapshot(system))
            injector.stop()
            return snaps, injector.crashes_injected, injector.outages_injected

        (serial, crashes_s, outages_s), (batched, crashes_b, outages_b) = (
            run_both(scenario)
        )
        assert (crashes_s, outages_s) == (crashes_b, outages_b)
        assert crashes_s > 0, "scenario must inject crashes"
        assert_window_snapshots_equal(serial, batched)


class TestArrivalEquivalence:
    def test_poisson_arrivals(self):
        """Stochastic arrival processes drive both substrates identically."""

        def scenario(cls):
            system = cls(
                build_msd_ensemble(), SystemConfig(consumer_budget=14), seed=17
            )
            PoissonArrivalProcess(MSD_BACKGROUND_RATES).attach(system)
            system.apply_allocation([4, 4, 3, 3])
            snaps = []
            for _ in range(8):
                system.run_window()
                snaps.append(substrate_snapshot(system))
            return snaps

        serial, batched = run_both(scenario)
        assert_window_snapshots_equal(serial, batched)

    def test_drain_procedure(self):
        """The paper's reset (over-provision until WIP ~ 0) matches."""

        def scenario(cls):
            system = cls(
                build_msd_ensemble(), SystemConfig(consumer_budget=14), seed=19
            )
            system.apply_allocation([2, 2, 2, 2])
            system.inject_burst({"Type1": 30, "Type2": 15, "Type3": 15})
            system.run_window()
            windows = system.drain()
            return windows, substrate_snapshot(system)

        (windows_s, snap_s), (windows_b, snap_b) = run_both(scenario)
        assert windows_s == windows_b
        assert snap_s == snap_b


class TestFastPath:
    def test_fast_windows_engage_and_match(self):
        """The vectorised replay both engages and stays equivalent."""

        def scenario(cls):
            system = cls(
                build_msd_ensemble(),
                SystemConfig(consumer_budget=14, startup_delay_range=(0.0, 0.0)),
                seed=23,
            )
            system.apply_allocation([4, 4, 3, 3])
            system.inject_burst({"Type1": 200, "Type2": 100, "Type3": 100})
            snaps = []
            for _ in range(12):
                system.run_window()
                snaps.append(substrate_snapshot(system))
            return system, snaps

        (serial_sys, serial), (batched_sys, batched) = run_both(scenario)
        assert batched_sys.fast_windows > 0, (
            "vectorised replay never engaged — the fast path is untested"
        )
        assert_window_snapshots_equal(serial, batched)
        assert serial_sys.conservation_ok() and batched_sys.conservation_ok()

    def test_fast_path_aborts_fall_back_exactly(self):
        """A window the replay cannot handle falls back with no residue.

        Small allocation + draining queues forces starvation aborts;
        equivalence must survive the rollback/re-run cycle.
        """

        def scenario(cls):
            system = cls(
                build_msd_ensemble(),
                SystemConfig(consumer_budget=14, startup_delay_range=(0.0, 0.0)),
                seed=29,
            )
            system.apply_allocation([2, 2, 2, 2])
            system.inject_burst({"Type1": 10})  # drains mid-run
            snaps = []
            for _ in range(20):
                system.run_window()
                snaps.append(substrate_snapshot(system))
            return system, snaps

        (_, serial), (batched_sys, batched) = run_both(scenario)
        assert batched_sys.fast_aborts > 0, (
            "scenario must exercise the abort/fallback path"
        )
        assert_window_snapshots_equal(serial, batched)

    def test_fixed_service_times_always_fall_back(self):
        """cv = 0 workloads tie on completion times: replay must refuse."""
        from repro.workflows.dag import TaskType, WorkflowEnsemble, WorkflowType

        ensemble = WorkflowEnsemble(
            name="fixed",
            task_types=[
                TaskType("A", 10.0, cv=0.0),
                TaskType("B", 10.0, cv=0.0),
                TaskType("C", 15.0, cv=0.0),
            ],
            workflow_types=[
                WorkflowType("W1", edges=[("A", "B"), ("B", "C")]),
                WorkflowType("W2", edges=[("A", "C")]),
            ],
        )

        def scenario(cls):
            system = cls(
                ensemble,
                SystemConfig(consumer_budget=9, startup_delay_range=(0.0, 0.0)),
                seed=31,
            )
            system.apply_allocation([3, 3, 3])
            system.inject_burst(
                {name: 20 for name in ensemble.workflow_names()}
            )
            snaps = []
            for _ in range(8):
                system.run_window()
                snaps.append(substrate_snapshot(system))
            return snaps

        serial, batched = run_both(scenario)
        assert_window_snapshots_equal(serial, batched)


class TestBatchedApi:
    def test_submit_returns_pool_row_ordinal(self):
        system = BatchedWorkflowSystem(
            build_msd_ensemble(), SystemConfig(consumer_budget=14), seed=1
        )
        assert system.submit("Type1") == 0
        assert system.submit("Type2") == 1
        assert system.inject_burst({"Type1": 3}) == [2, 3, 4]
        assert system.pool.num_workflows == 5

    def test_unknown_workflow_type_raises(self):
        system = BatchedWorkflowSystem(
            build_msd_ensemble(), SystemConfig(consumer_budget=14), seed=1
        )
        with pytest.raises(KeyError, match="unknown workflow type"):
            system.submit("nope")

    def test_double_completion_guard(self):
        system = BatchedWorkflowSystem(
            build_msd_ensemble(), SystemConfig(consumer_budget=14), seed=1
        )
        system.apply_allocation([1, 1, 1, 1])
        task = system.submit("Type1")
        system.run_window()
        done = np.nonzero(system.pool.wf_task_done[task])[0]
        assert done.size > 0
        with pytest.raises(RuntimeError, match="completed twice"):
            local = int(done[0])
            name_index = None
            for g in range(system.ensemble.num_task_types):
                if system.table.local_of_task[0][g] == local:
                    name_index = g
            # Re-complete the already-done entry task.
            row = np.nonzero(
                (system.pool.task_workflow[: system.pool.num_tasks] == task)
                & (
                    system.pool.task_type[: system.pool.num_tasks]
                    == name_index
                )
            )[0][0]
            system.invoker.handle_task_completion(int(row), system.loop.now)
