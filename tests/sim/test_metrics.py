"""Tests for window metrics and delay attribution."""

import numpy as np
import pytest

from repro.sim.metrics import (
    DelayByArrivalWindow,
    WindowObservation,
    reward_from_wip,
)


def make_observation(wip, response_times=(), completions=None):
    return WindowObservation(
        index=0,
        start_time=0.0,
        end_time=30.0,
        wip=np.asarray(wip, dtype=np.float64),
        allocation=np.zeros(len(wip), dtype=np.int64),
        reward=reward_from_wip(np.asarray(wip, dtype=np.float64)),
        completions=completions or {},
        response_times=list(response_times),
    )


class TestRewardFromWip:
    def test_eq1(self):
        assert reward_from_wip(np.array([3.0, 4.0])) == pytest.approx(-6.0)

    def test_empty_system(self):
        assert reward_from_wip(np.zeros(5)) == pytest.approx(1.0)


class TestWindowObservation:
    def test_totals(self):
        observation = make_observation(
            [1, 2], completions={"A": 3, "B": 2}
        )
        observation.arrivals = {"A": 4}
        assert observation.total_completions == 5
        assert observation.total_arrivals == 4

    def test_mean_response_time(self):
        observation = make_observation([0], response_times=[10.0, 20.0])
        assert observation.mean_response_time() == pytest.approx(15.0)

    def test_mean_response_time_empty_is_zero(self):
        assert make_observation([0]).mean_response_time() == 0.0


class TestDelayByArrivalWindow:
    def test_unknown_window_returns_none(self):
        tracker = DelayByArrivalWindow()
        assert tracker.mean_delay(0, "A") is None

    def test_arrived_but_unfinished_returns_none(self):
        tracker = DelayByArrivalWindow()
        tracker.record_arrival(0, "A")
        assert tracker.mean_delay(0, "A") is None
        assert tracker.completion_fraction(0, "A") == 0.0

    def test_mean_over_completions(self):
        tracker = DelayByArrivalWindow()
        tracker.record_arrival(0, "A")
        tracker.record_arrival(0, "A")
        tracker.record_completion(0, "A", 10.0)
        tracker.record_completion(0, "A", 30.0)
        assert tracker.mean_delay(0, "A") == pytest.approx(20.0)
        assert tracker.completion_fraction(0, "A") == 1.0

    def test_attribution_is_by_arrival_window(self):
        """d_i(k) averages delays of requests *arriving* in window k
        (Section II-B), regardless of when they complete."""
        tracker = DelayByArrivalWindow()
        tracker.record_arrival(0, "A")
        tracker.record_arrival(5, "A")
        tracker.record_completion(0, "A", 100.0)  # finished much later
        tracker.record_completion(5, "A", 10.0)
        assert tracker.mean_delay(0, "A") == pytest.approx(100.0)
        assert tracker.mean_delay(5, "A") == pytest.approx(10.0)

    def test_delay_vector_with_nans(self):
        tracker = DelayByArrivalWindow()
        tracker.record_arrival(0, "A")
        tracker.record_completion(0, "A", 5.0)
        vector = tracker.delay_vector(0, ("A", "B"))
        assert vector[0] == pytest.approx(5.0)
        assert np.isnan(vector[1])

    def test_negative_delay_rejected(self):
        tracker = DelayByArrivalWindow()
        with pytest.raises(ValueError):
            tracker.record_completion(0, "A", -1.0)
