"""Tests for the full system facade: windows, routing, metrics, drain."""

import numpy as np
import pytest

from repro.sim.system import MicroserviceWorkflowSystem, SystemConfig
from repro.workflows import build_msd_ensemble
from repro.workload import DeterministicArrivalProcess, PoissonArrivalProcess

from tests.conftest import make_msd_env


def make_system(seed=0, **kwargs):
    kwargs.setdefault("consumer_budget", 14)
    return MicroserviceWorkflowSystem(
        build_msd_ensemble(), SystemConfig(**kwargs), seed=seed
    )


class TestConfig:
    def test_defaults_match_paper(self):
        config = SystemConfig()
        assert config.window_length == 30.0
        assert config.num_nodes == 3
        assert config.tds_replicas == 3
        assert config.startup_delay_range == (5.0, 10.0)

    def test_invalid_values_rejected(self):
        with pytest.raises(ValueError):
            SystemConfig(window_length=0)
        with pytest.raises(ValueError):
            SystemConfig(consumer_budget=0)
        with pytest.raises(ValueError):
            SystemConfig(scale_down_mode="other")

    def test_node_capacity_covers_drain(self):
        config = SystemConfig(consumer_budget=14)
        capacity = config.resolved_node_capacity(num_task_types=4)
        assert 3 * capacity >= 4 * 14  # drain over-provisioning fits


class TestWorkflowRouting:
    def test_single_request_traverses_full_dag(self):
        system = make_system(startup_delay_range=(0.0, 0.0))
        system.apply_allocation([2, 2, 2, 2])
        request = system.submit("Type3")
        system.loop.run_until(200.0)
        assert request.is_complete
        assert request.completed_tasks == {
            "Ingest",
            "Preprocess",
            "Segment",
            "Analyze",
        }
        assert system.conservation_ok()

    def test_response_time_includes_all_stages(self):
        system = make_system(startup_delay_range=(0.0, 0.0))
        system.apply_allocation([1, 1, 1, 1])
        request = system.submit("Type1")
        system.loop.run_until(500.0)
        # Type1 = Ingest -> Preprocess -> Segment: means 2 + 4 + 6 = 12 s.
        assert request.response_time() > 3.0

    def test_and_join_waits_for_all_predecessors(self):
        """Type3 forks after Preprocess; completion requires both branches."""
        system = make_system(startup_delay_range=(0.0, 0.0))
        system.apply_allocation([2, 2, 2, 0])  # Analyze starved
        request = system.submit("Type3")
        system.loop.run_until(300.0)
        assert not request.is_complete
        assert "Segment" in request.completed_tasks
        system.apply_allocation([2, 2, 2, 2])
        system.loop.run_until(600.0)
        assert request.is_complete


class TestWindows:
    def test_run_window_advances_clock(self):
        system = make_system()
        observation = system.run_window()
        assert system.loop.now == 30.0
        assert observation.index == 0
        assert system.window_index == 1

    def test_reward_is_eq1(self):
        system = make_system()
        system.inject_burst({"Type1": 5})
        observation = system.run_window()
        assert observation.reward == pytest.approx(
            1.0 - float(observation.wip.sum())
        )

    def test_arrivals_attributed_to_window(self):
        system = make_system()
        PoissonArrivalProcess({"Type1": 0.5}).attach(system)
        observation = system.run_window()
        # ~15 expected; loose bounds to stay robust across seeds.
        assert 3 <= observation.arrivals.get("Type1", 0) <= 35

    def test_task_publishes_include_bursts(self):
        system = make_system()
        system.inject_burst({"Type1": 10})
        observation = system.run_window()
        assert observation.task_publishes["Ingest"] == 10

    def test_wip_vector_matches_queue_depths(self):
        system = make_system()
        system.inject_burst({"Type1": 7})
        wip = system.wip_vector()
        assert wip[0] == 7  # all at Ingest, nothing processed yet
        assert wip.sum() == 7


class TestAllocationValidation:
    def test_wrong_shape_rejected(self):
        system = make_system()
        with pytest.raises(ValueError, match="shape"):
            system.apply_allocation([1, 2])

    def test_negative_rejected(self):
        system = make_system()
        with pytest.raises(ValueError, match="non-negative"):
            system.apply_allocation([1, -1, 1, 1])

    def test_fractional_rejected(self):
        system = make_system()
        with pytest.raises(ValueError, match="integral"):
            system.apply_allocation([1.5, 1, 1, 1])

    def test_current_allocation_reflects_scaling(self):
        system = make_system()
        system.apply_allocation([3, 4, 5, 2])
        assert np.array_equal(system.current_allocation(), [3, 4, 5, 2])


class TestDrain:
    def test_drain_empties_wip(self):
        system = make_system()
        system.inject_burst({"Type1": 50, "Type2": 30})
        windows = system.drain(max_windows=40)
        assert float(system.wip_vector().sum()) == 0.0
        assert windows >= 1
        assert system.conservation_ok()

    def test_drain_respects_max_windows(self):
        system = make_system()
        system.inject_burst({"Type1": 2000})
        windows = system.drain(max_windows=2)
        assert windows == 2  # gave up at the cap

    def test_delay_tracker_attribution(self):
        system = make_system(startup_delay_range=(0.0, 0.0))
        system.apply_allocation([3, 3, 3, 3])
        system.submit("Type1")
        for _ in range(10):
            system.run_window()
        delay = system.delay_tracker.mean_delay(0, "Type1")
        assert delay is not None and delay > 0
        assert system.delay_tracker.completion_fraction(0, "Type1") == 1.0


class TestDeterminism:
    def test_same_seed_same_trace(self):
        def run(seed):
            env = make_msd_env(seed=seed)
            env.reset()
            wips = []
            for _ in range(5):
                wip, _, _ = env.step(env.uniform_allocation())
                wips.append(wip.copy())
            return np.stack(wips)

        assert np.array_equal(run(7), run(7))
        assert not np.array_equal(run(7), run(8))
