"""Tests for the discrete-event loop."""

import pytest

from repro.sim.events import EventLoop


class TestScheduling:
    def test_events_run_in_time_order(self):
        loop = EventLoop()
        seen = []
        loop.schedule(3.0, lambda: seen.append("c"))
        loop.schedule(1.0, lambda: seen.append("a"))
        loop.schedule(2.0, lambda: seen.append("b"))
        loop.run_until(10.0)
        assert seen == ["a", "b", "c"]

    def test_ties_break_by_insertion_order(self):
        loop = EventLoop()
        seen = []
        for label in "abc":
            loop.schedule(1.0, lambda l=label: seen.append(l))
        loop.run_until(1.0)
        assert seen == ["a", "b", "c"]

    def test_clock_advances_to_run_until_target(self):
        loop = EventLoop()
        loop.run_until(5.0)
        assert loop.now == 5.0

    def test_clock_is_event_time_during_callback(self):
        loop = EventLoop()
        times = []
        loop.schedule(2.5, lambda: times.append(loop.now))
        loop.run_until(10.0)
        assert times == [2.5]

    def test_events_beyond_horizon_stay_pending(self):
        loop = EventLoop()
        seen = []
        loop.schedule(5.0, lambda: seen.append("late"))
        loop.run_until(4.0)
        assert seen == []
        loop.run_until(5.0)
        assert seen == ["late"]

    def test_schedule_during_callback(self):
        loop = EventLoop()
        seen = []

        def first():
            seen.append("first")
            loop.schedule(1.0, lambda: seen.append("second"))

        loop.schedule(1.0, first)
        loop.run_until(10.0)
        assert seen == ["first", "second"]

    def test_negative_delay_rejected(self):
        loop = EventLoop()
        with pytest.raises(ValueError):
            loop.schedule(-1.0, lambda: None)

    def test_schedule_at_past_rejected(self):
        loop = EventLoop()
        loop.run_until(5.0)
        with pytest.raises(ValueError):
            loop.schedule_at(4.0, lambda: None)

    def test_run_backwards_rejected(self):
        loop = EventLoop()
        loop.run_until(5.0)
        with pytest.raises(ValueError):
            loop.run_until(4.0)


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        loop = EventLoop()
        seen = []
        handle = loop.schedule(1.0, lambda: seen.append("x"))
        handle.cancel()
        loop.run_until(2.0)
        assert seen == []

    def test_cancel_is_idempotent(self):
        loop = EventLoop()
        handle = loop.schedule(1.0, lambda: None)
        handle.cancel()
        handle.cancel()
        loop.run_until(2.0)


class TestSafetyValve:
    def test_max_events_raises_on_runaway(self):
        loop = EventLoop()

        def rescheduling():
            loop.schedule(0.0, rescheduling)

        loop.schedule(0.0, rescheduling)
        with pytest.raises(RuntimeError, match="max_events"):
            loop.run_until(1.0, max_events=100)

    def test_counters(self):
        loop = EventLoop()
        loop.schedule(1.0, lambda: None)
        loop.schedule(2.0, lambda: None)
        assert loop.pending == 2
        executed = loop.run_until(5.0)
        assert executed == 2
        assert loop.processed == 2

    def test_timestamps_non_decreasing(self):
        loop = EventLoop()
        stamps = []
        for delay in [5.0, 1.0, 3.0, 1.0, 4.0]:
            loop.schedule(delay, lambda: stamps.append(loop.now))
        loop.run_until(10.0)
        assert stamps == sorted(stamps)
