"""Tests for the discrete-event loop."""

import pytest

from repro.sim.events import EventLoop


class TestScheduling:
    def test_events_run_in_time_order(self):
        loop = EventLoop()
        seen = []
        loop.schedule(3.0, lambda: seen.append("c"))
        loop.schedule(1.0, lambda: seen.append("a"))
        loop.schedule(2.0, lambda: seen.append("b"))
        loop.run_until(10.0)
        assert seen == ["a", "b", "c"]

    def test_ties_break_by_insertion_order(self):
        loop = EventLoop()
        seen = []
        for label in "abc":
            loop.schedule(1.0, lambda l=label: seen.append(l))
        loop.run_until(1.0)
        assert seen == ["a", "b", "c"]

    def test_clock_advances_to_run_until_target(self):
        loop = EventLoop()
        loop.run_until(5.0)
        assert loop.now == 5.0

    def test_clock_is_event_time_during_callback(self):
        loop = EventLoop()
        times = []
        loop.schedule(2.5, lambda: times.append(loop.now))
        loop.run_until(10.0)
        assert times == [2.5]

    def test_events_beyond_horizon_stay_pending(self):
        loop = EventLoop()
        seen = []
        loop.schedule(5.0, lambda: seen.append("late"))
        loop.run_until(4.0)
        assert seen == []
        loop.run_until(5.0)
        assert seen == ["late"]

    def test_schedule_during_callback(self):
        loop = EventLoop()
        seen = []

        def first():
            seen.append("first")
            loop.schedule(1.0, lambda: seen.append("second"))

        loop.schedule(1.0, first)
        loop.run_until(10.0)
        assert seen == ["first", "second"]

    def test_negative_delay_rejected(self):
        loop = EventLoop()
        with pytest.raises(ValueError):
            loop.schedule(-1.0, lambda: None)

    def test_schedule_at_past_rejected(self):
        loop = EventLoop()
        loop.run_until(5.0)
        with pytest.raises(ValueError):
            loop.schedule_at(4.0, lambda: None)

    def test_run_backwards_rejected(self):
        loop = EventLoop()
        loop.run_until(5.0)
        with pytest.raises(ValueError):
            loop.run_until(4.0)


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        loop = EventLoop()
        seen = []
        handle = loop.schedule(1.0, lambda: seen.append("x"))
        handle.cancel()
        loop.run_until(2.0)
        assert seen == []

    def test_cancel_is_idempotent(self):
        loop = EventLoop()
        handle = loop.schedule(1.0, lambda: None)
        handle.cancel()
        handle.cancel()
        loop.run_until(2.0)


class TestSafetyValve:
    def test_max_events_raises_on_runaway(self):
        loop = EventLoop()

        def rescheduling():
            loop.schedule(0.0, rescheduling)

        loop.schedule(0.0, rescheduling)
        with pytest.raises(RuntimeError, match="max_events"):
            loop.run_until(1.0, max_events=100)

    def test_counters(self):
        loop = EventLoop()
        loop.schedule(1.0, lambda: None)
        loop.schedule(2.0, lambda: None)
        assert loop.pending == 2
        executed = loop.run_until(5.0)
        assert executed == 2
        assert loop.processed == 2

    def test_timestamps_non_decreasing(self):
        loop = EventLoop()
        stamps = []
        for delay in [5.0, 1.0, 3.0, 1.0, 4.0]:
            loop.schedule(delay, lambda: stamps.append(loop.now))
        loop.run_until(10.0)
        assert stamps == sorted(stamps)


class TestCancelledHandleAccounting:
    """Cancelled handles must be invisible: not executed, not counted,
    and not attributed to the dispatch profiler phase."""

    def test_processed_ignores_cancelled_events(self):
        loop = EventLoop()
        seen = []
        keep = loop.schedule(1.0, lambda: seen.append("keep"))
        for delay in (0.5, 1.5, 2.0):
            loop.schedule(delay, lambda: seen.append("drop")).cancel()
        executed = loop.run_until(3.0)
        assert seen == ["keep"]
        assert executed == 1
        assert loop.processed == 1
        assert not keep.cancelled

    def test_cancelled_only_window_skips_dispatch_phase(self):
        from repro.telemetry.profile import PhaseProfiler

        profiler = PhaseProfiler(enabled=True)
        loop = EventLoop(profiler=profiler)
        loop.schedule(1.0, lambda: None).cancel()
        loop.schedule(2.0, lambda: None).cancel()
        executed = loop.run_until(3.0)
        assert executed == 0
        assert loop.now == 3.0
        assert loop.pending == 0
        assert profiler.node("sim/dispatch") is None

    def test_real_event_still_enters_dispatch_phase(self):
        from repro.telemetry.profile import PhaseProfiler

        profiler = PhaseProfiler(enabled=True)
        loop = EventLoop(profiler=profiler)
        loop.schedule(0.5, lambda: None).cancel()
        loop.schedule(1.0, lambda: None)
        assert loop.run_until(3.0) == 1
        node = profiler.node("sim/dispatch")
        assert node is not None
        assert node.calls == 1

    def test_empty_window_skips_dispatch_phase(self):
        from repro.telemetry.profile import PhaseProfiler

        profiler = PhaseProfiler(enabled=True)
        loop = EventLoop(profiler=profiler)
        loop.schedule(5.0, lambda: None)  # beyond the horizon
        assert loop.run_until(3.0) == 0
        assert profiler.node("sim/dispatch") is None

    def test_cancelled_mid_heap_skipped_during_dispatch(self):
        loop = EventLoop()
        seen = []
        loop.schedule(1.0, lambda: seen.append("a"))
        doomed = loop.schedule(2.0, lambda: seen.append("b"))
        loop.schedule(3.0, lambda: seen.append("c"))
        doomed.cancel()
        assert loop.run_until(5.0) == 2
        assert seen == ["a", "c"]
        assert loop.processed == 2
