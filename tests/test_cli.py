"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_train_defaults(self):
        args = build_parser().parse_args(["train"])
        assert args.dataset == "msd"
        assert args.scale == "fast"

    def test_unknown_dataset_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["train", "--dataset", "hpc"])

    def test_simulate_allocator_choices(self):
        args = build_parser().parse_args(
            ["simulate", "--allocator", "heft", "--burst", "1"]
        )
        assert args.allocator == "heft"
        assert args.burst == 1


class TestSimulateCommand:
    def test_uniform_on_msd(self, capsys):
        code = main(
            ["simulate", "--dataset", "msd", "--allocator", "uniform",
             "--steps", "5"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "uniform on msd-burst1" in out
        assert "aggregated reward" in out

    def test_stream_on_ligo(self, capsys):
        code = main(
            ["simulate", "--dataset", "ligo", "--allocator", "stream",
             "--steps", "4", "--burst", "2"]
        )
        assert code == 0
        assert "ligo-burst3" in capsys.readouterr().out

    def test_burst_out_of_range(self):
        with pytest.raises(SystemExit, match="out of range"):
            main(["simulate", "--burst", "9"])


class TestModelAccuracyCommand:
    def test_runs_small(self, capsys):
        code = main(
            ["model-accuracy", "--dataset", "msd", "--collect-steps", "60",
             "--test-steps", "15"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Model accuracy (msd)" in out
        assert "rmse" in out


class TestTrainEvaluateRoundtrip:
    def test_train_save_then_evaluate(self, tmp_path, capsys, monkeypatch):
        # Shrink the fast preset so the CLI test stays quick.
        from repro.core.config import MirasConfig, ModelConfig, PolicyConfig
        from repro.rl.ddpg import DDPGConfig

        tiny = MirasConfig(
            model=ModelConfig(hidden_sizes=(8,), epochs=3),
            policy=PolicyConfig(
                ddpg=DDPGConfig(hidden_sizes=(16,), batch_size=8),
                rollout_length=5,
                rollouts_per_iteration=2,
                patience=2,
            ),
            steps_per_iteration=20,
            reset_interval=10,
            iterations=1,
            eval_steps=3,
        )
        monkeypatch.setattr(MirasConfig, "msd_fast", classmethod(lambda cls: tiny))

        agent_dir = tmp_path / "agent"
        code = main(["train", "--dataset", "msd", "--output", str(agent_dir)])
        assert code == 0
        assert (agent_dir / "config.json").exists()
        assert json.loads((agent_dir / "results.json").read_text())

        code = main(
            ["evaluate", "--agent", str(agent_dir), "--dataset", "msd",
             "--steps", "3"]
        )
        assert code == 0
        assert "miras on msd-burst1" in capsys.readouterr().out
