"""`repro bench report` tests: artifact summary table and trajectory."""

import json

from repro.cli import main
from repro.cli import _flatten_bench


class TestFlatten:
    def test_numeric_leaves_with_dotted_paths(self):
        document = {
            "a": {"b": 1, "c": 2.5}, "flag": True, "name": "skip",
            "nested": {"deep": {"x": 3}},
        }
        assert _flatten_bench(document) == {
            "a.b": 1.0, "a.c": 2.5, "flag": 1.0, "nested.deep.x": 3.0,
        }


class TestBenchReport:
    def _artifacts(self, tmp_path):
        (tmp_path / "BENCH_alpha.json").write_text(json.dumps({
            "speedup": 4.5, "env": {"python": "3.11"}, "floor": 3.0,
        }))
        (tmp_path / "BENCH_beta.json").write_text(json.dumps({
            "overhead_pct": 1.25, "budget_pct": 2.0,
        }))
        return tmp_path

    def test_table_lists_every_artifact(self, tmp_path, capsys):
        root = self._artifacts(tmp_path)
        assert main(["bench", "report", "--root", str(root)]) == 0
        out = capsys.readouterr().out
        assert "alpha" in out and "beta" in out
        assert "speedup" in out and "overhead_pct" in out

    def test_json_output(self, tmp_path, capsys):
        root = self._artifacts(tmp_path)
        assert main(["bench", "report", "--root", str(root),
                     "--json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["alpha"]["speedup"] == 4.5
        assert summary["beta"]["budget_pct"] == 2.0
        # Non-numeric leaves (environment strings) are excluded.
        assert "env.python" not in summary["alpha"]

    def test_append_writes_dated_trajectory_rows(self, tmp_path, capsys):
        root = self._artifacts(tmp_path)
        for _ in range(2):
            assert main(["bench", "report", "--root", str(root),
                         "--append"]) == 0
        trajectory = root / "BENCH_TRAJECTORY.jsonl"
        lines = trajectory.read_text().splitlines()
        assert len(lines) == 2
        for line in lines:
            row = json.loads(line)
            assert set(row) == {"wall_time", "benchmarks"}
            assert row["benchmarks"]["alpha"]["speedup"] == 4.5
            assert row["wall_time"]  # ISO stamp from wall_time_now()

    def test_missing_artifacts_exit_nonzero(self, tmp_path, capsys):
        assert main(["bench", "report", "--root", str(tmp_path)]) == 1
        assert "no BENCH_" in capsys.readouterr().err

    def test_repo_root_artifacts_summarize(self, capsys):
        """The real BENCH_*.json artifacts at the repo root parse."""
        assert main(["bench", "report", "--root", ".", "--json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert "observability" in summary
        assert summary["observability"]["budget_pct"] == 2.0
