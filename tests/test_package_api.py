"""Public-API surface tests: everything advertised in __all__ resolves."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.nn",
    "repro.sim",
    "repro.workflows",
    "repro.workload",
    "repro.rl",
    "repro.core",
    "repro.baselines",
    "repro.eval",
    "repro.utils",
    "repro.telemetry",
]


@pytest.mark.parametrize("package_name", PACKAGES)
def test_all_exports_resolve(package_name):
    package = importlib.import_module(package_name)
    assert hasattr(package, "__all__"), f"{package_name} lacks __all__"
    for name in package.__all__:
        assert hasattr(package, name), f"{package_name}.{name} missing"


@pytest.mark.parametrize("package_name", PACKAGES)
def test_packages_have_docstrings(package_name):
    package = importlib.import_module(package_name)
    assert package.__doc__ and len(package.__doc__.strip()) > 20


def test_public_classes_have_docstrings():
    """Every public class and function exported at package level is
    documented."""
    undocumented = []
    for package_name in PACKAGES:
        package = importlib.import_module(package_name)
        for name in package.__all__:
            obj = getattr(package, name)
            if callable(obj) and not (obj.__doc__ or "").strip():
                undocumented.append(f"{package_name}.{name}")
    assert not undocumented, undocumented


def test_version():
    import repro

    assert repro.__version__ == "1.0.0"
