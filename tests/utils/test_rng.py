"""Tests for seeded RNG streams."""

import numpy as np
import pytest

from repro.utils.rng import (
    ReproducibilityWarning,
    RngStream,
    fallback_stream,
    spawn_rngs,
)


class TestSpawnRngs:
    def test_creates_one_stream_per_name(self):
        streams = spawn_rngs(0, ["a", "b", "c"])
        assert set(streams) == {"a", "b", "c"}
        assert all(isinstance(s, RngStream) for s in streams.values())

    def test_same_seed_reproduces_draws(self):
        first = spawn_rngs(42, ["x"])["x"].uniform(size=10)
        second = spawn_rngs(42, ["x"])["x"].uniform(size=10)
        assert np.array_equal(first, second)

    def test_different_seeds_differ(self):
        first = spawn_rngs(1, ["x"])["x"].uniform(size=10)
        second = spawn_rngs(2, ["x"])["x"].uniform(size=10)
        assert not np.array_equal(first, second)

    def test_streams_are_independent(self):
        streams = spawn_rngs(0, ["a", "b"])
        a = streams["a"].uniform(size=100)
        b = streams["b"].uniform(size=100)
        assert not np.array_equal(a, b)


class TestFork:
    def test_fork_names_are_hierarchical(self):
        root = spawn_rngs(0, ["root"])["root"]
        child = root.fork("child")
        assert child.name == "root/child"

    def test_fork_is_deterministic_given_order(self):
        def draws():
            root = spawn_rngs(7, ["r"])["r"]
            return root.fork("a").normal(size=5)

        assert np.array_equal(draws(), draws())

    def test_forks_differ_from_parent(self):
        root = spawn_rngs(0, ["r"])["r"]
        child = root.fork("c")
        assert not np.array_equal(root.uniform(size=20), child.uniform(size=20))

    @pytest.mark.no_sanitize  # deliberately re-uses a fork label
    def test_same_seed_and_label_sequence_reproduces_children(self):
        def draws():
            root = spawn_rngs(123, ["r"])["r"]
            return [
                root.fork("model").normal(size=8),
                root.fork("policy").normal(size=8),
                root.fork("model").normal(size=8),  # re-used label
            ]

        first, second = draws(), draws()
        for a, b in zip(first, second):
            assert np.array_equal(a, b)

    def test_different_labels_give_distinct_streams(self):
        root = spawn_rngs(0, ["r"])["r"]
        a = root.fork("actor").uniform(size=50)
        b = root.fork("critic").uniform(size=50)
        assert not np.array_equal(a, b)

    @pytest.mark.no_sanitize  # deliberately re-uses a fork label
    def test_repeated_label_gives_fresh_distinct_stream(self):
        root = spawn_rngs(9, ["r"])["r"]
        first = root.fork("layer").normal(size=30)
        second = root.fork("layer").normal(size=30)
        assert not np.array_equal(first, second)

    def test_grandchildren_are_deterministic(self):
        def leaf():
            root = spawn_rngs(31, ["r"])["r"]
            return root.fork("mid").fork("leaf").uniform(size=10)

        assert np.array_equal(leaf(), leaf())


class TestFallbackStream:
    def test_warns_and_returns_fixed_seed_stream(self):
        with pytest.warns(ReproducibilityWarning, match="explicit RngStream"):
            first = fallback_stream("dense")
        with pytest.warns(ReproducibilityWarning):
            second = fallback_stream("dense")
        assert np.array_equal(first.uniform(size=10), second.uniform(size=10))

    def test_component_constructors_warn_without_rng(self):
        from repro.nn.layers import Dense

        with pytest.warns(ReproducibilityWarning):
            Dense(3, 2)

    def test_component_constructors_silent_with_rng(self):
        import warnings

        from repro.nn.layers import Dense

        rng = RngStream("t", np.random.SeedSequence(3))
        with warnings.catch_warnings():
            warnings.simplefilter("error", ReproducibilityWarning)
            Dense(3, 2, rng=rng)


class TestDistributionPassthroughs:
    def test_poisson_mean(self, rng):
        samples = rng.poisson(lam=5.0, size=20_000)
        assert abs(samples.mean() - 5.0) < 0.1

    def test_exponential_mean(self, rng):
        samples = rng.exponential(scale=2.0, size=20_000)
        assert abs(samples.mean() - 2.0) < 0.1

    def test_integers_bounds(self, rng):
        samples = rng.integers(3, 8, size=1000)
        assert samples.min() >= 3
        assert samples.max() < 8

    def test_choice_without_replacement_unique(self, rng):
        picked = rng.choice(10, size=10, replace=False)
        assert sorted(picked.tolist()) == list(range(10))

    def test_permutation_is_permutation(self, rng):
        perm = rng.permutation(25)
        assert sorted(perm.tolist()) == list(range(25))
