"""Tests for running statistics."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.utils.summary import RunningStats, ewma


class TestRunningStats:
    def test_empty_stats_are_zero(self):
        stats = RunningStats()
        assert stats.count == 0
        assert stats.mean == 0.0
        assert stats.std == 0.0

    def test_matches_numpy_on_fixed_data(self):
        data = [1.0, 2.0, 4.0, 8.0, 16.0]
        stats = RunningStats()
        stats.extend(data)
        assert stats.mean == pytest.approx(np.mean(data))
        assert stats.variance == pytest.approx(np.var(data, ddof=1))
        assert stats.minimum == 1.0
        assert stats.maximum == 16.0

    @given(st.lists(st.floats(-1e6, 1e6), min_size=2, max_size=200))
    def test_welford_matches_numpy(self, values):
        stats = RunningStats()
        stats.extend(values)
        assert stats.mean == pytest.approx(np.mean(values), abs=1e-6, rel=1e-9)
        assert stats.variance == pytest.approx(
            np.var(values, ddof=1), abs=1e-4, rel=1e-6
        )

    @given(
        st.lists(st.floats(-1e3, 1e3), min_size=1, max_size=50),
        st.lists(st.floats(-1e3, 1e3), min_size=1, max_size=50),
    )
    def test_merge_equals_concatenation(self, left, right):
        a = RunningStats()
        a.extend(left)
        b = RunningStats()
        b.extend(right)
        merged = a.merge(b)
        combined = RunningStats()
        combined.extend(left + right)
        assert merged.count == combined.count
        assert merged.mean == pytest.approx(combined.mean, abs=1e-9, rel=1e-9)
        assert merged.variance == pytest.approx(
            combined.variance, abs=1e-6, rel=1e-6
        )

    def test_merge_with_empty(self):
        a = RunningStats()
        a.extend([1.0, 2.0])
        empty = RunningStats()
        assert a.merge(empty).mean == pytest.approx(1.5)
        assert empty.merge(a).mean == pytest.approx(1.5)


class TestEwma:
    def test_alpha_one_returns_series(self):
        assert ewma([1.0, 2.0, 3.0], 1.0) == [1.0, 2.0, 3.0]

    def test_smooths_toward_new_values(self):
        out = ewma([0.0, 10.0], 0.5)
        assert out == [0.0, 5.0]

    def test_rejects_bad_alpha(self):
        with pytest.raises(ValueError):
            ewma([1.0], 0.0)
        with pytest.raises(ValueError):
            ewma([1.0], 1.5)

    def test_empty_series(self):
        assert ewma([], 0.3) == []
