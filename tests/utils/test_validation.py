"""Tests for argument-validation helpers."""

import pytest

from repro.utils.validation import (
    check_in_range,
    check_non_negative,
    check_positive,
    check_probability,
    check_type,
    isclose_zero,
    require,
)


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive("x", 1.5) == 1.5

    @pytest.mark.parametrize("value", [0, -1, -0.001])
    def test_rejects_non_positive(self, value):
        with pytest.raises(ValueError, match="x must be positive"):
            check_positive("x", value)


class TestCheckNonNegative:
    def test_accepts_zero(self):
        assert check_non_negative("x", 0) == 0

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="non-negative"):
            check_non_negative("x", -1e-9)


class TestCheckInRange:
    def test_inclusive_bounds_accept_endpoints(self):
        assert check_in_range("x", 0.0, 0.0, 1.0) == 0.0
        assert check_in_range("x", 1.0, 0.0, 1.0) == 1.0

    def test_exclusive_bounds_reject_endpoints(self):
        with pytest.raises(ValueError):
            check_in_range("x", 0.0, 0.0, 1.0, inclusive=(False, True))
        with pytest.raises(ValueError):
            check_in_range("x", 1.0, 0.0, 1.0, inclusive=(True, False))

    def test_rejects_outside(self):
        with pytest.raises(ValueError):
            check_in_range("x", 2.0, 0.0, 1.0)


class TestCheckProbability:
    def test_accepts_half(self):
        assert check_probability("p", 0.5) == 0.5

    @pytest.mark.parametrize("value", [-0.1, 1.1])
    def test_rejects_outside_unit_interval(self, value):
        with pytest.raises(ValueError):
            check_probability("p", value)


class TestCheckType:
    def test_accepts_matching_type(self):
        assert check_type("x", 5, int) == 5

    def test_accepts_tuple_of_types(self):
        assert check_type("x", 5.0, (int, float)) == 5.0

    def test_rejects_wrong_type(self):
        with pytest.raises(TypeError, match="x must be int"):
            check_type("x", "five", int)


class TestIscloseZero:
    def test_exact_zero(self):
        assert isclose_zero(0.0)

    def test_tiny_residual_counts_as_zero(self):
        assert isclose_zero(1e-15)
        assert isclose_zero(-1e-15)

    def test_meaningful_values_are_not_zero(self):
        assert not isclose_zero(1e-6)
        assert not isclose_zero(-0.5)

    def test_custom_epsilon(self):
        assert isclose_zero(0.05, eps=0.1)
        assert not isclose_zero(0.05, eps=0.01)


class TestRequire:
    def test_passes_silently_when_true(self):
        require(True, "never raised")

    def test_raises_runtime_error_with_message(self):
        with pytest.raises(RuntimeError, match="invariant.*no tag"):
            require(False, "no tag")

    def test_survives_optimized_mode(self):
        # Unlike assert, require() cannot be stripped: it is a plain call.
        import dis

        import repro.utils.validation as validation

        instructions = list(dis.get_instructions(validation.require))
        assert any(i.opname == "RAISE_VARARGS" for i in instructions)
