"""Tests for the evaluation runner and result series."""

import numpy as np
import pytest

from repro.baselines.static_alloc import UniformAllocator
from repro.eval.runner import (
    EvalResult,
    StepRecord,
    evaluate_allocator,
    make_env,
    run_scenario_comparison,
)
from repro.sim.system import SystemConfig
from repro.workflows import build_msd_ensemble
from repro.workload.bursts import BurstScenario

TINY_SCENARIO = BurstScenario(
    "tiny", {"Type1": 20, "Type2": 10, "Type3": 10}, {"Type1": 0.02}
)


class TestMakeEnv:
    def test_builds_env_with_arrivals(self):
        env = make_env(
            build_msd_ensemble(),
            config=SystemConfig(consumer_budget=14),
            seed=1,
            background_rates={"Type1": 0.5},
        )
        env.system.loop.run_until(100.0)
        assert env.system.invoker.submitted_total > 0

    def test_no_rates_no_arrivals(self):
        env = make_env(build_msd_ensemble(), seed=1)
        env.system.loop.run_until(100.0)
        assert env.system.invoker.submitted_total == 0


class TestEvaluateAllocator:
    def _run(self, steps=8):
        env = make_env(
            build_msd_ensemble(),
            config=SystemConfig(consumer_budget=14),
            seed=2,
            background_rates=dict(TINY_SCENARIO.background_rates),
        )
        return evaluate_allocator(UniformAllocator(), env, TINY_SCENARIO, steps)

    def test_records_one_per_step(self):
        result = self._run(steps=8)
        assert len(result.records) == 8
        assert [r.step for r in result.records] == list(range(8))

    def test_burst_is_visible_then_drains(self):
        result = self._run(steps=12)
        assert result.wip_series()[0] > 10  # burst present early
        assert result.wip_series()[-1] < result.wip_series()[0]

    def test_series_lengths_match(self):
        result = self._run(steps=5)
        assert len(result.response_time_series()) == 5
        assert len(result.reward_series()) == 5

    def test_aggregated_reward_is_sum(self):
        result = self._run(steps=5)
        assert result.aggregated_reward() == pytest.approx(
            sum(result.reward_series())
        )

    def test_drain_step(self):
        result = self._run(steps=12)
        drain = result.drain_step(threshold=5.0)
        assert drain is None or 0 <= drain < 12

    def test_mean_response_time_weighted(self):
        result = EvalResult("x", "y")
        result.records = [
            StepRecord(0, 0, 0, mean_response_time=10.0, completions=1,
                       allocation=np.zeros(1)),
            StepRecord(1, 0, 0, mean_response_time=20.0, completions=3,
                       allocation=np.zeros(1)),
        ]
        assert result.mean_response_time() == pytest.approx(
            (10 * 1 + 20 * 3) / 4
        )

    def test_mean_response_time_empty(self):
        assert EvalResult("x", "y").mean_response_time() == 0.0

    def test_final_response_time_uses_tail_with_completions(self):
        result = EvalResult("x", "y")
        result.records = [
            StepRecord(i, 0, 0, mean_response_time=float(10 * i),
                       completions=1 if i != 4 else 0,
                       allocation=np.zeros(1))
            for i in range(5)
        ]
        # Tail of 3 -> steps 2,3,4; step 4 had no completions -> mean(20,30).
        assert result.final_response_time(tail=3) == pytest.approx(25.0)

    def test_final_response_time_empty_tail(self):
        assert EvalResult("x", "y").final_response_time() == 0.0

    def test_per_type_series_present(self):
        result = self._run(steps=10)
        series = result.response_time_series_for("Type1")
        assert len(series) == 10
        assert any(value > 0 for value in series)

    def test_invalid_steps(self):
        env = make_env(build_msd_ensemble(), seed=2)
        with pytest.raises(ValueError):
            evaluate_allocator(UniformAllocator(), env, TINY_SCENARIO, 0)


class TestComparison:
    def test_same_arrivals_for_all_allocators(self):
        class RecordingUniform(UniformAllocator):
            def __init__(self, name):
                self.name = name

        results = run_scenario_comparison(
            build_msd_ensemble,
            [RecordingUniform("a"), RecordingUniform("b")],
            TINY_SCENARIO,
            steps=5,
            config=SystemConfig(consumer_budget=14),
            eval_seed=77,
        )
        # Identical allocator + identical seed => identical series.
        assert results["a"].wip_series() == results["b"].wip_series()
        assert results["a"].response_time_series() == (
            results["b"].response_time_series()
        )
