"""Fleet telemetry tests: per-cell capture and the deterministic merge.

The load-bearing property is worker-count independence: the merged
fleet_metrics.json / .prom / fleet_manifest.json bytes must be identical
for ``workers=1`` and ``workers>1``, because per-cell traces are a pure
function of (root seed, label) and the merge runs in sorted-label order.
"""

import json

import pytest

from repro.eval.parallel import default_cells, run_cells
from repro.telemetry.fleet import (
    FLEET_EXPOSITION_FILENAME,
    FLEET_MANIFEST_FILENAME,
    FLEET_METRICS_FILENAME,
    discover_cells,
    merge_fleet,
    write_fleet,
)

FLEET_FILES = (
    FLEET_METRICS_FILENAME,
    FLEET_EXPOSITION_FILENAME,
    FLEET_MANIFEST_FILENAME,
)


def _fleet_cells():
    # ablate-window quick cells are the cheapest traced experiment.
    return default_cells(
        experiments=["ablate-window"], replicates=2, quick=True
    )


class TestFleetCapture:
    def test_per_cell_artifacts_written(self, tmp_path):
        fleet = tmp_path / "fleet"
        run_cells(_fleet_cells(), root_seed=5, workers=1,
                  telemetry_dir=fleet)
        for rep in (0, 1):
            cell = fleet / "ablate-window" / f"rep{rep}"
            assert (cell / "trace.jsonl").exists()
            assert (cell / "metrics.json").exists()
            assert (cell / "metrics.prom").exists()
        for name in FLEET_FILES:
            assert (fleet / name).exists()

    def test_no_telemetry_dir_writes_nothing(self, tmp_path):
        results = run_cells(_fleet_cells(), root_seed=5, workers=1)
        assert results
        assert list(tmp_path.iterdir()) == []


class TestWorkerCountIndependence:
    def test_merged_artifacts_byte_identical_across_workers(self, tmp_path):
        cells = _fleet_cells()
        serial = tmp_path / "serial"
        parallel = tmp_path / "parallel"
        r1 = run_cells(cells, root_seed=5, workers=1, telemetry_dir=serial)
        r4 = run_cells(cells, root_seed=5, workers=4, telemetry_dir=parallel)
        assert json.dumps(r1, sort_keys=True, default=repr) == json.dumps(
            r4, sort_keys=True, default=repr
        )
        for name in FLEET_FILES:
            assert (serial / name).read_bytes() == (
                parallel / name
            ).read_bytes(), name
        # Per-cell traces match too, not just the merged rollup.
        for label, trace in discover_cells(serial):
            twin = parallel / label / "trace.jsonl"
            assert trace.read_bytes() == twin.read_bytes(), label


class TestMerge:
    def test_discovery_sorted_by_label(self, tmp_path):
        for label in ("b/rep1", "a/rep0", "b/rep0"):
            cell = tmp_path / label
            cell.mkdir(parents=True)
            (cell / "trace.jsonl").write_text("")
        labels = [label for label, _ in discover_cells(tmp_path)]
        assert labels == ["a/rep0", "b/rep0", "b/rep1"]

    def test_manifest_is_wall_time_free(self, tmp_path):
        cell = tmp_path / "fig0/rep0"
        cell.mkdir(parents=True)
        (cell / "trace.jsonl").write_text(
            json.dumps({"kind": "event.arrival", "t": 2.5,
                        "workflow": "Type1", "request_id": 0}) + "\n"
        )
        merge = merge_fleet(tmp_path)
        manifest = merge.manifest()
        assert set(manifest) == {"fleet_version", "cells", "total_records"}
        assert manifest["cells"] == [
            {"label": "fig0/rep0", "records": 1, "sim_time_end": 2.5}
        ]
        assert manifest["total_records"] == 1

    def test_merge_aggregates_all_cells(self, tmp_path):
        record = {"kind": "event.arrival", "t": 1.0,
                  "workflow": "Type1", "request_id": 0}
        for label in ("a/rep0", "a/rep1"):
            cell = tmp_path / label
            cell.mkdir(parents=True)
            (cell / "trace.jsonl").write_text(
                json.dumps(record, sort_keys=True) + "\n"
            )
        merge = merge_fleet(tmp_path)
        snapshot = merge.sink.snapshot()
        series = snapshot["families"]["repro_arrivals_total"]["series"]
        assert series[0]["value"] == 2.0

    def test_empty_fleet_merges_cleanly(self, tmp_path):
        merge = merge_fleet(tmp_path)
        assert merge.cells == [] and merge.total_records == 0
        target = write_fleet(tmp_path, merge)
        assert json.loads(target.read_text())["total_records"] == 0
