"""Unit tests for the Fig. 5 result container's metrics."""

import numpy as np
import pytest

from repro.eval.experiments import Fig5Result


def make_result(truth, fixed, iterative):
    truth = np.asarray(truth, dtype=np.float64)
    fixed = np.asarray(fixed, dtype=np.float64)
    iterative = np.asarray(iterative, dtype=np.float64)
    return Fig5Result(
        dataset="msd",
        ground_truth_reward=truth,
        fixed_reward=fixed,
        iterative_reward=iterative,
        ground_truth_w0=truth,
        fixed_w0=fixed,
        iterative_w0=iterative,
    )


class TestRmse:
    def test_zero_when_identical(self):
        result = make_result([1, 2, 3], [1, 2, 3], [1, 2, 3])
        assert result.rmse_fixed_reward == 0.0
        assert result.rmse_iterative_reward == 0.0

    def test_known_value(self):
        result = make_result([0, 0], [3, 4], [0, 0])
        assert result.rmse_fixed_reward == pytest.approx(np.sqrt(12.5))


class TestCorrelation:
    def test_perfect_positive(self):
        result = make_result([1, 2, 3], [2, 4, 6], [1, 2, 3])
        assert result.correlation_fixed_reward() == pytest.approx(1.0)

    def test_perfect_negative(self):
        result = make_result([1, 2, 3], [3, 2, 1], [1, 2, 3])
        assert result.correlation_fixed_reward() == pytest.approx(-1.0)

    def test_constant_series_returns_zero(self):
        result = make_result([1, 2, 3], [5, 5, 5], [5, 5, 5])
        assert result.correlation_fixed_reward() == 0.0
        assert result.correlation_iterative_reward() == 0.0
