"""The parallel experiment runner's determinism contract.

Pins the ISSUE's acceptance property: the results JSON is *byte*
identical for the in-process serial path and process pools of any
worker count — per-cell seeds derive from (root seed, cell label), so
scheduling, worker identity and completion order cannot leak into
results.
"""

import dataclasses
import json

import numpy as np
import pytest

from repro.eval.parallel import (
    QUICK_PARAMS,
    ExperimentCell,
    default_cells,
    derive_cell_seed,
    results_to_json,
    run_cells,
    to_jsonable,
    write_results,
)


#: Small enough for test time, big enough to exercise train + refine.
FIG5_FAST = {
    "collect_steps": 24,
    "test_steps": 8,
    "action_hold": 2,
    "model_epochs": 2,
}


def _fast_cells(replicates=2):
    return [
        ExperimentCell.make("fig5", rep, FIG5_FAST)
        for rep in range(replicates)
    ]


class TestDeriveCellSeed:
    def test_deterministic(self):
        assert derive_cell_seed(0, "fig5/rep0") == derive_cell_seed(
            0, "fig5/rep0"
        )

    def test_sensitive_to_label_and_root(self):
        seeds = {
            derive_cell_seed(0, "fig5/rep0"),
            derive_cell_seed(0, "fig5/rep1"),
            derive_cell_seed(0, "fig7/rep0"),
            derive_cell_seed(1, "fig5/rep0"),
        }
        assert len(seeds) == 4

    def test_negative_root_rejected(self):
        with pytest.raises(ValueError):
            derive_cell_seed(-1, "fig5/rep0")


class TestExperimentCell:
    def test_unknown_experiment_rejected(self):
        with pytest.raises(ValueError, match="unknown experiment"):
            ExperimentCell.make("fig99")

    def test_negative_replicate_rejected(self):
        with pytest.raises(ValueError, match="replicate"):
            ExperimentCell.make("fig5", replicate=-1)

    def test_label_stable_under_param_order(self):
        a = ExperimentCell.make("fig5", 0, {"x": 1, "y": 2})
        b = ExperimentCell.make("fig5", 0, {"y": 2, "x": 1})
        assert a == b
        assert a.label == "fig5/rep0"

    def test_default_cells_quick_injects_params(self):
        cells = default_cells(["fig5"], replicates=2, quick=True)
        assert [c.label for c in cells] == ["fig5/rep0", "fig5/rep1"]
        assert all(
            dict(c.params) == QUICK_PARAMS["fig5"] for c in cells
        )

    def test_default_cells_rejects_bad_replicates(self):
        with pytest.raises(ValueError):
            default_cells(["fig5"], replicates=0)


class TestToJsonable:
    def test_numpy_and_dataclass_round_trip(self):
        @dataclasses.dataclass
        class Inner:
            values: np.ndarray

        payload = {
            "arr": np.arange(3, dtype=np.float64),
            "scalar": np.float64(1.5),
            "flag": np.bool_(True),
            "nested": Inner(values=np.zeros(2)),
            ("tuple", "key"): [np.int64(7)],
        }
        out = to_jsonable(payload)
        json.dumps(out)  # must be JSON-encodable as-is
        assert out["arr"] == [0.0, 1.0, 2.0]
        assert out["scalar"] == 1.5
        assert out["flag"] is True
        assert out["nested"] == {"values": [0.0, 0.0]}
        assert out["('tuple', 'key')"] == [7]


class TestRunCells:
    def test_duplicate_labels_rejected(self):
        cells = [ExperimentCell.make("fig5"), ExperimentCell.make("fig5")]
        with pytest.raises(ValueError, match="duplicate"):
            run_cells(cells)

    def test_invalid_workers_rejected(self):
        with pytest.raises(ValueError, match="workers"):
            run_cells(_fast_cells(1), workers=-1)

    def test_workers_zero_auto_detects_cpu_count(self, monkeypatch):
        """``workers=0`` resolves to ``os.cpu_count()`` (1 when unknown)."""
        import os

        import repro.eval.parallel as parallel_mod

        calls = []
        real_cpu_count = os.cpu_count

        def counting_cpu_count():
            calls.append(1)
            return real_cpu_count()

        monkeypatch.setattr(parallel_mod.os, "cpu_count", counting_cpu_count)
        auto = run_cells(_fast_cells(1), root_seed=0, workers=0)
        assert calls, "workers=0 must consult os.cpu_count()"
        assert auto == run_cells(_fast_cells(1), root_seed=0, workers=1)

        # Unknown CPU count (cpu_count() -> None) falls back to 1 worker.
        monkeypatch.setattr(parallel_mod.os, "cpu_count", lambda: None)
        fallback = run_cells(_fast_cells(1), root_seed=0, workers=0)
        assert fallback == auto

    def test_parallel_json_byte_identical_to_serial(self, tmp_path):
        """The tentpole determinism pin: workers ∈ {1, 4} agree bytewise."""
        cells = _fast_cells(replicates=2)
        serial = run_cells(cells, root_seed=0, workers=1)
        parallel = run_cells(cells, root_seed=0, workers=4)
        serial_json = results_to_json(serial)
        assert results_to_json(parallel) == serial_json

        path = write_results(tmp_path / "out" / "results.json", parallel)
        assert path.read_text(encoding="utf-8") == serial_json

        # Sanity on the payload shape: labels key the mapping, every cell
        # records its derived seed, and the result is already plain JSON.
        assert list(serial) == ["fig5/rep0", "fig5/rep1"]
        for label, payload in serial.items():
            assert payload["seed"] == derive_cell_seed(0, label)
            assert payload["experiment"] == "fig5"
        assert (
            serial["fig5/rep0"]["result"] != serial["fig5/rep1"]["result"]
        ), "replicates with different seeds produced identical results"

    def test_root_seed_changes_results(self):
        cells = _fast_cells(replicates=1)
        a = run_cells(cells, root_seed=0, workers=1)
        b = run_cells(cells, root_seed=1, workers=1)
        assert results_to_json(a) != results_to_json(b)
