"""Tests pinning the Figs. 7-8 comparison protocol details."""

import numpy as np
import pytest

from repro.baselines.static_alloc import UniformAllocator
from repro.eval.runner import evaluate_allocator, make_env
from repro.sim.system import SystemConfig
from repro.workflows import build_msd_ensemble
from repro.workload.bursts import BurstScenario

SCENARIO = BurstScenario(
    "proto", {"Type1": 25, "Type2": 10, "Type3": 10}, {"Type1": 0.04}
)


class TestEvaluationProtocol:
    def test_burst_fed_at_the_beginning(self):
        """'These request bursts are fed into the system at the beginning
        of each evaluation' — the first window must see the whole burst."""
        env = make_env(
            build_msd_ensemble(),
            config=SystemConfig(consumer_budget=14),
            seed=7,
            background_rates=dict(SCENARIO.background_rates),
        )
        result = evaluate_allocator(UniformAllocator(), env, SCENARIO, steps=3)
        assert result.records[0].wip_sum >= 25  # burst present from step 0

    def test_system_drained_before_burst(self):
        """Evaluation starts from a clean system (reset), so residual load
        from training/previous runs cannot leak in."""
        env = make_env(
            build_msd_ensemble(),
            config=SystemConfig(consumer_budget=14),
            seed=7,
            background_rates=dict(SCENARIO.background_rates),
        )
        env.system.inject_burst({"Type1": 500})  # pre-existing dirt
        result = evaluate_allocator(UniformAllocator(), env, SCENARIO, steps=3)
        # After the drain, only the scenario's ~45 burst requests plus a
        # little background remain — nowhere near 500.
        assert result.records[0].wip_sum < 200

    def test_background_arrivals_continue_during_evaluation(self):
        env = make_env(
            build_msd_ensemble(),
            config=SystemConfig(consumer_budget=14),
            seed=7,
            background_rates={"Type1": 0.5},  # fast background
        )
        evaluate_allocator(UniformAllocator(), env, SCENARIO, steps=10)
        arrivals = sum(
            o.arrivals.get("Type1", 0) for o in env.system.history[-10:]
        )
        # Bursts aside, ~0.5/s * 300 s = ~150 background arrivals expected.
        assert arrivals > 50

    def test_allocator_reset_called(self):
        class CountingUniform(UniformAllocator):
            resets = 0

            def reset(self):
                type(self).resets += 1

        env = make_env(
            build_msd_ensemble(),
            config=SystemConfig(consumer_budget=14),
            seed=7,
        )
        evaluate_allocator(CountingUniform(), env, SCENARIO, steps=2)
        assert CountingUniform.resets == 1
