"""Tests for capacity planning and multi-seed replication."""

import math

import numpy as np
import pytest

from repro.eval.capacity import (
    expected_steady_state_wip,
    minimum_stable_allocation,
    per_task_arrival_rates,
    recommended_budget,
)
from repro.eval.replication import ReplicatedComparison, replicate_comparison
from repro.eval.runner import EvalResult, StepRecord
from repro.workflows import build_ligo_ensemble, build_msd_ensemble
from repro.workload.bursts import LIGO_BACKGROUND_RATES, MSD_BACKGROUND_RATES


class TestPerTaskRates:
    def test_shared_tasks_sum_rates(self):
        ensemble = build_msd_ensemble()
        rates = per_task_arrival_rates(
            ensemble, {"Type1": 0.1, "Type2": 0.2, "Type3": 0.3}
        )
        # Ingest and Preprocess are in all three workflows.
        assert rates["Ingest"] == pytest.approx(0.6)
        assert rates["Preprocess"] == pytest.approx(0.6)
        # Segment only in Type1 and Type3.
        assert rates["Segment"] == pytest.approx(0.4)

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            per_task_arrival_rates(build_msd_ensemble(), {"Type1": -1.0})


class TestMinimumStableAllocation:
    def test_stability_rule(self):
        ensemble = build_msd_ensemble()
        allocation = minimum_stable_allocation(
            ensemble, MSD_BACKGROUND_RATES
        )
        rates = per_task_arrival_rates(ensemble, MSD_BACKGROUND_RATES)
        for task_type in ensemble.task_types:
            offered = rates[task_type.name] * task_type.mean_service_time
            assert allocation[task_type.name] > offered  # rho < 1

    def test_paper_budgets_are_in_the_headroom_regime(self):
        """C=14 (MSD) and C=30 (LIGO) should correspond to a modest
        headroom multiple over bare stability — the paper's 'tight but
        feasible' constraint."""
        msd_min = sum(
            minimum_stable_allocation(
                build_msd_ensemble(), MSD_BACKGROUND_RATES
            ).values()
        )
        ligo_min = sum(
            minimum_stable_allocation(
                build_ligo_ensemble(), LIGO_BACKGROUND_RATES
            ).values()
        )
        assert msd_min <= 14 <= 4 * msd_min
        assert ligo_min <= 30 <= 4 * ligo_min

    def test_recommended_budget_monotone_in_headroom(self):
        ensemble = build_msd_ensemble()
        low = recommended_budget(ensemble, MSD_BACKGROUND_RATES, headroom=1.0)
        high = recommended_budget(ensemble, MSD_BACKGROUND_RATES, headroom=2.0)
        assert high >= low

    def test_invalid_headroom(self):
        with pytest.raises(ValueError):
            recommended_budget(build_msd_ensemble(), {}, headroom=0.5)


class TestExpectedWip:
    def test_stable_allocation_finite(self):
        ensemble = build_msd_ensemble()
        allocation = minimum_stable_allocation(ensemble, MSD_BACKGROUND_RATES)
        wip = expected_steady_state_wip(
            ensemble, MSD_BACKGROUND_RATES, allocation
        )
        assert all(math.isfinite(v) for v in wip.values())
        assert all(v >= 0 for v in wip.values())

    def test_zero_allocation_with_traffic_is_infinite(self):
        ensemble = build_msd_ensemble()
        wip = expected_steady_state_wip(
            ensemble,
            MSD_BACKGROUND_RATES,
            {name: 0 for name in ensemble.task_names()},
        )
        assert wip["Ingest"] == math.inf

    def test_more_servers_less_wip(self):
        ensemble = build_msd_ensemble()
        small = expected_steady_state_wip(
            ensemble, MSD_BACKGROUND_RATES,
            {n: 2 for n in ensemble.task_names()},
        )
        large = expected_steady_state_wip(
            ensemble, MSD_BACKGROUND_RATES,
            {n: 6 for n in ensemble.task_names()},
        )
        for name in ensemble.task_names():
            assert large[name] <= small[name]


def fake_result(value):
    result = EvalResult("x", "s")
    result.records = [
        StepRecord(0, 0.0, value, 0.0, 0, np.zeros(1)),
    ]
    return result


class TestReplication:
    def test_aggregates_across_seeds(self):
        def run(seed):
            return {"s": {"a": fake_result(-seed), "b": fake_result(-2 * seed)}}

        aggregated = replicate_comparison(run, seeds=[1, 2, 3])
        assert aggregated.seeds_run() == 3
        assert aggregated.mean("s", "a") == pytest.approx(-2.0)
        assert aggregated.mean("s", "b") == pytest.approx(-4.0)
        assert aggregated.std("s", "a") > 0

    def test_win_counts(self):
        def run(seed):
            # "a" wins on every seed (higher reward).
            return {"s": {"a": fake_result(-1), "b": fake_result(-5)}}

        aggregated = replicate_comparison(run, seeds=[0, 1])
        assert aggregated.win_counts("s") == {"a": 2, "b": 0}

    def test_summary_rows(self):
        def run(seed):
            return {"s": {"a": fake_result(-1.0)}}

        aggregated = replicate_comparison(run, seeds=[0])
        rows = aggregated.summary_rows()
        assert rows == [["s", "a", -1.0, 0.0]]

    def test_empty_seeds_rejected(self):
        with pytest.raises(ValueError):
            replicate_comparison(lambda s: {}, seeds=[])
