"""Fork-label hygiene in the experiment drivers.

The path-qualified labels introduced for R101 (``fig5/train`` instead of
``train``, ``actor/net`` instead of ``net``) are *name-only*: labels
never feed :class:`numpy.random.SeedSequence` entropy — children derive
from spawn order — so the renames must leave published numbers intact.
These tests pin both halves: same-seed runs are bit-identical, and the
labels in play are unique per parent (what the sanitizer asserts live).
"""

import numpy as np

from repro.analysis.sanitizer import sanitized
from repro.eval.experiments import experiment_fig5_model_accuracy
from repro.rl.ddpg import DDPGAgent, DDPGConfig
from repro.utils.rng import RngStream

FAST = dict(
    dataset="msd", collect_steps=24, test_steps=8,
    action_hold=2, model_epochs=2,
)


class TestSameSeedRegression:
    def test_fig5_is_bit_identical_across_runs(self):
        first = experiment_fig5_model_accuracy(seed=7, **FAST)
        second = experiment_fig5_model_accuracy(seed=7, **FAST)
        for attr in (
            "ground_truth_reward", "fixed_reward", "iterative_reward",
            "ground_truth_w0", "fixed_w0", "iterative_w0",
        ):
            assert np.array_equal(getattr(first, attr), getattr(second, attr))

    def test_label_text_does_not_feed_entropy(self):
        """The R101 renames were numerically inert by construction."""
        seed = np.random.SeedSequence(123)
        draws_a = RngStream("r", seed).fork("net").normal(size=32)
        draws_b = RngStream("r", np.random.SeedSequence(123)).fork(
            "actor/net"
        ).normal(size=32)
        assert np.array_equal(draws_a, draws_b)


class TestLabelsAreUniquePerParent:
    def test_fig5_runs_clean_under_sanitizer(self):
        with sanitized() as state:
            experiment_fig5_model_accuracy(seed=3, **FAST)
        assert state.violations == 0
        # The renamed labels are in play, path-qualified.
        names = set(state.fork_names)
        assert any(n.endswith("fig5/train") for n in names)
        assert any(n.endswith("fig5/model") for n in names)
        assert any(n.endswith("fig5/test") for n in names)
        # No stream name was minted twice.
        assert all(count == 1 for count in state.fork_names.values())

    def test_ddpg_perturbation_labels_are_indexed(self):
        with sanitized() as state:
            agent = DDPGAgent(
                3, 2,
                DDPGConfig(hidden_sizes=(8,), batch_size=4),
                rng=RngStream("ddpg", np.random.SeedSequence(0)),
            )
            agent.refresh_perturbation()
            agent.refresh_perturbation()  # episode boundary: fresh label
        assert state.violations == 0
        assert "ddpg/perturb0" in state.fork_names
        assert "ddpg/perturb1" in state.fork_names

    def test_actor_and_critic_no_longer_collide(self):
        with sanitized() as state:
            DDPGAgent(
                3, 2,
                DDPGConfig(hidden_sizes=(8,)),
                rng=RngStream("agent", np.random.SeedSequence(1)),
            )
        assert state.violations == 0
        # Path-qualified: actor and critic sub-networks no longer share
        # the bare label "net" (the pre-rename R101 collision).
        assert "agent/actor/actor/net" in state.fork_names
        assert "agent/critic/critic/net" in state.fork_names
