"""Tests for ASCII reporting."""

import numpy as np
import pytest

from repro.eval.reporting import (
    format_comparison,
    format_series_table,
    format_table,
)
from repro.eval.runner import EvalResult, StepRecord


class TestFormatTable:
    def test_basic_layout(self):
        table = format_table(["a", "bb"], [[1, 2.5], ["x", "y"]])
        lines = table.splitlines()
        assert "a" in lines[0] and "bb" in lines[0]
        assert "-+-" in lines[1]
        assert "2.50" in lines[2]

    def test_title(self):
        table = format_table(["a"], [[1]], title="My Table")
        assert table.splitlines()[0] == "My Table"

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])


class TestFormatSeriesTable:
    def test_columns_per_series(self):
        table = format_series_table({"x": [1.0, 2.0], "y": [3.0, 4.0]})
        lines = table.splitlines()
        assert "step" in lines[0]
        assert "x" in lines[0] and "y" in lines[0]
        assert len(lines) == 4  # header + separator + 2 rows

    def test_length_mismatch(self):
        with pytest.raises(ValueError, match="lengths differ"):
            format_series_table({"x": [1.0], "y": [1.0, 2.0]})

    def test_empty(self):
        with pytest.raises(ValueError):
            format_series_table({})


class TestFormatComparison:
    def _result(self, reward):
        result = EvalResult("a", "s")
        result.records = [
            StepRecord(0, 1.0, reward, 0.0, 0, np.zeros(2)),
        ]
        return result

    def test_metric_extraction(self):
        results = {
            "scenario1": {"algo1": self._result(-5.0), "algo2": self._result(-7.0)}
        }
        table = format_comparison(results, metric="aggregated_reward")
        assert "-5.00" in table
        assert "-7.00" in table
        assert "scenario1" in table

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            format_comparison({})
