"""Tests for CSV series export."""

import csv

import pytest

from repro.eval.reporting import write_series_csv


class TestWriteSeriesCsv:
    def test_roundtrip(self, tmp_path):
        path = write_series_csv(
            tmp_path / "series.csv",
            {"a": [1.0, 2.0], "b": [3.0, 4.0]},
        )
        with path.open() as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == ["step", "a", "b"]
        assert rows[1] == ["0", "1.0", "3.0"]
        assert rows[2] == ["1", "2.0", "4.0"]

    def test_length_mismatch_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            write_series_csv(tmp_path / "x.csv", {"a": [1.0], "b": [1.0, 2.0]})

    def test_empty_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            write_series_csv(tmp_path / "x.csv", {})

    def test_custom_index_name(self, tmp_path):
        path = write_series_csv(
            tmp_path / "s.csv", {"x": [0.5]}, index_name="iteration"
        )
        with path.open() as handle:
            header = handle.readline().strip()
        assert header == "iteration,x"
