"""Tests for the sample-efficiency experiment harness (tiny scale)."""

import numpy as np
import pytest

from repro.core.config import MirasConfig, ModelConfig, PolicyConfig
from repro.eval.sample_efficiency import (
    SampleEfficiencyResult,
    sample_efficiency_curves,
)
from repro.rl.ddpg import DDPGConfig

from tests.conftest import make_msd_env


def tiny_config():
    return MirasConfig(
        model=ModelConfig(hidden_sizes=(8,), epochs=3),
        policy=PolicyConfig(
            ddpg=DDPGConfig(hidden_sizes=(16,), batch_size=8),
            rollout_length=4,
            rollouts_per_iteration=2,
            patience=2,
        ),
        steps_per_iteration=20,
        reset_interval=10,
        iterations=2,
        eval_steps=3,
    )


class TestResultContainer:
    def test_curve_accessors(self):
        result = SampleEfficiencyResult(
            curves={"a": [(10, -5.0), (20, -3.0)]}
        )
        assert result.interactions("a") == [10, 20]
        assert result.rewards("a") == [-5.0, -3.0]
        assert result.final_reward("a") == -3.0
        assert result.auc("a") == pytest.approx(-4.0)


class TestCurves:
    def test_produces_aligned_checkpoints(self):
        result = sample_efficiency_curves(
            lambda seed: make_msd_env(seed=seed),
            tiny_config(),
            checkpoints=2,
            eval_steps=3,
            eval_burst_scale=2.0,
            seed=7,
        )
        assert set(result.curves) == {"miras", "modelfree"}
        assert result.interactions("miras") == result.interactions("modelfree")
        assert len(result.interactions("miras")) == 2
        for name in result.curves:
            assert all(np.isfinite(r) for r in result.rewards(name))

    def test_invalid_checkpoints(self):
        with pytest.raises(ValueError):
            sample_efficiency_curves(
                lambda seed: make_msd_env(seed=seed),
                tiny_config(),
                checkpoints=0,
            )
