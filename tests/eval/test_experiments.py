"""Tests for the per-figure experiment harness (tiny scales)."""

import numpy as np
import pytest

from repro.core.config import MirasConfig, ModelConfig, PolicyConfig
from repro.eval.experiments import (
    ablation_refinement,
    ablation_window_length,
    dataset_preset,
    experiment_fig5_model_accuracy,
    experiment_fig6_training_trace,
)
from repro.rl.ddpg import DDPGConfig


def tiny_miras_config():
    return MirasConfig(
        model=ModelConfig(hidden_sizes=(8, 8), epochs=5),
        policy=PolicyConfig(
            ddpg=DDPGConfig(hidden_sizes=(16, 16), batch_size=8),
            rollout_length=5,
            rollouts_per_iteration=3,
            patience=2,
        ),
        steps_per_iteration=25,
        reset_interval=25,
        iterations=2,
        eval_steps=4,
    )


class TestPresets:
    def test_msd_preset(self):
        preset = dataset_preset("msd")
        assert preset["budget"] == 14
        assert len(preset["bursts"]) == 3

    def test_ligo_preset(self):
        preset = dataset_preset("ligo")
        assert preset["budget"] == 30
        assert preset["model_hidden"] == (20,)

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            dataset_preset("hpc")


class TestFig5:
    def test_result_structure_and_shapes(self):
        result = experiment_fig5_model_accuracy(
            "msd", collect_steps=80, test_steps=20, model_epochs=10, seed=5
        )
        assert result.dataset == "msd"
        for series in (
            result.ground_truth_reward,
            result.fixed_reward,
            result.iterative_reward,
            result.ground_truth_w0,
            result.fixed_w0,
            result.iterative_w0,
        ):
            assert series.shape == (20,)
            assert np.all(np.isfinite(series))

    def test_rmse_metrics_finite(self):
        result = experiment_fig5_model_accuracy(
            "msd", collect_steps=80, test_steps=20, model_epochs=10, seed=5
        )
        assert np.isfinite(result.rmse_fixed_reward)
        assert np.isfinite(result.rmse_iterative_reward)
        assert np.isfinite(result.correlation_fixed_reward())


class TestFig6:
    def test_trace_has_one_entry_per_iteration(self):
        results = experiment_fig6_training_trace(
            "msd", config=tiny_miras_config(), seed=6
        )
        assert len(results) == 2
        assert all(np.isfinite(r.eval_reward) for r in results)


class TestAblations:
    def test_refinement_ablation_keys(self):
        out = ablation_refinement(
            "msd", collect_steps=80, test_steps=40, seed=7
        )
        assert {
            "boundary_rmse_raw",
            "boundary_rmse_refined",
            "interior_rmse_raw",
            "interior_rmse_refined",
        } <= set(out)

    def test_window_length_ablation(self):
        out = ablation_window_length(
            "msd", window_lengths=(15.0, 30.0), steps_at_30s=4, seed=8
        )
        assert set(out) == {15.0, 30.0}
        for stats in out.values():
            assert stats["mean_response_time"] >= 0
            # Same simulated time: fewer steps with longer windows.
        assert out[15.0]["steps"] == 2 * out[30.0]["steps"]
