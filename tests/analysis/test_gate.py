"""The gate: the shipped tree must be reprolint-clean.

These tests pin the acceptance contract: ``python -m repro.analysis``
exits 0 on ``src/repro`` with zero unsuppressed findings and an empty
baseline, so any regression reintroducing ambient nondeterminism, seed
fallbacks, float-equality drift, or broken exports fails CI immediately.
"""

import os
import subprocess
import sys

from repro.analysis.baseline import Baseline
from repro.analysis.config import load_config
from repro.analysis.engine import run_analysis

from tests.analysis.conftest import repo_root


class TestLintGate:
    def test_src_repro_has_zero_findings(self):
        root = repo_root()
        config = load_config(root)
        result = run_analysis(config.resolved_paths(), config=config)
        details = "\n".join(f.format_text() for f in result.findings)
        assert result.findings == [], f"reprolint regressions:\n{details}"
        assert result.checked_files > 50

    def test_baseline_is_empty(self):
        config = load_config(repo_root())
        baseline_path = config.baseline_path()
        if baseline_path is not None and baseline_path.exists():
            assert len(Baseline.load(baseline_path)) == 0
        # A configured-but-absent baseline file is the empty baseline.

    def test_no_rules_disabled_in_repo_config(self):
        assert load_config(repo_root()).disable == []

    def test_module_cli_exits_zero(self):
        root = repo_root()
        env = dict(os.environ)
        src = str(root / "src")
        env["PYTHONPATH"] = (
            src + os.pathsep + env["PYTHONPATH"]
            if env.get("PYTHONPATH")
            else src
        )
        proc = subprocess.run(
            [sys.executable, "-m", "repro.analysis", "--format", "json"],
            cwd=root,
            env=env,
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
