"""The shape-inference substrate: domain, algebra, contracts, engine.

Covers :mod:`repro.analysis.shapes` directly — the abstract value
domain and its join, the broadcast algebra (provable-error semantics),
the ``shapes=`` contract grammar, the interprocedural engine, and the
per-pair contract verdicts.  The V/W rule families built on top are
covered in test_rules_shapes / test_rules_batchaxis / test_rules_worker;
the registry sweep at the bottom is the acceptance gate that every
``@batched_pair`` in the library carries a dataflow-proven contract.
"""

import textwrap

import pytest

from repro.analysis.index import build_index
from repro.analysis.project import Project, discover_files, parse_module
from repro.analysis.shapes import (
    BATCH_SYMBOL,
    UNKNOWN,
    ContractError,
    ShapeEngine,
    ShapeVal,
    array_of,
    batch_contract_report,
    broadcast_dims,
    int_of,
    join_vals,
    parse_contract,
)
from tests.analysis.conftest import repo_root


def src(code):
    return textwrap.dedent(code).lstrip("\n")


def index_of(tmp_path, files):
    """Write ``{relative_path: source}`` and build a ProjectIndex."""
    for rel, code in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(code, encoding="utf-8")
    modules = []
    for path in discover_files([tmp_path]):
        module, error = parse_module(path, root=tmp_path)
        assert error is None, f"fixture must parse: {error}"
        modules.append(module)
    return build_index(Project(modules))


def function_named(index, name):
    matches = [f for f in index.functions if f.name == name]
    assert len(matches) == 1, f"expected one {name!r}, got {matches}"
    return matches[0]


def infer(tmp_path, code, name):
    """Infer the abstract return value of ``name`` (unknown params)."""
    index = index_of(tmp_path, {"mod.py": src(code)})
    engine = ShapeEngine(index)
    return engine.infer_function(function_named(index, name)), engine


class TestShapeValDomain:
    def test_array_rank_and_kind(self):
        val = array_of((3, "K"), "float64")
        assert val.is_array
        assert val.rank == 2
        assert not int_of(3).is_array
        assert int_of(3).rank is None

    def test_join_identical_is_identity(self):
        val = array_of((3, 4), "float32")
        assert join_vals(val, val) == val

    def test_join_same_rank_widens_differing_dims(self):
        joined = join_vals(
            array_of((3, 4), "float32"), array_of((3, 5), "float64")
        )
        assert joined.dims == (3, None)
        assert joined.dtype is None  # dtype disagreement widens too

    def test_join_rank_mismatch_is_unknown(self):
        assert join_vals(array_of((3,)), array_of((3, 4))) is UNKNOWN

    def test_join_ints_forgets_the_value(self):
        joined = join_vals(int_of(3), int_of(4))
        assert joined.kind == "int"
        assert joined.value is None

    def test_join_across_kinds_is_unknown(self):
        assert join_vals(array_of((3,)), int_of(3)) is UNKNOWN


class TestBroadcastAlgebra:
    def test_trailing_alignment(self):
        dims, bad = broadcast_dims((3, 1), (4,))
        assert (dims, bad) == ((3, 4), False)

    def test_concrete_mismatch_is_provable(self):
        dims, bad = broadcast_dims((3,), (4,))
        assert bad
        assert dims is None

    def test_one_broadcasts_against_anything(self):
        dims, bad = broadcast_dims((1,), (7,))
        assert (dims, bad) == ((7,), False)

    def test_symbol_vs_concrete_is_not_provable(self):
        # K might be 3 at runtime: possible error, never a finding.
        dims, bad = broadcast_dims((BATCH_SYMBOL,), (3,))
        assert not bad
        assert dims == (None,)

    def test_matching_symbols_survive(self):
        dims, bad = broadcast_dims(
            (BATCH_SYMBOL, "dim"), (BATCH_SYMBOL, "dim")
        )
        assert (dims, bad) == ((BATCH_SYMBOL, "dim"), False)


class TestContractGrammar:
    def test_full_contract_round_trip(self):
        contract = parse_contract("(K, state_dim), _ -> (K, action_dim)")
        first, second = contract.params
        assert first.kind == "array"
        assert first.dims == ("K", "state_dim")
        assert second.kind == "any"
        assert contract.ret.dims == ("K", "action_dim")

    def test_bare_identifier_binds_a_scalar_int(self):
        contract = parse_contract("K, action_dim, _ -> (K, action_dim)")
        assert contract.params[0].kind == "int"
        assert contract.params[0].symbol == BATCH_SYMBOL
        assert contract.binds_batch_axis

    def test_empty_parens_and_digits(self):
        contract = parse_contract("(), (K, 3) -> (K,)")
        assert contract.params[0].kind == "scalar"
        assert contract.params[1].dims == ("K", 3)

    def test_batch_axis_properties(self):
        assert not parse_contract("(n, d) -> (n, d)").binds_batch_axis
        assert not parse_contract("(K, d) -> (d, K)").returns_batch_axis
        # Unchecked / scalar / int returns never block the proof.
        assert parse_contract("(K, d) -> _").returns_batch_axis
        assert parse_contract("(K, d) -> ()").returns_batch_axis

    @pytest.mark.parametrize("bad", [
        "",
        "(K",
        "(K, d) ->",
        "(K, d) -> (K,) junk",
        "(K, d) -> (K,) @",
    ])
    def test_malformed_contracts_raise(self, bad):
        with pytest.raises(ContractError):
            parse_contract(bad)


class TestEngineInference:
    def test_constructor_shape_and_default_dtype(self, tmp_path):
        ret, _ = infer(tmp_path, """
            import numpy as np

            def make():
                return np.zeros((3, 4))
        """, "make")
        assert ret.dims == (3, 4)
        assert ret.dtype == "float64"

    def test_broadcast_result_shape(self, tmp_path):
        ret, engine = infer(tmp_path, """
            import numpy as np

            def combine():
                return np.zeros((3, 1)) + np.ones((4,))
        """, "combine")
        assert ret.dims == (3, 4)
        assert engine.events == []

    def test_provable_mismatch_raises_an_event(self, tmp_path):
        _, engine = infer(tmp_path, """
            import numpy as np

            def clash():
                return np.zeros((3,)) + np.ones((4,))
        """, "clash")
        assert [e.kind for e in engine.events] == ["broadcast"]

    def test_axis_reduce_drops_the_axis(self, tmp_path):
        ret, _ = infer(tmp_path, """
            import numpy as np

            def reduce():
                return np.sum(np.zeros((3, 4)), axis=0)
        """, "reduce")
        assert ret.dims == (4,)

    def test_matmul_contracts_the_inner_dims(self, tmp_path):
        ret, _ = infer(tmp_path, """
            import numpy as np

            def mm():
                return np.zeros((3, 4)) @ np.ones((4, 5))
        """, "mm")
        assert ret.dims == (3, 5)

    def test_astype_rebinds_the_dtype(self, tmp_path):
        ret, _ = infer(tmp_path, """
            import numpy as np

            def narrow():
                wide = np.ones((2,))
                return wide.astype(np.float32)
        """, "narrow")
        assert ret.dtype == "float32"

    def test_branch_join_widens_disagreeing_dims(self, tmp_path):
        ret, _ = infer(tmp_path, """
            import numpy as np

            def pick(flag):
                if flag:
                    out = np.zeros((3,))
                else:
                    out = np.zeros((4,))
                return out
        """, "pick")
        assert ret.dims == (None,)

    def test_interprocedural_call_edge(self, tmp_path):
        ret, engine = infer(tmp_path, """
            import numpy as np

            def helper():
                return np.zeros((3, 2))

            def caller():
                return helper() + np.ones((3, 2))
        """, "caller")
        assert ret.dims == (3, 2)
        assert engine.events == []

    def test_ambiguous_callee_stays_unknown(self, tmp_path):
        index = index_of(tmp_path, {
            "a.py": src("""
                import numpy as np

                def make():
                    return np.zeros((3,))
            """),
            "b.py": src("""
                import numpy as np

                def make():
                    return np.zeros((4,))
            """),
            "c.py": src("""
                import numpy as np

                def caller():
                    return make() + np.ones((5,))
            """),
        })
        engine = ShapeEngine(index)
        engine.infer_function(function_named(index, "caller"))
        assert engine.events == []  # two candidates: edge unknowable


class TestBatchContractReport:
    def test_sound_pair_is_proven_with_dataflow_leading_axis(self, tmp_path):
        index = index_of(tmp_path, {"mod.py": src("""
            from repro.utils.batchpairs import batched_pair

            def scale(v, f):
                return v * f

            @batched_pair("scale", shapes="(K, dim), () -> (K, dim)")
            def scale_batch(vs, f):
                return vs * f
        """)})
        (report,) = batch_contract_report(index)
        assert report.proven
        assert report.inferred_leading == BATCH_SYMBOL

    def test_missing_contract_is_not_proven(self, tmp_path):
        index = index_of(tmp_path, {"mod.py": src("""
            from repro.utils.batchpairs import batched_pair

            def scale(v):
                return v

            @batched_pair("scale")
            def scale_batch(vs):
                return vs
        """)})
        (report,) = batch_contract_report(index)
        assert not report.proven
        assert report.contract is None

    def test_transpose_contradicts_the_declared_return(self, tmp_path):
        index = index_of(tmp_path, {"mod.py": src("""
            from repro.utils.batchpairs import batched_pair

            def flip(v):
                return v

            @batched_pair("flip", shapes="(K, dim) -> (K, dim)")
            def flip_batch(vs):
                return vs.T
        """)})
        (report,) = batch_contract_report(index)
        assert report.contradiction is not None
        assert not report.proven

    def test_k1_collapse_failure_is_detected(self, tmp_path):
        # squeeze() keeps a symbolic (K,) intact but collapses (1,) to
        # a rank-0 scalar, so the matmul is only provably broken on the
        # K=1 path — exactly the hazard the collapse re-run exists for.
        index = index_of(tmp_path, {"mod.py": src("""
            import numpy as np
            from repro.utils.batchpairs import batched_pair

            def fold(v):
                return v

            @batched_pair("fold", shapes="(K,) -> (K,)")
            def fold_batch(vs):
                flat = np.squeeze(vs)
                return np.matmul(flat, np.ones((2,)))
        """)})
        (report,) = batch_contract_report(index)
        assert [e.kind for e in report.k1_events] == ["rank"]
        assert not report.proven


def library_index():
    """The real index over src/repro (cached per test session)."""
    if not hasattr(library_index, "_cache"):
        root = repo_root() / "src"
        modules = []
        for path in discover_files([root / "repro"]):
            module, error = parse_module(path, root=root)
            assert error is None, f"{path} must parse: {error}"
            modules.append(module)
        library_index._cache = build_index(Project(modules))
    return library_index._cache


class TestRegistrySweep:
    """Acceptance gate: every ``@batched_pair`` twin in the library has
    a dataflow-proven leading-batch-axis contract."""

    def test_every_pair_contract_is_proven(self):
        reports = batch_contract_report(library_index())
        assert len(reports) >= 14  # the PR-5/PR-6 vectorised surface
        unproven = [
            f"{r.site.module}.{r.site.batch_name}"
            for r in reports if not r.proven
        ]
        assert unproven == []

    def test_inference_derives_the_leading_axis_strictly(self):
        # For pairs whose bodies the interpreter can follow end-to-end
        # the leading axis is *derived*, not just declared.
        strict = {
            (r.site.module, r.site.batch_name)
            for r in batch_contract_report(library_index())
            if r.inferred_leading == BATCH_SYMBOL
        }
        assert ("repro.core.reward", "reward_eq1_batch") in strict
        assert len(strict) >= 3
