"""Engine mechanics: suppressions, baseline ratchet, config, CLI, output."""

import json
import textwrap

from repro.analysis.baseline import Baseline
from repro.analysis.cli import main as lint_main
from repro.analysis.config import LintConfig, load_config
from repro.analysis.engine import run_analysis
from repro.analysis.findings import Finding, Severity

from tests.analysis.conftest import rules_of


def src(code):
    return textwrap.dedent(code).lstrip("\n")


#: One violation of every rule family (D1, D2, S1, A1) in one package —
#: the acceptance fixture for exit-code semantics.
ALL_FAMILIES_INIT = '''
"""Fixture package violating every rule family."""

import random
import numpy as np

from repro.utils.rng import RngStream

__all__ = ["ghost"]

rng = RngStream("pkg", np.random.SeedSequence(0))


def sample(xs=[]):
    """Draw an ambient sample."""
    if random.random() == 0.5:
        return xs
    return None
'''


def write_all_families_package(root):
    pkg = root / "badpkg"
    pkg.mkdir()
    (pkg / "__init__.py").write_text(src(ALL_FAMILIES_INIT), encoding="utf-8")
    return pkg


class TestSuppressions:
    def test_inline_disable_suppresses_rule(self, tmp_path):
        path = tmp_path / "mod.py"
        path.write_text(src("""
            def degenerate(cv):
                return cv == 0.0  # reprolint: disable=S101
        """), encoding="utf-8")
        result = run_analysis([path], config=LintConfig(root=tmp_path))
        assert result.findings == []
        assert [f.rule for f in result.suppressed] == ["S101"]

    def test_disable_all_keyword(self, tmp_path):
        path = tmp_path / "mod.py"
        path.write_text(src("""
            import random  # reprolint: disable=all
        """), encoding="utf-8")
        result = run_analysis([path], config=LintConfig(root=tmp_path))
        assert result.findings == []
        assert len(result.suppressed) == 1

    def test_disable_on_other_line_does_not_leak(self, tmp_path):
        # The misplaced waiver suppresses nothing, so the real finding
        # fires — and the dead comment itself is reported as U101.
        path = tmp_path / "mod.py"
        path.write_text(src("""
            # reprolint: disable=S101
            def degenerate(cv):
                return cv == 0.0
        """), encoding="utf-8")
        result = run_analysis([path], config=LintConfig(root=tmp_path))
        assert [f.rule for f in result.findings] == ["U101", "S101"]

    def test_disable_other_rule_does_not_suppress(self, tmp_path):
        path = tmp_path / "mod.py"
        path.write_text(src("""
            def degenerate(cv):
                return cv == 0.0  # reprolint: disable=D101
        """), encoding="utf-8")
        result = run_analysis([path], config=LintConfig(root=tmp_path))
        assert [f.rule for f in result.findings] == ["S101", "U101"]


class TestConfig:
    def test_disabled_rules_are_dropped(self, tmp_path):
        path = tmp_path / "mod.py"
        path.write_text(src("""
            def degenerate(cv):
                assert cv >= 0
                return cv == 0.0
        """), encoding="utf-8")
        config = LintConfig(root=tmp_path, disable=["S103"])
        result = run_analysis([path], config=config)
        assert rules_of(result.findings) == {"S101"}

    def test_exclude_prefixes_skip_files(self, tmp_path):
        vendored = tmp_path / "vendored"
        vendored.mkdir()
        (vendored / "mod.py").write_text("import random\n", encoding="utf-8")
        config = LintConfig(root=tmp_path, exclude=["vendored"])
        result = run_analysis([tmp_path], config=config)
        assert result.findings == []
        assert result.checked_files == 0

    def test_load_config_reads_pyproject(self, tmp_path):
        (tmp_path / "pyproject.toml").write_text(src("""
            [tool.reprolint]
            paths = ["lib"]
            disable = ["A103"]
            baseline = "base.json"
            exclude = ["lib/_gen"]
        """), encoding="utf-8")
        config = load_config(tmp_path)
        assert config.root == tmp_path
        assert config.paths == ["lib"]
        assert config.disable == ["A103"]
        assert config.baseline_path() == tmp_path / "base.json"
        assert config.exclude == ["lib/_gen"]

    def test_load_config_defaults_without_pyproject(self, tmp_path):
        config = load_config(tmp_path)
        assert config.paths == ["src/repro"]
        assert config.disable == []
        assert config.baseline_path() is None


class TestBaseline:
    def _finding(self, path="a.py", rule="S101", line=1):
        return Finding(
            path=path, line=line, column=1, rule=rule,
            severity=Severity.ERROR, message="m",
        )

    def test_baseline_waives_up_to_count(self):
        baseline = Baseline({("a.py", "S101"): 1})
        findings = [self._finding(line=1), self._finding(line=9)]
        reported, waived = baseline.apply(findings)
        assert len(waived) == 1 and waived[0].line == 1
        assert len(reported) == 1 and reported[0].line == 9

    def test_baseline_is_per_path_and_rule(self):
        baseline = Baseline({("a.py", "S101"): 5})
        findings = [self._finding(path="b.py"), self._finding(rule="S103")]
        reported, _ = baseline.apply(findings)
        assert len(reported) == 2

    def test_round_trip(self, tmp_path):
        baseline = Baseline.from_findings(
            [self._finding(), self._finding(line=3), self._finding(rule="D101")]
        )
        path = tmp_path / "base.json"
        baseline.save(path)
        loaded = Baseline.load(path)
        assert loaded.allowances == {
            ("a.py", "S101"): 2,
            ("a.py", "D101"): 1,
        }

    def test_missing_file_is_empty(self, tmp_path):
        assert len(Baseline.load(tmp_path / "nope.json")) == 0

    def test_ratchet_via_cli(self, tmp_path, capsys):
        path = tmp_path / "mod.py"
        path.write_text("import random\n", encoding="utf-8")
        base = tmp_path / "base.json"

        # Dirty tree fails ...
        assert lint_main([str(path), "--baseline", str(base),
                          "--root", str(tmp_path)]) == 1
        # ... until the findings are accepted into the baseline ...
        assert lint_main([str(path), "--baseline", str(base),
                          "--root", str(tmp_path),
                          "--update-baseline"]) == 0
        assert lint_main([str(path), "--baseline", str(base),
                          "--root", str(tmp_path)]) == 0
        # ... and a *new* violation still fails.
        path.write_text("import random\nimport random as r2\n",
                        encoding="utf-8")
        assert lint_main([str(path), "--baseline", str(base),
                          "--root", str(tmp_path)]) == 1
        capsys.readouterr()


class TestCli:
    def test_clean_file_exits_zero(self, tmp_path, capsys):
        path = tmp_path / "ok.py"
        path.write_text(src("""
            \"\"\"Clean module.\"\"\"

            def double(x):
                \"\"\"Twice x.\"\"\"
                return 2 * x
        """), encoding="utf-8")
        assert lint_main([str(path), "--root", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "0 finding(s)" in out

    def test_fixture_with_every_family_exits_nonzero(self, tmp_path, capsys):
        pkg = write_all_families_package(tmp_path)
        code = lint_main([str(pkg), "--root", str(tmp_path)])
        out = capsys.readouterr().out
        assert code == 1
        found = {line.split()[1] for line in out.splitlines()
                 if ": " in line and "reprolint:" not in line}
        families = {rule[0] for rule in found if rule[0].isalpha()}
        assert {"D", "S", "A"} <= families
        assert {"D101", "D201", "S101", "S102", "A101"} <= found

    def test_json_format(self, tmp_path, capsys):
        pkg = write_all_families_package(tmp_path)
        code = lint_main([str(pkg), "--root", str(tmp_path),
                          "--format", "json"])
        data = json.loads(capsys.readouterr().out)
        assert code == 1
        assert data["exit_code"] == 1
        assert data["checked_files"] == 1
        rules = {f["rule"] for f in data["findings"]}
        assert {"D101", "D201", "S101", "S102", "A101"} <= rules
        assert data["version"] == 2
        assert data["stale_baseline"] == []
        for finding in data["findings"]:
            assert set(finding) == {
                "path", "line", "column", "rule", "severity", "message",
                "family", "status",
            }
            assert finding["family"] == finding["rule"][:2]
            assert finding["status"] == "reported"

    def test_syntax_error_reports_p001(self, tmp_path, capsys):
        path = tmp_path / "broken.py"
        path.write_text("def broken(:\n", encoding="utf-8")
        assert lint_main([str(path), "--root", str(tmp_path)]) == 1
        assert "P001" in capsys.readouterr().out

    def test_unknown_disable_rule_is_usage_error(self, tmp_path, capsys):
        assert lint_main(["--root", str(tmp_path),
                          "--disable", "Z999", str(tmp_path)]) == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_missing_path_is_usage_error(self, tmp_path, capsys):
        assert lint_main([str(tmp_path / "nope"),
                          "--root", str(tmp_path)]) == 2
        assert "no such path" in capsys.readouterr().err

    def test_list_rules_covers_every_family(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in ("D101", "D102", "D201", "S101", "S102", "S103",
                     "A101", "A102", "A103", "P001",
                     "R101", "R102", "R103", "T101", "T102", "T103",
                     "E101", "E102", "L101"):
            assert rule in out

    def test_disable_flag_drops_family(self, tmp_path, capsys):
        path = tmp_path / "mod.py"
        path.write_text("import random\n", encoding="utf-8")
        assert lint_main([str(path), "--root", str(tmp_path),
                          "--disable", "D101"]) == 0
        capsys.readouterr()


class TestStaleBaseline:
    """Stale baseline entries fail the run: the ratchet only tightens."""

    def _write_dirty(self, tmp_path):
        path = tmp_path / "mod.py"
        path.write_text("import random\n", encoding="utf-8")
        return path

    def test_fixed_finding_leaves_stale_entry_and_fails(
        self, tmp_path, capsys
    ):
        path = self._write_dirty(tmp_path)
        base = tmp_path / "base.json"
        assert lint_main([str(path), "--baseline", str(base),
                          "--root", str(tmp_path),
                          "--update-baseline"]) == 0
        # Fix the violation; the allowance is now unconsumed.
        path.write_text("x = 1\n", encoding="utf-8")
        assert lint_main([str(path), "--baseline", str(base),
                          "--root", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "stale baseline entry" in out
        assert "1 stale baseline entries" in out

    def test_stale_entries_in_json_output(self, tmp_path, capsys):
        path = self._write_dirty(tmp_path)
        base = tmp_path / "base.json"
        assert lint_main([str(path), "--baseline", str(base),
                          "--root", str(tmp_path),
                          "--update-baseline"]) == 0
        path.write_text("x = 1\n", encoding="utf-8")
        capsys.readouterr()
        assert lint_main([str(path), "--baseline", str(base),
                          "--root", str(tmp_path),
                          "--format", "json"]) == 1
        data = json.loads(capsys.readouterr().out)
        assert data["exit_code"] == 1
        assert data["findings"] == []
        assert data["stale_baseline"] == [
            {"path": "mod.py", "rule": "D101", "unused": 1}
        ]

    def test_update_baseline_clears_stale_entries(self, tmp_path, capsys):
        path = self._write_dirty(tmp_path)
        base = tmp_path / "base.json"
        assert lint_main([str(path), "--baseline", str(base),
                          "--root", str(tmp_path),
                          "--update-baseline"]) == 0
        path.write_text("x = 1\n", encoding="utf-8")
        assert lint_main([str(path), "--baseline", str(base),
                          "--root", str(tmp_path),
                          "--update-baseline"]) == 0
        assert lint_main([str(path), "--baseline", str(base),
                          "--root", str(tmp_path)]) == 0
        assert len(Baseline.load(base)) == 0
        capsys.readouterr()

    def test_engine_reports_stale_triples(self, tmp_path):
        path = self._write_dirty(tmp_path)
        baseline = Baseline({("mod.py", "D101"): 2, ("gone.py", "S101"): 1})
        config = LintConfig(root=tmp_path)
        result = run_analysis([path], config=config, baseline=baseline)
        assert result.stale_baseline == [
            ("gone.py", "S101", 1),
            ("mod.py", "D101", 1),
        ]
        assert result.exit_code == 1
