"""E1 family: event-discipline over the name-level call graph.

E101 flags sim-layer functions that mutate state without being
reachable from event callbacks, the step path, or construction; E102
flags sim-owned state mutated from outside the sim layer entirely.
Fixtures configure a synthetic ``sim`` package via the ``sim_packages``
and ``step_entrypoints`` config kwargs.
"""

from tests.analysis.conftest import rules_of

SIM_KW = dict(sim_packages=["sim"], step_entrypoints=["step"])


class TestE101UnreachableMutation:
    def test_unreachable_writer_fires(self, lint_package):
        findings = lint_package({
            "sim/__init__.py": "",
            "sim/core.py": (
                "class System:\n"
                "    def __init__(self):\n"
                "        self.wip = 0\n"
                "    def step(self):\n"
                "        self.wip += 1\n"
                "    def rogue_poke(self):\n"
                "        self.wip = 99\n"
            ),
        }, **SIM_KW)
        e101 = [f for f in findings if f.rule == "E101"]
        assert len(e101) == 1
        assert "rogue_poke" in e101[0].message

    def test_step_path_and_init_are_sanctioned(self, lint_package):
        findings = lint_package({
            "sim/__init__.py": "",
            "sim/core.py": (
                "class System:\n"
                "    def __init__(self):\n"
                "        self.wip = 0\n"
                "    def step(self):\n"
                "        self._drain()\n"
                "    def _drain(self):\n"
                "        self.wip = 0\n"
            ),
        }, **SIM_KW)
        assert "E101" not in rules_of(findings)

    def test_scheduled_callback_is_a_root(self, lint_package):
        findings = lint_package({
            "sim/__init__.py": "",
            "sim/core.py": (
                "class System:\n"
                "    def __init__(self, loop):\n"
                "        loop.schedule(0.0, self._on_arrival)\n"
                "    def _on_arrival(self):\n"
                "        self.wip = 1\n"
            ),
        }, **SIM_KW)
        assert "E101" not in rules_of(findings)

    def test_call_from_outside_sim_is_a_root(self, lint_package):
        findings = lint_package({
            "sim/__init__.py": "",
            "sim/core.py": (
                "class System:\n"
                "    def drain_now(self):\n"
                "        self.wip = 0\n"
            ),
            "driver/__init__.py": "",
            "driver/run.py": (
                "def run(system):\n"
                "    system.drain_now()\n"
            ),
        }, **SIM_KW)
        assert "E101" not in rules_of(findings)


class TestE102ExternalMutation:
    def test_external_write_to_sim_owned_state_fires(self, lint_package):
        findings = lint_package({
            "sim/__init__.py": "",
            "sim/core.py": "class System:\n    pass\n",
            "driver/__init__.py": "",
            "driver/run.py": (
                "def cheat(env):\n"
                "    env.system.consumer_budget = 999\n"
            ),
        }, **SIM_KW)
        e102 = [f for f in findings if f.rule == "E102"]
        assert len(e102) == 1
        assert e102[0].path == "driver/run.py"

    def test_binding_a_system_reference_is_silent(self, lint_package):
        findings = lint_package({
            "sim/__init__.py": "",
            "driver/__init__.py": "",
            "driver/run.py": (
                "class Env:\n"
                "    def __init__(self, system):\n"
                "        self.system = system\n"
            ),
        }, **SIM_KW)
        assert "E102" not in rules_of(findings)

    def test_sim_internal_writes_are_exempt_from_e102(self, lint_package):
        findings = lint_package({
            "sim/__init__.py": "",
            "sim/core.py": (
                "class Loop:\n"
                "    def step(self, system):\n"
                "        system.wip = 0\n"
            ),
        }, **SIM_KW)
        assert "E102" not in rules_of(findings)
