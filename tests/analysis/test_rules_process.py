"""Positive/negative coverage for the P1 (process-safety) family."""

import textwrap

from tests.analysis.conftest import rules_of


def src(code):
    return textwrap.dedent(code).lstrip("\n")


class TestP101WorkerForm:
    def test_flags_lambda_worker(self, lint):
        findings = lint(src("""
            def run(pool, xs):
                return list(pool.map(lambda x: x + 1, xs))
        """))
        assert "P101" in rules_of(findings)

    def test_flags_bound_method_worker(self, lint):
        findings = lint(src("""
            class Worker:
                def work(self, x):
                    return x

            def run(pool, w, xs):
                return list(pool.map(w.work, xs))
        """))
        assert "P101" in rules_of(findings)

    def test_flags_nested_function_worker(self, lint):
        findings = lint(src("""
            def run(pool, xs):
                def work(x):
                    return x + 1
                return list(pool.map(work, xs))
        """))
        assert "P101" in rules_of(findings)

    def test_module_level_worker_is_clean(self, lint):
        findings = lint(src("""
            def work(x):
                return x + 1

            def run(pool, xs):
                return list(pool.map(work, xs))
        """))
        assert "P101" not in rules_of(findings)

    def test_process_target_keyword_is_checked(self, lint):
        findings = lint(src("""
            from multiprocessing import Process

            def run(xs):
                p = Process(target=lambda: sum(xs))
                p.start()
        """))
        assert "P101" in rules_of(findings)

    def test_non_pool_receiver_is_ignored(self, lint):
        # dict.map / arbitrary .submit on a non-pool receiver is not a
        # process boundary; the checker keys off the receiver name.
        findings = lint(src("""
            def run(mapper, xs):
                return list(mapper.map(lambda x: x, xs))
        """))
        assert "P101" not in rules_of(findings)


class TestP102MutableGlobals:
    def test_flags_worker_reading_mutable_global(self, lint):
        findings = lint(src("""
            cache = {}

            def work(x):
                return cache.get(x, x)

            def run(pool, xs):
                return list(pool.map(work, xs))
        """))
        assert "P102" in rules_of(findings)

    def test_allcaps_constant_registry_is_clean(self, lint):
        findings = lint(src("""
            LIMITS = {"cpu": 4}

            def work(x):
                return LIMITS.get(x, x)

            def run(pool, xs):
                return list(pool.map(work, xs))
        """))
        assert "P102" not in rules_of(findings)

    def test_payload_passed_state_is_clean(self, lint):
        findings = lint(src("""
            def work(task):
                cache, x = task
                return cache.get(x, x)

            def run(pool, tasks):
                return list(pool.map(work, tasks))
        """))
        assert "P102" not in rules_of(findings)


class TestP103AmbientRng:
    def test_flags_worker_reading_module_rng(self, lint):
        findings = lint(src("""
            from numpy.random import default_rng

            rng = default_rng(0)

            def work(x):
                return x + rng.standard_normal()

            def run(pool, xs):
                return list(pool.map(work, xs))
        """))
        assert "P103" in rules_of(findings)

    def test_flags_unseeded_generator_in_worker(self, lint):
        findings = lint(src("""
            from numpy.random import default_rng

            def work(x):
                rng = default_rng()
                return x + rng.standard_normal()

            def run(pool, xs):
                return list(pool.map(work, xs))
        """))
        assert "P103" in rules_of(findings)

    def test_task_derived_seed_is_clean(self, lint):
        findings = lint(src("""
            from numpy.random import default_rng

            def work(task):
                seed, x = task
                rng = default_rng(seed)
                return x + rng.standard_normal()

            def run(pool, tasks):
                return list(pool.map(work, tasks))
        """))
        assert "P103" not in rules_of(findings)

    def test_unseeded_rng_outside_worker_is_clean(self, lint):
        # The P1 family polices process boundaries; ambient-RNG use in
        # ordinary code belongs to the D family.
        findings = lint(src("""
            from numpy.random import default_rng

            def sample(x):
                rng = default_rng()
                return x + rng.standard_normal()
        """))
        assert "P103" not in rules_of(findings)


class TestP104CompletionOrder:
    def test_flags_as_completed(self, lint):
        findings = lint(src("""
            from concurrent.futures import as_completed

            def work(x):
                return x

            def run(executor, tasks):
                futures = [executor.submit(work, t) for t in tasks]
                return [f.result() for f in as_completed(futures)]
        """))
        assert "P104" in rules_of(findings)

    def test_flags_imap_unordered(self, lint):
        findings = lint(src("""
            def work(x):
                return x

            def run(pool, xs):
                return list(pool.imap_unordered(work, xs))
        """))
        assert "P104" in rules_of(findings)

    def test_ordered_map_is_clean(self, lint):
        findings = lint(src("""
            def work(x):
                return x

            def run(executor, xs):
                return list(executor.map(work, xs))
        """))
        assert "P104" not in rules_of(findings)
