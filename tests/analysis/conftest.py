"""Shared helpers for the reprolint tests.

Rules are exercised on synthetic source written into ``tmp_path``; the
helpers below hide the engine plumbing so each test states only the code
under analysis and the rule ids it expects.
"""

from pathlib import Path

import pytest

from repro.analysis.config import LintConfig
from repro.analysis.engine import run_analysis


@pytest.fixture
def lint(tmp_path):
    """Lint one synthetic module; returns the list of findings."""

    def _lint(code, filename="sample.py", **config_kwargs):
        path = tmp_path / filename
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(code, encoding="utf-8")
        config = LintConfig(root=tmp_path, **config_kwargs)
        return run_analysis([path], config=config).findings

    return _lint


@pytest.fixture
def lint_package(tmp_path):
    """Lint a synthetic package given ``{relative_path: source}``."""

    def _lint(files, **config_kwargs):
        for rel, code in files.items():
            path = tmp_path / rel
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(code, encoding="utf-8")
        config = LintConfig(root=tmp_path, **config_kwargs)
        return run_analysis([tmp_path], config=config).findings

    return _lint


def rules_of(findings):
    """The set of rule ids present in a findings list."""
    return {f.rule for f in findings}


def repo_root() -> Path:
    """The repository root (two levels above tests/analysis/)."""
    return Path(__file__).resolve().parents[2]
