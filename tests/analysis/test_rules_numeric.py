"""Positive/negative coverage for the N1 (numeric discipline) family."""

import textwrap

from tests.analysis.conftest import rules_of


def src(code):
    return textwrap.dedent(code).lstrip("\n")


class TestN101MixedDtypes:
    def test_flags_mixed_dtypes_in_one_function(self, lint):
        findings = lint(src("""
            import numpy as np

            def convert(x):
                a = np.asarray(x, dtype=np.float32)
                b = np.asarray(x, dtype="float64")
                return a + b
        """))
        assert "N101" in rules_of(findings)

    def test_single_dtype_function_is_clean(self, lint):
        findings = lint(src("""
            import numpy as np

            def convert(x):
                a = np.asarray(x, dtype=np.float32)
                b = np.zeros(3, dtype="float32")
                return a + b
        """))
        assert "N101" not in rules_of(findings)

    def test_flags_contradicting_call_edge(self, lint):
        findings = lint(src("""
            import numpy as np

            def producer(x):
                return np.asarray(x, dtype=np.float32)

            def consumer(x):
                y = np.asarray(x, dtype=np.float64)
                return y + producer(x)
        """))
        assert "N101" in rules_of(findings)

    def test_matching_call_edge_is_clean(self, lint):
        findings = lint(src("""
            import numpy as np

            def producer(x):
                return np.asarray(x, dtype=np.float64)

            def consumer(x):
                y = np.asarray(x, dtype=np.float64)
                return y + producer(x)
        """))
        assert "N101" not in rules_of(findings)

    def test_ambiguous_callee_set_stays_silent(self, lint_package):
        # Two same-name callees pinning different dtypes: the edge is
        # unknowable, so the checker must not guess.
        findings = lint_package({
            "pkg/__init__.py": "",
            "pkg/a.py": src("""
                import numpy as np

                def make(x):
                    return np.asarray(x, dtype=np.float64)
            """),
            "pkg/b.py": src("""
                import numpy as np

                def make(x):
                    return np.asarray(x, dtype=np.float32)
            """),
            "pkg/c.py": src("""
                import numpy as np

                def consumer(x):
                    y = np.asarray(x, dtype=np.float32)
                    return y + make(x)
            """),
        })
        assert "N101" not in rules_of(findings)


class TestN102HotAccumulation:
    HOT_LOOP = src("""
        def step(values):
            total = 0.0
            for v in values:
                total += v
            return total
    """)

    def test_flags_float_accumulation_in_hot_root(self, lint):
        assert "N102" in rules_of(lint(self.HOT_LOOP))

    def test_flags_accumulation_reachable_through_calls(self, lint):
        findings = lint(src("""
            def step(values):
                return tally(values)

            def tally(values):
                acc = 0.0
                for v in values:
                    acc += v
                return acc
        """))
        assert "N102" in rules_of(findings)

    def test_unreachable_function_is_clean(self, lint):
        findings = lint(src("""
            def offline_report(values):
                total = 0.0
                for v in values:
                    total += v
                return total
        """))
        assert "N102" not in rules_of(findings)

    def test_integer_counter_is_clean(self, lint):
        findings = lint(src("""
            def step(values):
                count = 0
                for v in values:
                    count += 1
                return count
        """))
        assert "N102" not in rules_of(findings)

    def test_custom_hotpath_roots_from_config(self, lint):
        code = src("""
            def main_loop(values):
                total = 0.0
                for v in values:
                    total += v
                return total
        """)
        assert "N102" not in rules_of(lint(code))
        findings = lint(code, hotpath_roots=["main_loop"])
        assert "N102" in rules_of(findings)


class TestN103ParamAliasMutation:
    def test_flags_augassign_on_param_called_cross_module(self, lint_package):
        findings = lint_package({
            "pkg/__init__.py": "",
            "pkg/ops.py": src("""
                def scale(arr):
                    arr *= 2.0
                    return arr
            """),
            "pkg/use.py": src("""
                from pkg.ops import scale

                def run(values):
                    return scale(values)
            """),
        })
        assert "N103" in rules_of(findings)

    def test_flags_out_keyword_on_param(self, lint_package):
        findings = lint_package({
            "pkg/__init__.py": "",
            "pkg/ops.py": src("""
                import numpy as np

                def shift(arr, delta):
                    np.add(arr, delta, out=arr)
                    return arr
            """),
            "pkg/use.py": src("""
                from pkg.ops import shift

                def run(values):
                    return shift(values, 1.0)
            """),
        })
        assert "N103" in rules_of(findings)

    def test_copy_before_mutation_is_clean(self, lint_package):
        findings = lint_package({
            "pkg/__init__.py": "",
            "pkg/ops.py": src("""
                def scale(arr):
                    arr = arr.copy()
                    arr *= 2.0
                    return arr
            """),
            "pkg/use.py": src("""
                from pkg.ops import scale

                def run(values):
                    return scale(values)
            """),
        })
        assert "N103" not in rules_of(findings)

    def test_alias_preserving_rebind_stays_flagged(self, lint_package):
        # np.asarray returns the same buffer for an ndarray input, so
        # rebinding through it must not launder the mutation.
        findings = lint_package({
            "pkg/__init__.py": "",
            "pkg/ops.py": src("""
                import numpy as np

                def scale(arr):
                    arr = np.asarray(arr)
                    arr *= 2.0
                    return arr
            """),
            "pkg/use.py": src("""
                from pkg.ops import scale

                def run(values):
                    return scale(values)
            """),
        })
        assert "N103" in rules_of(findings)

    def test_module_private_mutation_is_clean(self, lint_package):
        # No other module imports pkg.ops, so the alias never escapes.
        findings = lint_package({
            "pkg/__init__.py": "",
            "pkg/ops.py": src("""
                def scale(arr):
                    arr *= 2.0
                    return arr

                def run(values):
                    return scale(values)
            """),
        })
        assert "N103" not in rules_of(findings)

    def test_self_mutation_is_clean(self, lint_package):
        findings = lint_package({
            "pkg/__init__.py": "",
            "pkg/ops.py": src("""
                class Accumulator:
                    def absorb(self, x):
                        self.total += x
            """),
            "pkg/use.py": src("""
                from pkg.ops import Accumulator

                def run(acc, x):
                    return absorb(acc, x)
            """),
        })
        assert "N103" not in rules_of(findings)
