"""The project index: extraction, graceful degradation, and the cache.

Runs :func:`repro.analysis.index.build_index` over the synthetic
packages in ``tests/analysis/fixtures/`` (import cycles, re-export
chains, dynamic ``getattr`` dispatch) and over inline sources, pinning
that extraction is complete where Python is static and silent — never
wrong — where it is dynamic.
"""

import json
from pathlib import Path

import pytest

from repro.analysis.index import (
    INDEX_VERSION,
    ProjectIndex,
    build_index,
    load_or_build_index,
    project_digest,
)
from repro.analysis.project import Project, discover_files, parse_module

FIXTURES = Path(__file__).parent / "fixtures"


def load_fixture_project(*names):
    """Parse fixture packages into a Project (no imports executed)."""
    files = discover_files([FIXTURES / name for name in names])
    modules = []
    for path in files:
        module, error = parse_module(path, root=FIXTURES)
        assert error is None, f"fixture {path} must parse: {error}"
        modules.append(module)
    return Project(modules)


def write_project(tmp_path, files):
    """Write ``{relative_path: source}`` and parse it into a Project."""
    for rel, code in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(code, encoding="utf-8")
    modules = []
    for path in discover_files([tmp_path]):
        module, error = parse_module(path, root=tmp_path)
        assert error is None
        modules.append(module)
    return Project(modules)


class TestImportGraph:
    def test_cycle_is_recorded_and_terminates(self):
        index = build_index(load_fixture_project("cyclepkg"))
        edges = {
            (e.importer, e.imported) for e in index.imports if e.toplevel
        }
        assert ("cyclepkg.alpha", "cyclepkg") in edges  # from cyclepkg import beta
        assert ("cyclepkg.beta", "cyclepkg.alpha") in edges

    def test_function_scope_import_is_not_toplevel(self):
        index = build_index(load_fixture_project("cyclepkg"))
        lazy = [
            e for e in index.imports
            if e.importer == "cyclepkg.beta"
            and e.imported == "cyclepkg.alpha"
            and not e.toplevel
        ]
        assert len(lazy) == 1

    def test_relative_import_resolves_to_absolute(self):
        index = build_index(load_fixture_project("reexport"))
        edges = {(e.importer, e.imported) for e in index.imports}
        assert ("reexport.facade", "reexport.impl") in edges
        assert ("reexport", "reexport.facade") in edges

    def test_reexport_chain_symbols_present_at_each_hop(self):
        index = build_index(load_fixture_project("reexport"))
        assert {"compute", "helper"} <= set(index.symbols["reexport.impl"])
        assert {"compute", "helper"} <= set(index.symbols["reexport.facade"])
        assert {"compute", "helper"} <= set(index.symbols["reexport"])


class TestGracefulDegradation:
    """Dynamic constructs index as unknown — never crash, never guess."""

    def test_fstring_fork_label_is_none(self):
        index = build_index(load_fixture_project("dynpkg"))
        site = next(
            s for s in index.fork_sites if s.receiver == "self.rng"
        )
        assert site.label is None

    def test_computed_emit_kind_is_none(self):
        index = build_index(load_fixture_project("dynpkg"))
        site = next(
            s for s in index.emit_sites if s.receiver == "self.tracer"
        )
        assert site.kind is None
        assert site.fields == ["value"]

    def test_subscripted_receiver_is_keyed(self):
        index = build_index(load_fixture_project("dynpkg"))
        site = next(
            s for s in index.fork_sites
            if s.receiver == 'self._rngs["collect"]'
        )
        assert site.label == "collect/worker"

    def test_module_getattr_hook_does_not_confuse_symbols(self):
        index = build_index(load_fixture_project("dynpkg"))
        assert "__getattr__" in index.symbols["dynpkg"]

    def test_fixtures_are_never_imported(self):
        import sys

        assert not any(
            name.split(".")[0] in ("cyclepkg", "reexport", "dynpkg")
            for name in sys.modules
        )


class TestForkSiteContext:
    def test_loop_and_default_context_flags(self, tmp_path):
        project = write_project(tmp_path, {
            "m.py": (
                "def run(rng, other=RNG.fork('shared')):\n"
                "    for i in range(3):\n"
                "        child = rng.fork('worker')\n"
                "    tail = rng.fork('tail')\n"
            ),
        })
        index = build_index(project)
        by_label = {s.label: s for s in index.fork_sites}
        assert by_label["worker"].in_loop
        assert not by_label["worker"].in_default
        assert by_label["shared"].in_default
        assert not by_label["tail"].in_loop
        assert by_label["worker"].function == "run"

    def test_schema_registry_extraction(self, tmp_path):
        project = write_project(tmp_path, {
            "records.py": (
                "RECORD_SCHEMAS = {\n"
                "    'tick': frozenset({'a', 'b'}),\n"
                "    'blob': make_schema(),\n"
                "    COMPUTED: frozenset({'c'}),\n"
                "}\n"
            ),
        })
        index = build_index(project)
        assert index.schemas["tick"] == ["a", "b"]
        assert index.schemas["blob"] is None  # unresolvable: unchecked
        # The computed key is skipped outright, never guessed.
        assert set(index.schemas) == {"tick", "blob"}


class TestDigestAndCache:
    def test_digest_changes_with_source(self, tmp_path):
        before = project_digest(write_project(tmp_path, {"a.py": "x = 1\n"}))
        (tmp_path / "a.py").write_text("x = 2\n", encoding="utf-8")
        after = project_digest(write_project(tmp_path, {}))
        assert before != after

    def test_round_trip_through_dict(self):
        index = build_index(load_fixture_project("cyclepkg", "dynpkg"))
        clone = ProjectIndex.from_dict(
            json.loads(json.dumps(index.to_dict()))
        )
        assert clone.to_dict() == index.to_dict()

    def test_cache_hit_and_invalidation(self, tmp_path):
        cache = tmp_path / "cache.json"
        project = write_project(tmp_path / "src", {"a.py": "x = 1\n"})
        first = load_or_build_index(project, cache_path=cache)
        assert cache.exists()
        cached = json.loads(cache.read_text(encoding="utf-8"))
        assert cached["version"] == INDEX_VERSION
        assert cached["digest"] == first.digest

        # Warm load returns the cached content.
        warm = load_or_build_index(project, cache_path=cache)
        assert warm.to_dict() == first.to_dict()

        # A source edit changes the digest and forces a rebuild.
        (tmp_path / "src" / "a.py").write_text("y = 2\n", encoding="utf-8")
        edited = write_project(tmp_path / "src", {})
        rebuilt = load_or_build_index(edited, cache_path=cache)
        assert rebuilt.digest != first.digest
        assert json.loads(cache.read_text())["digest"] == rebuilt.digest

    def test_corrupt_cache_falls_back_to_rebuild(self, tmp_path):
        cache = tmp_path / "cache.json"
        cache.write_text("{not json", encoding="utf-8")
        project = write_project(tmp_path / "src", {"a.py": "x = 1\n"})
        index = load_or_build_index(project, cache_path=cache)
        assert index.symbols["a"] == ["x"]


class TestConfigFingerprintKeying:
    """The cache key folds in the lint config, not just the sources:
    editing ``[tool.reprolint]`` must invalidate the cached index even
    when no source file changed."""

    def test_digest_changes_with_fingerprint(self, tmp_path):
        project = write_project(tmp_path, {"a.py": "x = 1\n"})
        assert (
            project_digest(project, "fp-one")
            != project_digest(project, "fp-two")
        )
        # Same fingerprint stays stable across calls.
        assert (
            project_digest(project, "fp-one")
            == project_digest(project, "fp-one")
        )

    def test_config_change_forces_rebuild(self, tmp_path):
        from repro.analysis.config import LintConfig

        cache = tmp_path / "cache.json"
        project = write_project(tmp_path / "src", {"a.py": "x = 1\n"})
        base = LintConfig(root=tmp_path)
        first = load_or_build_index(
            project, cache_path=cache, fingerprint=base.fingerprint()
        )

        # Unchanged config: warm cache hit, digest stable.
        warm = load_or_build_index(
            project, cache_path=cache, fingerprint=base.fingerprint()
        )
        assert warm.digest == first.digest

        # A [tool.reprolint] edit (here: hotpath_roots) changes the
        # fingerprint, so the cached digest no longer matches and the
        # index is rebuilt and re-persisted under the new key.
        edited = LintConfig(root=tmp_path, hotpath_roots=["main"])
        assert edited.fingerprint() != base.fingerprint()
        rebuilt = load_or_build_index(
            project, cache_path=cache, fingerprint=edited.fingerprint()
        )
        assert rebuilt.digest != first.digest
        assert (
            json.loads(cache.read_text(encoding="utf-8"))["digest"]
            == rebuilt.digest
        )

    def test_fingerprint_covers_every_behavioural_knob(self, tmp_path):
        from repro.analysis.config import LintConfig

        base = LintConfig(root=tmp_path)
        variants = [
            LintConfig(root=tmp_path, disable=["S103"]),
            LintConfig(root=tmp_path, paths=["src", "tests"]),
            LintConfig(root=tmp_path, exclude=["vendored"]),
            LintConfig(root=tmp_path, sim_packages=["repro.other"]),
            LintConfig(root=tmp_path, hotpath_roots=["act"]),
            LintConfig(root=tmp_path, layers={"core": []}),
        ]
        prints = {c.fingerprint() for c in variants}
        assert base.fingerprint() not in prints
        assert len(prints) == len(variants)

    def test_fingerprint_ignores_cache_location(self, tmp_path):
        # Where the cache lives must not key the cache: moving the file
        # would otherwise always miss.
        from repro.analysis.config import LintConfig

        a = LintConfig(root=tmp_path, cache="one.json")
        b = LintConfig(root=tmp_path, cache="two.json")
        assert a.fingerprint() == b.fingerprint()


class TestCacheVersionSkew:
    """The version gate: a cache produced by any other INDEX_VERSION is
    discarded, whatever its digest says.

    Each test poisons the cached symbol table while keeping the JSON
    well-formed: a cache *hit* serves the poison, a rebuild restores
    the truth — so the assertions can tell the two paths apart."""

    def _prime_and_poison(self, tmp_path, mutate=None):
        cache = tmp_path / "cache.json"
        project = write_project(tmp_path / "src", {"a.py": "x = 1\n"})
        load_or_build_index(project, cache_path=cache)
        data = json.loads(cache.read_text(encoding="utf-8"))
        data["symbols"]["a"] = ["poisoned"]
        if mutate is not None:
            mutate(data)
        cache.write_text(json.dumps(data), encoding="utf-8")
        return cache, project

    def test_valid_cache_is_trusted(self, tmp_path):
        # Control for the skew tests: with version and digest intact
        # the poisoned payload IS served, proving the rebuild
        # assertions below detect real rebuilds.
        cache, project = self._prime_and_poison(tmp_path)
        index = load_or_build_index(project, cache_path=cache)
        assert index.symbols["a"] == ["poisoned"]

    def test_older_version_forces_rebuild(self, tmp_path):
        cache, project = self._prime_and_poison(
            tmp_path, lambda d: d.update(version=INDEX_VERSION - 1)
        )
        index = load_or_build_index(project, cache_path=cache)
        assert index.symbols["a"] == ["x"]
        # The rebuild re-keys the cache at the current version.
        assert json.loads(cache.read_text())["version"] == INDEX_VERSION

    def test_newer_version_is_not_trusted(self, tmp_path):
        # Version skew cuts both ways: a cache from a newer checkout
        # (e.g. after a branch switch) must not be deserialised.
        cache, project = self._prime_and_poison(
            tmp_path, lambda d: d.update(version=INDEX_VERSION + 1)
        )
        index = load_or_build_index(project, cache_path=cache)
        assert index.symbols["a"] == ["x"]

    def test_index_version_bump_invalidates_cache(
        self, tmp_path, monkeypatch
    ):
        # Simulate the next schema bump: the constant moves, every
        # existing cache (valid today) is discarded on first load.
        cache, project = self._prime_and_poison(tmp_path)
        monkeypatch.setattr(
            "repro.analysis.index.INDEX_VERSION", INDEX_VERSION + 1
        )
        index = load_or_build_index(project, cache_path=cache)
        assert index.symbols["a"] == ["x"]

    def test_fingerprint_change_bypasses_stale_cache(self, tmp_path):
        cache = tmp_path / "cache.json"
        project = write_project(tmp_path / "src", {"a.py": "x = 1\n"})
        load_or_build_index(project, cache_path=cache, fingerprint="one")
        data = json.loads(cache.read_text(encoding="utf-8"))
        data["symbols"]["a"] = ["poisoned"]
        cache.write_text(json.dumps(data), encoding="utf-8")
        index = load_or_build_index(
            project, cache_path=cache, fingerprint="two"
        )
        assert index.symbols["a"] == ["x"]

    def test_missing_payload_keys_fall_back_to_rebuild(self, tmp_path):
        cache, project = self._prime_and_poison(
            tmp_path,
            lambda d: [d.pop("functions"), d.pop("batch_pairs")],
        )
        index = load_or_build_index(project, cache_path=cache)
        assert index.symbols["a"] == ["x"]

    def test_wrong_payload_types_fall_back_to_rebuild(self, tmp_path):
        cache, project = self._prime_and_poison(
            tmp_path, lambda d: d.update(imports=17)
        )
        index = load_or_build_index(project, cache_path=cache)
        assert index.symbols["a"] == ["x"]
