"""Positive/negative coverage for the V2 (batch-axis contract) family.

Every ``@batched_pair`` twin must carry a ``shapes=`` contract that the
abstract interpreter can verify: the batch symbol ``K`` bound in the
inputs, carried to the return, never contradicted by dataflow, and
still shape-safe when the batch collapses to a single row.
"""

import textwrap

from tests.analysis.conftest import rules_of


def src(code):
    return textwrap.dedent(code).lstrip("\n")


V2 = {"V201", "V202", "V203", "V204"}

PROVEN_PAIR = src("""
    from repro.utils.batchpairs import batched_pair

    def scale(v, f):
        return v * f

    @batched_pair("scale", shapes="(K, dim), () -> (K, dim)")
    def scale_batch(vs, f):
        return vs * f
""")


class TestV201ContractPresence:
    def test_flags_missing_shapes_contract(self, lint):
        findings = lint(src("""
            from repro.utils.batchpairs import batched_pair

            def predict(s):
                return s

            @batched_pair("predict")
            def predict_batch(states):
                return states
        """))
        assert "V201" in rules_of(findings)

    def test_flags_unparseable_contract(self, lint):
        findings = lint(src("""
            from repro.utils.batchpairs import batched_pair

            def predict(s):
                return s

            @batched_pair("predict", shapes="(K, state_dim")
            def predict_batch(states):
                return states
        """))
        assert "V201" in rules_of(findings)

    def test_declared_contract_is_clean(self, lint):
        assert rules_of(lint(PROVEN_PAIR)).isdisjoint(V2)


class TestV202BatchAxisBinding:
    def test_flags_contract_that_never_binds_k(self, lint):
        findings = lint(src("""
            from repro.utils.batchpairs import batched_pair

            def scale(v):
                return v

            @batched_pair("scale", shapes="(n, dim) -> (n, dim)")
            def scale_batch(vs):
                return vs
        """))
        assert "V202" in rules_of(findings)

    def test_flags_return_without_leading_k(self, lint):
        findings = lint(src("""
            from repro.utils.batchpairs import batched_pair

            def scale(v):
                return v

            @batched_pair("scale", shapes="(K, dim) -> (dim, K)")
            def scale_batch(vs):
                return vs
        """))
        assert "V202" in rules_of(findings)

    def test_unchecked_return_is_clean(self, lint):
        findings = lint(src("""
            from repro.utils.batchpairs import batched_pair

            def record(v):
                return None

            @batched_pair("record", shapes="(K, dim) -> _")
            def record_batch(vs):
                return None
        """))
        assert rules_of(findings).isdisjoint(V2)


class TestV203DataflowContradiction:
    def test_flags_transposed_return(self, lint):
        findings = lint(src("""
            from repro.utils.batchpairs import batched_pair

            def flip(v):
                return v

            @batched_pair("flip", shapes="(K, dim) -> (K, dim)")
            def flip_batch(vs):
                return vs.T
        """))
        assert "V203" in rules_of(findings)

    def test_consistent_dataflow_is_clean(self, lint):
        assert "V203" not in rules_of(lint(PROVEN_PAIR))


class TestV204SingleRowCollapse:
    def test_flags_k1_unsafe_squeeze(self, lint):
        # squeeze() keeps a symbolic (K,) intact but collapses (1,) to
        # rank 0, so the matmul only breaks on the K=1 path.
        findings = lint(src("""
            import numpy as np
            from repro.utils.batchpairs import batched_pair

            def fold(v):
                return v

            @batched_pair("fold", shapes="(K,) -> (K,)")
            def fold_batch(vs):
                flat = np.squeeze(vs)
                return np.matmul(flat, np.ones((2,)))
        """))
        assert "V204" in rules_of(findings)

    def test_k1_safe_pair_is_clean(self, lint):
        assert "V204" not in rules_of(lint(PROVEN_PAIR))
