"""Positive/negative coverage for the A1 rule family (API consistency)."""

import textwrap

from tests.analysis.conftest import rules_of


def src(code):
    return textwrap.dedent(code).lstrip("\n")


def make_pkg(init_code, inner_code=None):
    files = {"pkg/__init__.py": src(init_code)}
    if inner_code is not None:
        files["pkg/inner.py"] = src(inner_code)
    return files


class TestA101BrokenExports:
    def test_flags_phantom_all_entry(self, lint_package):
        findings = lint_package(make_pkg("""
            \"\"\"Package.\"\"\"

            __all__ = ["missing"]
        """))
        assert "A101" in rules_of(findings)

    def test_flags_reexport_of_missing_symbol(self, lint_package):
        findings = lint_package(
            make_pkg(
                """
                \"\"\"Package.\"\"\"

                from pkg.inner import gone

                __all__ = ["gone"]
                """,
                """
                \"\"\"Inner module.\"\"\"

                def here():
                    \"\"\"Exists.\"\"\"
                """,
            )
        )
        assert "A101" in rules_of(findings)

    def test_allows_resolving_exports(self, lint_package):
        findings = lint_package(
            make_pkg(
                """
                \"\"\"Package.\"\"\"

                from pkg.inner import here

                __all__ = ["here"]
                """,
                """
                \"\"\"Inner module.\"\"\"

                def here():
                    \"\"\"Exists.\"\"\"
                """,
            )
        )
        assert "A101" not in rules_of(findings)

    def test_allows_locally_defined_export(self, lint_package):
        findings = lint_package(make_pkg("""
            \"\"\"Package.\"\"\"

            __all__ = ["VERSION", "helper"]

            VERSION = "1.0"


            def helper():
                \"\"\"Local helper.\"\"\"
        """))
        assert "A101" not in rules_of(findings)


class TestA102MissingDocstrings:
    def test_flags_undocumented_reexport(self, lint_package):
        findings = lint_package(
            make_pkg(
                """
                \"\"\"Package.\"\"\"

                from pkg.inner import bare

                __all__ = ["bare"]
                """,
                """
                \"\"\"Inner module.\"\"\"

                def bare():
                    pass
                """,
            )
        )
        assert "A102" in rules_of(findings)

    def test_flags_undocumented_local_export(self, lint_package):
        findings = lint_package(make_pkg("""
            \"\"\"Package.\"\"\"

            __all__ = ["helper"]


            def helper():
                pass
        """))
        assert "A102" in rules_of(findings)

    def test_allows_documented_reexport(self, lint_package):
        findings = lint_package(
            make_pkg(
                """
                \"\"\"Package.\"\"\"

                from pkg.inner import documented

                __all__ = ["documented"]
                """,
                """
                \"\"\"Inner module.\"\"\"

                class documented:
                    \"\"\"Has a docstring.\"\"\"
                """,
            )
        )
        assert "A102" not in rules_of(findings)

    def test_allows_reexported_constant(self, lint_package):
        # Assignments cannot carry docstrings; only defs/classes are held
        # to the docstring requirement.
        findings = lint_package(
            make_pkg(
                """
                \"\"\"Package.\"\"\"

                from pkg.inner import RATES

                __all__ = ["RATES"]
                """,
                """
                \"\"\"Inner module.\"\"\"

                RATES = {"msd": 1.0}
                """,
            )
        )
        assert "A102" not in rules_of(findings)


class TestA103AllMismatch:
    def test_flags_unexported_public_import(self, lint_package):
        findings = lint_package(
            make_pkg(
                """
                \"\"\"Package.\"\"\"

                from pkg.inner import here, stray

                __all__ = ["here"]
                """,
                """
                \"\"\"Inner module.\"\"\"

                def here():
                    \"\"\"Exported.\"\"\"


                def stray():
                    \"\"\"Imported but not exported.\"\"\"
                """,
            )
        )
        assert "A103" in rules_of(findings)

    def test_allows_underscore_imports(self, lint_package):
        findings = lint_package(
            make_pkg(
                """
                \"\"\"Package.\"\"\"

                from pkg.inner import here, _internal

                __all__ = ["here"]
                """,
                """
                \"\"\"Inner module.\"\"\"

                def here():
                    \"\"\"Exported.\"\"\"


                def _internal():
                    \"\"\"Private.\"\"\"
                """,
            )
        )
        assert "A103" not in rules_of(findings)

    def test_non_package_modules_are_exempt(self, lint):
        # A1 only applies to package __init__ files.
        findings = lint(
            src("""
                \"\"\"Plain module.\"\"\"

                from os.path import join

                __all__ = ["helper"]


                def helper():
                    \"\"\"Documented.\"\"\"
                    return join("a", "b")
            """),
            filename="plain.py",
        )
        assert rules_of(findings) & {"A101", "A102", "A103"} == set()
