"""Fixture: dynamic call sites — the index records "unknown", not guesses.

Every construct here is legal Python the static pass cannot fully
resolve: f-string fork labels, computed emit kinds, ``getattr``
dispatch, and a subscripted receiver.  ``build_index`` must index the
sites with ``label``/``kind`` set to ``None`` (or skip them) rather
than crash or invent values.
"""


class Runner:
    def __init__(self, rng, tracer, streams):
        self.rng = rng
        self.tracer = tracer
        self._rngs = streams

    def fstring_label(self, i):
        return self.rng.fork(f"worker{i}")  # computed: label -> None

    def computed_kind(self, kind):
        self.tracer.emit(kind, value=1)  # computed: kind -> None

    def dispatch(self, name):
        return getattr(self.rng, name)("x")  # opaque to the index

    def subscripted(self):
        return self._rngs["collect"].fork("collect/worker")
