"""Fixture: dynamic package the index must degrade gracefully on."""

_LAZY = {"core": "dynpkg.core"}


def __getattr__(name):  # module-level PEP 562 hook
    import importlib

    if name in _LAZY:
        return importlib.import_module(_LAZY[name])
    raise AttributeError(name)
