"""Other half of the cycle: imports alpha back, plus a lazy import."""

import cyclepkg.alpha

BETA_CONST = 2


def beta_fn():
    return BETA_CONST


def lazy_user():
    from cyclepkg.alpha import ALPHA_CONST  # function-scope: not toplevel

    return ALPHA_CONST
