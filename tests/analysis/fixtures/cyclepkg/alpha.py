"""Half of an import cycle: imports beta at module scope."""

from cyclepkg import beta

ALPHA_CONST = 1


def alpha_fn():
    return beta.beta_fn() + ALPHA_CONST
