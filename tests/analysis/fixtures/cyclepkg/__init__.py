"""Fixture: package whose two modules import each other at module scope."""
