"""Fixture: re-export chain impl -> facade -> package root."""

from reexport.facade import compute, helper

__all__ = ["compute", "helper"]
