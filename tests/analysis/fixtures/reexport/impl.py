"""Fixture: the real definitions at the bottom of a re-export chain."""


def compute(x):
    return x * 2


def helper():
    return compute(21)
