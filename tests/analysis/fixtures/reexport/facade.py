"""Fixture: middle hop of the re-export chain (relative import form)."""

from .impl import compute, helper

__all__ = ["compute", "helper"]
