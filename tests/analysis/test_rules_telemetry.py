"""T1 family: tracer.emit call sites vs the RECORD_SCHEMAS registry.

The registry is parsed from source (never imported); each rule has a
positive and a negative fixture, and the whole family stays silent when
no registry is under analysis.
"""

from tests.analysis.conftest import rules_of

REGISTRY = (
    "RECORD_SCHEMAS = {\n"
    "    'tick': frozenset({'value', 'step'}),\n"
    "    'loose': build_schema(),\n"
    "}\n"
)


def package(emitter_source):
    return {
        "pkg/__init__.py": "",
        "pkg/records.py": REGISTRY,
        "pkg/emitter.py": emitter_source,
    }


class TestT101UnknownKind:
    def test_unregistered_kind_fires(self, lint_package):
        findings = lint_package(package(
            "def run(tracer):\n    tracer.emit('nope', value=1)\n"
        ))
        t101 = [f for f in findings if f.rule == "T101"]
        assert len(t101) == 1
        assert t101[0].path == "pkg/emitter.py"
        assert "'nope'" in t101[0].message

    def test_registered_kind_is_silent(self, lint_package):
        findings = lint_package(package(
            "def run(tracer):\n    tracer.emit('tick', value=1, step=2)\n"
        ))
        assert rules_of(findings).isdisjoint({"T101", "T102", "T103"})

    def test_without_registry_family_is_silent(self, lint_package):
        findings = lint_package({
            "pkg/__init__.py": "",
            "pkg/emitter.py": (
                "def run(tracer):\n    tracer.emit('anything', x=1)\n"
            ),
        })
        assert rules_of(findings).isdisjoint({"T101", "T102", "T103"})

    def test_non_tracer_receiver_is_exempt(self, lint_package):
        findings = lint_package(package(
            "def run(bus):\n    bus.emit('nope', value=1)\n"
        ))
        assert "T101" not in rules_of(findings)


class TestT102FieldDrift:
    def test_payload_drift_fires_with_diff(self, lint_package):
        findings = lint_package(package(
            "def run(tracer):\n    tracer.emit('tick', value=1, extra=3)\n"
        ))
        t102 = [f for f in findings if f.rule == "T102"]
        assert len(t102) == 1
        assert "missing=['step']" in t102[0].message
        assert "unexpected=['extra']" in t102[0].message

    def test_exact_fields_any_order_are_silent(self, lint_package):
        findings = lint_package(package(
            "def run(tracer):\n    tracer.emit('tick', step=2, value=1)\n"
        ))
        assert "T102" not in rules_of(findings)

    def test_unresolvable_registry_entry_is_unchecked(self, lint_package):
        findings = lint_package(package(
            "def run(tracer):\n    tracer.emit('loose', whatever=1)\n"
        ))
        assert rules_of(findings).isdisjoint({"T101", "T102"})


class TestT103Dynamic:
    def test_computed_kind_warns(self, lint_package):
        findings = lint_package(package(
            "def run(tracer, kind):\n    tracer.emit(kind, value=1)\n"
        ))
        t103 = [f for f in findings if f.rule == "T103"]
        assert len(t103) == 1
        assert str(t103[0].severity) == "warning"

    def test_kwargs_payload_warns(self, lint_package):
        findings = lint_package(package(
            "def run(tracer, **fields):\n    tracer.emit('tick', **fields)\n"
        ))
        assert "T103" in rules_of(findings)

    def test_constant_call_does_not_warn(self, lint_package):
        findings = lint_package(package(
            "def run(tracer):\n    tracer.emit('tick', value=1, step=2)\n"
        ))
        assert "T103" not in rules_of(findings)
