"""Positive/negative coverage for the W1 (worker payload) family.

Everything shipped into a pool dispatch (``pool.map``/``submit``,
``Process(target=...)``) must survive pickling into the child: no
lambdas or local defs (W101), no open handles or live RNG generators
(W102), no tracer/sink references (W103).
"""

import textwrap

from tests.analysis.conftest import rules_of


def src(code):
    return textwrap.dedent(code).lstrip("\n")


class TestW101UnpicklableCallables:
    def test_flags_lambda_payload(self, lint):
        findings = lint(src("""
            def work(x, key):
                return key(x)

            def run(pool, xs):
                return pool.submit(work, xs, lambda x: x + 1)
        """))
        assert "W101" in rules_of(findings)

    def test_flags_locally_defined_payload(self, lint):
        findings = lint(src("""
            def work(x, cb):
                return cb(x)

            def run(pool, xs):
                def callback(x):
                    return x + 1
                return pool.map(work, xs, callback)
        """))
        assert "W101" in rules_of(findings)

    def test_module_level_callable_is_clean(self, lint):
        findings = lint(src("""
            def work(x, cb):
                return cb(x)

            def callback(x):
                return x + 1

            def run(pool, xs):
                return pool.map(work, xs, callback)
        """))
        assert "W101" not in rules_of(findings)


class TestW102HandlesAndGenerators:
    def test_flags_open_handle_bound_to_a_name(self, lint):
        findings = lint(src("""
            def work(handle):
                return handle.read()

            def run(pool, path):
                handle = open(path)
                return pool.submit(work, handle)
        """))
        assert "W102" in rules_of(findings)

    def test_flags_rng_generator_payload(self, lint):
        findings = lint(src("""
            from numpy.random import default_rng

            def work(rng):
                return rng.normal()

            def run(pool):
                rng = default_rng(0)
                return pool.submit(work, rng)
        """))
        assert "W102" in rules_of(findings)

    def test_flags_call_result_shipped_directly(self, lint):
        findings = lint(src("""
            def work(handle):
                return handle.read()

            def run(pool, path):
                return pool.submit(work, open(path))
        """))
        assert "W102" in rules_of(findings)

    def test_plain_data_payload_is_clean(self, lint):
        # The endorsed pattern: ship the path and the seed, reconstruct
        # the handle and the generator inside the worker.
        findings = lint(src("""
            def work(path, seed):
                return path, seed

            def run(pool, path):
                return pool.submit(work, path, 7)
        """))
        assert rules_of(findings).isdisjoint({"W101", "W102", "W103"})


class TestW103TelemetryObjects:
    def test_flags_tracer_bound_to_a_name(self, lint):
        findings = lint(src("""
            from repro.telemetry.tracer import Tracer

            def work(tracer):
                return tracer

            def run(pool, sink):
                tracer = Tracer(sink)
                return pool.submit(work, tracer)
        """))
        assert "W103" in rules_of(findings)

    def test_flags_tracer_attribute_chain(self, lint):
        findings = lint(src("""
            def work(t):
                return t

            class Runner:
                def run(self, executor, xs):
                    return executor.submit(work, self.tracer)
        """))
        assert "W103" in rules_of(findings)

    def test_flags_sink_shipped_through_process_args(self, lint):
        findings = lint(src("""
            from multiprocessing import Process
            from repro.telemetry.sinks import JsonlSink

            def work(sink):
                return sink

            def run(path):
                p = Process(target=work, args=(JsonlSink(path),))
                p.start()
                return p
        """))
        assert "W103" in rules_of(findings)

    def test_non_telemetry_attribute_is_clean(self, lint):
        findings = lint(src("""
            def work(c):
                return c

            class Runner:
                def run(self, executor, xs):
                    return executor.submit(work, self.config)
        """))
        assert "W103" not in rules_of(findings)
