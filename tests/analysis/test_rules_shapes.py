"""Positive/negative coverage for the V1 (shape discipline) family.

The hot-path closure is rooted at the configured ``hotpath_roots``
(``step`` / ``predict_batch`` by default), so fixtures name their
entrypoint ``step``; off-path contradictions must stay silent because
the rules only fire on code the training loop actually executes.
"""

import textwrap

from tests.analysis.conftest import rules_of


def src(code):
    return textwrap.dedent(code).lstrip("\n")


class TestV101BroadcastMismatch:
    def test_flags_provably_unequal_operands(self, lint):
        findings = lint(src("""
            import numpy as np

            def step(x):
                a = np.zeros((3,))
                b = np.ones((4,))
                return a + b
        """))
        assert "V101" in rules_of(findings)

    def test_flags_matmul_inner_dim_mismatch(self, lint):
        findings = lint(src("""
            import numpy as np

            def step(x):
                return np.zeros((3, 4)) @ np.ones((5, 6))
        """))
        assert "V101" in rules_of(findings)

    def test_compatible_shapes_are_clean(self, lint):
        findings = lint(src("""
            import numpy as np

            def step(x):
                a = np.zeros((3, 1))
                b = np.ones((4,))
                return a + b
        """))
        assert "V101" not in rules_of(findings)

    def test_symbolic_dim_is_never_provable(self, lint):
        findings = lint(src("""
            import numpy as np

            def step(n):
                a = np.zeros(n)
                b = np.ones((4,))
                return a + b
        """))
        assert "V101" not in rules_of(findings)

    def test_off_hotpath_mismatch_is_silent(self, lint):
        findings = lint(src("""
            import numpy as np

            def helper(x):
                return np.zeros((3,)) + np.ones((4,))
        """))
        assert "V101" not in rules_of(findings)

    def test_mismatch_in_hotpath_callee_is_flagged(self, lint):
        findings = lint(src("""
            import numpy as np

            def helper(x):
                return np.zeros((3,)) + np.ones((4,))

            def step(x):
                return helper(x)
        """))
        assert "V101" in rules_of(findings)


class TestV102RankViolation:
    def test_flags_rank0_matmul_operand(self, lint):
        findings = lint(src("""
            import numpy as np

            def step(x):
                a = np.squeeze(np.ones((1, 1)))
                return np.matmul(a, np.zeros((3, 3)))
        """))
        assert "V102" in rules_of(findings)

    def test_well_ranked_matmul_is_clean(self, lint):
        findings = lint(src("""
            import numpy as np

            def step(x):
                return np.matmul(np.ones((3, 4)), np.zeros((4, 5)))
        """))
        assert "V102" not in rules_of(findings)


class TestV103AxisOutOfRange:
    def test_flags_axis_beyond_inferred_rank(self, lint):
        findings = lint(src("""
            import numpy as np

            def step(x):
                return np.sum(np.zeros((3,)), axis=1)
        """))
        assert "V103" in rules_of(findings)

    def test_in_range_axis_is_clean(self, lint):
        findings = lint(src("""
            import numpy as np

            def step(x):
                return np.sum(np.zeros((3, 4)), axis=1)
        """))
        assert "V103" not in rules_of(findings)

    def test_unknown_rank_is_never_provable(self, lint):
        findings = lint(src("""
            import numpy as np

            def step(x):
                return np.sum(np.asarray(x), axis=3)
        """))
        assert "V103" not in rules_of(findings)


class TestV104RankDispatch:
    def test_flags_ndim_branch_on_hotpath(self, lint):
        findings = lint(src("""
            def helper(x):
                if x.ndim == 1:
                    return x * 2.0
                return x

            def step(x):
                return helper(x)
        """))
        assert "V104" in rules_of(findings)

    def test_raise_only_guard_is_exempt(self, lint):
        findings = lint(src("""
            def helper(x):
                if x.ndim != 2:
                    raise ValueError("rank")
                return x

            def step(x):
                return helper(x)
        """))
        assert "V104" not in rules_of(findings)

    def test_shape_size_logic_is_exempt(self, lint):
        # Buffer reuse / empty-batch early-outs branch on `.shape`
        # sizes, not rank — by design not rank dispatch.
        findings = lint(src("""
            def helper(x):
                if x.shape[0] == 0:
                    return x
                return x * 2.0

            def step(x):
                return helper(x)
        """))
        assert "V104" not in rules_of(findings)

    def test_off_hotpath_dispatch_is_silent(self, lint):
        findings = lint(src("""
            def helper(x):
                if x.ndim == 1:
                    return x * 2.0
                return x
        """))
        assert "V104" not in rules_of(findings)


class TestV105InferredPromotion:
    def test_flags_float32_meeting_float64(self, lint):
        findings = lint(src("""
            import numpy as np

            def step(x):
                a = np.zeros((3,), dtype=np.float32)
                b = np.ones((3,), dtype=np.float64)
                return a + b
        """))
        assert "V105" in rules_of(findings)

    def test_matching_dtypes_are_clean(self, lint):
        findings = lint(src("""
            import numpy as np

            def step(x):
                a = np.zeros((3,), dtype=np.float32)
                b = np.ones((3,), dtype=np.float32)
                return a + b
        """))
        assert "V105" not in rules_of(findings)

    def test_weak_python_float_does_not_promote(self, lint):
        # `arr * 2.0` stays float32 under NEP 50 semantics: a Python
        # float literal must never count as a float64 operand.
        findings = lint(src("""
            import numpy as np

            def step(x):
                a = np.zeros((3,), dtype=np.float32)
                return a * 2.0
        """))
        assert "V105" not in rules_of(findings)
