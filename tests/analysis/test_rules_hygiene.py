"""Positive/negative coverage for the S1 rule family."""

import textwrap

from tests.analysis.conftest import rules_of


def src(code):
    return textwrap.dedent(code).lstrip("\n")


class TestS101FloatEquality:
    def test_flags_equality_with_float_literal(self, lint):
        findings = lint(src("""
            def degenerate(cv):
                return cv == 0.0
        """))
        assert "S101" in rules_of(findings)

    def test_flags_inequality_with_float_literal(self, lint):
        findings = lint(src("""
            def moved(x):
                return x != 1.5
        """))
        assert "S101" in rules_of(findings)

    def test_flags_literal_on_left(self, lint):
        findings = lint(src("""
            def check(total):
                return 0.0 == total
        """))
        assert "S101" in rules_of(findings)

    def test_allows_integer_equality(self, lint):
        findings = lint(src("""
            def empty(n):
                return n == 0
        """))
        assert "S101" not in rules_of(findings)

    def test_allows_float_ordering(self, lint):
        findings = lint(src("""
            def positive(x):
                return x > 0.0
        """))
        assert "S101" not in rules_of(findings)

    def test_allows_isclose_zero(self, lint):
        findings = lint(src("""
            from repro.utils.validation import isclose_zero

            def degenerate(cv):
                return isclose_zero(cv)
        """))
        assert "S101" not in rules_of(findings)


class TestS102MutableDefault:
    def test_flags_list_default(self, lint):
        findings = lint(src("""
            def collect(items=[]):
                return items
        """))
        assert "S102" in rules_of(findings)

    def test_flags_dict_default(self, lint):
        findings = lint(src("""
            def configure(options={}):
                return options
        """))
        assert "S102" in rules_of(findings)

    def test_flags_dict_call_default(self, lint):
        findings = lint(src("""
            def configure(options=dict()):
                return options
        """))
        assert "S102" in rules_of(findings)

    def test_flags_keyword_only_default(self, lint):
        findings = lint(src("""
            def collect(*, items=[]):
                return items
        """))
        assert "S102" in rules_of(findings)

    def test_allows_none_default(self, lint):
        findings = lint(src("""
            def collect(items=None):
                return list(items or [])
        """))
        assert "S102" not in rules_of(findings)

    def test_allows_immutable_defaults(self, lint):
        findings = lint(src("""
            def scale(factor=1.0, mode="drain", dims=(1, 2)):
                return factor, mode, dims
        """))
        assert "S102" not in rules_of(findings)


class TestS103AssertValidation:
    def test_flags_assert_statement(self, lint):
        findings = lint(src("""
            def allocate(total, budget):
                assert total <= budget, "over budget"
                return total
        """))
        assert "S103" in rules_of(findings)

    def test_flags_bare_invariant_assert(self, lint):
        findings = lint(src("""
            def finish(consumer):
                assert consumer.current_tag is not None
        """))
        assert "S103" in rules_of(findings)

    def test_allows_explicit_raise(self, lint):
        findings = lint(src("""
            def allocate(total, budget):
                if total > budget:
                    raise ValueError("over budget")
                return total
        """))
        assert "S103" not in rules_of(findings)

    def test_allows_require_helper(self, lint):
        findings = lint(src("""
            from repro.utils.validation import require

            def finish(consumer):
                require(consumer.current_tag is not None, "no tag")
        """))
        assert "S103" not in rules_of(findings)
