"""R1 family: cross-module RNG fork-label provenance.

Positive and negative fixtures per rule: R101 (duplicate labels on one
parent), R102 (constant label in a loop), R103 (fork in a default
argument), plus the rng-receiver gate that keeps the family off
unrelated ``fork()`` APIs.
"""

from tests.analysis.conftest import rules_of


class TestR101DuplicateLabels:
    def test_same_label_same_receiver_across_modules_fires(self, lint_package):
        findings = lint_package({
            "pkg/__init__.py": "",
            "pkg/actor.py": "def build(rng):\n    return rng.fork('net')\n",
            "pkg/critic.py": "def build(rng):\n    return rng.fork('net')\n",
        })
        r101 = [f for f in findings if f.rule == "R101"]
        assert len(r101) == 2  # both call sites are reported
        assert {f.path for f in r101} == {"pkg/actor.py", "pkg/critic.py"}
        # Each finding cross-references the other site.
        assert "pkg/critic.py" in next(
            f for f in r101 if f.path == "pkg/actor.py"
        ).message

    def test_distinct_labels_are_silent(self, lint_package):
        findings = lint_package({
            "pkg/__init__.py": "",
            "pkg/actor.py": (
                "def build(rng):\n    return rng.fork('actor/net')\n"
            ),
            "pkg/critic.py": (
                "def build(rng):\n    return rng.fork('critic/net')\n"
            ),
        })
        assert "R101" not in rules_of(findings)

    def test_distinct_receivers_are_silent(self, lint):
        findings = lint(
            "def build(actor_rng, critic_rng):\n"
            "    return actor_rng.fork('net'), critic_rng.fork('net')\n"
        )
        assert "R101" not in rules_of(findings)

    def test_non_rng_receiver_is_exempt(self, lint_package):
        findings = lint_package({
            "pkg/__init__.py": "",
            "pkg/a.py": "def split(repo):\n    return repo.fork('main')\n",
            "pkg/b.py": "def split(repo):\n    return repo.fork('main')\n",
        })
        assert "R101" not in rules_of(findings)


class TestR102LabelInLoop:
    def test_constant_label_in_loop_fires(self, lint):
        findings = lint(
            "def spawn(rng, n):\n"
            "    out = []\n"
            "    for _ in range(n):\n"
            "        out.append(rng.fork('worker'))\n"
            "    return out\n"
        )
        assert "R102" in rules_of(findings)

    def test_computed_label_in_loop_is_silent(self, lint):
        findings = lint(
            "def spawn(rng, n):\n"
            "    out = []\n"
            "    for i in range(n):\n"
            "        out.append(rng.fork(f'worker{i}'))\n"
            "    return out\n"
        )
        assert "R102" not in rules_of(findings)

    def test_constant_label_outside_loop_is_silent(self, lint):
        findings = lint(
            "def build(rng):\n    return rng.fork('worker')\n"
        )
        assert "R102" not in rules_of(findings)


class TestR103ForkInDefault:
    def test_fork_in_default_argument_fires(self, lint):
        findings = lint(
            "ROOT_RNG = make_root()\n"
            "def run(stream=ROOT_RNG.fork('run')):\n"
            "    return stream\n"
        )
        assert "R103" in rules_of(findings)

    def test_fork_in_body_is_silent(self, lint):
        findings = lint(
            "def run(root_rng, stream=None):\n"
            "    if stream is None:\n"
            "        stream = root_rng.fork('run')\n"
            "    return stream\n"
        )
        assert "R103" not in rules_of(findings)
