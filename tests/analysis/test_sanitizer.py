"""The runtime sanitizer: dynamic twin of the static R1/T1 families.

Checks activation/deactivation hygiene (the patches must always come
off), fork-label collision detection, emit-schema validation, and the
bookkeeping counters the CI matrix entry reports.
"""

import numpy as np
import pytest

from repro.analysis import sanitizer
from repro.analysis.sanitizer import SanitizerError, sanitized
from repro.utils.batchpairs import batched_pair, registered_pairs
from repro.telemetry.sinks import MemorySink
from repro.telemetry.tracer import Tracer
from repro.utils.rng import RngStream


@pytest.fixture(autouse=True)
def _always_deactivate():
    """Never leak patches into other tests, whatever a test does."""
    yield
    sanitizer.deactivate()


def fresh_stream(name="root", seed=7):
    return RngStream(name, np.random.SeedSequence(seed))


def fresh_tracer():
    sink = MemorySink()
    tracer = Tracer(sink, clock=lambda: 0.0)
    return tracer, sink


@pytest.mark.no_sanitize  # manages activation/deactivation itself
class TestActivation:
    def test_activate_and_deactivate_restore_methods(self):
        original_fork = RngStream.fork
        original_emit = Tracer.emit
        sanitizer.activate()
        assert sanitizer.is_active()
        assert RngStream.fork is not original_fork
        assert Tracer.emit is not original_emit
        sanitizer.deactivate()
        assert not sanitizer.is_active()
        assert RngStream.fork is original_fork
        assert Tracer.emit is original_emit

    def test_activate_is_idempotent(self):
        sanitizer.activate()
        patched = RngStream.fork
        sanitizer.activate()  # must not re-wrap the wrapper
        assert RngStream.fork is patched
        sanitizer.deactivate()
        assert not sanitizer.is_active()

    def test_context_manager_scopes_activation(self):
        assert not sanitizer.is_active()
        with sanitized() as state:
            assert sanitizer.is_active()
            assert state.violations == 0
        assert not sanitizer.is_active()

    def test_sanitize_requested_reads_env(self, monkeypatch):
        monkeypatch.delenv(sanitizer.ENV_FLAG, raising=False)
        assert not sanitizer.sanitize_requested()
        monkeypatch.setenv(sanitizer.ENV_FLAG, "1")
        assert sanitizer.sanitize_requested()
        monkeypatch.setenv(sanitizer.ENV_FLAG, "0")
        assert not sanitizer.sanitize_requested()


class TestForkCollisions:
    def test_duplicate_label_same_parent_raises(self):
        with sanitized() as state:
            root = fresh_stream()
            root.fork("model")
            with pytest.raises(SanitizerError, match="fork-label collision"):
                root.fork("model")
            assert state.violations == 1

    def test_distinct_labels_pass(self):
        with sanitized() as state:
            root = fresh_stream()
            root.fork("actor/net")
            root.fork("critic/net")
            assert state.violations == 0
            assert state.fork_names["root/actor/net"] == 1

    def test_same_label_on_different_parents_passes(self):
        with sanitized():
            fresh_stream("a", 1).fork("net")
            fresh_stream("b", 2).fork("net")

    def test_collision_error_is_an_assertion(self):
        with sanitized():
            root = fresh_stream()
            root.fork("x")
            with pytest.raises(AssertionError):
                root.fork("x")

    def test_registry_resets_between_scopes(self):
        with sanitized():
            root = fresh_stream()
            root.fork("model")
        with sanitized():
            # Same instance, new scope: the per-instance registry was
            # cleared on reset, so the label is available again.
            root2 = fresh_stream()
            root2.fork("model")

    def test_forked_children_draw_identically_to_unsanitized(self):
        bare = fresh_stream().fork("child").normal(size=16)
        with sanitized():
            checked = fresh_stream().fork("child").normal(size=16)
        assert np.array_equal(bare, checked)


class TestEmitValidation:
    def test_valid_record_passes_and_counts(self):
        tracer, sink = fresh_tracer()
        with sanitized() as state:
            tracer.emit("metric", name="loss", value=0.5, step=1)
            assert state.records_validated == 1
        assert len(sink.records) == 1

    def test_unknown_kind_raises(self):
        tracer, _ = fresh_tracer()
        with sanitized() as state:
            with pytest.raises(SanitizerError, match="emit-schema"):
                tracer.emit("not-a-kind", value=1)
            assert state.violations == 1

    def test_field_drift_raises(self):
        tracer, _ = fresh_tracer()
        with sanitized():
            with pytest.raises(SanitizerError):
                tracer.emit("metric", name="loss", bogus=1)

    def test_disabled_tracer_is_not_validated(self):
        tracer, sink = fresh_tracer()
        tracer.enabled = False
        with sanitized() as state:
            tracer.emit("not-a-kind", value=1)  # dropped, not validated
            assert state.records_validated == 0
        assert sink.records == []


def _double(x):
    return 2.0 * x


@batched_pair("_double", shapes="(K,) -> (K,)")
def _double_batch(xs):
    return 2.0 * xs


@batched_pair("_double", shapes="(K,) -> (K,)")
def _double_batch_inplace(xs):
    xs *= 2.0
    return xs


def _scale(x, promote):
    out = 2.0 * x
    return np.float64(out) if promote else out


@batched_pair("_scale", shapes="(K,), _ -> (K,)")
def _scale_batch(xs, promotes):
    out = 2.0 * xs
    return out.astype(np.float64) if promotes else out


class TestBatchPairGuard:
    """The runtime twin of the B1 family: registered batch functions are
    routed through a guard that hashes array arguments and pins result
    dtypes while the sanitizer is active."""

    def test_clean_call_passes_and_counts(self):
        xs = np.arange(4, dtype=np.float32)
        with sanitized() as state:
            out = _double_batch(xs)
            key = f"{__name__}._double"
            assert state.pair_calls[key] == 1
        assert np.array_equal(out, 2.0 * xs)

    def test_guarded_result_matches_unguarded(self):
        xs = np.linspace(0.0, 1.0, 8, dtype=np.float32)
        bare = _double_batch(xs)
        with sanitized():
            checked = _double_batch(xs)
        assert np.array_equal(bare, checked)
        assert bare.dtype == checked.dtype

    def test_argument_mutation_raises(self):
        xs = np.arange(4, dtype=np.float32)
        with sanitized() as state:
            with pytest.raises(SanitizerError, match="batch-pair mutation"):
                _double_batch_inplace(xs)
            assert state.violations == 1

    def test_mixed_dtype_arguments_raise(self):
        with sanitized():
            with pytest.raises(SanitizerError, match="dtype mix"):
                _scale_batch(
                    np.arange(3, dtype=np.float32),  # reprolint: disable=N101
                    np.zeros(1, dtype=np.float64),
                )

    def test_result_dtype_drift_raises(self):
        # The mix is the point: this fixture provokes the guard.
        xs32 = np.arange(3, dtype=np.float32)  # reprolint: disable=N101
        with sanitized():
            _scale_batch(xs32, False)  # pins float32 for the key
            with pytest.raises(SanitizerError, match="dtype drift"):
                _scale_batch(xs32, True)

    def test_dtype_pin_resets_between_scopes(self):
        xs32 = np.arange(3, dtype=np.float32)  # reprolint: disable=N101
        with sanitized():
            _scale_batch(xs32, False)
        with sanitized():
            # Fresh scope, fresh pin: promoting is fine if consistent.
            _scale_batch(xs32, True)

    @pytest.mark.no_sanitize  # the point is the guard being absent
    def test_inactive_sanitizer_passes_straight_through(self):
        xs = np.arange(4, dtype=np.float32)
        out = _double_batch_inplace(xs)  # mutation unchecked when off
        assert out is xs

    def test_registry_records_local_pairs(self):
        pairs = registered_pairs()
        key = f"{__name__}._double"
        assert key in pairs
        assert pairs[key].batch_name in (
            "_double_batch",
            "_double_batch_inplace",
        )
        assert f"{__name__}._scale" in pairs


def _reshape(x, new):
    return np.reshape(x, new)


@batched_pair("_reshape", shapes="(K,), _ -> (K,)")
def _reshape_batch(xs, new):
    return np.reshape(xs, new)


def _pairup(x, y):
    return x + y


@batched_pair("_pairup", shapes="(K, 2), (K,) -> (K, 2)")
def _pairup_batch(xs, ys):
    return xs + ys[:, None]


class TestBatchPairShapeGuard:
    """The dynamic twin of the static V2 family: while the sanitizer is
    active, every ``@batched_pair`` call is checked against its declared
    ``shapes=`` contract — symbols bind to observed axis lengths, one
    symbol never binds two values, and observed shapes are recorded."""

    def test_clean_call_records_observed_shapes(self):
        key = _pairup_batch.__repro_batch_pair__.key
        with sanitized() as state:
            out = _pairup_batch(np.zeros((4, 2)), np.ones(4))
            assert state.pair_shapes[key] == [(((4, 2), (4,)), (4, 2))]
        assert out.shape == (4, 2)

    def test_conflicting_batch_binding_raises(self):
        # numpy happily broadcasts the length-1 ys across the batch;
        # the contract says both axes are K, so the guard must refuse.
        with sanitized() as state:
            with pytest.raises(
                SanitizerError, match="binds `K` to both 4 and 1"
            ):
                _pairup_batch(np.zeros((4, 2)), np.ones(1))
            assert state.violations == 1

    def test_rank_divergent_result_raises(self):
        # The reshape target is opaque to static inference, so only the
        # runtime guard can see the batch axis disappear.
        with sanitized():
            with pytest.raises(
                SanitizerError, match="rank-1 batch return"
            ):
                _reshape_batch(np.zeros(4), (2, 2))

    def test_concrete_dim_pin_violation_raises(self):
        with sanitized():
            with pytest.raises(SanitizerError, match="pins axis 1 to 2"):
                _pairup_batch(np.zeros((4, 3)), np.ones(4))

    def test_rank_mismatched_argument_does_not_bind(self):
        # Serial-compat twins legitimise low-rank inputs via atleast_2d,
        # so a rank-mismatched argument is recorded but never bound.
        with sanitized() as state:
            out = _double_batch(np.ones((2, 3)))
            assert out.shape == (2, 3)
            assert state.violations == 0

    def test_observations_are_capped(self):
        key = _double_batch.__repro_batch_pair__.key
        with sanitized() as state:
            for k in range(40):
                _double_batch(np.zeros(k + 1))
            assert len(state.pair_shapes[key]) == 32

    def test_recorded_shapes_reset_between_scopes(self):
        with sanitized() as state:
            _double_batch(np.zeros(3))
            assert state.pair_shapes
        with sanitized() as state:
            assert state.pair_shapes == {}
