"""The runtime sanitizer: dynamic twin of the static R1/T1 families.

Checks activation/deactivation hygiene (the patches must always come
off), fork-label collision detection, emit-schema validation, and the
bookkeeping counters the CI matrix entry reports.
"""

import numpy as np
import pytest

from repro.analysis import sanitizer
from repro.analysis.sanitizer import SanitizerError, sanitized
from repro.telemetry.sinks import MemorySink
from repro.telemetry.tracer import Tracer
from repro.utils.rng import RngStream


@pytest.fixture(autouse=True)
def _always_deactivate():
    """Never leak patches into other tests, whatever a test does."""
    yield
    sanitizer.deactivate()


def fresh_stream(name="root", seed=7):
    return RngStream(name, np.random.SeedSequence(seed))


def fresh_tracer():
    sink = MemorySink()
    tracer = Tracer(sink, clock=lambda: 0.0)
    return tracer, sink


@pytest.mark.no_sanitize  # manages activation/deactivation itself
class TestActivation:
    def test_activate_and_deactivate_restore_methods(self):
        original_fork = RngStream.fork
        original_emit = Tracer.emit
        sanitizer.activate()
        assert sanitizer.is_active()
        assert RngStream.fork is not original_fork
        assert Tracer.emit is not original_emit
        sanitizer.deactivate()
        assert not sanitizer.is_active()
        assert RngStream.fork is original_fork
        assert Tracer.emit is original_emit

    def test_activate_is_idempotent(self):
        sanitizer.activate()
        patched = RngStream.fork
        sanitizer.activate()  # must not re-wrap the wrapper
        assert RngStream.fork is patched
        sanitizer.deactivate()
        assert not sanitizer.is_active()

    def test_context_manager_scopes_activation(self):
        assert not sanitizer.is_active()
        with sanitized() as state:
            assert sanitizer.is_active()
            assert state.violations == 0
        assert not sanitizer.is_active()

    def test_sanitize_requested_reads_env(self, monkeypatch):
        monkeypatch.delenv(sanitizer.ENV_FLAG, raising=False)
        assert not sanitizer.sanitize_requested()
        monkeypatch.setenv(sanitizer.ENV_FLAG, "1")
        assert sanitizer.sanitize_requested()
        monkeypatch.setenv(sanitizer.ENV_FLAG, "0")
        assert not sanitizer.sanitize_requested()


class TestForkCollisions:
    def test_duplicate_label_same_parent_raises(self):
        with sanitized() as state:
            root = fresh_stream()
            root.fork("model")
            with pytest.raises(SanitizerError, match="fork-label collision"):
                root.fork("model")
            assert state.violations == 1

    def test_distinct_labels_pass(self):
        with sanitized() as state:
            root = fresh_stream()
            root.fork("actor/net")
            root.fork("critic/net")
            assert state.violations == 0
            assert state.fork_names["root/actor/net"] == 1

    def test_same_label_on_different_parents_passes(self):
        with sanitized():
            fresh_stream("a", 1).fork("net")
            fresh_stream("b", 2).fork("net")

    def test_collision_error_is_an_assertion(self):
        with sanitized():
            root = fresh_stream()
            root.fork("x")
            with pytest.raises(AssertionError):
                root.fork("x")

    def test_registry_resets_between_scopes(self):
        with sanitized():
            root = fresh_stream()
            root.fork("model")
        with sanitized():
            # Same instance, new scope: the per-instance registry was
            # cleared on reset, so the label is available again.
            root2 = fresh_stream()
            root2.fork("model")

    def test_forked_children_draw_identically_to_unsanitized(self):
        bare = fresh_stream().fork("child").normal(size=16)
        with sanitized():
            checked = fresh_stream().fork("child").normal(size=16)
        assert np.array_equal(bare, checked)


class TestEmitValidation:
    def test_valid_record_passes_and_counts(self):
        tracer, sink = fresh_tracer()
        with sanitized() as state:
            tracer.emit("metric", name="loss", value=0.5, step=1)
            assert state.records_validated == 1
        assert len(sink.records) == 1

    def test_unknown_kind_raises(self):
        tracer, _ = fresh_tracer()
        with sanitized() as state:
            with pytest.raises(SanitizerError, match="emit-schema"):
                tracer.emit("not-a-kind", value=1)
            assert state.violations == 1

    def test_field_drift_raises(self):
        tracer, _ = fresh_tracer()
        with sanitized():
            with pytest.raises(SanitizerError):
                tracer.emit("metric", name="loss", bogus=1)

    def test_disabled_tracer_is_not_validated(self):
        tracer, sink = fresh_tracer()
        tracer.enabled = False
        with sanitized() as state:
            tracer.emit("not-a-kind", value=1)  # dropped, not validated
            assert state.records_validated == 0
        assert sink.records == []
