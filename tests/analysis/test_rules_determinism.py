"""Positive/negative coverage for the D1 and D2 rule families."""

import textwrap

from tests.analysis.conftest import rules_of


def src(code):
    return textwrap.dedent(code).lstrip("\n")


class TestD101AmbientRandomness:
    def test_flags_stdlib_random_import(self, lint):
        findings = lint(src("""
            import random

            x = random.random()
        """))
        assert "D101" in rules_of(findings)

    def test_flags_from_random_import(self, lint):
        findings = lint(src("""
            from random import choice

            x = choice([1, 2])
        """))
        assert "D101" in rules_of(findings)

    def test_flags_global_numpy_distribution(self, lint):
        findings = lint(src("""
            import numpy as np

            x = np.random.normal(0.0, 1.0)
        """))
        assert "D101" in rules_of(findings)

    def test_flags_numpy_random_seed(self, lint):
        findings = lint(src("""
            import numpy as np

            np.random.seed(42)
        """))
        assert "D101" in rules_of(findings)

    def test_flags_from_numpy_random_distribution(self, lint):
        findings = lint(src("""
            from numpy.random import uniform

            x = uniform()
        """))
        assert "D101" in rules_of(findings)

    def test_allows_seed_sequence_and_default_rng(self, lint):
        findings = lint(src("""
            import numpy as np

            ss = np.random.SeedSequence(7)
            gen = np.random.default_rng(ss)
        """))
        assert "D101" not in rules_of(findings)

    def test_allows_rngstream_draws(self, lint):
        findings = lint(src("""
            import numpy as np

            from repro.utils.rng import RngStream

            def draw(rng):
                return rng.normal(0.0, 1.0)
        """))
        assert "D101" not in rules_of(findings)

    def test_allows_unrelated_attribute_named_random(self, lint):
        # `self.random` or `config.random_fraction` is not numpy state.
        findings = lint(src("""
            def pick(config):
                return config.random_fraction
        """))
        assert "D101" not in rules_of(findings)


class TestD102WallClock:
    def test_flags_time_time(self, lint):
        findings = lint(src("""
            import time

            start = time.time()
        """))
        assert "D102" in rules_of(findings)

    def test_flags_perf_counter(self, lint):
        findings = lint(src("""
            import time

            t0 = time.perf_counter()
        """))
        assert "D102" in rules_of(findings)

    def test_flags_from_time_import_time(self, lint):
        findings = lint(src("""
            from time import time

            start = time()
        """))
        assert "D102" in rules_of(findings)

    def test_flags_datetime_now(self, lint):
        findings = lint(src("""
            from datetime import datetime

            stamp = datetime.now()
        """))
        assert "D102" in rules_of(findings)

    def test_flags_datetime_module_now(self, lint):
        findings = lint(src("""
            import datetime

            stamp = datetime.datetime.now()
        """))
        assert "D102" in rules_of(findings)

    def test_allows_time_sleep_and_simulated_clock(self, lint):
        findings = lint(src("""
            import time

            def wait(loop):
                time.sleep(0.0)
                return loop.now
        """))
        assert "D102" not in rules_of(findings)

    def test_allows_local_time_variable(self, lint):
        # A variable that merely shadows the name `time` is not a clock.
        findings = lint(src("""
            def fmt(time):
                return time.time()
        """))
        assert "D102" not in rules_of(findings)


class TestD201SeedFallback:
    def test_flags_literal_seed_sequence(self, lint):
        findings = lint(src("""
            import numpy as np

            from repro.utils.rng import RngStream

            rng = RngStream("dense", np.random.SeedSequence(0))
        """))
        assert "D201" in rules_of(findings)

    def test_flags_bare_seed_sequence_name(self, lint):
        findings = lint(src("""
            from numpy.random import SeedSequence

            from repro.utils.rng import RngStream

            rng = RngStream("x", SeedSequence(1234))
        """))
        assert "D201" in rules_of(findings)

    def test_flags_keyword_form(self, lint):
        findings = lint(src("""
            import numpy as np

            from repro.utils.rng import RngStream

            rng = RngStream("x", seed_sequence=np.random.SeedSequence(entropy=3))
        """))
        assert "D201" in rules_of(findings)

    def test_allows_variable_seed(self, lint):
        findings = lint(src("""
            import numpy as np

            from repro.utils.rng import RngStream

            def make(seed):
                return RngStream("x", np.random.SeedSequence(seed))
        """))
        assert "D201" not in rules_of(findings)

    def test_allows_forked_stream(self, lint):
        findings = lint(src("""
            def child(parent):
                return parent.fork("layer0")
        """))
        assert "D201" not in rules_of(findings)
