"""Process-safety coverage for the distributed-collector dispatch shape.

The collector ships episode specs into a process pool and gets
transition blocks back (``repro.rl.distributed``).  These fixtures pin
the endorsed payload shape — a module-level worker fed plain dicts of
scalars, strings, and arrays — as P/W-clean, and pin the tempting
shortcuts (shipping a live RNG, a tracer, or a lambda along with the
spec) as findings.  The real engine module itself must stay clean too.
"""

import textwrap

from repro.analysis.config import LintConfig
from repro.analysis.engine import run_analysis
from tests.analysis.conftest import repo_root, rules_of

PROCESS_RULES = {"P101", "P102", "P103", "P104"}
WORKER_RULES = {"W101", "W102", "W103"}


def src(code):
    return textwrap.dedent(code).lstrip("\n")


class TestCollectorPayloadShape:
    def test_plain_spec_dict_dispatch_is_clean(self, lint):
        # The endorsed transition-block shape: the worker receives one
        # plain dict (factory string, seeds, policy weights) and builds
        # its own env and RNG inside the child.
        findings = lint(src("""
            def run_collect_episode(spec):
                return {"episode": spec["episode"], "steps": spec["steps"]}

            def collect(pool, specs):
                return list(pool.map(run_collect_episode, specs))
        """))
        assert rules_of(findings).isdisjoint(PROCESS_RULES | WORKER_RULES)

    def test_live_rng_in_spec_is_flagged(self, lint):
        # Shipping the parent's generator would tie worker draws to
        # parent state (and pickling a BitGenerator forks its stream).
        findings = lint(src("""
            from numpy.random import default_rng

            def run_collect_episode(spec, rng):
                return rng.normal()

            def collect(pool, spec):
                rng = default_rng(0)
                return pool.submit(run_collect_episode, spec, rng)
        """))
        assert "W102" in rules_of(findings)

    def test_tracer_in_spec_is_flagged(self, lint):
        # Workers must not carry the learner's tracer; merged telemetry
        # is emitted parent-side at merge time instead.
        findings = lint(src("""
            def run_collect_episode(spec, t):
                return t

            class Collector:
                def collect(self, executor, spec):
                    return executor.submit(
                        run_collect_episode, spec, self.tracer
                    )
        """))
        assert "W103" in rules_of(findings)

    def test_lambda_episode_worker_is_flagged(self, lint):
        findings = lint(src("""
            def collect(pool, specs):
                return list(pool.map(lambda s: s["episode"], specs))
        """))
        assert "P101" in rules_of(findings)

    def test_completion_order_merge_is_flagged(self, lint):
        # Merging blocks in completion order would let scheduling leak
        # into the replay buffer; the channel requires episode order.
        findings = lint(src("""
            from concurrent.futures import as_completed

            def run_collect_episode(spec):
                return spec

            def collect(pool, specs):
                futures = [
                    pool.submit(run_collect_episode, s) for s in specs
                ]
                merged = []
                for future in as_completed(futures):
                    merged.append(future.result())
                return merged
        """))
        assert "P104" in rules_of(findings)


class TestRealCollectorModuleIsClean:
    def test_distributed_engine_has_zero_process_findings(self):
        root = repo_root()
        target = root / "src" / "repro" / "rl" / "distributed.py"
        findings = run_analysis(
            [target], config=LintConfig(root=root / "src")
        ).findings
        flagged = rules_of(findings) & (PROCESS_RULES | WORKER_RULES)
        assert not flagged, findings
