"""Positive/negative coverage for the B1 (batch-pair contract) family."""

import textwrap

from tests.analysis.conftest import rules_of


def src(code):
    return textwrap.dedent(code).lstrip("\n")


class TestB101MissingSerialTwin:
    def test_flags_missing_module_level_twin(self, lint):
        findings = lint(src("""
            from repro.utils.batchpairs import batched_pair

            @batched_pair("predict")
            def predict_batch(states):
                return states
        """))
        assert "B101" in rules_of(findings)

    def test_flags_twin_in_wrong_scope(self, lint):
        # A module-level `predict` does not satisfy a class-scoped pair:
        # the twin must live in the same scope as the batch function.
        findings = lint(src("""
            from repro.utils.batchpairs import batched_pair

            def predict(state):
                return state

            class Model:
                @batched_pair("predict")
                def predict_batch(self, states):
                    return states
        """))
        assert "B101" in rules_of(findings)

    def test_module_level_pair_is_clean(self, lint):
        findings = lint(src("""
            from repro.utils.batchpairs import batched_pair

            def predict(state):
                return state

            @batched_pair("predict")
            def predict_batch(states):
                return states
        """))
        assert "B101" not in rules_of(findings)

    def test_class_scoped_pair_is_clean(self, lint):
        findings = lint(src("""
            from repro.utils.batchpairs import batched_pair

            class Model:
                def predict(self, state, action):
                    return state + action

                @batched_pair("predict")
                def predict_batch(self, states, actions):
                    return states + actions
        """))
        assert rules_of(findings).isdisjoint({"B101", "B102"})


class TestB102SignatureAlignment:
    def test_flags_unrelated_parameter_name(self, lint):
        findings = lint(src("""
            from repro.utils.batchpairs import batched_pair

            def predict(state, action):
                return state + action

            @batched_pair("predict")
            def predict_batch(states, speeds):
                return states + speeds
        """))
        assert "B102" in rules_of(findings)

    def test_flags_arity_mismatch(self, lint):
        findings = lint(src("""
            from repro.utils.batchpairs import batched_pair

            def predict(state, action):
                return state + action

            @batched_pair("predict")
            def predict_batch(states):
                return states
        """))
        assert "B102" in rules_of(findings)

    def test_pluralised_names_align(self, lint):
        findings = lint(src("""
            from repro.utils.batchpairs import batched_pair

            def project(vector, capacity):
                return vector * capacity

            @batched_pair("project")
            def project_batch(vectors, capacities):
                return vectors * capacities
        """))
        assert "B102" not in rules_of(findings)

    def test_leading_batch_axis_is_dropped(self, lint):
        findings = lint(src("""
            from repro.utils.batchpairs import batched_pair

            def sample(action_dim, rng):
                return rng.standard_normal(action_dim)

            @batched_pair("sample")
            def sample_batch(batch, action_dim, rng):
                return rng.standard_normal((batch, action_dim))
        """))
        assert "B102" not in rules_of(findings)


class TestB103EquivalenceTestCoverage:
    PAIR_MODULE = src("""
        from repro.utils.batchpairs import batched_pair

        def predict(state):
            return state

        @batched_pair("predict")
        def predict_batch(states):
            return states
    """)

    def test_flags_pair_without_test_reference(self, lint_package):
        findings = lint_package({
            "pkg/__init__.py": "",
            "pkg/model.py": self.PAIR_MODULE,
            "tests/test_other.py": src("""
                def test_unrelated():
                    return 1 + 1
            """),
        })
        assert "B103" in rules_of(findings)

    def test_referenced_pair_is_clean(self, lint_package):
        findings = lint_package({
            "pkg/__init__.py": "",
            "pkg/model.py": self.PAIR_MODULE,
            "tests/test_equivalence.py": src("""
                from pkg.model import predict, predict_batch

                def test_rows_match():
                    batch = predict_batch([1.0, 2.0])
                    serial = [predict(x) for x in [1.0, 2.0]]
                    return batch == serial
            """),
        })
        assert "B103" not in rules_of(findings)

    def test_silent_when_no_tests_analysed(self, lint_package):
        # Linting only the library tree must not demand tests it cannot
        # see; B103 activates only when test files are in scope.
        findings = lint_package({
            "pkg/__init__.py": "",
            "pkg/model.py": self.PAIR_MODULE,
        })
        assert "B103" not in rules_of(findings)
