"""``--jobs N``: parallel per-file analysis must be order-deterministic.

The engine fans parsing and per-file checking out over a process pool;
these tests pin the contract that a parallel run is byte-identical to a
serial one — same findings, same order, same summary counts — because
results merge in input order, never completion order.
"""

import textwrap

from repro.analysis.cli import main
from repro.analysis.config import LintConfig
from repro.analysis.engine import run_analysis

PACKAGE = {
    "pkg/__init__.py": "",
    "pkg/clean.py": "def double(x):\n    return 2 * x\n",
    "pkg/dirty.py": textwrap.dedent("""
        import random

        def roll():
            assert random.random() < 1.0
            return 1
    """).lstrip("\n"),
    "pkg/hot.py": textwrap.dedent("""
        def step(values):
            total = 0.0
            for v in values:
                total += v
            return total
    """).lstrip("\n"),
    "pkg/broken.py": "def oops(:\n",
    # A contract-less batch pair: the V2 family runs in the project
    # tier, so its findings must survive the parallel merge too.
    "pkg/pairs.py": textwrap.dedent("""
        from repro.utils.batchpairs import batched_pair

        def predict(s):
            return s

        @batched_pair("predict")
        def predict_batch(states):
            return states
    """).lstrip("\n"),
}


def write_package(tmp_path):
    for rel, code in PACKAGE.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(code, encoding="utf-8")
    return tmp_path


def run(tmp_path, jobs):
    config = LintConfig(root=tmp_path)
    return run_analysis([tmp_path], config=config, jobs=jobs)


class TestParallelDeterminism:
    def test_parallel_matches_serial(self, tmp_path):
        write_package(tmp_path)
        serial = run(tmp_path, jobs=1)
        parallel = run(tmp_path, jobs=4)
        as_rows = lambda r: [f.to_dict() for f in r.findings]  # noqa: E731
        assert as_rows(parallel) == as_rows(serial)
        assert parallel.checked_files == serial.checked_files
        assert len(parallel.suppressed) == len(serial.suppressed)

    def test_parallel_reports_syntax_errors(self, tmp_path):
        write_package(tmp_path)
        parallel = run(tmp_path, jobs=4)
        assert any(f.rule == "P001" for f in parallel.findings)

    def test_findings_found_in_parallel_run(self, tmp_path):
        # Guard against a vacuous determinism test: the synthetic
        # package must actually produce multi-family findings.
        write_package(tmp_path)
        rules = {f.rule for f in run(tmp_path, jobs=4).findings}
        assert "N102" in rules  # project-tier rule (parent process)
        assert "D101" in rules  # per-file rule (worker process)
        assert "V201" in rules  # shape-contract rule (project tier)

    def test_single_file_stays_serial(self, tmp_path):
        path = tmp_path / "one.py"
        path.write_text("import random\n", encoding="utf-8")
        config = LintConfig(root=tmp_path)
        result = run_analysis([path], config=config, jobs=8)
        assert {f.rule for f in result.findings} == {"D101"}


class TestJobsCli:
    def test_jobs_zero_is_usage_error(self, tmp_path, capsys):
        write_package(tmp_path)
        code = main(["--root", str(tmp_path), "--jobs", "0", str(tmp_path)])
        assert code == 2
        assert "--jobs" in capsys.readouterr().err

    def test_jobs_flag_accepted(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text("x = 1\n", encoding="utf-8")
        code = main([
            "--root", str(tmp_path), "--jobs", "2", str(tmp_path / "ok.py"),
        ])
        assert code == 0
        assert "0 finding(s)" in capsys.readouterr().out


class TestJobsDefault:
    """``--jobs`` omitted: auto-detect the CPU count, and stay
    byte-identical to an explicit serial run."""

    def test_default_matches_explicit_serial_byte_for_byte(
        self, tmp_path, capsys, monkeypatch
    ):
        import os

        write_package(tmp_path)
        monkeypatch.setattr(os, "cpu_count", lambda: 4)
        code_default = main([
            "--root", str(tmp_path), "--no-cache", str(tmp_path),
        ])
        default_out = capsys.readouterr().out
        code_serial = main([
            "--root", str(tmp_path), "--no-cache", "--jobs", "1",
            str(tmp_path),
        ])
        serial_out = capsys.readouterr().out
        assert code_default == code_serial
        assert default_out == serial_out

    def test_unknown_cpu_count_falls_back_to_serial(
        self, tmp_path, capsys, monkeypatch
    ):
        import os

        monkeypatch.setattr(os, "cpu_count", lambda: None)
        (tmp_path / "ok.py").write_text("x = 1\n", encoding="utf-8")
        code = main([
            "--root", str(tmp_path), "--no-cache", str(tmp_path / "ok.py"),
        ])
        assert code == 0
        assert "0 finding(s)" in capsys.readouterr().out
