"""L1 family: the import DAG at module scope.

The layer map is injected through the ``layers`` config kwarg; lazy
function-level imports are exempt by design, and modules outside any
configured layer are unconstrained.
"""

from tests.analysis.conftest import rules_of

LAYERS = {"base": [], "mid": ["base"], "top": ["mid", "base"]}


class TestL101LayerViolations:
    def test_upward_import_fires(self, lint_package):
        findings = lint_package({
            "base/__init__.py": "",
            "base/util.py": "from top import api\n",
            "top/__init__.py": "",
            "top/api.py": "X = 1\n",
        }, layers=LAYERS)
        l101 = [f for f in findings if f.rule == "L101"]
        assert len(l101) == 1
        assert l101[0].path == "base/util.py"
        assert "`base` must not import `top`" in l101[0].message

    def test_allowed_edge_is_silent(self, lint_package):
        findings = lint_package({
            "base/__init__.py": "",
            "base/util.py": "X = 1\n",
            "mid/__init__.py": "",
            "mid/logic.py": "from base.util import X\n",
        }, layers=LAYERS)
        assert "L101" not in rules_of(findings)

    def test_lazy_function_import_is_exempt(self, lint_package):
        findings = lint_package({
            "base/__init__.py": "",
            "base/util.py": (
                "def render():\n"
                "    from top import api\n"
                "    return api.X\n"
            ),
            "top/__init__.py": "",
            "top/api.py": "X = 1\n",
        }, layers=LAYERS)
        assert "L101" not in rules_of(findings)

    def test_intra_layer_import_is_silent(self, lint_package):
        findings = lint_package({
            "base/__init__.py": "",
            "base/a.py": "X = 1\n",
            "base/b.py": "from base.a import X\n",
        }, layers=LAYERS)
        assert "L101" not in rules_of(findings)

    def test_unconstrained_module_is_silent(self, lint_package):
        findings = lint_package({
            "scripts/__init__.py": "",
            "scripts/tool.py": "from top import api\nfrom base import util\n",
            "top/__init__.py": "",
            "top/api.py": "X = 1\n",
            "base/__init__.py": "",
            "base/util.py": "X = 1\n",
        }, layers=LAYERS)
        assert "L101" not in rules_of(findings)

    def test_longest_prefix_wins(self, lint_package):
        layers = {"pkg": [], "pkg.sub": ["pkg"]}
        findings = lint_package({
            "pkg/__init__.py": "",
            "pkg/core.py": "X = 1\n",
            "pkg/sub/__init__.py": "",
            "pkg/sub/leaf.py": "from pkg.core import X\n",
        }, layers=layers)
        assert "L101" not in rules_of(findings)

    def test_empty_layer_map_disables_family(self, lint_package):
        findings = lint_package({
            "base/__init__.py": "",
            "base/util.py": "from top import api\n",
            "top/__init__.py": "",
            "top/api.py": "X = 1\n",
        }, layers={})
        assert "L101" not in rules_of(findings)
