"""Failure-injection integration: allocators under chaos.

The infrastructure's availability mechanisms (ack redelivery, replica
quorum, container restarts) must keep every allocator's control loop
functional while faults fire.
"""

import numpy as np
import pytest

from repro.baselines import (
    DrsAllocator,
    HeftAllocator,
    HpaAllocator,
    UniformAllocator,
)
from repro.eval.runner import evaluate_allocator, make_env
from repro.sim.faults import ChaosInjector
from repro.sim.system import SystemConfig
from repro.workflows import build_msd_ensemble
from repro.workload.bursts import BurstScenario

SCENARIO = BurstScenario(
    "chaos-burst", {"Type1": 40, "Type2": 20, "Type3": 20}, {"Type1": 0.05}
)


@pytest.mark.parametrize(
    "allocator_cls",
    [UniformAllocator, DrsAllocator, HeftAllocator, HpaAllocator],
)
def test_allocators_survive_faults(allocator_cls):
    env = make_env(
        build_msd_ensemble(),
        config=SystemConfig(consumer_budget=14),
        seed=91,
        background_rates=dict(SCENARIO.background_rates),
    )
    chaos = ChaosInjector(
        env.system,
        consumer_crash_rate=1.0 / 45.0,
        tds_outage_rate=1.0 / 90.0,
        tds_outage_duration=60.0,
    ).start()
    result = evaluate_allocator(allocator_cls(), env, SCENARIO, steps=20)
    assert chaos.crashes_injected > 0
    assert env.system.conservation_ok()
    assert result.total_completions() > 20  # still making progress
    # The burst still drains despite the faults.
    assert result.wip_series()[-1] < result.wip_series()[0]


def test_chaos_costs_throughput():
    """Crashes waste work: completions under chaos <= fault-free run."""

    def run(crash_rate):
        env = make_env(
            build_msd_ensemble(),
            config=SystemConfig(consumer_budget=14, scale_down_mode="kill"),
            seed=92,
            background_rates=dict(SCENARIO.background_rates),
        )
        if crash_rate:
            ChaosInjector(env.system, consumer_crash_rate=crash_rate).start()
        result = evaluate_allocator(
            UniformAllocator(), env, SCENARIO, steps=20
        )
        return result.total_completions()

    clean = run(0.0)
    chaotic = run(1.0 / 15.0)  # one crash every ~15 s on average
    assert chaotic <= clean
