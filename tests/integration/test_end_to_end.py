"""End-to-end integration tests across the whole stack."""

import numpy as np
import pytest

from repro import quickstart_msd_agent
from repro.baselines import (
    DrsAllocator,
    HeftAllocator,
    MirasAllocator,
    UniformAllocator,
)
from repro.core.agent import MirasAgent
from repro.core.config import MirasConfig, ModelConfig, PolicyConfig
from repro.eval.runner import evaluate_allocator, make_env
from repro.rl.ddpg import DDPGConfig
from repro.sim.system import SystemConfig
from repro.workflows import build_ligo_ensemble, build_msd_ensemble
from repro.workload.bursts import BurstScenario

from tests.conftest import make_ligo_env, make_msd_env


def small_config(iterations=2):
    return MirasConfig(
        model=ModelConfig(hidden_sizes=(12, 12), epochs=10),
        policy=PolicyConfig(
            ddpg=DDPGConfig(hidden_sizes=(32, 32), batch_size=16),
            rollout_length=8,
            rollouts_per_iteration=5,
            patience=3,
        ),
        steps_per_iteration=50,
        reset_interval=25,
        iterations=iterations,
        eval_steps=8,
    )


class TestMirasOnMsd:
    def test_full_training_and_deployment(self):
        env = make_msd_env(seed=31)
        agent = MirasAgent(env, small_config(), seed=31)
        results = agent.iterate()
        assert len(results) == 2
        # Deploy the trained policy through the allocator interface.
        allocator = MirasAllocator(agent=agent)
        eval_env = make_msd_env(seed=32)
        scenario = BurstScenario(
            "t", {"Type1": 30, "Type2": 20, "Type3": 20}, {"Type1": 0.05}
        )
        result = evaluate_allocator(allocator, eval_env, scenario, steps=10)
        assert len(result.records) == 10
        assert eval_env.system.conservation_ok()

    def test_quickstart_helper(self):
        agent, env = quickstart_msd_agent(seed=33)
        assert agent.training_trace()
        assert env.system.conservation_ok()


class TestMirasOnLigo:
    def test_ligo_training_runs(self):
        env = make_ligo_env(seed=34)
        agent = MirasAgent(env, small_config(iterations=1), seed=34)
        results = agent.iterate()
        assert len(results) == 1
        assert agent.env.state_dim == 9
        allocation = agent.act(np.zeros(9))
        assert allocation.sum() <= 30


class TestHeuristicsUnderBursts:
    @pytest.mark.parametrize(
        "allocator_cls", [UniformAllocator, DrsAllocator, HeftAllocator]
    )
    def test_allocator_drains_burst(self, allocator_cls):
        env = make_env(
            build_msd_ensemble(),
            config=SystemConfig(consumer_budget=14),
            seed=35,
            background_rates={"Type1": 0.02},
        )
        scenario = BurstScenario("b", {"Type1": 60}, {"Type1": 0.02})
        result = evaluate_allocator(allocator_cls(), env, scenario, steps=20)
        assert result.wip_series()[-1] < result.wip_series()[0]
        assert result.total_completions() > 30
        assert env.system.conservation_ok()


class TestConservationUnderChaos:
    def test_random_reallocations_never_lose_requests(self):
        """Property: arbitrary per-window reallocation (including scale to
        zero) never loses a request, in either scale-down mode."""
        for mode in ("drain", "kill"):
            env = make_msd_env(seed=36, scale_down_mode=mode)
            env.system.inject_burst({"Type1": 40, "Type3": 20})
            rng = env.system.workload_rng.fork("chaos")
            for _ in range(15):
                allocation = env.random_allocation(rng)
                env.step(allocation)
            assert env.system.conservation_ok(), mode

    def test_tds_failover_during_processing(self):
        env = make_msd_env(seed=37)
        env.system.inject_burst({"Type3": 10})
        env.system.tds.fail_server(0)
        for _ in range(10):
            env.step(env.uniform_allocation())
        assert env.system.invoker.completed_total > 0
        assert env.system.conservation_ok()


class TestCrossEnsembleGeneralisation:
    def test_agent_works_on_random_ensemble(self):
        """MIRAS is not MSD/LIGO-specific (Section I claim)."""
        from repro.sim.env import MicroserviceEnv
        from repro.sim.system import MicroserviceWorkflowSystem
        from repro.workflows import random_ensemble
        from repro.workload import PoissonArrivalProcess

        ensemble = random_ensemble(5, 2, seed=9)
        system = MicroserviceWorkflowSystem(
            ensemble, SystemConfig(consumer_budget=10), seed=38
        )
        rates = {w.name: 0.05 for w in ensemble.workflow_types}
        PoissonArrivalProcess(rates).attach(system)
        env = MicroserviceEnv(system)
        agent = MirasAgent(env, small_config(iterations=1), seed=38)
        results = agent.iterate()
        assert np.isfinite(results[0].eval_reward)
