"""Property-based tests of system-wide invariants.

These use hypothesis to sweep random ensembles, workloads and allocation
sequences, asserting the invariants listed in DESIGN.md §4.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.sim.env import MicroserviceEnv
from repro.sim.system import MicroserviceWorkflowSystem, SystemConfig
from repro.workflows import random_ensemble
from repro.workload import PoissonArrivalProcess


def build_random_system(
    num_tasks, num_workflows, seed, budget=10, scale_down_mode="drain"
):
    ensemble = random_ensemble(num_tasks, num_workflows, seed=seed)
    system = MicroserviceWorkflowSystem(
        ensemble,
        SystemConfig(consumer_budget=budget, scale_down_mode=scale_down_mode),
        seed=seed,
    )
    rates = {w.name: 0.03 for w in ensemble.workflow_types}
    PoissonArrivalProcess(rates).attach(system)
    return MicroserviceEnv(system)


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    num_tasks=st.integers(2, 7),
    num_workflows=st.integers(1, 4),
    seed=st.integers(0, 10_000),
    mode=st.sampled_from(["drain", "kill"]),
)
def test_conservation_on_random_ensembles(num_tasks, num_workflows, seed, mode):
    """No request is ever lost, for any ensemble, workload, allocation
    sequence, or scale-down mode."""
    env = build_random_system(num_tasks, num_workflows, seed, scale_down_mode=mode)
    env.system.inject_burst(
        {env.system.ensemble.workflow_names()[0]: 15}
    )
    rng = env.system.workload_rng.fork("prop")
    for _ in range(8):
        env.step(env.random_allocation(rng))
    assert env.system.conservation_ok()


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    num_tasks=st.integers(2, 7),
    num_workflows=st.integers(1, 4),
    seed=st.integers(0, 10_000),
)
def test_wip_non_negative_and_reward_consistent(num_tasks, num_workflows, seed):
    """WIP is non-negative and reward always equals Eq. (1)."""
    env = build_random_system(num_tasks, num_workflows, seed)
    rng = env.system.workload_rng.fork("prop")
    for _ in range(6):
        state, reward, _ = env.step(env.random_allocation(rng))
        assert np.all(state >= 0)
        assert reward == pytest.approx(1.0 - float(state.sum()))


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    num_tasks=st.integers(2, 6),
    seed=st.integers(0, 10_000),
)
def test_completed_workflows_visited_every_task(num_tasks, seed):
    """Every completed workflow instance completed each of its tasks
    exactly once (AND-join correctness on random DAGs)."""
    ensemble = random_ensemble(num_tasks, 2, seed=seed)
    system = MicroserviceWorkflowSystem(
        ensemble,
        SystemConfig(consumer_budget=12, startup_delay_range=(0.0, 0.0)),
        seed=seed,
    )
    requests = [
        system.submit(name) for name in ensemble.workflow_names() for _ in range(3)
    ]
    system.apply_allocation(
        np.full(ensemble.num_task_types, 12 // ensemble.num_task_types or 1)
    )
    system.loop.run_until(3000.0)
    completed = [r for r in requests if r.is_complete]
    assert completed, "nothing completed — allocation or routing broken"
    for request in completed:
        workflow = ensemble.workflow(request.workflow_type)
        assert request.completed_tasks == set(workflow.tasks)


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(seed=st.integers(0, 100_000), budget=st.integers(1, 40))
def test_every_allocator_respects_any_budget(seed, budget):
    """DRS/HEFT/uniform/WIP-proportional stay within arbitrary budgets."""
    from repro.baselines import (
        DrsAllocator,
        HeftAllocator,
        ProportionalToWipAllocator,
        UniformAllocator,
    )

    env = build_random_system(4, 2, seed % 100, budget=budget)
    rng = np.random.default_rng(seed)
    wip = rng.uniform(0, 200, env.state_dim)
    for allocator in (
        UniformAllocator(),
        ProportionalToWipAllocator(),
        DrsAllocator(),
        HeftAllocator(),
    ):
        allocator.bind(env)
        allocation = allocator.allocate(wip)
        assert int(allocation.sum()) <= budget
        assert np.all(allocation >= 0)
