"""Shared fixtures for the test suite."""

import numpy as np
import pytest

from repro.analysis import sanitizer as _sanitizer

from repro.sim.env import MicroserviceEnv
from repro.sim.system import MicroserviceWorkflowSystem, SystemConfig
from repro.utils.rng import RngStream
from repro.workflows import build_ligo_ensemble, build_msd_ensemble
from repro.workload import (
    LIGO_BACKGROUND_RATES,
    MSD_BACKGROUND_RATES,
    PoissonArrivalProcess,
)


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "no_sanitize: skip the REPRO_SANITIZE runtime checks for this test "
        "(for tests that deliberately exercise label re-use or raw records)",
    )


@pytest.fixture(autouse=True)
def _repro_sanitize(request):
    """Run every test under the runtime sanitizer when REPRO_SANITIZE=1.

    The sanitizer asserts the dynamic half of the reprolint contracts —
    fork-label collisions and emit-schema conformance — per test, with a
    fresh registry each time.  CI exercises this as its own matrix entry.
    Tests that deliberately violate a contract (e.g. pinning the documented
    "re-used labels still yield fresh streams" fork semantics) opt out with
    ``@pytest.mark.no_sanitize``.
    """
    if (
        not _sanitizer.sanitize_requested()
        or request.node.get_closest_marker("no_sanitize") is not None
    ):
        yield
        return
    with _sanitizer.sanitized():
        yield


@pytest.fixture
def rng():
    """A deterministic RNG stream for tests."""
    return RngStream("test", np.random.SeedSequence(12345))


@pytest.fixture
def msd_ensemble():
    return build_msd_ensemble()


@pytest.fixture
def ligo_ensemble():
    return build_ligo_ensemble()


def make_msd_env(seed=0, consumer_budget=14, with_arrivals=True, **config_kwargs):
    """Helper: a full MSD environment with background workload."""
    system = MicroserviceWorkflowSystem(
        build_msd_ensemble(),
        SystemConfig(consumer_budget=consumer_budget, **config_kwargs),
        seed=seed,
    )
    if with_arrivals:
        PoissonArrivalProcess(MSD_BACKGROUND_RATES).attach(system)
    return MicroserviceEnv(system)


def make_ligo_env(seed=0, consumer_budget=30, with_arrivals=True, **config_kwargs):
    """Helper: a full LIGO environment with background workload."""
    system = MicroserviceWorkflowSystem(
        build_ligo_ensemble(),
        SystemConfig(consumer_budget=consumer_budget, **config_kwargs),
        seed=seed,
    )
    if with_arrivals:
        PoissonArrivalProcess(LIGO_BACKGROUND_RATES).attach(system)
    return MicroserviceEnv(system)


@pytest.fixture
def msd_env():
    return make_msd_env()


@pytest.fixture
def ligo_env():
    return make_ligo_env()
