"""Hierarchical phase profiler: where did the wall/CPU time go?

A :class:`PhaseProfiler` attributes real (wall and CPU) time to a tree
of named *phases* — event-loop dispatch, model-fit epochs, DDPG update
steps, replay sampling, Lend–Giveback refinement — via a context
manager (``with profiler.phase("model/fit"):``) or a decorator
(``@profiler.profiled("ddpg/update")``).  Each tree node records call
counts, cumulative time, and self time (cumulative minus children).

**Determinism boundary.**  Profiling is *measurement of the machine*,
not of the simulation: its clock reads are real, so profiler output is
explicitly excluded from the trace-determinism contract, exactly like
``wall_time`` in the run manifest.  The two clock reads below are the
sanctioned wall-clock sites (reprolint D102 suppressed); nothing from
this module may ever be written into a trace record.  The determinism
tests pin the other direction too: enabling a profiler does not change
trace bytes.

**Zero cost when off.**  Instrumented hot paths guard with
``if profiler.enabled:`` against the shared :data:`NULL_PROFILER`
singleton — the disabled cost is one attribute read and a branch, the
same budget discipline as :data:`~repro.telemetry.tracer.NULL_TRACER`.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Union

__all__ = [
    "PROFILE_VERSION",
    "PROFILE_FILENAME",
    "PhaseNode",
    "PhaseProfiler",
    "NULL_PROFILER",
    "render_profile",
    "write_profile",
    "read_profile",
]

#: Bumped whenever the profile.json document changes shape.
PROFILE_VERSION = 1

PROFILE_FILENAME = "profile.json"


def _wall_clock() -> float:
    """Sanctioned wall-clock read for profiling (not simulation data)."""
    return time.perf_counter()  # reprolint: disable=D102


def _cpu_clock() -> float:
    """Sanctioned CPU-clock read for profiling (not simulation data)."""
    return time.process_time()


class PhaseNode:
    """One node of the phase tree."""

    __slots__ = ("name", "calls", "wall", "cpu", "children")

    def __init__(self, name: str):
        self.name = name
        self.calls = 0
        self.wall = 0.0
        self.cpu = 0.0
        self.children: Dict[str, "PhaseNode"] = {}

    def child(self, name: str) -> "PhaseNode":
        node = self.children.get(name)
        if node is None:
            node = PhaseNode(name)
            self.children[name] = node
        return node

    @property
    def self_wall(self) -> float:
        """Wall time spent in this phase excluding child phases."""
        return self.wall - sum(c.wall for c in self.children.values())

    @property
    def self_cpu(self) -> float:
        return self.cpu - sum(c.cpu for c in self.children.values())

    def to_dict(self) -> Dict:
        return {
            "name": self.name,
            "calls": self.calls,
            "wall": self.wall,
            "cpu": self.cpu,
            "self_wall": self.self_wall,
            "self_cpu": self.self_cpu,
            "children": [
                self.children[name].to_dict()
                for name in sorted(self.children)
            ],
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "PhaseNode":
        node = cls(data["name"])
        node.calls = int(data["calls"])
        node.wall = float(data["wall"])
        node.cpu = float(data["cpu"])
        for child in data.get("children", ()):
            node.children[child["name"]] = cls.from_dict(child)
        return node


class _Phase:
    """Reusable context manager for one profiler (not re-entrant-safe
    across threads; the simulator is single-threaded by design)."""

    __slots__ = ("profiler", "name", "_wall0", "_cpu0")

    def __init__(self, profiler: "PhaseProfiler", name: str):
        self.profiler = profiler
        self.name = name

    def __enter__(self) -> "_Phase":
        self.profiler._push(self.name)
        self._wall0 = _wall_clock()
        self._cpu0 = _cpu_clock()
        return self

    def __exit__(self, *exc_info) -> None:
        wall = _wall_clock() - self._wall0
        cpu = _cpu_clock() - self._cpu0
        self.profiler._pop(wall, cpu)


class _NoopPhase:
    """Shared do-nothing context manager for the disabled profiler."""

    __slots__ = ()

    def __enter__(self) -> "_NoopPhase":
        return self

    def __exit__(self, *exc_info) -> None:
        return None


_NOOP_PHASE = _NoopPhase()


class PhaseProfiler:
    """Collects a self-time/cumulative phase tree.

    Parameters
    ----------
    enabled:
        ``False`` builds a disabled profiler whose :meth:`phase` returns
        a shared no-op context manager.  Instrumented code should still
        guard with ``if profiler.enabled:`` to skip even that call on
        hot paths.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self.root = PhaseNode("total")
        self._stack: List[PhaseNode] = [self.root]

    # Recording ------------------------------------------------------------
    def phase(self, name: str):
        """Context manager timing one phase nested under the current one."""
        if not self.enabled:
            return _NOOP_PHASE
        return _Phase(self, name)

    def profiled(self, name: str) -> Callable:
        """Decorator form of :meth:`phase`."""

        def decorate(func: Callable) -> Callable:
            def wrapper(*args, **kwargs):
                if not self.enabled:
                    return func(*args, **kwargs)
                with _Phase(self, name):
                    return func(*args, **kwargs)

            wrapper.__name__ = getattr(func, "__name__", name)
            wrapper.__doc__ = func.__doc__
            wrapper.__wrapped__ = func
            return wrapper

        return decorate

    def _push(self, name: str) -> None:
        node = self._stack[-1].child(name)
        node.calls += 1
        self._stack.append(node)

    def _pop(self, wall: float, cpu: float) -> None:
        node = self._stack.pop()
        node.wall += wall
        node.cpu += cpu

    # Reading --------------------------------------------------------------
    @property
    def depth(self) -> int:
        """Current nesting depth (0 outside any phase)."""
        return len(self._stack) - 1

    def node(self, *path: str) -> Optional[PhaseNode]:
        """Look up a node by phase path; None when never entered."""
        node = self.root
        for name in path:
            node = node.children.get(name)
            if node is None:
                return None
        return node

    def total_wall(self) -> float:
        return sum(c.wall for c in self.root.children.values())

    def to_dict(self) -> Dict:
        """The profile.json document."""
        return {
            "profile_version": PROFILE_VERSION,
            "tree": self.root.to_dict(),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PhaseProfiler(enabled={self.enabled}, "
            f"phases={len(self.root.children)})"
        )


#: Shared disabled profiler used as the default by every instrumented
#: component.  Never record into it.
NULL_PROFILER = PhaseProfiler(enabled=False)


def render_profile(
    source: Union[PhaseProfiler, PhaseNode, Dict],
    max_depth: Optional[int] = None,
) -> str:
    """Render the phase tree as an indented text report.

    Accepts a profiler, a tree root, or a loaded profile.json document.
    """
    if isinstance(source, PhaseProfiler):
        root = source.root
    elif isinstance(source, PhaseNode):
        root = source
    else:
        root = PhaseNode.from_dict(source["tree"])
    lines = [
        f"{'phase':<40} {'calls':>8} {'wall (s)':>10} "
        f"{'self (s)':>10} {'cpu (s)':>10}"
    ]
    lines.append("-" * len(lines[0]))

    def visit(node: PhaseNode, depth: int) -> None:
        if max_depth is not None and depth > max_depth:
            return
        label = ("  " * depth) + node.name
        lines.append(
            f"{label:<40} {node.calls:>8} {node.wall:>10.4f} "
            f"{node.self_wall:>10.4f} {node.cpu:>10.4f}"
        )
        for name in sorted(node.children):
            visit(node.children[name], depth + 1)

    for name in sorted(root.children):
        visit(root.children[name], 0)
    if len(lines) == 2:
        lines.append("(no phases recorded)")
    return "\n".join(lines)


def write_profile(
    outdir: Union[str, Path], profiler: PhaseProfiler
) -> Path:
    """Write ``profile.json`` into a run directory; returns the path.

    The artifact is *outside* the determinism contract — its timings are
    wall-clock measurements and differ between reruns.
    """
    outdir = Path(outdir)
    outdir.mkdir(parents=True, exist_ok=True)
    target = outdir / PROFILE_FILENAME
    target.write_text(
        json.dumps(profiler.to_dict(), indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return target


def read_profile(path: Union[str, Path]) -> Dict:
    """Load a profile.json document from a file or run directory."""
    path = Path(path)
    if path.is_dir():
        path = path / PROFILE_FILENAME
    document = json.loads(path.read_text(encoding="utf-8"))
    if "tree" not in document:
        raise ValueError(f"{path} is not a profile document")
    return document
