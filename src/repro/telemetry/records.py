"""Trace record kinds and schemas.

Every record a :class:`~repro.telemetry.tracer.Tracer` emits is a flat
JSON-serialisable dict with a two-field envelope:

- ``kind`` — one of the registered kinds below,
- ``t`` — the *simulation-clock* timestamp (seconds since the run's
  event-loop epoch), or ``None`` for records emitted before a clock is
  bound.  Wall-clock time never appears in trace records (reprolint D102);
  it lives only in the run manifest, where determinism tests explicitly
  ignore it.

The schema registry is the contract between the emitting instrumentation
(``repro.sim``, ``repro.core``, ``repro.rl``) and the consuming side
(``repro.telemetry.report``, the ``repro report`` CLI): a record must
carry exactly the envelope plus the registered payload fields.
"""

from __future__ import annotations

from typing import Dict, FrozenSet

__all__ = [
    "SCHEMA_VERSION",
    "ENVELOPE_FIELDS",
    "RECORD_SCHEMAS",
    "validate_record",
]

#: Bumped whenever a record schema changes shape; written to the manifest
#: so downstream tooling can refuse traces it does not understand.
#: v2: added ``event.task_complete`` (per-task service time).
#: v3: added ``event.task_span`` (per-task causal span for critical-path
#: attribution).
#: v4: added ``span.collect`` (one merged distributed-collection episode).
SCHEMA_VERSION = 4

#: Fields present on every record regardless of kind.
ENVELOPE_FIELDS: FrozenSet[str] = frozenset({"kind", "t"})

#: kind -> required payload fields (exactly these, plus the envelope).
RECORD_SCHEMAS: Dict[str, FrozenSet[str]] = {
    # One control window (the paper's 30 s step): per-microservice state
    # at the window boundary.  ``wip``/``allocation``/``busy``/``starting``
    # /``queue_ready`` are {microservice_name: int} maps.
    "span.window": frozenset({
        "index", "start", "end", "reward", "wip", "allocation", "busy",
        "starting", "queue_ready", "arrivals", "completions",
    }),
    # One real-environment collection episode merged by the distributed
    # actor/learner engine (repro.rl.distributed), emitted in episode
    # order at merge time.  ``lane`` is the logical-interleave lane,
    # ``sim_time`` the episode replica's own simulation clock at its last
    # window — worker identity and wall clock never appear, so traces are
    # identical for any worker count.
    "span.collect": frozenset({
        "lane", "episode", "steps", "reward", "sim_time",
    }),
    # A workflow request entering the system.
    "event.arrival": frozenset({"workflow", "request_id"}),
    # A workflow request leaving the system (all tasks done).
    "event.workflow_complete": frozenset({
        "workflow", "request_id", "response_time",
    }),
    # A task request published to a microservice queue.
    "event.publish": frozenset({"queue", "depth"}),
    # A nacked task request requeued at the front (kill / crash path).
    "event.redeliver": frozenset({"queue", "depth"}),
    # Container lifecycle: creation (start-up latency begins), readiness
    # (first consume possible), removal (mode: drain / kill /
    # cancel-starting / idle / drained).
    "event.consumer_start": frozenset({
        "service", "consumer_id", "node", "startup_delay",
    }),
    "event.consumer_ready": frozenset({
        "service", "consumer_id", "startup_latency",
    }),
    "event.consumer_stop": frozenset({"service", "consumer_id", "mode"}),
    # A task finishing on a consumer; ``service_time`` is the processing
    # time of this attempt (wasted work from killed attempts excluded).
    # Feeds the per-service service-time histograms of the metrics engine.
    "event.task_complete": frozenset({"service", "service_time"}),
    # The full causal span of one task of one workflow request, emitted at
    # completion (record ``t``): ``published`` is when the request entered
    # the queue, ``started`` when the final (successful) attempt began
    # processing, ``deliveries`` the delivery attempts, ``wasted`` the
    # processing time lost to interrupted attempts.  ``request_id`` is the
    # run-local workflow ordinal of ``event.arrival``, which is what lets
    # repro.telemetry.critical reconstruct per-request causal chains.
    "event.task_span": frozenset({
        "service", "request_id", "published", "started", "deliveries",
        "wasted",
    }),
    # Cluster slot accounting (Kubernetes scheduler analog).
    "event.placement": frozenset({"node", "used"}),
    "event.release": frozenset({"node", "used"}),
    # Injected faults: consumer_crash / tds_outage / tds_recover.
    "event.fault": frozenset({"fault", "target"}),
    # A named scalar (training-loop instrumentation).  ``step`` is the
    # producer's own counter (iteration, epoch, update index) or None.
    "metric": frozenset({"name", "value", "step"}),
}


def validate_record(record: Dict) -> None:
    """Raise ``ValueError`` unless ``record`` matches its registered schema."""
    if not isinstance(record, dict):
        raise ValueError(f"record must be a dict, got {type(record).__name__}")
    kind = record.get("kind")
    if kind not in RECORD_SCHEMAS:
        raise ValueError(f"unknown record kind {kind!r}")
    missing = ENVELOPE_FIELDS - record.keys()
    if missing:
        raise ValueError(f"{kind} record missing envelope fields {sorted(missing)}")
    expected = RECORD_SCHEMAS[kind]
    payload = record.keys() - ENVELOPE_FIELDS
    if payload != expected:
        extra = sorted(payload - expected)
        absent = sorted(expected - payload)
        raise ValueError(
            f"{kind} record payload mismatch: missing={absent}, unexpected={extra}"
        )
