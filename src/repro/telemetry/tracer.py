"""The tracer: structured event/metric emission with a simulation clock.

Design constraints (docs/OBSERVABILITY.md):

- **Deterministic timestamps.**  The tracer never reads the wall clock;
  ``t`` comes from a bound clock callable — in practice the event loop's
  ``now`` — so a re-run with the same seed produces an identical trace
  (reprolint D102 stays clean by construction).
- **Off-by-default-cheap.**  Components default to :data:`NULL_TRACER`,
  whose :attr:`Tracer.enabled` is False.  Hot paths guard emission with
  ``if tracer.enabled:`` so the disabled cost is one attribute read and a
  branch — measured at < 2% on the simulator window benchmark
  (``benchmarks/bench_substrate_throughput.py``).
- **Flat records.**  Every emission is one dict matching a schema in
  :mod:`repro.telemetry.records`; sinks own serialisation.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.telemetry.sinks import NullSink, Sink

__all__ = ["Tracer", "NULL_TRACER"]


class Tracer:
    """Emits schema'd trace records and keeps named counters.

    Parameters
    ----------
    sink:
        Destination for records; ``None`` (or a :class:`NullSink`) makes
        the tracer disabled — every emit method returns immediately.
    clock:
        Zero-argument callable returning the current *simulation* time.
        Usually bound later by the system via :meth:`bind_clock`.
    """

    def __init__(
        self,
        sink: Optional[Sink] = None,
        clock: Optional[Callable[[], float]] = None,
    ):
        self.sink: Sink = sink if sink is not None else NullSink()
        #: Fast-path flag checked by instrumented hot paths.
        self.enabled: bool = not isinstance(self.sink, NullSink)
        self._clock = clock
        #: Named monotonic counters (flushed into the run manifest).
        self.counters: Dict[str, int] = {}
        self.records_written = 0

    # Clock ---------------------------------------------------------------
    def bind_clock(self, clock: Callable[[], float]) -> None:
        """Attach the simulation clock; no-op on a disabled tracer.

        The no-op keeps the shared :data:`NULL_TRACER` singleton free of
        cross-run state when many systems are constructed without tracing.
        """
        if self.enabled:
            self._clock = clock

    def now(self) -> Optional[float]:
        """Current simulation time, or ``None`` before a clock is bound."""
        return float(self._clock()) if self._clock is not None else None

    # Emission ------------------------------------------------------------
    def emit(self, kind: str, **fields) -> None:
        """Write one record of ``kind`` with the payload ``fields``.

        The envelope (``kind``, ``t``) is added here; schema conformance
        is the caller's contract (validated in tests, not per-record in
        the hot path).
        """
        if not self.enabled:
            return
        record: Dict = {"kind": kind, "t": self.now()}
        record.update(fields)
        self.sink.write(record)
        self.records_written += 1

    def metric(self, name: str, value: float, step: Optional[int] = None) -> None:
        """Emit one named scalar (training-loop instrumentation)."""
        if not self.enabled:
            return
        self.emit("metric", name=name, value=float(value), step=step)

    def count(self, name: str, n: int = 1) -> None:
        """Increment a named counter (no record is written per increment)."""
        if not self.enabled:
            return
        self.counters[name] = self.counters.get(name, 0) + n

    # Lifecycle -----------------------------------------------------------
    def flush(self) -> None:
        """Flush the sink."""
        self.sink.flush()

    def close(self) -> None:
        """Flush and close the sink."""
        self.sink.flush()
        self.sink.close()

    def __enter__(self) -> "Tracer":
        return self

    def __exit__(self, *exc_info) -> None:
        """Flush-and-close on scope exit, including exceptional exit.

        Guarantees a crashed run keeps every record buffered in a
        :class:`~repro.telemetry.sinks.JsonlSink` up to the failure point.
        """
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Tracer(enabled={self.enabled}, "
            f"records={self.records_written})"
        )


#: Shared disabled tracer used as the default by every instrumented
#: component.  Never bind a clock or sink to it.
NULL_TRACER = Tracer()
