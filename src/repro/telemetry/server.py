"""A stdlib Prometheus exposition endpoint for metrics snapshots.

``repro metrics --serve PORT`` wraps an offline-aggregated registry in a
:class:`MetricsServer`: a ``ThreadingHTTPServer`` whose ``GET /metrics``
responds with the text exposition format (version 0.0.4), exactly the
bytes :meth:`MetricsRegistry.to_prometheus` renders.  No third-party
dependency — scrape targets only need HTTP — and no effect on run
determinism: the server only *reads* aggregates, it never feeds them.

The render callable is re-invoked per scrape, so a long-lived process
can hand in a closure over a live :class:`MetricsSink` and expose
up-to-date numbers without restarting the server.
"""

from __future__ import annotations

import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Tuple

__all__ = ["PROMETHEUS_CONTENT_TYPE", "MetricsServer", "serve_metrics"]

#: The exposition content type Prometheus scrapers negotiate.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class _Handler(BaseHTTPRequestHandler):
    render: Callable[[], str] = staticmethod(lambda: "")

    def do_GET(self):  # noqa: N802 - http.server API name
        if self.path.split("?", 1)[0] not in ("/metrics", "/"):
            self.send_error(404, "try /metrics")
            return
        body = self.render().encode("utf-8")
        self.send_response(200)
        self.send_header("Content-Type", PROMETHEUS_CONTENT_TYPE)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format, *args):  # noqa: A002 - http.server API
        pass  # scrape logging is noise; the CLI reports the bind address


class MetricsServer:
    """Serve a render callable at ``GET /metrics`` until stopped."""

    def __init__(self, render: Callable[[], str], port: int = 0,
                 host: str = "127.0.0.1"):
        handler = type("_BoundHandler", (_Handler,), {
            "render": staticmethod(render),
        })
        self._server = ThreadingHTTPServer((host, port), handler)
        self._thread: threading.Thread = threading.Thread(
            target=self._server.serve_forever, daemon=True
        )

    @property
    def address(self) -> Tuple[str, int]:
        """The bound (host, port) — useful with ``port=0``."""
        return self._server.server_address[:2]

    def start(self) -> "MetricsServer":
        """Serve from a daemon thread; idempotent so ``with`` composes
        with :func:`serve_metrics` (which already started it)."""
        if not self._thread.is_alive():
            self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Block in the calling thread (the CLI foreground mode)."""
        self._server.serve_forever()

    def stop(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        if self._thread.is_alive():
            self._thread.join(timeout=5.0)

    def __enter__(self) -> "MetricsServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()


def serve_metrics(render: Callable[[], str], port: int = 0,
                  host: str = "127.0.0.1") -> MetricsServer:
    """Start a background :class:`MetricsServer` and return it."""
    return MetricsServer(render, port=port, host=host).start()
