"""Trace-driven critical-path analysis: where each request's latency went.

The analyzer reconstructs, for every completed workflow request in a
trace, the *causal chain* of tasks that determined its end-to-end
response time, and attributes every second of that response time to a
stage:

- ``queue``   — waiting in a microservice queue for an idle consumer,
- ``startup`` — waiting specifically on a container that was still
  starting up when it eventually took the task,
- ``retry``   — processing time lost to interrupted attempts
  (kill-mode scale-downs, consumer crashes) before the successful one,
- ``service`` — the successful processing attempt itself,
- ``join``    — residual gaps the chain walk could not tie to a single
  trigger task (AND-join reconstruction fallback; rare).

Chain reconstruction leans on two exact-timestamp invariants of the
simulator (both substrates):

1. a successor task is published at *exactly* the completion time of
   the predecessor whose completion made it ready (the invoker publishes
   with ``loop.now`` inside the completion callback), and
2. an entry task is published at exactly the workflow's arrival time.

So walking backwards from the task whose completion finished the
workflow, the trigger of each hop is the same-request span whose
completion time equals the hop's publish time — float equality, no
tolerance.  When no such span exists (it can be hidden by a
completion-time tie) the walk falls back to the latest same-request
completion at or before the publish time and books the uncovered
interval as a ``join`` stage, so the chain always covers the full
``[arrival, completion]`` interval.

**Exact-sum invariant.**  Per request, the stage durations sum *exactly*
(``math.fsum``, bitwise) to the measured end-to-end latency — the
``response_time`` field of the ``event.workflow_complete`` record.
Durations are breakpoint differences, and the final rounding residual is
folded into the largest stage until the correctly-rounded sum equals the
makespan.  Everything here is a pure function of the record stream: live
and replayed traces yield identical reports by construction.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "CRITICAL_VERSION",
    "CRITICAL_FILENAME",
    "Stage",
    "RequestAttribution",
    "CriticalPathReport",
    "analyze_trace",
    "analyze_run",
    "critical_report_json",
    "render_critical",
]

#: Bumped whenever the critical-path report document changes shape.
CRITICAL_VERSION = 1

CRITICAL_FILENAME = "critical.json"

#: Stage names, in rendering order.
_STAGES = ("service", "queue", "startup", "retry", "join")

#: Reconcile iterations for the exact-sum fold; in practice one or two
#: suffice (the residual is a unit-in-the-last-place rounding artifact).
_MAX_RECONCILE = 64


@dataclass(frozen=True)
class Stage:
    """One attributed slice of a request's end-to-end latency."""

    service: str
    stage: str  # one of _STAGES
    duration: float


@dataclass
class RequestAttribution:
    """The critical path of one completed workflow request."""

    request_id: int
    workflow: str
    makespan: float
    stages: List[Stage] = field(default_factory=list)
    #: Tasks on the reconstructed chain.
    hops: int = 0
    #: True when every hop was tied to its trigger by exact timestamp
    #: equality (no ``join`` fallback gaps).
    exact_chain: bool = True

    def total(self) -> float:
        return math.fsum(s.duration for s in self.stages)

    def by_stage(self) -> Dict[str, float]:
        out: Dict[str, float] = {}
        for s in self.stages:
            out[s.stage] = out.get(s.stage, 0.0) + s.duration
        return out


@dataclass
class CriticalPathReport:
    """All per-request attributions plus fleet-level rollups."""

    requests: List[RequestAttribution] = field(default_factory=list)

    def bottlenecks(self, top_k: int = 5) -> List[Dict]:
        """Top-K (service, stage) sinks of critical-path time.

        Each entry carries the total attributed seconds, the share of
        all attributed time, and how many requests the pair appeared on.
        Service time is the work itself; large ``queue``/``startup``
        shares are the actionable bottlenecks.
        """
        totals: Dict[Tuple[str, str], float] = {}
        counts: Dict[Tuple[str, str], int] = {}
        for request in self.requests:
            seen = set()
            for s in request.stages:
                key = (s.service, s.stage)
                totals[key] = totals.get(key, 0.0) + s.duration
                if key not in seen:
                    counts[key] = counts.get(key, 0) + 1
                    seen.add(key)
        grand = math.fsum(totals.values())
        ranked = sorted(
            totals.items(), key=lambda kv: (-kv[1], kv[0][0], kv[0][1])
        )
        out = []
        for (service, stage), total in ranked[: max(0, top_k)]:
            out.append({
                "service": service,
                "stage": stage,
                "total_seconds": total,
                "share": total / grand if grand else 0.0,
                "requests": counts[(service, stage)],
            })
        return out

    def stage_totals(self) -> Dict[str, float]:
        """Attributed seconds per stage over every request."""
        out = {stage: 0.0 for stage in _STAGES}
        for request in self.requests:
            for stage, value in request.by_stage().items():
                out[stage] = out.get(stage, 0.0) + value
        return out

    def exact_sum_ok(self) -> bool:
        """Every request's stages sum bitwise-exactly to its makespan."""
        return all(r.total() == r.makespan for r in self.requests)


def _reconcile(durations: List[float], makespan: float) -> List[float]:
    """Fold the float-summation residual into one duration, exactly.

    The correction is applied to the element with the *finest* ulp (the
    smallest magnitude): its representable steps are finer than the
    rounding granularity of the total, so walking it ulp-by-ulp from the
    natural candidate ``makespan - fsum(others)`` always reaches a value
    whose correctly-rounded total (``math.fsum``) equals the makespan
    bitwise.  Folding the residual into the *largest* element — the
    obvious choice — fails when the exact sum lands on a round-to-even
    tie: a one-ulp nudge jumps over the target and oscillates.
    """
    if not durations or math.fsum(durations) == makespan:
        return durations
    j = min(range(len(durations)), key=lambda i: math.ulp(durations[i]))
    others = durations[:j] + durations[j + 1:]
    d = makespan - math.fsum(others)
    for _ in range(_MAX_RECONCILE):
        total = math.fsum(others + [d])
        if total == makespan:
            break
        d = math.nextafter(
            d, math.inf if total < makespan else -math.inf
        )
    durations[j] = d
    return durations


def _hop_stages(
    span: Mapping,
    ready_latency: Dict[Tuple[str, float], float],
) -> List[Tuple[str, str, float]]:
    """Split one task span [published, completed] into stages.

    The wait interval ``[published, started]`` decomposes into retry
    (bounded by the recorded wasted work), startup (when the dispatching
    consumer became ready at exactly the start instant, bounded by its
    startup latency), and plain queueing; ``[started, completed]`` is
    the successful service attempt.
    """
    service = span["service"]
    published = span["published"]
    started = span["started"]
    completed = span["t"]
    wait = started - published
    retry = min(max(span["wasted"], 0.0), max(wait, 0.0))
    startup = 0.0
    latency = ready_latency.get((service, started))
    if latency is not None:
        startup = min(latency, max(wait - retry, 0.0))
    queue = max(wait - retry - startup, 0.0)
    stages = []
    if retry > 0.0:
        stages.append((service, "retry", retry))
    if startup > 0.0:
        stages.append((service, "startup", startup))
    if queue > 0.0:
        stages.append((service, "queue", queue))
    stages.append((service, "service", completed - started))
    return stages


def analyze_trace(records: Sequence[Mapping]) -> CriticalPathReport:
    """Reconstruct per-request critical paths from loaded trace records.

    Requires a schema-v3 trace (``event.task_span`` present); requests
    without spans (e.g. traces from older runs) attribute their whole
    makespan to a single ``join`` stage.
    """
    arrivals: Dict[int, float] = {}
    spans: Dict[int, List[Mapping]] = {}
    completions: List[Mapping] = []
    ready_latency: Dict[Tuple[str, float], float] = {}
    for record in records:
        kind = record.get("kind")
        if kind == "event.arrival":
            arrivals[record["request_id"]] = record["t"]
        elif kind == "event.task_span":
            spans.setdefault(record["request_id"], []).append(record)
        elif kind == "event.workflow_complete":
            completions.append(record)
        elif kind == "event.consumer_ready":
            key = (record["service"], record["t"])
            if key not in ready_latency:
                ready_latency[key] = record["startup_latency"]

    report = CriticalPathReport()
    for complete in completions:
        rid = complete["request_id"]
        makespan = complete["response_time"]
        arrival = arrivals.get(rid, complete["t"] - makespan)
        attribution = RequestAttribution(
            request_id=rid,
            workflow=complete["workflow"],
            makespan=makespan,
        )
        chain = _walk_chain(spans.get(rid, ()), arrival, complete["t"])
        raw: List[Tuple[str, str, float]] = []
        for item in chain:
            if isinstance(item, tuple):  # explicit gap: (service, gap)
                service, gap = item
                attribution.exact_chain = False
                if gap > 0.0:
                    raw.append((service, "join", gap))
            else:
                attribution.hops += 1
                raw.extend(_hop_stages(item, ready_latency))
        if not raw:
            attribution.exact_chain = False
            raw.append(("", "join", makespan))
        durations = _reconcile([d for _, _, d in raw], makespan)
        attribution.stages = [
            Stage(service, stage, duration)
            for (service, stage, _), duration in zip(raw, durations)
        ]
        report.requests.append(attribution)
    return report


def _walk_chain(
    request_spans: Sequence[Mapping], arrival: float, completion: float
):
    """Backwards walk from the finishing task to the arrival.

    Yields spans (chain hops, oldest first) interleaved with
    ``(service, gap_seconds)`` tuples where exact trigger matching
    failed.  An empty span list yields nothing (caller books the whole
    makespan as a join gap).
    """
    if not request_spans:
        return []
    # The finishing task: completion time equals the workflow completion
    # (the invoker stamps both with the same loop.now).  Fall back to
    # the latest span on a mismatch.
    tail = None
    for span in request_spans:
        if span["t"] == completion:
            tail = span
    if tail is None:
        tail = max(request_spans, key=lambda s: s["t"])
    by_completion: Dict[float, Mapping] = {}
    for span in request_spans:
        # First occurrence wins on ties: deterministic in trace order.
        by_completion.setdefault(span["t"], span)
    chain: List = [tail]
    current = tail
    guard = len(request_spans) + 1
    while guard > 0:
        guard -= 1
        published = current["published"]
        if published == arrival:
            break  # entry task: chain is complete
        trigger = by_completion.get(published)
        if trigger is not None and trigger is not current:
            chain.append(trigger)
            current = trigger
            continue
        # Fallback: latest completion at or before the publish time.
        candidates = [
            s for s in request_spans
            if s["t"] <= published and s is not current and s not in chain
        ]
        if candidates:
            trigger = max(candidates, key=lambda s: s["t"])
            chain.append((current["service"], published - trigger["t"]))
            chain.append(trigger)
            current = trigger
        else:
            chain.append((current["service"], published - arrival))
            break
    chain.reverse()
    return chain


def analyze_run(path) -> CriticalPathReport:
    """Analyze a run directory (or trace file) offline."""
    from repro.telemetry.report import load_trace

    return analyze_trace(load_trace(path))


def critical_report_json(
    report: CriticalPathReport, top_k: int = 5
) -> str:
    """Canonical JSON document (sorted keys, compact, trailing newline)."""
    document = {
        "critical_version": CRITICAL_VERSION,
        "requests": [
            {
                "request_id": r.request_id,
                "workflow": r.workflow,
                "makespan": r.makespan,
                "hops": r.hops,
                "exact_chain": r.exact_chain,
                "stages": [
                    {
                        "service": s.service,
                        "stage": s.stage,
                        "duration": s.duration,
                    }
                    for s in r.stages
                ],
            }
            for r in report.requests
        ],
        "bottlenecks": report.bottlenecks(top_k),
        "stage_totals": report.stage_totals(),
        "exact_sum_ok": report.exact_sum_ok(),
    }
    return json.dumps(document, sort_keys=True, separators=(",", ":")) + "\n"


def render_critical(
    report: CriticalPathReport, top_k: int = 5
) -> str:
    """Human-readable bottleneck table (the ``repro critical`` CLI)."""
    lines: List[str] = []
    n = len(report.requests)
    lines.append(
        f"Critical-path attribution over {n} completed request"
        f"{'s' if n != 1 else ''}"
    )
    totals = report.stage_totals()
    grand = math.fsum(totals.values())
    if grand > 0:
        parts = ", ".join(
            f"{stage} {totals[stage] / grand * 100.0:.1f}%"
            for stage in _STAGES if totals[stage] > 0
        )
        lines.append(f"attributed time by stage: {parts}")
    lines.append("")
    lines.append(f"{'service':<16} {'stage':<8} {'seconds':>10} "
                 f"{'share':>7} {'requests':>9}")
    for row in report.bottlenecks(top_k):
        lines.append(
            f"{row['service'] or '(none)':<16} {row['stage']:<8} "
            f"{row['total_seconds']:>10.1f} "
            f"{row['share'] * 100.0:>6.1f}% {row['requests']:>9}"
        )
    exact = sum(1 for r in report.requests if r.exact_chain)
    lines.append("")
    lines.append(
        f"exact chains: {exact}/{n}   exact-sum invariant: "
        f"{'ok' if report.exact_sum_ok() else 'VIOLATED'}"
    )
    return "\n".join(lines)
