"""Run manifests: the who/what/when of one traced run.

A manifest is a small JSON document written next to the trace file.  It
records everything needed to reproduce or audit the run — the config
snapshot, the experiment seed, the package version and record-schema
version — plus bookkeeping that is *not* part of the deterministic
contract (wall-clock timestamp, record count, counter totals).

Determinism contract: two runs with the same seed and config produce
manifests that are identical except for the fields listed in
:data:`NONDETERMINISTIC_FIELDS`.  ``repro.telemetry`` tests enforce this.
"""

from __future__ import annotations

import dataclasses
import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Optional, Union

from repro.telemetry.records import SCHEMA_VERSION

__all__ = [
    "RunManifest",
    "NONDETERMINISTIC_FIELDS",
    "wall_time_now",
    "write_manifest",
    "read_manifest",
]

#: Manifest fields allowed to differ between reruns of the same seed.
NONDETERMINISTIC_FIELDS = frozenset({"wall_time"})

MANIFEST_FILENAME = "manifest.json"


def wall_time_now() -> float:
    """Wall-clock timestamp (epoch seconds) for manifest bookkeeping.

    One of the three sanctioned wall-clock reads in the package (the
    other two time phases in :mod:`repro.telemetry.profile`): the
    manifest documents *when a run happened*, which is inherently not
    simulation data.  Trace records themselves only ever carry
    simulation-clock timestamps, and everything measured by a real clock
    is excluded from the determinism contract.
    """
    return time.time()  # reprolint: disable=D102


@dataclass
class RunManifest:
    """Provenance and bookkeeping for one traced run."""

    #: Human-chosen run label (CLI: the output directory name).
    run_name: str
    #: The experiment seed every RngStream was derived from.
    seed: int
    #: Arbitrary config snapshot (e.g. ``dataclasses.asdict(SystemConfig)``).
    config: Dict = field(default_factory=dict)
    #: What produced the trace (e.g. "trace --dataset msd --allocator heft").
    command: str = ""
    package_version: str = ""
    schema_version: int = SCHEMA_VERSION
    #: Simulation time at the end of the run (event-loop seconds).
    sim_time_end: float = 0.0
    records_written: int = 0
    #: Tracer counter totals at the end of the run.
    counters: Dict[str, int] = field(default_factory=dict)
    #: Wall-clock epoch seconds; None when the caller wants a fully
    #: deterministic manifest.  Excluded from determinism comparisons.
    wall_time: Optional[float] = None

    def to_dict(self) -> Dict:
        """Plain-dict form (what gets serialised)."""
        return dataclasses.asdict(self)

    def deterministic_dict(self) -> Dict:
        """Manifest dict with the nondeterministic fields removed.

        This is the object two same-seed runs must agree on exactly.
        """
        data = self.to_dict()
        for key in NONDETERMINISTIC_FIELDS:
            data.pop(key, None)
        return data

    @classmethod
    def from_dict(cls, data: Dict) -> "RunManifest":
        """Rebuild a manifest from its serialised form."""
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = data.keys() - known
        if unknown:
            raise ValueError(f"unknown manifest fields: {sorted(unknown)}")
        return cls(**data)


def _manifest_path(path: Union[str, Path]) -> Path:
    path = Path(path)
    return path / MANIFEST_FILENAME if path.is_dir() else path


def write_manifest(path: Union[str, Path], manifest: RunManifest) -> Path:
    """Write ``manifest`` as pretty JSON; returns the file path.

    ``path`` may be a directory (the manifest lands at
    ``<path>/manifest.json``) or an explicit file path.
    """
    target = _manifest_path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(
        json.dumps(manifest.to_dict(), indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return target


def read_manifest(path: Union[str, Path]) -> RunManifest:
    """Load a manifest from a file or a run directory."""
    target = _manifest_path(path)
    return RunManifest.from_dict(json.loads(target.read_text(encoding="utf-8")))
