"""Fleet telemetry: merge per-cell traces from parallel runs.

The parallel runner (:mod:`repro.eval.parallel`) captures one trace per
grid cell under ``<telemetry_dir>/<experiment>/rep<k>/trace.jsonl``.
This module merges those captures in the parent process:

- :func:`discover_cells` finds every per-cell trace, keyed by its label
  (the cell directory's path relative to the fleet root), **sorted** —
  never in completion or worker order;
- :func:`merge_fleet` replays all cells, in label order, through one
  :class:`~repro.telemetry.metrics.MetricsSink`, yielding a merged
  registry snapshot plus a wall-time-free fleet manifest.

Because per-cell traces are a pure function of (root seed, label) and
the merge order is the sorted label order, the merged snapshot and
manifest are byte-identical for any worker count — ``workers=4``
reproduces ``workers=1`` exactly (pinned by tests/eval/test_fleet.py).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Tuple, Union

__all__ = [
    "FLEET_VERSION",
    "FLEET_MANIFEST_FILENAME",
    "FLEET_METRICS_FILENAME",
    "FLEET_EXPOSITION_FILENAME",
    "TRACE_FILENAME",
    "FleetMerge",
    "discover_cells",
    "merge_fleet",
    "write_fleet",
]

#: Bumped whenever the fleet manifest document changes shape.
FLEET_VERSION = 1

FLEET_MANIFEST_FILENAME = "fleet_manifest.json"
FLEET_METRICS_FILENAME = "fleet_metrics.json"
FLEET_EXPOSITION_FILENAME = "fleet_metrics.prom"

#: Per-cell trace file name the parallel runner writes.
TRACE_FILENAME = "trace.jsonl"


@dataclass
class FleetMerge:
    """The merged view over every cell of one parallel run."""

    #: The merged :class:`~repro.telemetry.metrics.MetricsSink`.
    sink: object
    #: Per-cell bookkeeping rows, in sorted label order.
    cells: List[Dict] = field(default_factory=list)

    @property
    def total_records(self) -> int:
        return sum(c["records"] for c in self.cells)

    def manifest(self) -> Dict:
        """Wall-time-free manifest: merge inputs and their extents."""
        return {
            "fleet_version": FLEET_VERSION,
            "cells": self.cells,
            "total_records": self.total_records,
        }

    def manifest_json(self) -> str:
        return json.dumps(
            self.manifest(), sort_keys=True, separators=(",", ":")
        ) + "\n"


def discover_cells(root: Union[str, Path]) -> List[Tuple[str, Path]]:
    """Find per-cell traces under a fleet directory, sorted by label.

    The label is the trace's parent directory relative to ``root`` in
    POSIX form (e.g. ``fig5/rep0``) — the same string the runner derives
    cell seeds from, so merge identity follows cell identity.
    """
    root = Path(root)
    cells = []
    for trace in root.glob(f"**/{TRACE_FILENAME}"):
        label = trace.parent.relative_to(root).as_posix()
        cells.append((label, trace))
    cells.sort(key=lambda item: item[0])
    return cells


def merge_fleet(root: Union[str, Path]) -> FleetMerge:
    """Replay every cell trace, in label order, into one metrics sink."""
    from repro.telemetry.metrics import MetricsSink
    from repro.telemetry.report import load_trace

    sink = MetricsSink()
    merge = FleetMerge(sink=sink)
    for label, trace_path in discover_cells(root):
        records = load_trace(trace_path)
        sim_time_end = 0.0
        for record in records:
            sink.write(dict(record))
            t = record.get("t")
            if t is not None:
                sim_time_end = float(t)
        merge.cells.append({
            "label": label,
            "records": len(records),
            "sim_time_end": sim_time_end,
        })
    return merge


def write_fleet(root: Union[str, Path], merge: FleetMerge) -> Path:
    """Write the merged snapshot, exposition and manifest into ``root``."""
    from repro.telemetry.metrics import snapshot_to_json

    root = Path(root)
    root.mkdir(parents=True, exist_ok=True)
    (root / FLEET_METRICS_FILENAME).write_text(
        snapshot_to_json(merge.sink.snapshot()), encoding="utf-8"
    )
    (root / FLEET_EXPOSITION_FILENAME).write_text(
        merge.sink.to_prometheus(), encoding="utf-8"
    )
    target = root / FLEET_MANIFEST_FILENAME
    target.write_text(merge.manifest_json(), encoding="utf-8")
    return target
