"""Trace sinks: where emitted records go.

A sink is anything with ``write(record)``/``flush()``/``close()``.  The
tracer never serialises records itself — the sink owns the encoding — so
an in-memory sink costs one list append per record and the no-op sink
costs nothing at all (the tracer short-circuits before building the
record dict; see :class:`repro.telemetry.tracer.Tracer`).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Union

__all__ = ["Sink", "NullSink", "MemorySink", "JsonlSink"]


class Sink:
    """Interface for trace-record consumers.

    Every sink is a context manager: ``with JsonlSink(path) as sink:``
    flushes and closes on exit — including exceptional exit, so a
    crashed run never loses buffered trace lines.
    """

    def write(self, record: Dict) -> None:
        """Consume one record (a flat JSON-serialisable dict)."""
        raise NotImplementedError

    def flush(self) -> None:
        """Push buffered records to their destination (default: no-op)."""

    def close(self) -> None:
        """Release resources; further writes are an error (default: no-op)."""

    def __enter__(self) -> "Sink":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class NullSink(Sink):
    """Discards everything.  The tracer treats it as "tracing disabled"."""

    def write(self, record: Dict) -> None:
        """Drop the record."""


class MemorySink(Sink):
    """Keeps records in a list — for tests and in-process analysis."""

    def __init__(self):
        self.records: List[Dict] = []

    def write(self, record: Dict) -> None:
        """Append the record to :attr:`records`."""
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)


class JsonlSink(Sink):
    """Writes one JSON object per line to a file (the trace format).

    Keys are written in insertion order (the envelope first), values with
    ``json.dumps`` defaults plus ``sort_keys=False`` — re-running the same
    seeded experiment byte-reproduces the file.
    """

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._file: Optional = self.path.open("w", encoding="utf-8")
        self.records_written = 0

    def write(self, record: Dict) -> None:
        """Serialise and append one record line."""
        if self._file is None:
            raise RuntimeError(f"sink for {self.path} is closed")
        self._file.write(json.dumps(record, separators=(",", ":")))
        self._file.write("\n")
        self.records_written += 1

    def flush(self) -> None:
        """Flush the underlying file buffer."""
        if self._file is not None:
            self._file.flush()

    def close(self) -> None:
        """Flush and close the file; idempotent."""
        if self._file is not None:
            self._file.close()
            self._file = None
