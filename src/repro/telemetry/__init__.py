"""Telemetry: deterministic tracing and metrics for the reproduction.

The observability layer of docs/OBSERVABILITY.md:

- :mod:`repro.telemetry.tracer` — the :class:`Tracer` every instrumented
  component emits through (simulation-clock timestamps, no-op by default),
- :mod:`repro.telemetry.sinks` — record destinations (null / in-memory /
  JSONL file),
- :mod:`repro.telemetry.records` — the record-kind registry and schemas,
- :mod:`repro.telemetry.manifest` — per-run provenance documents,
- :mod:`repro.telemetry.report` — trace file → summary tables (the
  ``repro report`` CLI),
- :mod:`repro.telemetry.metrics` — streaming aggregation into counters,
  gauges, EWMAs and histograms, with JSON and Prometheus exposition
  (the ``repro metrics`` CLI),
- :mod:`repro.telemetry.slo` — declarative SLO conformance: objectives
  from TOML/JSON evaluated against metrics snapshots (``repro slo``),
- :mod:`repro.telemetry.critical` — trace-driven critical-path latency
  attribution with an exact-sum invariant (``repro critical``),
- :mod:`repro.telemetry.fleet` — deterministic merge of per-cell traces
  from parallel runs (worker-count independent),
- :mod:`repro.telemetry.server` — stdlib Prometheus exposition endpoint
  (``repro metrics --serve``),
- :mod:`repro.telemetry.profile` — the hierarchical phase profiler
  (wall/CPU time per phase; outside the determinism contract).

Typical use (the tracer is a context manager — the sink is flushed and
closed on exit, including exceptional exit)::

    from repro.telemetry import JsonlSink, MetricsSink, Tracer

    with Tracer(MetricsSink(JsonlSink("runs/demo/trace.jsonl"))) as tracer:
        system = MicroserviceWorkflowSystem(ensemble, config, seed=0,
                                            tracer=tracer)
        ...
"""

from repro.telemetry.manifest import (
    NONDETERMINISTIC_FIELDS,
    RunManifest,
    read_manifest,
    wall_time_now,
    write_manifest,
)
from repro.telemetry.records import (
    ENVELOPE_FIELDS,
    RECORD_SCHEMAS,
    SCHEMA_VERSION,
    validate_record,
)
from repro.telemetry.metrics import (
    MetricsAggregator,
    MetricsRegistry,
    MetricsSink,
    SNAPSHOT_VERSION,
    aggregate_run,
    aggregate_trace,
    render_metrics,
    snapshot_to_json,
    write_metrics,
)
from repro.telemetry.critical import (
    CRITICAL_VERSION,
    CriticalPathReport,
    RequestAttribution,
    analyze_run,
    analyze_trace,
    critical_report_json,
    render_critical,
)
from repro.telemetry.fleet import (
    FLEET_VERSION,
    FleetMerge,
    discover_cells,
    merge_fleet,
    write_fleet,
)
from repro.telemetry.profile import (
    NULL_PROFILER,
    PROFILE_VERSION,
    PhaseProfiler,
    read_profile,
    render_profile,
    write_profile,
)
from repro.telemetry.report import (
    consumer_summary,
    load_trace,
    queue_summary,
    render_report,
    report_json,
    training_curves,
    utilization_summary,
)
from repro.telemetry.server import (
    PROMETHEUS_CONTENT_TYPE,
    MetricsServer,
    serve_metrics,
)
from repro.telemetry.sinks import JsonlSink, MemorySink, NullSink, Sink
from repro.telemetry.slo import (
    SLO_REPORT_VERSION,
    SloResult,
    SloSpec,
    SloVerdict,
    evaluate_slos,
    load_slo_specs,
    render_slo_result,
    slo_report_json,
    write_slo_report,
)
from repro.telemetry.tracer import NULL_TRACER, Tracer

__all__ = [
    "Tracer",
    "NULL_TRACER",
    "Sink",
    "NullSink",
    "MemorySink",
    "JsonlSink",
    "SCHEMA_VERSION",
    "ENVELOPE_FIELDS",
    "RECORD_SCHEMAS",
    "validate_record",
    "RunManifest",
    "NONDETERMINISTIC_FIELDS",
    "wall_time_now",
    "write_manifest",
    "read_manifest",
    "load_trace",
    "utilization_summary",
    "queue_summary",
    "consumer_summary",
    "training_curves",
    "report_json",
    "render_report",
    "SNAPSHOT_VERSION",
    "MetricsRegistry",
    "MetricsAggregator",
    "MetricsSink",
    "aggregate_trace",
    "aggregate_run",
    "snapshot_to_json",
    "render_metrics",
    "write_metrics",
    "PROFILE_VERSION",
    "PhaseProfiler",
    "NULL_PROFILER",
    "render_profile",
    "write_profile",
    "read_profile",
    "SLO_REPORT_VERSION",
    "SloSpec",
    "SloVerdict",
    "SloResult",
    "load_slo_specs",
    "evaluate_slos",
    "slo_report_json",
    "write_slo_report",
    "render_slo_result",
    "CRITICAL_VERSION",
    "CriticalPathReport",
    "RequestAttribution",
    "analyze_trace",
    "analyze_run",
    "critical_report_json",
    "render_critical",
    "FLEET_VERSION",
    "FleetMerge",
    "discover_cells",
    "merge_fleet",
    "write_fleet",
    "PROMETHEUS_CONTENT_TYPE",
    "MetricsServer",
    "serve_metrics",
]
