"""Telemetry: deterministic tracing and metrics for the reproduction.

The observability layer of docs/OBSERVABILITY.md:

- :mod:`repro.telemetry.tracer` — the :class:`Tracer` every instrumented
  component emits through (simulation-clock timestamps, no-op by default),
- :mod:`repro.telemetry.sinks` — record destinations (null / in-memory /
  JSONL file),
- :mod:`repro.telemetry.records` — the record-kind registry and schemas,
- :mod:`repro.telemetry.manifest` — per-run provenance documents,
- :mod:`repro.telemetry.report` — trace file → summary tables (the
  ``repro report`` CLI).

Typical use::

    from repro.telemetry import JsonlSink, Tracer

    tracer = Tracer(JsonlSink("runs/demo/trace.jsonl"))
    system = MicroserviceWorkflowSystem(ensemble, config, seed=0,
                                        tracer=tracer)
    ...
    tracer.close()
"""

from repro.telemetry.manifest import (
    NONDETERMINISTIC_FIELDS,
    RunManifest,
    read_manifest,
    wall_time_now,
    write_manifest,
)
from repro.telemetry.records import (
    ENVELOPE_FIELDS,
    RECORD_SCHEMAS,
    SCHEMA_VERSION,
    validate_record,
)
from repro.telemetry.report import (
    consumer_summary,
    load_trace,
    queue_summary,
    render_report,
    training_curves,
    utilization_summary,
)
from repro.telemetry.sinks import JsonlSink, MemorySink, NullSink, Sink
from repro.telemetry.tracer import NULL_TRACER, Tracer

__all__ = [
    "Tracer",
    "NULL_TRACER",
    "Sink",
    "NullSink",
    "MemorySink",
    "JsonlSink",
    "SCHEMA_VERSION",
    "ENVELOPE_FIELDS",
    "RECORD_SCHEMAS",
    "validate_record",
    "RunManifest",
    "NONDETERMINISTIC_FIELDS",
    "wall_time_now",
    "write_manifest",
    "read_manifest",
    "load_trace",
    "utilization_summary",
    "queue_summary",
    "consumer_summary",
    "training_curves",
    "render_report",
]
