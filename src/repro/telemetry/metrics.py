"""Streaming metrics aggregation: from trace records to live histograms.

The metrics engine turns the record stream a :class:`~repro.telemetry.tracer.Tracer`
emits into *aggregates* — labeled counters, gauges, EWMAs, and
fixed-bucket histograms with exact quantile readout (P50/P95/P99 of
response time, queue depth, startup latency, per-service WIP and
utilization, training-loss EWMAs).  It is fed two ways:

- **live** — a :class:`MetricsSink` composes with any other sink
  (``Tracer(MetricsSink(JsonlSink(...)))``) and aggregates every record
  as it is written,
- **offline** — :func:`aggregate_trace` replays an existing
  ``trace.jsonl`` through the *same* aggregator code path.

Because both paths consume the identical record dicts, the live and
post-hoc numbers are equal **by construction** — the determinism tests
pin byte-identical JSON snapshots.  Nothing in this module reads a
clock or an RNG: every aggregate is a pure function of the record
stream, so same-seed runs produce identical snapshots.

Snapshots export two ways: a versioned JSON document
(:meth:`MetricsRegistry.snapshot` + :func:`snapshot_to_json`) and the
Prometheus text exposition format (:meth:`MetricsRegistry.to_prometheus`).
"""

from __future__ import annotations

import json
from bisect import bisect_left, insort
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from repro.telemetry.sinks import Sink

__all__ = [
    "SNAPSHOT_VERSION",
    "Counter",
    "Gauge",
    "Ewma",
    "Histogram",
    "MetricsRegistry",
    "MetricsAggregator",
    "MetricsSink",
    "aggregate_trace",
    "aggregate_run",
    "snapshot_to_json",
    "render_metrics",
    "write_metrics",
    "RESPONSE_TIME_BUCKETS",
    "STARTUP_LATENCY_BUCKETS",
    "QUEUE_DEPTH_BUCKETS",
    "SERVICE_TIME_BUCKETS",
    "QUEUE_WAIT_BUCKETS",
    "METRICS_FILENAME",
    "EXPOSITION_FILENAME",
]

#: Bumped whenever the JSON snapshot document changes shape; consumers
#: (CI trend tooling, dashboards) key on it the way trace readers key on
#: the record SCHEMA_VERSION.
SNAPSHOT_VERSION = 1

METRICS_FILENAME = "metrics.json"
EXPOSITION_FILENAME = "metrics.prom"

#: Default bucket upper bounds (seconds) for workflow response times —
#: spans background-load completions (tens of seconds) through burst
#: backlogs (tens of minutes).  +Inf is implicit.
RESPONSE_TIME_BUCKETS: Tuple[float, ...] = (
    15.0, 30.0, 60.0, 120.0, 240.0, 480.0, 900.0, 1800.0, 3600.0,
)

#: Container start-up latency buckets (paper: uniform 5-10 s).
STARTUP_LATENCY_BUCKETS: Tuple[float, ...] = (
    2.0, 4.0, 6.0, 8.0, 10.0, 15.0, 30.0,
)

#: Ready-queue depth at publish time.
QUEUE_DEPTH_BUCKETS: Tuple[float, ...] = (
    0.0, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0, 1000.0,
)

#: Per-task service time buckets (MSD/LIGO means are seconds to ~1 min).
SERVICE_TIME_BUCKETS: Tuple[float, ...] = (
    1.0, 2.0, 5.0, 10.0, 20.0, 40.0, 80.0, 160.0,
)

#: Queue-wait (publish to successful-attempt start) buckets — near zero
#: with idle consumers, minutes under burst backlogs.
QUEUE_WAIT_BUCKETS: Tuple[float, ...] = (
    1.0, 2.0, 5.0, 10.0, 30.0, 60.0, 120.0, 300.0, 900.0,
)

LabelValue = Tuple[str, ...]


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("value",)
    kind = "counter"

    def __init__(self):
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter increments must be >= 0, got {amount}")
        self.value += amount

    def state(self) -> Dict:
        return {"value": self.value}


class Gauge:
    """Last-observed value plus running extremes and mean."""

    __slots__ = ("value", "min", "max", "total", "observations")
    kind = "gauge"

    def __init__(self):
        self.value = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self.total = 0.0
        self.observations = 0

    def set(self, value: float) -> None:
        value = float(value)
        self.value = value
        self.min = min(self.min, value)
        self.max = max(self.max, value)
        self.total += value
        self.observations += 1

    @property
    def mean(self) -> float:
        return self.total / self.observations if self.observations else 0.0

    def state(self) -> Dict:
        return {
            "value": self.value,
            "min": self.min if self.observations else 0.0,
            "max": self.max if self.observations else 0.0,
            "mean": self.mean,
            "observations": self.observations,
        }


class Ewma:
    """Exponentially weighted moving average (training-loss smoothing)."""

    __slots__ = ("alpha", "value", "last", "observations")
    kind = "ewma"

    def __init__(self, alpha: float = 0.3):
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        self.alpha = alpha
        self.value = 0.0
        self.last = 0.0
        self.observations = 0

    def update(self, value: float) -> None:
        value = float(value)
        self.last = value
        if self.observations == 0:
            self.value = value
        else:
            self.value = self.alpha * value + (1.0 - self.alpha) * self.value
        self.observations += 1

    def state(self) -> Dict:
        return {
            "value": self.value,
            "last": self.last,
            "alpha": self.alpha,
            "observations": self.observations,
        }


class Histogram:
    """Fixed-bucket histogram with exact quantile readout.

    Bucket counts (cumulative, Prometheus-style ``le`` semantics with an
    implicit +Inf bucket) serve the exposition format; alongside them the
    histogram keeps a sorted copy of every observation, so
    :meth:`quantile` is *exact*, not a bucket interpolation.  At
    simulation scale (at most ~10^5 observations per run) the memory cost
    is negligible; pass ``track_values=False`` to fall back to
    bucket-boundary quantile estimates for unbounded streams.
    """

    __slots__ = ("buckets", "counts", "sum", "count", "_values")
    kind = "histogram"

    def __init__(
        self, buckets: Sequence[float], track_values: bool = True
    ):
        buckets = tuple(float(b) for b in buckets)
        if not buckets:
            raise ValueError("histogram needs at least one bucket bound")
        if list(buckets) != sorted(buckets):
            raise ValueError(f"bucket bounds must be sorted: {buckets}")
        if len(set(buckets)) != len(buckets):
            raise ValueError(f"bucket bounds must be unique: {buckets}")
        self.buckets = buckets
        #: Per-bucket (non-cumulative) counts; the +Inf bucket is last.
        self.counts = [0] * (len(buckets) + 1)
        self.sum = 0.0
        self.count = 0
        self._values: Optional[List[float]] = [] if track_values else None

    def observe(self, value: float) -> None:
        value = float(value)
        self.counts[bisect_left(self.buckets, value)] += 1
        self.sum += value
        self.count += 1
        if self._values is not None:
            insort(self._values, value)

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """The q-quantile (q in [0, 1]) of everything observed so far.

        Exact (nearest-rank on the retained values) when ``track_values``
        is on; otherwise the upper bound of the bucket containing the
        rank (conservative for tail quantiles).  Returns 0.0 before any
        observation.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        rank = min(int(q * self.count), self.count - 1)
        if self._values is not None:
            return self._values[rank]
        remaining = rank + 1
        for i, bucket_count in enumerate(self.counts):
            remaining -= bucket_count
            if remaining <= 0:
                if i < len(self.buckets):
                    return self.buckets[i]
                return self.buckets[-1]  # +Inf bucket: clamp to last bound
        return self.buckets[-1]

    def cumulative_counts(self) -> List[int]:
        """Cumulative ``le`` counts, one per bound plus the +Inf bucket."""
        out: List[int] = []
        running = 0
        for c in self.counts:
            running += c
            out.append(running)
        return out

    def state(self) -> Dict:
        return {
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "sum": self.sum,
            "count": self.count,
            "mean": self.mean,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }


Metric = Union[Counter, Gauge, Ewma, Histogram]


class _Family:
    """One named metric family: a constructor plus labeled children."""

    __slots__ = ("name", "help", "label_names", "factory", "children", "kind")

    def __init__(
        self,
        name: str,
        help_text: str,
        label_names: Tuple[str, ...],
        factory: Callable[[], Metric],
    ):
        self.name = name
        self.help = help_text
        self.label_names = label_names
        self.factory = factory
        self.children: Dict[LabelValue, Metric] = {}
        self.kind = factory().kind

    def labels(self, *values: str) -> Metric:
        if len(values) != len(self.label_names):
            raise ValueError(
                f"{self.name}: expected labels {self.label_names}, "
                f"got {values!r}"
            )
        key = tuple(str(v) for v in values)
        child = self.children.get(key)
        if child is None:
            child = self.factory()
            self.children[key] = child
        return child


def _valid_metric_name(name: str) -> bool:
    return bool(name) and all(
        ch.isalnum() or ch == "_" for ch in name
    ) and not name[0].isdigit()


class MetricsRegistry:
    """Holds metric families and renders snapshots.

    Family and label names follow Prometheus conventions
    (``[a-zA-Z_][a-zA-Z0-9_]*``) so the exposition output is valid as-is.
    """

    def __init__(self):
        self._families: Dict[str, _Family] = {}

    def _register(
        self,
        name: str,
        help_text: str,
        label_names: Sequence[str],
        factory: Callable[[], Metric],
    ) -> _Family:
        if not _valid_metric_name(name):
            raise ValueError(f"invalid metric name {name!r}")
        for label in label_names:
            if not _valid_metric_name(label):
                raise ValueError(f"invalid label name {label!r}")
        family = self._families.get(name)
        if family is None:
            family = _Family(name, help_text, tuple(label_names), factory)
            self._families[name] = family
        return family

    # Family constructors --------------------------------------------------
    def counter(
        self, name: str, help_text: str = "", labels: Sequence[str] = ()
    ) -> _Family:
        return self._register(name, help_text, labels, Counter)

    def gauge(
        self, name: str, help_text: str = "", labels: Sequence[str] = ()
    ) -> _Family:
        return self._register(name, help_text, labels, Gauge)

    def ewma(
        self,
        name: str,
        help_text: str = "",
        labels: Sequence[str] = (),
        alpha: float = 0.3,
    ) -> _Family:
        return self._register(name, help_text, labels, lambda: Ewma(alpha))

    def histogram(
        self,
        name: str,
        buckets: Sequence[float],
        help_text: str = "",
        labels: Sequence[str] = (),
        track_values: bool = True,
    ) -> _Family:
        bounds = tuple(buckets)
        return self._register(
            name, help_text, labels,
            lambda: Histogram(bounds, track_values=track_values),
        )

    # Export ---------------------------------------------------------------
    def snapshot(self) -> Dict:
        """The versioned JSON-serialisable snapshot document.

        Families and label sets are emitted in sorted order, so the
        document — and hence its serialised bytes — is a pure function of
        the aggregate state, independent of observation order effects on
        dict insertion.
        """
        families: Dict[str, Dict] = {}
        for name in sorted(self._families):
            family = self._families[name]
            series = []
            for key in sorted(family.children):
                metric = family.children[key]
                series.append({
                    "labels": dict(zip(family.label_names, key)),
                    **metric.state(),
                })
            families[name] = {
                "kind": family.kind,
                "help": family.help,
                "label_names": list(family.label_names),
                "series": series,
            }
        return {"snapshot_version": SNAPSHOT_VERSION, "families": families}

    def to_prometheus(self) -> str:
        """Prometheus text exposition format (version 0.0.4)."""
        lines: List[str] = []
        for name in sorted(self._families):
            family = self._families[name]
            prom_type = {
                "counter": "counter",
                "gauge": "gauge",
                "ewma": "gauge",
                "histogram": "histogram",
            }[family.kind]
            if family.help:
                lines.append(f"# HELP {name} {family.help}")
            lines.append(f"# TYPE {name} {prom_type}")
            for key in sorted(family.children):
                metric = family.children[key]
                labels = _format_labels(family.label_names, key)
                if isinstance(metric, Histogram):
                    cumulative = metric.cumulative_counts()
                    for bound, count in zip(metric.buckets, cumulative):
                        le = _format_labels(
                            family.label_names + ("le",),
                            key + (_format_value(bound),),
                        )
                        lines.append(f"{name}_bucket{le} {count}")
                    inf = _format_labels(
                        family.label_names + ("le",), key + ("+Inf",)
                    )
                    lines.append(f"{name}_bucket{inf} {metric.count}")
                    lines.append(
                        f"{name}_sum{labels} {_format_value(metric.sum)}"
                    )
                    lines.append(f"{name}_count{labels} {metric.count}")
                else:
                    lines.append(
                        f"{name}{labels} {_format_value(metric.value)}"
                    )
        return "\n".join(lines) + "\n" if lines else ""


def _format_value(value: float) -> str:
    """Shortest-round-trip float formatting (matches json.dumps output)."""
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _format_labels(names: Sequence[str], values: Sequence[str]) -> str:
    if not names:
        return ""
    pairs = ",".join(
        f'{n}="{_escape_label(v)}"' for n, v in zip(names, values)
    )
    return "{" + pairs + "}"


def _escape_label(value: str) -> str:
    return (
        str(value)
        .replace("\\", r"\\")
        .replace('"', r"\"")
        .replace("\n", r"\n")
    )


class MetricsAggregator:
    """Streams trace records into the registry — the metric catalogue.

    One aggregator instance serves both the live path (wrapped in a
    :class:`MetricsSink`) and the offline path (:func:`aggregate_trace`);
    the dispatch below is the single definition of how raw records map to
    aggregates.
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None):
        self.registry = registry or MetricsRegistry()
        r = self.registry
        self._records = r.counter(
            "repro_records_total", "trace records seen by kind", ("kind",)
        )
        self._arrivals = r.counter(
            "repro_arrivals_total", "workflow requests submitted",
            ("workflow",),
        )
        self._completions = r.counter(
            "repro_completions_total", "workflow requests completed",
            ("workflow",),
        )
        self._response = r.histogram(
            "repro_response_time_seconds", RESPONSE_TIME_BUCKETS,
            "workflow response time (submission to completion)",
            ("workflow",),
        )
        self._publishes = r.counter(
            "repro_publishes_total", "task requests published", ("queue",)
        )
        self._redeliveries = r.counter(
            "repro_redeliveries_total", "nacked requests redelivered",
            ("queue",),
        )
        self._queue_depth = r.histogram(
            "repro_queue_depth", QUEUE_DEPTH_BUCKETS,
            "ready-queue depth observed at publish", ("queue",),
        )
        self._startup = r.histogram(
            "repro_startup_latency_seconds", STARTUP_LATENCY_BUCKETS,
            "container creation-to-first-consume latency", ("service",),
        )
        self._service_time = r.histogram(
            "repro_service_time_seconds", SERVICE_TIME_BUCKETS,
            "per-task processing time", ("service",),
        )
        self._queue_wait = r.histogram(
            "repro_queue_wait_seconds", QUEUE_WAIT_BUCKETS,
            "publish-to-processing-start wait per task", ("service",),
        )
        self._task_retries = r.counter(
            "repro_task_retries_total",
            "extra delivery attempts (redeliveries) per completed task",
            ("service",),
        )
        self._wasted_work = r.counter(
            "repro_wasted_work_seconds",
            "processing time lost to interrupted attempts", ("service",),
        )
        self._consumer_events = r.counter(
            "repro_consumer_events_total",
            "container lifecycle transitions", ("service", "event"),
        )
        self._faults = r.counter(
            "repro_faults_total", "injected faults", ("fault",)
        )
        self._node_used = r.gauge(
            "repro_node_slots_used", "cluster slots in use", ("node",)
        )
        self._collect_episodes = r.counter(
            "repro_collect_episodes_total",
            "distributed-collection episodes merged", ("lane",),
        )
        self._collect_steps = r.counter(
            "repro_collect_steps_total",
            "real-environment transitions collected", ("lane",),
        )
        self._collect_return = r.gauge(
            "repro_collect_episode_return",
            "return of the last merged collection episode", ("lane",),
        )
        self._windows = r.counter(
            "repro_windows_total", "control windows observed"
        )
        self._window_reward = r.gauge(
            "repro_window_reward", "Eq. (1) reward at the window boundary"
        )
        self._wip = r.gauge(
            "repro_wip", "work-in-progress at the window boundary",
            ("service",),
        )
        self._allocation = r.gauge(
            "repro_allocation", "consumers allocated at the window boundary",
            ("service",),
        )
        self._busy = r.gauge(
            "repro_busy_consumers", "busy consumers at the window boundary",
            ("service",),
        )
        self._utilization = r.gauge(
            "repro_utilization",
            "busy / allocated at the window boundary", ("service",),
        )
        self._queue_ready = r.gauge(
            "repro_queue_ready", "ready-queue depth at the window boundary",
            ("service",),
        )
        self._sim_time = r.gauge(
            "repro_sim_time_seconds", "simulation clock at the last record"
        )
        self._training_last = r.gauge(
            "repro_training_metric", "last value per training metric",
            ("name",),
        )
        self._training_ewma = r.ewma(
            "repro_training_metric_ewma",
            "EWMA per training metric (loss smoothing)", ("name",),
        )

    # Dispatch -------------------------------------------------------------
    def observe(self, record: Mapping) -> None:
        """Fold one trace record into the aggregates."""
        kind = record.get("kind")
        if not isinstance(kind, str):
            return
        self._records.labels(kind).inc()
        t = record.get("t")
        if t is not None:
            self._sim_time.labels().set(float(t))
        handler = self._HANDLERS.get(kind)
        if handler is not None:
            handler(self, record)

    def observe_many(self, records: Iterable[Mapping]) -> None:
        for record in records:
            self.observe(record)

    def _on_arrival(self, record: Mapping) -> None:
        self._arrivals.labels(record["workflow"]).inc()

    def _on_workflow_complete(self, record: Mapping) -> None:
        workflow = record["workflow"]
        self._completions.labels(workflow).inc()
        self._response.labels(workflow).observe(record["response_time"])

    def _on_publish(self, record: Mapping) -> None:
        queue = record["queue"]
        self._publishes.labels(queue).inc()
        self._queue_depth.labels(queue).observe(record["depth"])

    def _on_redeliver(self, record: Mapping) -> None:
        self._redeliveries.labels(record["queue"]).inc()

    def _on_consumer_start(self, record: Mapping) -> None:
        self._consumer_events.labels(record["service"], "start").inc()

    def _on_consumer_ready(self, record: Mapping) -> None:
        service = record["service"]
        self._consumer_events.labels(service, "ready").inc()
        self._startup.labels(service).observe(record["startup_latency"])

    def _on_consumer_stop(self, record: Mapping) -> None:
        self._consumer_events.labels(
            record["service"], f"stop_{record['mode']}"
        ).inc()

    def _on_task_complete(self, record: Mapping) -> None:
        self._service_time.labels(record["service"]).observe(
            record["service_time"]
        )

    def _on_task_span(self, record: Mapping) -> None:
        service = record["service"]
        self._queue_wait.labels(service).observe(
            record["started"] - record["published"]
        )
        retries = record["deliveries"] - 1
        if retries > 0:
            self._task_retries.labels(service).inc(retries)
        wasted = record["wasted"]
        if wasted > 0:
            self._wasted_work.labels(service).inc(wasted)

    def _on_fault(self, record: Mapping) -> None:
        self._faults.labels(record["fault"]).inc()

    def _on_placement(self, record: Mapping) -> None:
        self._node_used.labels(str(record["node"])).set(record["used"])

    def _on_window(self, record: Mapping) -> None:
        self._windows.labels().inc()
        self._window_reward.labels().set(record["reward"])
        allocation = record["allocation"]
        busy = record["busy"]
        for service, wip in record["wip"].items():
            self._wip.labels(service).set(wip)
        for service, count in allocation.items():
            self._allocation.labels(service).set(count)
        for service, count in busy.items():
            self._busy.labels(service).set(count)
            allocated = allocation.get(service, 0)
            if allocated:
                self._utilization.labels(service).set(count / allocated)
        for service, depth in record["queue_ready"].items():
            self._queue_ready.labels(service).set(depth)

    def _on_collect(self, record: Mapping) -> None:
        lane = f"lane{record['lane']}"
        self._collect_episodes.labels(lane).inc()
        self._collect_steps.labels(lane).inc(record["steps"])
        self._collect_return.labels(lane).set(record["reward"])

    def _on_metric(self, record: Mapping) -> None:
        name = record["name"]
        value = record["value"]
        self._training_last.labels(name).set(value)
        self._training_ewma.labels(name).update(value)

    _HANDLERS: Dict[str, Callable] = {
        "event.arrival": _on_arrival,
        "event.workflow_complete": _on_workflow_complete,
        "event.publish": _on_publish,
        "event.redeliver": _on_redeliver,
        "event.consumer_start": _on_consumer_start,
        "event.consumer_ready": _on_consumer_ready,
        "event.consumer_stop": _on_consumer_stop,
        "event.task_complete": _on_task_complete,
        "event.task_span": _on_task_span,
        "event.fault": _on_fault,
        "event.placement": _on_placement,
        "event.release": _on_placement,
        "span.window": _on_window,
        "span.collect": _on_collect,
        "metric": _on_metric,
    }

    # Export ---------------------------------------------------------------
    def snapshot(self) -> Dict:
        return self.registry.snapshot()

    def to_prometheus(self) -> str:
        return self.registry.to_prometheus()


class MetricsSink(Sink):
    """A sink that aggregates every record, then forwards it downstream.

    This is the live half of the engine: wrap any real sink
    (``MetricsSink(JsonlSink(path))``) — or nothing at all, for
    metrics-only runs — and hand the result to a :class:`Tracer`.  The
    per-window snapshot hook rides on the ``span.window`` record that
    ``system.run_window()`` emits at every window boundary: deriving the
    hook from the record stream (rather than a callback on the system)
    is what keeps offline replay identical to the live path.
    """

    def __init__(
        self,
        downstream: Optional[Sink] = None,
        aggregator: Optional[MetricsAggregator] = None,
        snapshot_every: int = 1,
        window_summary: Optional[Callable[[MetricsAggregator], Dict]] = None,
    ):
        if snapshot_every < 0:
            raise ValueError(
                f"snapshot_every must be >= 0, got {snapshot_every}"
            )
        self.downstream = downstream
        self.aggregator = aggregator or MetricsAggregator()
        #: Take a per-window snapshot row every N windows (0 disables).
        self.snapshot_every = snapshot_every
        self._window_summary = window_summary or window_summary_row
        #: One compact row per snapshotted window (see
        #: :func:`window_summary_row`).
        self.window_snapshots: List[Dict] = []
        self._windows_seen = 0

    def write(self, record: Dict) -> None:
        self.aggregator.observe(record)
        if record.get("kind") == "span.window":
            self._windows_seen += 1
            if (
                self.snapshot_every
                and self._windows_seen % self.snapshot_every == 0
            ):
                row = self._window_summary(self.aggregator)
                row["window"] = record.get("index")
                self.window_snapshots.append(row)
        if self.downstream is not None:
            self.downstream.write(record)

    def flush(self) -> None:
        if self.downstream is not None:
            self.downstream.flush()

    def close(self) -> None:
        if self.downstream is not None:
            self.downstream.close()

    def snapshot(self) -> Dict:
        """Full registry snapshot plus the per-window series."""
        document = self.aggregator.snapshot()
        document["window_series"] = list(self.window_snapshots)
        return document

    def to_prometheus(self) -> str:
        return self.aggregator.to_prometheus()


def window_summary_row(aggregator: MetricsAggregator) -> Dict:
    """The compact per-window snapshot row (cumulative aggregates).

    Deliberately small — one dict per control window — so long runs stay
    cheap while still recording a quantile *trajectory* over time rather
    than only the end-of-run distribution.
    """
    registry = aggregator.registry
    row: Dict = {}
    response = registry._families["repro_response_time_seconds"]
    completed = 0
    p50 = p95 = p99 = 0.0
    merged: List[float] = []
    for hist in response.children.values():
        completed += hist.count
        if hist._values:
            merged.extend(hist._values)
    if merged:
        merged.sort()
        p50 = merged[min(int(0.50 * len(merged)), len(merged) - 1)]
        p95 = merged[min(int(0.95 * len(merged)), len(merged) - 1)]
        p99 = merged[min(int(0.99 * len(merged)), len(merged) - 1)]
    row["completions"] = completed
    row["response_p50"] = p50
    row["response_p95"] = p95
    row["response_p99"] = p99
    wip = registry._families["repro_wip"]
    row["wip_total"] = sum(g.value for g in wip.children.values())
    row["reward"] = aggregator._window_reward.labels().value
    return row


def aggregate_trace(records: Iterable[Mapping]) -> MetricsSink:
    """Replay loaded trace records through a fresh metrics sink.

    Returns the :class:`MetricsSink` (with no downstream) so callers get
    both the aggregates and the per-window series — identical to what a
    live run with the same records would have produced.
    """
    sink = MetricsSink()
    for record in records:
        sink.write(dict(record))
    return sink


def aggregate_run(path: Union[str, Path]) -> MetricsSink:
    """Aggregate a run directory (or trace file) offline."""
    from repro.telemetry.report import load_trace

    return aggregate_trace(load_trace(path))


def render_metrics(snapshot: Mapping) -> str:
    """Human-readable rendering of a snapshot document.

    One line per labeled series: counters and EWMAs show the value,
    gauges add min/mean/max, histograms show count, mean and the three
    pinned quantiles.  This is what ``repro metrics`` prints by default.
    """
    lines: List[str] = []
    for name, family in snapshot.get("families", {}).items():
        kind = family["kind"]
        header = f"{name} ({kind})"
        if family.get("help"):
            header += f" — {family['help']}"
        lines.append(header)
        for series in family["series"]:
            labels = series.get("labels", {})
            label_text = (
                "{" + ", ".join(
                    f"{k}={v}" for k, v in sorted(labels.items())
                ) + "}"
                if labels else "(no labels)"
            )
            if kind == "histogram":
                body = (
                    f"count={series['count']} mean={series['mean']:.3f} "
                    f"p50={series['p50']:.3f} p95={series['p95']:.3f} "
                    f"p99={series['p99']:.3f}"
                )
            elif kind == "gauge":
                body = (
                    f"value={series['value']:.6g} min={series['min']:.6g} "
                    f"mean={series['mean']:.6g} max={series['max']:.6g} "
                    f"n={series['observations']}"
                )
            elif kind == "ewma":
                body = (
                    f"ewma={series['value']:.6g} last={series['last']:.6g} "
                    f"n={series['observations']}"
                )
            else:
                body = f"value={series['value']:.6g}"
            lines.append(f"  {label_text:<40} {body}")
        lines.append("")
    if not lines:
        return "(no metric families)"
    return "\n".join(lines).rstrip("\n")


def snapshot_to_json(snapshot: Mapping) -> str:
    """Canonical JSON serialisation of a snapshot document.

    Sorted keys and compact separators: two equal snapshots serialise to
    identical bytes, which is what the determinism tests compare.
    """
    return json.dumps(snapshot, sort_keys=True, separators=(",", ":")) + "\n"


def write_metrics(
    outdir: Union[str, Path],
    sink: MetricsSink,
    prometheus: bool = True,
) -> Path:
    """Write ``metrics.json`` (and ``metrics.prom``) into a run directory."""
    outdir = Path(outdir)
    outdir.mkdir(parents=True, exist_ok=True)
    target = outdir / METRICS_FILENAME
    target.write_text(snapshot_to_json(sink.snapshot()), encoding="utf-8")
    if prometheus:
        (outdir / EXPOSITION_FILENAME).write_text(
            sink.to_prometheus(), encoding="utf-8"
        )
    return target
