"""Trace analysis: turn a JSONL trace into summary tables.

Consumes the records emitted by the instrumented simulator and training
loop (schemas in :mod:`repro.telemetry.records`) and produces the three
summaries the ``repro report`` CLI prints:

- **per-microservice utilization** — mean WIP, allocation, busy
  consumers, busy/allocated utilization over all windows,
- **queue depth** — mean/peak ready depth, publishes, redeliveries,
- **training curves** — one row per iteration of Algorithm 2 (model
  loss, eval reward, parameter-noise sigma, ...), the textual Fig. 6.

All functions take a list of record dicts, so they work on a loaded
trace file, a :class:`~repro.telemetry.sinks.MemorySink`, or any slice.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.telemetry.records import validate_record

__all__ = [
    "load_trace",
    "utilization_summary",
    "queue_summary",
    "consumer_summary",
    "training_curves",
    "report_json",
    "render_report",
]


def load_trace(
    path: Union[str, Path], validate: bool = False
) -> List[Dict]:
    """Read a JSONL trace file (or a run directory holding ``trace.jsonl``).

    With ``validate=True`` every record is checked against its registered
    schema — useful in tests and when ingesting traces from older runs.
    """
    path = Path(path)
    if path.is_dir():
        path = path / "trace.jsonl"
    records: List[Dict] = []
    with path.open("r", encoding="utf-8") as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{path}:{line_no}: invalid JSON ({exc})"
                ) from exc
            if validate:
                validate_record(record)
            records.append(record)
    return records


def _windows(records: Sequence[Dict]) -> List[Dict]:
    return [r for r in records if r.get("kind") == "span.window"]


def _mean(values: Sequence[float]) -> float:
    return sum(values) / len(values) if values else 0.0


def utilization_summary(records: Sequence[Dict]) -> Dict[str, Dict[str, float]]:
    """Per-microservice means over all windows.

    Returns ``{service: {mean_wip, mean_allocation, mean_busy,
    utilization}}`` where utilization is busy consumers divided by
    allocated consumers, averaged over windows with a non-zero
    allocation.
    """
    windows = _windows(records)
    services: List[str] = []
    for window in windows:
        for name in window["wip"]:
            if name not in services:
                services.append(name)
    summary: Dict[str, Dict[str, float]] = {}
    for name in services:
        wip = [float(w["wip"].get(name, 0)) for w in windows]
        alloc = [float(w["allocation"].get(name, 0)) for w in windows]
        busy = [float(w["busy"].get(name, 0)) for w in windows]
        ratios = [b / a for b, a in zip(busy, alloc) if a > 0]
        summary[name] = {
            "mean_wip": _mean(wip),
            "mean_allocation": _mean(alloc),
            "mean_busy": _mean(busy),
            "utilization": _mean(ratios),
        }
    return summary


def queue_summary(records: Sequence[Dict]) -> Dict[str, Dict[str, float]]:
    """Per-queue depth statistics and publish/redeliver totals."""
    windows = _windows(records)
    summary: Dict[str, Dict[str, float]] = {}
    for window in windows:
        for name, depth in window["queue_ready"].items():
            stats = summary.setdefault(
                name,
                {"mean_depth": 0.0, "peak_depth": 0.0,
                 "publishes": 0, "redeliveries": 0, "_depths": []},
            )
            stats["_depths"].append(float(depth))
    for record in records:
        kind = record.get("kind")
        if kind == "event.publish":
            stats = summary.setdefault(
                record["queue"],
                {"mean_depth": 0.0, "peak_depth": 0.0,
                 "publishes": 0, "redeliveries": 0, "_depths": []},
            )
            stats["publishes"] += 1
        elif kind == "event.redeliver":
            stats = summary.setdefault(
                record["queue"],
                {"mean_depth": 0.0, "peak_depth": 0.0,
                 "publishes": 0, "redeliveries": 0, "_depths": []},
            )
            stats["redeliveries"] += 1
    for stats in summary.values():
        depths = stats.pop("_depths")
        stats["mean_depth"] = _mean(depths)
        stats["peak_depth"] = max(depths) if depths else 0.0
    return summary


def consumer_summary(records: Sequence[Dict]) -> Dict[str, Dict[str, float]]:
    """Per-microservice container-lifecycle statistics.

    ``mean_startup_latency`` is measured over ``event.consumer_ready``
    records — the observed creation-to-first-consume delay the paper
    reports as 5–10 s on Kubernetes.
    """
    summary: Dict[str, Dict[str, float]] = {}
    latencies: Dict[str, List[float]] = {}
    for record in records:
        kind = record.get("kind")
        if kind not in (
            "event.consumer_start", "event.consumer_ready",
            "event.consumer_stop",
        ):
            continue
        name = record["service"]
        stats = summary.setdefault(
            name, {"started": 0, "ready": 0, "stopped": 0,
                   "mean_startup_latency": 0.0},
        )
        if kind == "event.consumer_start":
            stats["started"] += 1
        elif kind == "event.consumer_ready":
            stats["ready"] += 1
            latencies.setdefault(name, []).append(
                float(record["startup_latency"])
            )
        else:
            stats["stopped"] += 1
    for name, stats in summary.items():
        stats["mean_startup_latency"] = _mean(latencies.get(name, []))
    return summary


def training_curves(records: Sequence[Dict]) -> Dict[str, Dict[int, float]]:
    """Metric series keyed by name then step.

    Only metrics with an integer ``step`` participate (per-iteration and
    per-epoch scalars); unstepped metrics are skipped.  Later emissions
    for the same (name, step) overwrite earlier ones.
    """
    curves: Dict[str, Dict[int, float]] = {}
    for record in records:
        if record.get("kind") != "metric" or record.get("step") is None:
            continue
        curves.setdefault(record["name"], {})[int(record["step"])] = float(
            record["value"]
        )
    return curves


def report_json(records: Sequence[Dict]) -> Dict:
    """Machine-readable form of the report (``repro report --json``).

    The same four summaries :func:`render_report` prints as tables, plus
    the record/window totals, as one JSON-serialisable document.  Metric
    steps become string keys (JSON objects cannot have int keys) but keep
    their numeric order when sorted by ``int(step)``.
    """
    windows = _windows(records)
    curves = training_curves(records)
    return {
        "records": len(records),
        "windows": len(windows),
        "sim_time_end": float(windows[-1]["end"]) if windows else None,
        "utilization": utilization_summary(records),
        "queues": queue_summary(records),
        "consumers": consumer_summary(records),
        "training_curves": {
            name: {str(step): series[step] for step in sorted(series)}
            for name, series in curves.items()
        },
    }


def render_report(
    records: Sequence[Dict], title: Optional[str] = None
) -> str:
    """Render the full textual report (what ``repro report`` prints)."""
    from repro.eval.reporting import format_table

    sections: List[str] = []
    if title:
        sections.append(title)

    windows = _windows(records)
    sections.append(
        f"{len(records)} records, {len(windows)} windows, "
        f"sim time {windows[-1]['end']:.0f}s" if windows
        else f"{len(records)} records, no window spans"
    )

    util = utilization_summary(records)
    if util:
        sections.append(format_table(
            ["microservice", "mean WIP", "mean alloc", "mean busy", "util"],
            [
                [name, s["mean_wip"], s["mean_allocation"],
                 s["mean_busy"], s["utilization"]]
                for name, s in util.items()
            ],
            title="Per-microservice utilization",
        ))

    queues = queue_summary(records)
    if queues:
        sections.append(format_table(
            ["queue", "mean depth", "peak depth", "publishes", "redeliveries"],
            [
                [name, s["mean_depth"], s["peak_depth"],
                 int(s["publishes"]), int(s["redeliveries"])]
                for name, s in queues.items()
            ],
            title="Queue depth",
        ))

    consumers = consumer_summary(records)
    if consumers:
        sections.append(format_table(
            ["microservice", "started", "ready", "stopped", "mean startup (s)"],
            [
                [name, int(s["started"]), int(s["ready"]),
                 int(s["stopped"]), s["mean_startup_latency"]]
                for name, s in consumers.items()
            ],
            title="Container lifecycle",
        ))

    curves = training_curves(records)
    if curves:
        names = sorted(curves)
        steps = sorted({step for series in curves.values() for step in series})
        rows = [
            [step, *[curves[name].get(step, "-") for name in names]]
            for step in steps
        ]
        sections.append(format_table(
            ["step", *names], rows, title="Training curves",
        ))

    return "\n\n".join(sections)
