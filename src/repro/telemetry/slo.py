"""Declarative SLO conformance: objectives in, verdicts out.

An :class:`SloSpec` names a metric selector, a comparison threshold and
(optionally) a burn-rate window; :func:`evaluate_slos` checks a list of
specs against the *same* snapshot document the metrics engine exports
(`MetricsSink.snapshot()`: registry families plus the per-window summary
series), so live and replayed traces produce byte-identical
``slo_report.json`` by construction — nothing here reads a clock, an
RNG, or the filesystem.

Two evaluation modes per spec:

- ``window == 0`` (default) — end-of-run check of the selector value
  against the threshold: verdict ``pass`` or ``fail``.
- ``window > 0`` — burn-rate check over the *last* ``window`` rows of
  the per-window summary series (selectors: ``response_p50/p95/p99``,
  ``completions``, ``wip_total``, ``reward``).  With ``burn_budget`` b,
  the fraction of violating windows f yields ``pass`` (f == 0),
  ``burn`` (0 < f <= b: error budget burning but not exhausted) or
  ``fail`` (f > b).

Specs load from JSON (``{"objectives": [...]}`` or a bare list) or from
TOML under ``[[tool.repro.slo.objectives]]`` — the same table shape a
``pyproject.toml`` would carry.

Histogram quantile selectors are exact (nearest-rank over the retained
values) when the spec pins one label series; unlabeled quantiles over
multiple series merge cumulative bucket counts and return the bucket
upper bound (the standard conservative estimate — exact per-value merges
are not reconstructible from a snapshot).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Union

__all__ = [
    "SLO_REPORT_VERSION",
    "SLO_REPORT_FILENAME",
    "SloError",
    "SloSpec",
    "SloVerdict",
    "SloResult",
    "load_slo_specs",
    "evaluate_slos",
    "slo_report_json",
    "write_slo_report",
    "render_slo_result",
    "WINDOW_SELECTORS",
]

#: Bumped whenever the slo_report.json document changes shape.
SLO_REPORT_VERSION = 1

SLO_REPORT_FILENAME = "slo_report.json"

#: Selectors valid for burn-rate specs (keys of the per-window summary
#: rows that :func:`repro.telemetry.metrics.window_summary_row` emits).
WINDOW_SELECTORS = (
    "response_p50", "response_p95", "response_p99", "completions",
    "wip_total", "reward",
)

_OPS = ("<=", ">=")

#: End-of-run histogram selectors: prefix -> (family, label name).
_HISTOGRAM_FAMILIES = {
    "response_time": ("repro_response_time_seconds", "workflow"),
    "queue_depth": ("repro_queue_depth", "queue"),
    "queue_wait": ("repro_queue_wait_seconds", "service"),
    "startup_latency": ("repro_startup_latency_seconds", "service"),
    "service_time": ("repro_service_time_seconds", "service"),
}
_HISTOGRAM_STATS = ("p50", "p95", "p99", "mean", "count")


class SloError(ValueError):
    """Raised on malformed specs or unresolvable selectors."""


@dataclass(frozen=True)
class SloSpec:
    """One declarative objective.

    ``metric`` is either an end-of-run selector (e.g.
    ``response_time_p99``, ``redelivery_rate``) or, with ``window > 0``,
    a per-window selector from :data:`WINDOW_SELECTORS`.  ``label``
    restricts histogram/counter selectors to one label value (workflow,
    queue or service name depending on the family).
    """

    name: str
    metric: str
    threshold: float
    op: str = "<="
    label: str = ""
    window: int = 0
    burn_budget: float = 0.0

    def __post_init__(self):
        if not self.name:
            raise SloError("SLO spec needs a non-empty name")
        if self.op not in _OPS:
            raise SloError(
                f"SLO {self.name!r}: op must be one of {_OPS}, "
                f"got {self.op!r}"
            )
        if self.window < 0:
            raise SloError(
                f"SLO {self.name!r}: window must be >= 0, got {self.window}"
            )
        if not 0.0 <= self.burn_budget <= 1.0:
            raise SloError(
                f"SLO {self.name!r}: burn_budget must be in [0, 1], "
                f"got {self.burn_budget}"
            )
        if self.window > 0 and self.metric not in WINDOW_SELECTORS:
            raise SloError(
                f"SLO {self.name!r}: burn-rate selector must be one of "
                f"{WINDOW_SELECTORS}, got {self.metric!r}"
            )

    def ok(self, value: float) -> bool:
        return value <= self.threshold if self.op == "<=" else (
            value >= self.threshold
        )

    def to_jsonable(self) -> Dict:
        return {
            "name": self.name,
            "metric": self.metric,
            "threshold": self.threshold,
            "op": self.op,
            "label": self.label,
            "window": self.window,
            "burn_budget": self.burn_budget,
        }


@dataclass
class SloVerdict:
    """The outcome of one spec against one snapshot."""

    spec: SloSpec
    verdict: str  # "pass" | "burn" | "fail"
    value: Optional[float] = None
    windows_violated: int = 0
    windows_total: int = 0
    why: str = ""

    @property
    def failed(self) -> bool:
        return self.verdict == "fail"

    def to_jsonable(self) -> Dict:
        return {
            "spec": self.spec.to_jsonable(),
            "verdict": self.verdict,
            "value": self.value,
            "windows_violated": self.windows_violated,
            "windows_total": self.windows_total,
            "why": self.why,
        }


@dataclass
class SloResult:
    """All verdicts for one evaluation run."""

    verdicts: List[SloVerdict] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return not any(v.failed for v in self.verdicts)

    def to_jsonable(self) -> Dict:
        return {
            "slo_report_version": SLO_REPORT_VERSION,
            "passed": self.passed,
            "verdicts": [v.to_jsonable() for v in self.verdicts],
        }


# ---------------------------------------------------------------------------
# Spec loading
# ---------------------------------------------------------------------------

def _spec_from_table(table: Mapping) -> SloSpec:
    known = {
        "name", "metric", "threshold", "op", "label", "window",
        "burn_budget",
    }
    unknown = sorted(set(table) - known)
    if unknown:
        raise SloError(f"unknown SLO spec fields: {unknown}")
    try:
        return SloSpec(
            name=str(table["name"]),
            metric=str(table["metric"]),
            threshold=float(table["threshold"]),
            op=str(table.get("op", "<=")),
            label=str(table.get("label", "")),
            window=int(table.get("window", 0)),
            burn_budget=float(table.get("burn_budget", 0.0)),
        )
    except KeyError as exc:
        raise SloError(f"SLO spec missing required field {exc}") from None


def load_slo_specs(path: Union[str, Path]) -> List[SloSpec]:
    """Load objectives from a TOML or JSON file.

    TOML files use the ``[[tool.repro.slo.objectives]]`` array-of-tables
    (a bare top-level ``[[objectives]]`` also works); JSON files carry
    ``{"objectives": [...]}`` or a bare list of spec tables.
    """
    path = Path(path)
    text = path.read_text(encoding="utf-8")
    if path.suffix == ".toml":
        import tomllib

        document = tomllib.loads(text)
        tables = (
            document.get("tool", {}).get("repro", {}).get("slo", {})
            .get("objectives")
        )
        if tables is None:
            tables = document.get("objectives")
    else:
        document = json.loads(text)
        tables = (
            document if isinstance(document, list)
            else document.get("objectives")
        )
    if not tables:
        raise SloError(f"no SLO objectives found in {path}")
    return [_spec_from_table(t) for t in tables]


# ---------------------------------------------------------------------------
# Selector evaluation
# ---------------------------------------------------------------------------

def _family_series(snapshot: Mapping, family: str) -> List[Mapping]:
    return snapshot.get("families", {}).get(family, {}).get("series", [])


def _label_match(series: Mapping, label: str) -> bool:
    labels = series.get("labels", {})
    return not label or label in labels.values()


def _merged_quantile(series: Sequence[Mapping], q: float) -> float:
    """Bucket-resolution quantile over summed cumulative counts."""
    if not series:
        return 0.0
    buckets = series[0]["buckets"]
    counts = [0] * (len(buckets) + 1)
    total = 0
    for s in series:
        for i, c in enumerate(s["counts"]):
            counts[i] += c
        total += s["count"]
    if total == 0:
        return 0.0
    rank = min(int(q * total), total - 1)
    remaining = rank + 1
    for i, c in enumerate(counts):
        remaining -= c
        if remaining <= 0:
            return buckets[min(i, len(buckets) - 1)]
    return buckets[-1]


def _histogram_value(
    snapshot: Mapping, family: str, stat: str, label: str, spec_name: str
) -> float:
    series = [
        s for s in _family_series(snapshot, family)
        if _label_match(s, label)
    ]
    if not series:
        if label:
            raise SloError(
                f"SLO {spec_name!r}: no {family} series with label "
                f"{label!r} in snapshot"
            )
        return 0.0
    if stat == "count":
        return float(sum(s["count"] for s in series))
    if stat == "mean":
        total = sum(s["count"] for s in series)
        return sum(s["sum"] for s in series) / total if total else 0.0
    q = {"p50": 0.50, "p95": 0.95, "p99": 0.99}[stat]
    if len(series) == 1:
        return float(series[0][stat])
    return float(_merged_quantile(series, q))


def _counter_total(snapshot: Mapping, family: str, label: str) -> float:
    return float(sum(
        s["value"] for s in _family_series(snapshot, family)
        if _label_match(s, label)
    ))


def _select(snapshot: Mapping, spec: SloSpec) -> float:
    """Resolve an end-of-run selector against a snapshot document."""
    metric = spec.metric
    for prefix, (family, _label_name) in _HISTOGRAM_FAMILIES.items():
        for stat in _HISTOGRAM_STATS:
            if metric == f"{prefix}_{stat}":
                return _histogram_value(
                    snapshot, family, stat, spec.label, spec.name
                )
    if metric == "redelivery_rate":
        published = _counter_total(
            snapshot, "repro_publishes_total", spec.label
        )
        redelivered = _counter_total(
            snapshot, "repro_redeliveries_total", spec.label
        )
        return redelivered / published if published else 0.0
    if metric == "completion_ratio":
        arrivals = _counter_total(
            snapshot, "repro_arrivals_total", spec.label
        )
        completions = _counter_total(
            snapshot, "repro_completions_total", spec.label
        )
        return completions / arrivals if arrivals else 1.0
    if metric == "completions":
        return _counter_total(snapshot, "repro_completions_total", spec.label)
    if metric == "task_retries":
        return _counter_total(snapshot, "repro_task_retries_total", spec.label)
    if metric == "wasted_work_seconds":
        return _counter_total(snapshot, "repro_wasted_work_seconds", spec.label)
    raise SloError(f"SLO {spec.name!r}: unknown metric selector {metric!r}")


# ---------------------------------------------------------------------------
# Evaluation
# ---------------------------------------------------------------------------

def _why_from_critical(critical, top_k: int = 3) -> str:
    """One-line bottleneck summary from a CriticalPathReport."""
    rows = critical.bottlenecks(top_k)
    if not rows:
        return ""
    parts = [
        f"{row['service'] or '(none)'}/{row['stage']} "
        f"{row['share'] * 100.0:.1f}%"
        for row in rows
    ]
    return "critical-path bottlenecks: " + ", ".join(parts)


def evaluate_slos(
    specs: Sequence[SloSpec],
    snapshot: Mapping,
    critical=None,
) -> SloResult:
    """Evaluate every spec against one snapshot document.

    ``snapshot`` is a ``MetricsSink.snapshot()`` document — registry
    families plus the ``window_series`` rows.  ``critical`` (optional, a
    :class:`repro.telemetry.critical.CriticalPathReport`) fills the
    ``why`` field of latency-related violations with the top critical
    -path bottlenecks.
    """
    result = SloResult()
    window_series = snapshot.get("window_series", [])
    for spec in specs:
        if spec.window > 0:
            rows = window_series[-spec.window:]
            values = [float(row.get(spec.metric, 0.0)) for row in rows]
            violated = sum(1 for v in values if not spec.ok(v))
            total = len(values)
            frac = violated / total if total else 0.0
            if violated == 0:
                verdict = "pass"
            elif frac <= spec.burn_budget:
                verdict = "burn"
            else:
                verdict = "fail"
            why = ""
            if verdict != "pass":
                why = (
                    f"{violated}/{total} of the last {total} windows "
                    f"violate {spec.metric} {spec.op} {spec.threshold:g}"
                )
                if critical is not None and spec.metric.startswith(
                    "response"
                ):
                    bottleneck = _why_from_critical(critical)
                    if bottleneck:
                        why = f"{why}; {bottleneck}"
            result.verdicts.append(SloVerdict(
                spec=spec,
                verdict=verdict,
                value=values[-1] if values else None,
                windows_violated=violated,
                windows_total=total,
                why=why,
            ))
        else:
            value = _select(snapshot, spec)
            ok = spec.ok(value)
            why = ""
            if not ok:
                why = (
                    f"{spec.metric}"
                    f"{'{' + spec.label + '}' if spec.label else ''} = "
                    f"{value:g}, violates {spec.op} {spec.threshold:g}"
                )
                if critical is not None and (
                    spec.metric.startswith("response_time")
                    or spec.metric.startswith("queue_wait")
                ):
                    bottleneck = _why_from_critical(critical)
                    if bottleneck:
                        why = f"{why}; {bottleneck}"
            result.verdicts.append(SloVerdict(
                spec=spec,
                verdict="pass" if ok else "fail",
                value=value,
                why=why,
            ))
    return result


# ---------------------------------------------------------------------------
# Export
# ---------------------------------------------------------------------------

def slo_report_json(result: SloResult) -> str:
    """Canonical JSON document (sorted keys, compact, trailing newline)."""
    return json.dumps(
        result.to_jsonable(), sort_keys=True, separators=(",", ":")
    ) + "\n"


def write_slo_report(outdir: Union[str, Path], result: SloResult) -> Path:
    """Write ``slo_report.json`` into a run directory."""
    outdir = Path(outdir)
    outdir.mkdir(parents=True, exist_ok=True)
    target = outdir / SLO_REPORT_FILENAME
    target.write_text(slo_report_json(result), encoding="utf-8")
    return target


def render_slo_result(result: SloResult) -> str:
    """Human-readable verdict table (the ``repro slo`` CLI)."""
    lines = [f"{'verdict':<8} {'objective':<24} {'value':>12}  detail"]
    for v in result.verdicts:
        value = "-" if v.value is None else f"{v.value:.3f}"
        detail = v.why or (
            f"{v.spec.metric} {v.spec.op} {v.spec.threshold:g}"
        )
        if v.spec.window > 0 and not v.why:
            detail += f" over last {v.windows_total} windows"
        lines.append(
            f"{v.verdict.upper():<8} {v.spec.name:<24} {value:>12}  {detail}"
        )
    lines.append("")
    lines.append("SLO conformance: " + ("PASS" if result.passed else "FAIL"))
    return "\n".join(lines)
