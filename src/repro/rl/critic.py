"""The critic (Q) network.

"We use the same parameters for the Critic network, except that we insert
one of Critic's inputs — action — to the second layer" (Section VI-A3).
The :class:`repro.nn.MLP` auxiliary-input mechanism implements exactly
that: the state feeds the first layer, the action is concatenated into the
second layer's input.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.nn import MLP, Adam, HuberLoss, MeanSquaredError
from repro.utils.rng import RngStream, fallback_stream
from repro.utils.validation import check_positive

__all__ = ["Critic"]


class Critic:
    """Action-value network Q(s, a) with the action injected at layer 2."""

    def __init__(
        self,
        state_dim: int,
        action_dim: int,
        hidden_sizes: Sequence[int] = (256, 256, 256),
        learning_rate: float = 1e-3,
        state_scale: float = 100.0,
        reward_scale: float = 100.0,
        loss: str = "mse",
        rng: Optional[RngStream] = None,
    ):
        check_positive("state_dim", state_dim)
        check_positive("action_dim", action_dim)
        check_positive("state_scale", state_scale)
        check_positive("reward_scale", reward_scale)
        if len(hidden_sizes) < 1:
            raise ValueError("critic needs at least one hidden layer")
        if rng is None:
            rng = fallback_stream("critic")
        self.state_dim = state_dim
        self.action_dim = action_dim
        self.state_scale = state_scale
        self.reward_scale = reward_scale
        self.network = MLP(
            [state_dim, *hidden_sizes, 1],
            hidden_activation="relu",
            output_activation="linear",
            aux_dim=action_dim,
            aux_layer=1,
            rng=rng.fork("critic/net"),
            final_init="small_uniform",
        )
        self.target_network = self.network.clone()
        self.optimizer = Adam(learning_rate, grad_clip=1.0)
        self.loss = HuberLoss() if loss == "huber" else MeanSquaredError()

    def normalize_states(self, states: np.ndarray) -> np.ndarray:
        """Same log compression as the actor (see Actor.normalize)."""
        states = np.asarray(states, dtype=np.float64)
        return np.log1p(np.maximum(states, 0.0)) / np.log1p(self.state_scale)

    def q_values(
        self, states: np.ndarray, actions: np.ndarray, target: bool = False
    ) -> np.ndarray:
        """Q(s, a) for a batch; scaled back to reward units."""
        network = self.target_network if target else self.network
        q = network.forward(self.normalize_states(states), aux=actions)
        return q * self.reward_scale

    def train_batch(
        self, states: np.ndarray, actions: np.ndarray, targets: np.ndarray
    ) -> float:
        """One TD-regression step toward ``targets`` (reward units)."""
        targets = np.atleast_2d(np.asarray(targets, dtype=np.float64))
        scaled = targets / self.reward_scale
        prediction = self.network.forward(
            self.normalize_states(states), aux=actions
        )
        value, grad = self.loss(prediction, scaled)
        self.network.backward(grad)
        self.optimizer.step(self.network.params_and_grads())
        return value

    def action_gradient(
        self, states: np.ndarray, actions: np.ndarray
    ) -> np.ndarray:
        """dQ/da at the given (s, a) — the policy-gradient ingredient."""
        return self.network.input_gradient(
            self.normalize_states(states), aux=actions, wrt="aux"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Critic({self.network!r})"
