"""DDPG agent with parameter-space exploration noise.

Implements the policy-learning half of MIRAS (Section IV-D): actor-critic
with target networks and replay (Lillicrap et al.), exploring by perturbing
the actor's weights with adaptive Gaussian noise (Plappert et al.) so every
explored action still lies on the probability simplex and therefore never
violates the consumer budget.

Action-space noise (Gaussian or Ornstein-Uhlenbeck) is also implemented —
the paper's ablation finding is that it "performs poorly" because noisy
actions break the constraint — so the comparison is reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.nn import MLP, soft_update
from repro.rl.actor import Actor
from repro.rl.critic import Critic
from repro.rl.noise import (
    AdaptiveParameterNoise,
    GaussianActionNoise,
    OrnsteinUhlenbeckNoise,
    project_to_simplex,
    project_to_simplex_batch,
)
from repro.rl.replay import ReplayBuffer
from repro.telemetry.profile import NULL_PROFILER, PhaseProfiler
from repro.telemetry.tracer import NULL_TRACER, Tracer
from repro.utils.batchpairs import batched_pair
from repro.utils.rng import RngStream, fallback_stream
from repro.utils.validation import check_in_range, check_positive

__all__ = ["DDPGConfig", "DDPGAgent"]

#: Emit ddpg/* metrics every this many updates when tracing is on — one
#: record per update would dominate the trace during policy training.
METRIC_INTERVAL = 50


@dataclass
class DDPGConfig:
    """Hyper-parameters for one DDPG agent.

    Paper defaults (Section VI-A3): actor/critic are 3 layers of 256
    neurons for MSD (512 for LIGO).
    """

    hidden_sizes: Sequence[int] = (256, 256, 256)
    actor_learning_rate: float = 1e-4
    critic_learning_rate: float = 1e-3
    gamma: float = 0.95
    tau: float = 0.01
    batch_size: int = 64
    buffer_capacity: int = 100_000
    #: 'parameter' (MIRAS), 'action-gaussian', 'action-ou', or 'none'.
    exploration: str = "parameter"
    param_noise_sigma: float = 0.05
    param_noise_delta: float = 0.05
    action_noise_sigma: float = 0.15
    state_scale: float = 100.0
    #: Rewards are divided by this before critic regression; sized for the
    #: burst regime where |r| reaches a few thousand (Eq. 1 at high WIP).
    reward_scale: float = 500.0
    #: Actor uniform output mixing (see repro.rl.actor.Actor).
    output_mixing: float = 0.02
    #: Decoupled weight decay on the actor (prevents logit saturation).
    actor_weight_decay: float = 1e-3
    #: Entropy bonus on the actor objective (ascend Q + beta * H(a)).
    #: Softmax policies over a budget simplex collapse to corners without
    #: it — a corner allocation starves every other microservice, which is
    #: catastrophic for workflow pipelines.
    entropy_weight: float = 0.02
    #: Refresh the perturbed actor every this many act() calls.
    perturb_interval: int = 25

    def __post_init__(self):
        check_in_range("gamma", self.gamma, 0.0, 1.0)
        check_in_range("tau", self.tau, 0.0, 1.0, inclusive=(False, True))
        check_positive("batch_size", self.batch_size)
        check_positive("buffer_capacity", self.buffer_capacity)
        check_positive("perturb_interval", self.perturb_interval)
        valid = {"parameter", "action-gaussian", "action-ou", "none"}
        if self.exploration not in valid:
            raise ValueError(
                f"exploration must be one of {sorted(valid)}, "
                f"got {self.exploration!r}"
            )


class DDPGAgent:
    """Actor-critic agent over simplex actions."""

    def __init__(
        self,
        state_dim: int,
        action_dim: int,
        config: Optional[DDPGConfig] = None,
        rng: Optional[RngStream] = None,
        tracer: Optional[Tracer] = None,
        profiler: Optional[PhaseProfiler] = None,
    ):
        self.config = config or DDPGConfig()
        if rng is None:
            rng = fallback_stream("ddpg")
        self.rng = rng
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.profiler = profiler if profiler is not None else NULL_PROFILER
        self.state_dim = state_dim
        self.action_dim = action_dim
        cfg = self.config

        self.actor = Actor(
            state_dim,
            action_dim,
            hidden_sizes=cfg.hidden_sizes,
            learning_rate=cfg.actor_learning_rate,
            state_scale=cfg.state_scale,
            rng=rng.fork("actor"),
            output_mixing=cfg.output_mixing,
            weight_decay=cfg.actor_weight_decay,
        )
        self.critic = Critic(
            state_dim,
            action_dim,
            hidden_sizes=cfg.hidden_sizes,
            learning_rate=cfg.critic_learning_rate,
            state_scale=cfg.state_scale,
            reward_scale=cfg.reward_scale,
            rng=rng.fork("critic"),
        )
        self.replay = ReplayBuffer(
            cfg.buffer_capacity,
            state_dim,
            action_dim,
            profiler=self.profiler,
        )

        self.param_noise = AdaptiveParameterNoise(
            initial_sigma=cfg.param_noise_sigma, delta=cfg.param_noise_delta
        )
        self._perturbed_network: Optional[MLP] = None
        self._acts_since_perturb = 0
        self._perturbs_done = 0
        if cfg.exploration == "action-ou":
            self.action_noise = OrnsteinUhlenbeckNoise(
                action_dim, sigma=cfg.action_noise_sigma
            )
        else:
            self.action_noise = GaussianActionNoise(
                sigma=cfg.action_noise_sigma
            )

        self.updates_done = 0
        #: Count of exploration actions that left the simplex (only possible
        #: with action-space noise) — the paper's "invalid exploration".
        self.constraint_violations = 0
        self.exploration_actions = 0

    # Exploration machinery -------------------------------------------------
    def refresh_due(self) -> bool:
        """True when the next exploring act() will refresh the perturbed
        actor (and therefore sample the replay buffer to adapt sigma)."""
        return (
            self._perturbed_network is None
            or self._acts_since_perturb >= self.config.perturb_interval
        )

    def refresh_perturbation(self) -> None:
        """Resample the perturbed actor (call at episode boundaries)."""
        flat = self.actor.network.get_flat()
        # Label carries the refresh index: each perturbation gets its own
        # uniquely named stream (labels never feed entropy, so this is
        # name-only — draws are unchanged for a fixed seed).
        noisy = self.param_noise.perturb(
            flat, self.rng.fork(f"perturb{self._perturbs_done}")
        )
        self._perturbs_done += 1
        perturbed = self.actor.network.clone()
        perturbed.set_flat(noisy)
        self._perturbed_network = perturbed
        self._acts_since_perturb = 0

    def adapt_parameter_noise(self) -> Optional[float]:
        """Adapt sigma from replayed states; returns the measured distance."""
        if self._perturbed_network is None or len(self.replay) == 0:
            return None
        states = self.replay.sample_states(
            min(self.config.batch_size, len(self.replay)), self.rng
        )
        clean = self.actor.act_batch(states)
        noisy = self.actor.act_batch(states, network=self._perturbed_network)
        distance = AdaptiveParameterNoise.action_distance(clean, noisy)
        self.param_noise.adapt(distance)
        return distance

    # Acting ------------------------------------------------------------------
    def act(self, state: np.ndarray, explore: bool = True) -> np.ndarray:
        """Simplex action for one state (with exploration when asked)."""
        state = np.asarray(state, dtype=np.float64)
        if not explore or self.config.exploration == "none":
            return self.actor.act(state)
        self.exploration_actions += 1

        if self.config.exploration == "parameter":
            if self.refresh_due():
                self.refresh_perturbation()
                self.adapt_parameter_noise()
            self._acts_since_perturb += 1
            return self.actor.act(state, network=self._perturbed_network)

        # Action-space noise: perturb, count violations, repair by projection.
        clean = self.actor.act(state)
        noisy = clean + self.action_noise.sample(self.action_dim, self.rng)
        if np.any(noisy < 0) or abs(float(noisy.sum()) - 1.0) > 1e-6:
            self.constraint_violations += 1
            noisy = project_to_simplex(noisy)
        return noisy

    @batched_pair("act", shapes="(K, state_dim), _ -> (K, action_dim)")
    def act_batch(
        self, states: np.ndarray, explore: bool = True
    ) -> np.ndarray:
        """Simplex actions for a ``(K, state_dim)`` block in one forward.

        The exploration bookkeeping mirrors :meth:`act` applied K times
        with one shared decision point: the perturbed network refreshes
        when the *first* row of the block would have triggered it, then
        all K rows ride the same perturbation (one perturbed-weight
        forward per rollout set).  For K=1 the counter updates, RNG
        draws, and network forwards are identical to :meth:`act`.
        """
        states = np.atleast_2d(np.asarray(states, dtype=np.float64))
        if not explore or self.config.exploration == "none":
            return self.actor.act_batch(states)
        k = states.shape[0]
        self.exploration_actions += k

        if self.config.exploration == "parameter":
            if self.refresh_due():
                self.refresh_perturbation()
                self.adapt_parameter_noise()
            self._acts_since_perturb += k
            return self.actor.act_batch(
                states, network=self._perturbed_network
            )

        # Action-space noise: perturb rows, count violations, repair each
        # violating row by projection.
        clean = self.actor.act_batch(states)
        noisy = clean + self.action_noise.sample_batch(
            k, self.action_dim, self.rng
        )
        bad = np.nonzero(
            np.any(noisy < 0, axis=1)
            | (np.abs(noisy.sum(axis=1) - 1.0) > 1e-6)
        )[0]
        if bad.size:
            self.constraint_violations += int(bad.size)
            noisy[bad] = project_to_simplex_batch(noisy[bad])
        return noisy

    def act_greedy(self, state: np.ndarray) -> np.ndarray:
        """Deterministic policy action (evaluation mode)."""
        return self.act(state, explore=False)

    # Learning ------------------------------------------------------------------
    def store(
        self,
        state: np.ndarray,
        action: np.ndarray,
        reward: float,
        next_state: np.ndarray,
    ) -> None:
        self.replay.add(state, action, reward, next_state)

    def store_batch(
        self,
        states: np.ndarray,
        actions: np.ndarray,
        rewards: np.ndarray,
        next_states: np.ndarray,
    ) -> None:
        """Bulk-store a ``(K, ·)`` block of transitions."""
        self.replay.add_batch(states, actions, rewards, next_states)

    def update(self) -> Tuple[float, float]:
        """One DDPG update; returns (critic_loss, mean_q_of_policy)."""
        if self.profiler.enabled:
            with self.profiler.phase("ddpg/update"):
                return self._update()
        return self._update()

    def _update(self) -> Tuple[float, float]:
        cfg = self.config
        if len(self.replay) == 0:
            raise RuntimeError("cannot update with an empty replay buffer")
        batch = self.replay.sample(cfg.batch_size, self.rng)
        states = batch["states"]
        actions = batch["actions"]
        rewards = batch["rewards"]
        next_states = batch["next_states"]

        # Critic: y = r + gamma * Q'(s', mu'(s')).
        next_actions = self.actor.act_target(next_states)
        next_q = self.critic.q_values(next_states, next_actions, target=True)
        targets = rewards + cfg.gamma * next_q
        critic_loss = self.critic.train_batch(states, actions, targets)

        # Actor: ascend Q(s, mu(s)) + beta * H(mu(s)).
        policy_actions = self.actor.act_batch(states)
        dq_da = self.critic.action_gradient(states, policy_actions)
        if cfg.entropy_weight:
            entropy_grad = -(np.log(policy_actions + 1e-8) + 1.0)
            dq_da = dq_da + cfg.entropy_weight * entropy_grad
        self.actor.apply_policy_gradient(states, dq_da)
        mean_q = float(
            np.mean(self.critic.q_values(states, self.actor.act_batch(states)))
        )

        soft_update(self.actor.target_network, self.actor.network, cfg.tau)
        soft_update(self.critic.target_network, self.critic.network, cfg.tau)
        self.updates_done += 1
        if self.tracer.enabled and self.updates_done % METRIC_INTERVAL == 0:
            self.tracer.metric(
                "ddpg/critic_loss", critic_loss, step=self.updates_done
            )
            self.tracer.metric("ddpg/mean_q", mean_q, step=self.updates_done)
            self.tracer.metric(
                "ddpg/param_noise_sigma",
                self.param_noise.sigma,
                step=self.updates_done,
            )
        return critic_loss, mean_q

    def update_many(self, num_updates: int) -> float:
        """Run several updates; returns the mean critic loss."""
        check_positive("num_updates", num_updates)
        losses = [self.update()[0] for _ in range(num_updates)]
        return float(np.mean(losses))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DDPGAgent(dims={self.state_dim}/{self.action_dim}, "
            f"exploration={self.config.exploration!r}, "
            f"updates={self.updates_done})"
        )
