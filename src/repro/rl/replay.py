"""Experience replay buffer."""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.telemetry.profile import NULL_PROFILER, PhaseProfiler
from repro.utils.rng import RngStream
from repro.utils.validation import check_positive

__all__ = ["ReplayBuffer"]


class ReplayBuffer:
    """Fixed-capacity ring buffer of (s, a, r, s') transitions.

    Storage is preallocated numpy, so sampling a batch is a single fancy
    index — important because DDPG samples every update step.
    """

    def __init__(
        self,
        capacity: int,
        state_dim: int,
        action_dim: int,
        profiler: Optional[PhaseProfiler] = None,
    ):
        check_positive("capacity", capacity)
        check_positive("state_dim", state_dim)
        check_positive("action_dim", action_dim)
        self.profiler = profiler if profiler is not None else NULL_PROFILER
        self.capacity = capacity
        self.state_dim = state_dim
        self.action_dim = action_dim
        self._states = np.zeros((capacity, state_dim), dtype=np.float64)
        self._actions = np.zeros((capacity, action_dim), dtype=np.float64)
        self._rewards = np.zeros((capacity, 1), dtype=np.float64)
        self._next_states = np.zeros((capacity, state_dim), dtype=np.float64)
        self._size = 0
        self._cursor = 0
        self.total_added = 0

    def add(
        self,
        state: np.ndarray,
        action: np.ndarray,
        reward: float,
        next_state: np.ndarray,
    ) -> None:
        """Store one transition, evicting the oldest when full (FIFO)."""
        state = np.asarray(state, dtype=np.float64)
        action = np.asarray(action, dtype=np.float64)
        next_state = np.asarray(next_state, dtype=np.float64)
        if state.shape != (self.state_dim,):
            raise ValueError(
                f"state shape {state.shape} != ({self.state_dim},)"
            )
        if action.shape != (self.action_dim,):
            raise ValueError(
                f"action shape {action.shape} != ({self.action_dim},)"
            )
        if next_state.shape != (self.state_dim,):
            raise ValueError(
                f"next_state shape {next_state.shape} != ({self.state_dim},)"
            )
        i = self._cursor
        self._states[i] = state
        self._actions[i] = action
        self._rewards[i, 0] = reward
        self._next_states[i] = next_state
        self._cursor = (self._cursor + 1) % self.capacity
        self._size = min(self._size + 1, self.capacity)
        self.total_added += 1

    def add_batch(
        self,
        states: np.ndarray,
        actions: np.ndarray,
        rewards: np.ndarray,
        next_states: np.ndarray,
    ) -> None:
        """Store ``n`` transitions with one shape check and slice writes.

        Equivalent to ``n`` sequential :meth:`add` calls (same final
        contents, cursor, and eviction order) but validates once and
        writes each array in at most two wraparound-aware slice
        assignments, so the synthetic-rollout engine can feed a whole
        ``(K, dim)`` step in one call.
        """
        states = np.asarray(states, dtype=np.float64)
        actions = np.asarray(actions, dtype=np.float64)
        rewards = np.asarray(rewards, dtype=np.float64).reshape(-1)
        next_states = np.asarray(next_states, dtype=np.float64)
        n = states.shape[0] if states.ndim == 2 else -1
        if states.shape != (n, self.state_dim):
            raise ValueError(
                f"states shape {states.shape} != (n, {self.state_dim})"
            )
        if actions.shape != (n, self.action_dim):
            raise ValueError(
                f"actions shape {actions.shape} != ({n}, {self.action_dim})"
            )
        if rewards.shape != (n,):
            raise ValueError(f"rewards shape {rewards.shape} != ({n},)")
        if next_states.shape != (n, self.state_dim):
            raise ValueError(
                f"next_states shape {next_states.shape} != "
                f"({n}, {self.state_dim})"
            )
        if n == 0:
            return
        start = self._cursor
        if n > self.capacity:
            # Sequential adds would overwrite the first n - capacity rows;
            # only the tail survives, landing after an advanced cursor.
            start = (start + n - self.capacity) % self.capacity
            states = states[-self.capacity :]
            actions = actions[-self.capacity :]
            rewards = rewards[-self.capacity :]
            next_states = next_states[-self.capacity :]
        first = min(states.shape[0], self.capacity - start)
        for dest, src in (
            (self._states, states),
            (self._actions, actions),
            (self._rewards, rewards[:, np.newaxis]),
            (self._next_states, next_states),
        ):
            dest[start : start + first] = src[:first]
            if first < src.shape[0]:
                dest[: src.shape[0] - first] = src[first:]
        self._cursor = (self._cursor + n) % self.capacity
        self._size = min(self._size + n, self.capacity)
        self.total_added += n

    def sample(self, batch_size: int, rng: RngStream) -> Dict[str, np.ndarray]:
        """Uniformly sample a batch (with replacement when undersized)."""
        if self.profiler.enabled:
            with self.profiler.phase("replay/sample"):
                return self._sample(batch_size, rng)
        return self._sample(batch_size, rng)

    def _sample(self, batch_size: int, rng: RngStream) -> Dict[str, np.ndarray]:
        if self._size == 0:
            raise RuntimeError("cannot sample from an empty replay buffer")
        check_positive("batch_size", batch_size)
        replace = batch_size > self._size
        idx = rng.choice(self._size, size=batch_size, replace=replace)
        return {
            "states": self._states[idx].copy(),
            "actions": self._actions[idx].copy(),
            "rewards": self._rewards[idx].copy(),
            "next_states": self._next_states[idx].copy(),
        }

    def sample_states(self, batch_size: int, rng: RngStream) -> np.ndarray:
        """States only — used for parameter-noise distance adaptation."""
        return self.sample(batch_size, rng)["states"]

    def state_dict(self) -> Dict[str, np.ndarray]:
        """Checkpointable snapshot: contents plus ring-buffer state.

        Captures the *physical* first ``size`` rows (for a full buffer
        that is the whole ring, mid-wraparound cursor included), so
        :meth:`load_state_dict` restores a buffer whose future eviction
        order, sampling population, and ``total_added`` are bit-exact —
        the warm-restart contract of ``repro.core.persistence``.  Rows
        beyond ``size`` are never sampled and never read before being
        overwritten, so they need not be saved.
        """
        return {
            "states": self._states[: self._size].copy(),
            "actions": self._actions[: self._size].copy(),
            "rewards": self._rewards[: self._size].copy(),
            "next_states": self._next_states[: self._size].copy(),
            "cursor": np.int64(self._cursor),
            "size": np.int64(self._size),
            "total_added": np.int64(self.total_added),
        }

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Restore a :meth:`state_dict` snapshot bit-exactly."""
        size = int(state["size"])
        cursor = int(state["cursor"])
        if not 0 <= size <= self.capacity:
            raise ValueError(
                f"snapshot size {size} exceeds capacity {self.capacity}"
            )
        if not 0 <= cursor < self.capacity or (
            size < self.capacity and cursor != size
        ):
            raise ValueError(
                f"snapshot cursor {cursor} inconsistent with size {size} "
                f"and capacity {self.capacity}"
            )
        states = np.asarray(state["states"], dtype=np.float64)
        actions = np.asarray(state["actions"], dtype=np.float64)
        rewards = np.asarray(state["rewards"], dtype=np.float64)
        next_states = np.asarray(state["next_states"], dtype=np.float64)
        if states.shape != (size, self.state_dim):
            raise ValueError(
                f"snapshot states shape {states.shape} != "
                f"({size}, {self.state_dim})"
            )
        if actions.shape != (size, self.action_dim):
            raise ValueError(
                f"snapshot actions shape {actions.shape} != "
                f"({size}, {self.action_dim})"
            )
        if rewards.shape != (size, 1):
            raise ValueError(
                f"snapshot rewards shape {rewards.shape} != ({size}, 1)"
            )
        if next_states.shape != (size, self.state_dim):
            raise ValueError(
                f"snapshot next_states shape {next_states.shape} != "
                f"({size}, {self.state_dim})"
            )
        self._states[:size] = states
        self._actions[:size] = actions
        self._rewards[:size] = rewards
        self._next_states[:size] = next_states
        self._size = size
        self._cursor = cursor
        self.total_added = int(state["total_added"])

    def clear(self) -> None:
        self._size = 0
        self._cursor = 0

    def __len__(self) -> int:
        return self._size

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ReplayBuffer(size={self._size}/{self.capacity})"
