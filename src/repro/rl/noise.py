"""Exploration noise: action-space and parameter-space.

The paper's key exploration choice (Section IV-D): "Directly imposing
exploration noise to the output action actually performs poorly in our
system ... actions added by exploration noise often violate our constraints
on total number of consumers, leading to invalid exploration.  Our approach
... is to use parameter space noise in exploration [Plappert et al.]
instead of action space noise."

Both kinds are implemented here so the ablation bench can reproduce the
comparison.  :func:`project_to_simplex` is the repair step an action-noise
agent must apply to make its noisy action executable at all — the
"invalid exploration" the paper describes.
"""

from __future__ import annotations

import numpy as np

from repro.utils.batchpairs import batched_pair
from repro.utils.rng import RngStream
from repro.utils.validation import check_positive

__all__ = [
    "GaussianActionNoise",
    "OrnsteinUhlenbeckNoise",
    "AdaptiveParameterNoise",
    "project_to_simplex",
    "project_to_simplex_batch",
]


def project_to_simplex(vector: np.ndarray) -> np.ndarray:
    """Euclidean projection of a vector onto the probability simplex.

    Algorithm of Duchi et al. (2008).  Used to repair constraint-violating
    noisy actions so the system can still execute them.
    """
    vector = np.asarray(vector, dtype=np.float64)
    if vector.ndim != 1:
        raise ValueError(f"expected a 1-D vector, got shape {vector.shape}")
    sorted_desc = np.sort(vector)[::-1]
    cumulative = np.cumsum(sorted_desc) - 1.0
    indices = np.arange(1, vector.size + 1)
    candidates = sorted_desc - cumulative / indices
    rho = np.nonzero(candidates > 0)[0][-1]
    theta = cumulative[rho] / (rho + 1.0)
    return np.maximum(vector - theta, 0.0)


@batched_pair("project_to_simplex", shapes="(K, dim) -> (K, dim)")
def project_to_simplex_batch(vectors: np.ndarray) -> np.ndarray:
    """Row-wise :func:`project_to_simplex` for a ``(K, dim)`` batch.

    Applies the scalar projection per row (violating rows are rare, so
    this is not a hot path) — each row is bit-identical to the serial
    repair an unbatched agent would perform.
    """
    vectors = np.asarray(vectors, dtype=np.float64)
    if vectors.ndim != 2:
        raise ValueError(f"expected a 2-D batch, got shape {vectors.shape}")
    if vectors.shape[0] == 0:
        return vectors.copy()
    return np.stack([project_to_simplex(row) for row in vectors])


class GaussianActionNoise:
    """I.i.d. Gaussian noise added to the action (the naive baseline)."""

    def __init__(self, sigma: float = 0.1):
        check_positive("sigma", sigma)
        self.sigma = sigma

    def sample(self, action_dim: int, rng: RngStream) -> np.ndarray:
        return rng.normal(0.0, self.sigma, size=action_dim)

    @batched_pair("sample", shapes="K, action_dim, _ -> (K, action_dim)")
    def sample_batch(
        self, batch: int, action_dim: int, rng: RngStream
    ) -> np.ndarray:
        """I.i.d. noise for K rollouts in one draw; ``(K, action_dim)``.

        For ``batch=1`` this consumes the bit generator exactly like
        :meth:`sample` (numpy draws ``size=(1, d)`` and ``size=d``
        identically), so batched K=1 exploration matches serial.
        """
        check_positive("batch", batch)
        return rng.normal(0.0, self.sigma, size=(batch, action_dim))

    def reset(self) -> None:
        """No state to reset; present for interface symmetry."""


class OrnsteinUhlenbeckNoise:
    """Temporally correlated OU noise — classic DDPG exploration."""

    def __init__(
        self,
        action_dim: int,
        theta: float = 0.15,
        sigma: float = 0.2,
        dt: float = 1.0,
    ):
        check_positive("action_dim", action_dim)
        check_positive("theta", theta)
        check_positive("sigma", sigma)
        check_positive("dt", dt)
        self.action_dim = action_dim
        self.theta = theta
        self.sigma = sigma
        self.dt = dt
        self._state = np.zeros(action_dim)

    def sample(self, action_dim: int, rng: RngStream) -> np.ndarray:
        if action_dim != self.action_dim:
            raise ValueError(
                f"noise built for dim {self.action_dim}, asked for {action_dim}"
            )
        drift = -self.theta * self._state * self.dt
        diffusion = self.sigma * np.sqrt(self.dt) * rng.normal(
            size=self.action_dim
        )
        self._state = self._state + drift + diffusion
        return self._state.copy()

    @batched_pair("sample", shapes="K, action_dim, _ -> (K, action_dim)")
    def sample_batch(
        self, batch: int, action_dim: int, rng: RngStream
    ) -> np.ndarray:
        """Batched sampling is only defined for a single rollout.

        The OU process is a *temporal* correlation over one rollout's
        steps; K parallel rollouts sharing one OU state would correlate
        across rollouts instead.  ``batch=1`` delegates to :meth:`sample`
        (preserving serial bit-identity); larger batches are an error.
        """
        check_positive("batch", batch)
        if batch != 1:
            raise ValueError(
                "OrnsteinUhlenbeckNoise is temporally correlated per "
                "rollout and cannot drive a rollout batch; use "
                "rollout_batch=1 or gaussian/parameter exploration"
            )
        return self.sample(action_dim, rng)[np.newaxis]

    def reset(self) -> None:
        self._state = np.zeros(self.action_dim)


class AdaptiveParameterNoise:
    """Adaptive-scale Gaussian noise on policy *weights* (Plappert et al.).

    The perturbation scale ``sigma`` is adapted so the induced action-space
    distance between the clean and the perturbed policy tracks a target
    ``delta``: too-close means exploration is too timid (grow sigma),
    too-far means it is erratic (shrink sigma).
    """

    def __init__(
        self,
        initial_sigma: float = 0.05,
        delta: float = 0.05,
        adapt_coefficient: float = 1.05,
        min_sigma: float = 1e-4,
        max_sigma: float = 10.0,
    ):
        check_positive("initial_sigma", initial_sigma)
        check_positive("delta", delta)
        if adapt_coefficient <= 1.0:
            raise ValueError(
                f"adapt_coefficient must exceed 1, got {adapt_coefficient!r}"
            )
        if not 0 < min_sigma <= max_sigma:
            raise ValueError(
                f"need 0 < min_sigma <= max_sigma, got {min_sigma}, {max_sigma}"
            )
        self.sigma = initial_sigma
        self.delta = delta
        self.adapt_coefficient = adapt_coefficient
        self.min_sigma = min_sigma
        self.max_sigma = max_sigma

    def perturb(self, flat_params: np.ndarray, rng: RngStream) -> np.ndarray:
        """Return a noisy copy of a flat parameter vector."""
        flat_params = np.asarray(flat_params, dtype=np.float64)
        return flat_params + rng.normal(0.0, self.sigma, size=flat_params.shape)

    def adapt(self, action_distance: float) -> float:
        """Update sigma from the measured clean-vs-perturbed action distance.

        Returns the new sigma.  Distance below ``delta`` grows sigma;
        above shrinks it (Plappert et al., Eq. 4).
        """
        if action_distance < 0:
            raise ValueError(f"distance must be >= 0, got {action_distance!r}")
        if action_distance < self.delta:
            self.sigma *= self.adapt_coefficient
        else:
            self.sigma /= self.adapt_coefficient
        self.sigma = float(np.clip(self.sigma, self.min_sigma, self.max_sigma))
        return self.sigma

    @staticmethod
    def action_distance(clean: np.ndarray, perturbed: np.ndarray) -> float:
        """Mean Euclidean distance between two batches of actions."""
        clean = np.atleast_2d(clean)
        perturbed = np.atleast_2d(perturbed)
        if clean.shape != perturbed.shape:
            raise ValueError(
                f"shape mismatch: {clean.shape} vs {perturbed.shape}"
            )
        return float(np.mean(np.linalg.norm(clean - perturbed, axis=1)))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"AdaptiveParameterNoise(sigma={self.sigma:.4g}, "
            f"delta={self.delta})"
        )
