"""The softmax actor network.

"We design output of actor network as a categorical distribution over J
different possible categories, by applying a softmax activation function at
the output layer.  The categorical distribution can then be translated into
numbers of consumers by multiplying with the total number of consumers C:
m_j(k) = floor(C * a_j(k))" (Section IV-D).

State inputs are normalised by a fixed scale (WIP counts can reach
hundreds; raw counts would saturate the first layer).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.nn import MLP, Adam
from repro.utils.batchpairs import batched_pair
from repro.utils.rng import RngStream, fallback_stream
from repro.utils.validation import check_positive

__all__ = ["Actor"]


class Actor:
    """Deterministic policy mu_theta: state -> point on the action simplex."""

    def __init__(
        self,
        state_dim: int,
        action_dim: int,
        hidden_sizes: Sequence[int] = (256, 256, 256),
        learning_rate: float = 1e-4,
        state_scale: float = 100.0,
        rng: Optional[RngStream] = None,
        output_mixing: float = 0.02,
        weight_decay: float = 1e-4,
    ):
        check_positive("state_dim", state_dim)
        check_positive("action_dim", action_dim)
        check_positive("state_scale", state_scale)
        if not 0 <= output_mixing < 1:
            raise ValueError(
                f"output_mixing must lie in [0, 1), got {output_mixing!r}"
            )
        if rng is None:
            rng = fallback_stream("actor")
        self.state_dim = state_dim
        self.action_dim = action_dim
        self.state_scale = state_scale
        #: Mix a little uniform mass into the softmax: a <- (1-eps)a + eps/J.
        #: Keeps the policy off exact simplex corners, where the softmax
        #: Jacobian vanishes and the deterministic policy gradient dies.
        self.output_mixing = output_mixing
        self.network = MLP(
            [state_dim, *hidden_sizes, action_dim],
            hidden_activation="relu",
            output_activation="softmax",
            rng=rng.fork("actor/net"),
            final_init="small_uniform",
        )
        self.target_network = self.network.clone()
        self.optimizer = Adam(
            learning_rate, grad_clip=1.0, weight_decay=weight_decay
        )

    def normalize(self, states: np.ndarray) -> np.ndarray:
        """Compress raw WIP states into a range the MLP handles well.

        WIP is non-negative and heavy-tailed (background load keeps it
        near zero; bursts push it into the hundreds), so a log transform
        keeps resolution near the boundary while bounding burst states:
        ``log1p(w) / log1p(state_scale)`` is ~1 at ``state_scale`` WIP.
        """
        states = np.asarray(states, dtype=np.float64)
        return np.log1p(np.maximum(states, 0.0)) / np.log1p(self.state_scale)

    def _mix(self, actions: np.ndarray) -> np.ndarray:
        if not self.output_mixing:
            return actions
        uniform = 1.0 / self.action_dim
        return (1.0 - self.output_mixing) * actions + self.output_mixing * uniform

    def act(self, state: np.ndarray, network: Optional[MLP] = None) -> np.ndarray:
        """Action for one state; optionally through a perturbed network."""
        network = network or self.network
        action = network.predict(self.normalize(np.atleast_2d(state)))[0]
        return self._mix(action)

    @batched_pair("act", shapes="(K, state_dim), _ -> (K, action_dim)")
    def act_batch(
        self, states: np.ndarray, network: Optional[MLP] = None
    ) -> np.ndarray:
        """Actions for a ``(K, state_dim)`` block; row k matches :meth:`act`."""
        network = network or self.network
        return self._mix(network.forward(self.normalize(states)))

    def act_target(self, states: np.ndarray) -> np.ndarray:
        """Target-network actions mu'(s) for critic bootstrapping."""
        return self._mix(self.target_network.forward(self.normalize(states)))

    def apply_policy_gradient(
        self, states: np.ndarray, dq_da: np.ndarray
    ) -> None:
        """Deterministic policy gradient ascent step.

        ``dq_da`` is the critic's gradient of Q w.r.t. the action evaluated
        at a = mu(s); ascending Q means descending -Q, so we backpropagate
        ``-dq_da / B`` through the actor and step its optimiser (Silver et
        al. 2014, as quoted in the paper's Section IV-D).
        """
        states = np.atleast_2d(states)
        dq_da = np.atleast_2d(dq_da)
        if dq_da.shape != (states.shape[0], self.action_dim):
            raise ValueError(
                f"dq_da shape {dq_da.shape} != "
                f"({states.shape[0]}, {self.action_dim})"
            )
        self.network.forward(self.normalize(states))
        # The uniform mixing is affine, so its chain-rule factor is a
        # constant (1 - eps) on the incoming gradient.
        scale = (1.0 - self.output_mixing) / states.shape[0]
        self.network.backward(-dq_da * scale)
        self.optimizer.step(self.network.params_and_grads())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Actor({self.network!r})"
