"""Deep deterministic policy gradient (DDPG) with parameter-space noise.

Re-implements the two cited algorithms MIRAS builds on:

- **DDPG** (Lillicrap et al., ICLR 2016) — actor-critic over continuous
  actions with target networks and a replay buffer,
- **parameter-space noise for exploration** (Plappert et al., ICLR 2018) —
  adaptive Gaussian perturbation of the *policy weights* instead of the
  output action, which is what lets MIRAS explore without violating the
  consumer-budget constraint (Section IV-D).
"""

from repro.rl.actor import Actor
from repro.rl.critic import Critic
from repro.rl.ddpg import DDPGAgent, DDPGConfig
from repro.rl.noise import (
    AdaptiveParameterNoise,
    GaussianActionNoise,
    OrnsteinUhlenbeckNoise,
    project_to_simplex,
    project_to_simplex_batch,
)
from repro.rl.replay import ReplayBuffer

__all__ = [
    "Actor",
    "Critic",
    "DDPGAgent",
    "DDPGConfig",
    "ReplayBuffer",
    "AdaptiveParameterNoise",
    "GaussianActionNoise",
    "OrnsteinUhlenbeckNoise",
    "project_to_simplex",
    "project_to_simplex_batch",
]
