"""Distributed actor/learner collection topology.

The serial trainer alternates real-environment collection and learning on
one core.  This module splits *transition collection* from *learning*
(the DRPC argument: centralised RL provisioners don't scale): N collector
workers each run whole real-environment episodes against their own
environment replica, and ship the resulting **transition blocks** back to
the learner over a merge-on-flush channel that feeds the shared replay
buffer via ``add_batch``.

Topology and determinism contract (docs/PERFORMANCE.md):

- The unit of work is one **episode** (one reset block of the collection
  schedule).  Episode ``e`` belongs to logical lane ``e mod L`` where
  ``L`` is the *fixed* logical-interleave width (``collect_lanes``) — a
  schedule constant, **not** the worker count.
- Every stochastic input of episode ``e`` derives from the stateless
  label ``lane{e mod L}/ep{e}`` via
  :func:`repro.utils.rng.derive_stream_seed`: the environment replica
  seed, the exploration stream, the burst draws.  Worker identity,
  scheduling and completion order never feed entropy.
- Blocks are merged in **episode order** (the logical round-robin
  interleave), regardless of which worker produced them or when.  The
  replay buffer's ``add_batch`` is exactly equivalent to sequential
  adds, so flush batching cannot change the final buffer state.

Together these pin the engine's output to the logical schedule: for any
worker count K — including physical process pools — the collected
dataset, replay contents, traces and downstream training are
byte-identical to the K=1 run.  *Physical* mode buys wall-clock
throughput; *logical* mode executes the same schedule in-process and is
the CI-checkable determinism witness.

Abort semantics: workers are fail-fast.  If an episode raises, the
exception propagates to the learner after the pool is shut down; exactly
the contiguous episode-order prefix that already flushed remains
ingested (no out-of-order partial state, no silent loss).

Process safety: the worker entry point :func:`run_collect_episode` is
module-level and its payload is a plain dict of scalars, strings and
numpy arrays — no live RNG generators, tracers, sinks or open handles
(reprolint P101–P104 / W101–W103).
"""

from __future__ import annotations

import importlib
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.rl.actor import Actor
from repro.rl.noise import (
    GaussianActionNoise,
    OrnsteinUhlenbeckNoise,
    project_to_simplex,
)
from repro.utils.rng import RngStream, derive_stream_seed
from repro.utils.validation import check_in_range, check_positive

__all__ = [
    "COLLECT_MODES",
    "EnvSpec",
    "EpisodeTask",
    "TransitionBlock",
    "MergeOnFlushChannel",
    "DistributedCollector",
    "episode_plan",
    "policy_payload",
    "resolve_workers",
    "run_collect_episode",
]

#: Collection topologies ``PolicyConfig.collect_mode`` accepts.  ``serial``
#: is the historical in-loop path; ``logical`` executes the fixed
#: round-robin interleave schedule in-process; ``physical`` fans the same
#: schedule over a process pool.
COLLECT_MODES = ("serial", "logical", "physical")


def resolve_workers(workers: int) -> int:
    """Resolve a worker-count knob: ``0`` auto-detects ``os.cpu_count()``.

    Mirrors ``repro lint --jobs`` (and now ``repro experiments
    --workers 0``): an unknown CPU count falls back to 1.
    """
    if workers < 0:
        raise ValueError(f"workers must be >= 0 (0 = auto), got {workers}")
    if workers == 0:
        return os.cpu_count() or 1
    return workers


@dataclass(frozen=True)
class EnvSpec:
    """A picklable recipe for building an environment in any process.

    ``factory`` is a ``"module:callable"`` path resolved at build time;
    the callable receives ``seed=<int>`` plus the (sorted, hashable)
    ``params`` pairs and returns a fresh environment.  Worker processes
    receive only this plain data — never a live environment.
    """

    factory: str
    params: Tuple[Tuple[str, object], ...] = ()

    def __post_init__(self):
        if ":" not in self.factory:
            raise ValueError(
                f"factory must be a 'module:callable' path, got "
                f"{self.factory!r}"
            )

    @classmethod
    def make(cls, factory: str, **params) -> "EnvSpec":
        return cls(factory, tuple(sorted(params.items())))

    def build(self, seed: int):
        """Import the factory and build an environment replica."""
        module_name, _, attr = self.factory.partition(":")
        module = importlib.import_module(module_name)
        try:
            factory = getattr(module, attr)
        except AttributeError:
            raise ValueError(
                f"module {module_name!r} has no attribute {attr!r}"
            ) from None
        return factory(seed=seed, **dict(self.params))


@dataclass(frozen=True)
class EpisodeTask:
    """One schedule slot: an episode pinned to its lane and seeds."""

    episode: int
    lane: int
    steps: int
    #: Exploration/burst stream seed (label-derived, K-independent).
    seed: int
    #: Environment-replica seed (separately label-derived).
    env_seed: int

    @property
    def label(self) -> str:
        return f"lane{self.lane}/ep{self.episode}"


def episode_plan(
    steps: int,
    reset_interval: int,
    lanes: int,
    root_seed: int,
    first_episode: int = 0,
) -> List[EpisodeTask]:
    """Slice ``steps`` into the fixed logical-interleave schedule.

    Episode lengths mirror the serial collection loop: full
    ``reset_interval`` blocks with a short final remainder.  Lane
    assignment and both per-episode seeds depend only on the episode
    index (and ``lanes``/``root_seed``) — never on who executes the
    plan or how wide the executing pool is.
    """
    check_positive("steps", steps)
    check_positive("reset_interval", reset_interval)
    check_positive("lanes", lanes)
    plan = []
    remaining = steps
    episode = first_episode
    while remaining > 0:
        block = min(reset_interval, remaining)
        lane = episode % lanes
        label = f"lane{lane}/ep{episode}"
        plan.append(
            EpisodeTask(
                episode=episode,
                lane=lane,
                steps=block,
                seed=derive_stream_seed(root_seed, label),
                env_seed=derive_stream_seed(root_seed, label + "/env"),
            )
        )
        remaining -= block
        episode += 1
    return plan


def policy_payload(ddpg) -> Dict:
    """Snapshot a DDPG policy as plain data a worker can rebuild from.

    Ships the actor weights plus the handful of hyper-parameters the
    exploration schedule needs.  Deliberately *not* the whole agent: no
    critic, no replay buffer, no RNG stream, no tracer — the payload
    must survive pickling into a worker process untouched (W102/W103).
    """
    cfg = ddpg.config
    return {
        "state_dim": int(ddpg.state_dim),
        "action_dim": int(ddpg.action_dim),
        "hidden_sizes": tuple(int(h) for h in cfg.hidden_sizes),
        "state_scale": float(cfg.state_scale),
        "output_mixing": float(cfg.output_mixing),
        "exploration": str(cfg.exploration),
        "param_noise_sigma": float(ddpg.param_noise.sigma),
        "action_noise_sigma": float(cfg.action_noise_sigma),
        "actor_weights": ddpg.actor.network.state_dict(),
    }


def _actor_from_payload(payload: Dict, rng: RngStream) -> Actor:
    """Rebuild the frozen actor inside a worker (weights overwrite init)."""
    actor = Actor(
        payload["state_dim"],
        payload["action_dim"],
        hidden_sizes=payload["hidden_sizes"],
        state_scale=payload["state_scale"],
        rng=rng,
        output_mixing=payload["output_mixing"],
    )
    actor.network.load_state_dict(payload["actor_weights"])
    return actor


def _maybe_inject_burst(
    env, rng: RngStream, probability: float, scale: float
) -> np.ndarray:
    """Episode-start burst injection (the collection-coverage device).

    Same draw schedule as the serial collector's burst hook, fed from
    the episode stream so coverage of the high-WIP regime survives the
    move to distributed collection.
    """
    state = env.observe()
    if probability <= 0 or scale <= 0:
        return state
    if float(rng.uniform()) >= probability:
        return state
    total = int(rng.uniform(0.0, scale * env.consumer_budget))
    if total == 0:
        return state
    names = env.system.ensemble.workflow_names()
    shares = rng.generator.dirichlet(np.ones(len(names)))
    counts = {
        name: int(round(total * share)) for name, share in zip(names, shares)
    }
    env.system.inject_burst(counts)
    return env.observe()


def run_collect_episode(spec: Dict) -> Dict:
    """Run one collection episode; module-level so pools can import it.

    ``spec`` is plain data (see :meth:`DistributedCollector._episode_spec`);
    the return value is the transition block as plain arrays.  Every
    stochastic draw comes from the two spec seeds, so the same spec
    yields the same block in any process.
    """
    env = EnvSpec(spec["env_factory"], spec["env_params"]).build(
        seed=spec["env_seed"]
    )
    rng = RngStream(
        f"collect/lane{spec['lane']}/ep{spec['episode']}",
        np.random.SeedSequence(spec["seed"]),
    )
    payload = spec["policy"]
    actor = _actor_from_payload(payload, rng.fork("actor-init"))

    exploration = payload["exploration"]
    network = None
    noise = None
    if exploration == "parameter":
        # One perturbation per episode (the serial loop refreshes at reset
        # boundaries too); sigma is the learner's snapshot — adaptation
        # stays on the learner side, where the replay buffer lives.
        flat = actor.network.get_flat()
        noisy = flat + rng.fork("perturb").normal(
            0.0, payload["param_noise_sigma"], size=flat.shape
        )
        network = actor.network.clone()
        network.set_flat(noisy)
    elif exploration == "action-ou":
        noise = OrnsteinUhlenbeckNoise(
            payload["action_dim"], sigma=payload["action_noise_sigma"]
        )
    elif exploration == "action-gaussian":
        noise = GaussianActionNoise(sigma=payload["action_noise_sigma"])

    env.reset()
    state = _maybe_inject_burst(
        env,
        rng.fork("burst"),
        spec["burst_probability"],
        spec["burst_scale"],
    )
    explore_rng = rng.fork("explore")
    steps = spec["steps"]
    random_fraction = spec["random_fraction"]
    action_dim = payload["action_dim"]
    states = np.empty((steps, env.state_dim), dtype=np.float64)
    executed = np.empty((steps, action_dim), dtype=np.int64)
    rewards = np.empty(steps, dtype=np.float64)
    next_states = np.empty((steps, env.state_dim), dtype=np.float64)
    for step in range(steps):
        if random_fraction > 0 and float(explore_rng.uniform()) < random_fraction:
            simplex = explore_rng.generator.dirichlet(np.ones(action_dim))
        elif exploration == "parameter":
            simplex = actor.act(state, network=network)
        elif exploration == "none":
            simplex = actor.act(state)
        else:
            clean = actor.act(state)
            simplex = clean + noise.sample(action_dim, explore_rng)
            if np.any(simplex < 0) or abs(float(simplex.sum()) - 1.0) > 1e-6:
                simplex = project_to_simplex(simplex)
        action = env.allocation_from_simplex(simplex)
        next_state, reward, _ = env.step(action)
        states[step] = state
        executed[step] = action
        rewards[step] = reward
        next_states[step] = next_state
        state = next_state
    return {
        "episode": spec["episode"],
        "lane": spec["lane"],
        "steps": steps,
        "states": states,
        "executed": executed,
        "rewards": rewards,
        "next_states": next_states,
        "episode_return": float(rewards.sum()),
        "sim_time_end": float(env.system.loop.now),
    }


@dataclass
class TransitionBlock:
    """The merge unit: one episode's transitions plus its bookkeeping."""

    episode: int
    lane: int
    steps: int
    #: ``(n, state_dim)`` float64 states.
    states: np.ndarray
    #: ``(n, action_dim)`` int64 *executed* allocations (what the real
    #: dynamics responded to — the dataset's action convention).
    executed: np.ndarray
    #: ``(n,)`` float64 rewards.
    rewards: np.ndarray
    #: ``(n, state_dim)`` float64 next states.
    next_states: np.ndarray
    episode_return: float
    #: Episode-replica simulation clock at the last window (deterministic).
    sim_time_end: float

    @classmethod
    def from_payload(cls, payload: Dict) -> "TransitionBlock":
        return cls(
            episode=payload["episode"],
            lane=payload["lane"],
            steps=payload["steps"],
            states=payload["states"],
            executed=payload["executed"],
            rewards=payload["rewards"],
            next_states=payload["next_states"],
            episode_return=payload["episode_return"],
            sim_time_end=payload["sim_time_end"],
        )


class MergeOnFlushChannel:
    """Reorders worker blocks into episode order and flushes in rounds.

    Workers may hand blocks back in any order; the channel buffers them
    and calls ``on_flush`` with the maximal contiguous episode-order run
    once at least ``flush_interval`` episodes are ready (and once more at
    :meth:`finish` for the remainder).  Because downstream ingestion is
    batch-equals-sequential (``ReplayBuffer.add_batch``), the flush
    cadence is a throughput knob, never a semantics knob.
    """

    def __init__(
        self,
        start: int,
        flush_interval: int,
        on_flush: Callable[[List[TransitionBlock]], None],
    ):
        check_positive("flush_interval", flush_interval)
        self._next = start
        self._flush_interval = flush_interval
        self._on_flush = on_flush
        self._pending: Dict[int, TransitionBlock] = {}
        self.flushed = 0

    def push(self, block: TransitionBlock) -> None:
        if block.episode < self._next or block.episode in self._pending:
            raise ValueError(
                f"episode {block.episode} already merged or pending"
            )
        self._pending[block.episode] = block
        ready = 0
        while self._next + ready in self._pending:
            ready += 1
        if ready >= self._flush_interval:
            self._flush(ready)

    def _flush(self, count: int) -> None:
        run = [self._pending.pop(self._next + i) for i in range(count)]
        self._next += count
        self.flushed += count
        self._on_flush(run)

    def finish(self) -> None:
        """Flush the remaining contiguous run; a gap is a hard error."""
        ready = 0
        while self._next + ready in self._pending:
            ready += 1
        if ready:
            self._flush(ready)
        if self._pending:
            missing = self._next
            raise RuntimeError(
                f"merge channel finished with a gap at episode {missing}; "
                f"pending: {sorted(self._pending)}"
            )


class DistributedCollector:
    """Executes an episode plan over N workers and merges the blocks.

    ``mode='logical'`` runs the fixed round-robin interleave in-process;
    ``mode='physical'`` fans the same plan over a ``ProcessPoolExecutor``
    (``pool.map`` — input order, so completion order can't leak).  Both
    modes flush through the same :class:`MergeOnFlushChannel` with a
    ``workers``-wide round, and both produce byte-identical merged
    output for any worker count.
    """

    def __init__(
        self,
        env_spec: EnvSpec,
        workers: int = 1,
        mode: str = "logical",
        burst_probability: float = 0.0,
        burst_scale: float = 0.0,
    ):
        if mode not in ("logical", "physical"):
            raise ValueError(
                f"mode must be 'logical' or 'physical', got {mode!r}"
            )
        check_in_range("burst_probability", burst_probability, 0.0, 1.0)
        self.env_spec = env_spec
        self.workers = resolve_workers(workers)
        self.mode = mode
        self.burst_probability = burst_probability
        self.burst_scale = burst_scale

    def _episode_spec(
        self, task: EpisodeTask, payload: Dict, random_fraction: float
    ) -> Dict:
        """The plain-data worker argument for one episode."""
        return {
            "episode": task.episode,
            "lane": task.lane,
            "steps": task.steps,
            "seed": task.seed,
            "env_seed": task.env_seed,
            "random_fraction": float(random_fraction),
            "env_factory": self.env_spec.factory,
            "env_params": self.env_spec.params,
            "burst_probability": float(self.burst_probability),
            "burst_scale": float(self.burst_scale),
            "policy": payload,
        }

    def collect(
        self,
        payload: Dict,
        plan: Sequence[EpisodeTask],
        random_fraction: float = 0.0,
        on_flush: Optional[Callable[[List[TransitionBlock]], None]] = None,
    ) -> List[TransitionBlock]:
        """Run every episode of ``plan``; returns blocks in episode order.

        ``on_flush`` receives each merged contiguous run as it becomes
        available (the actor/learner hand-off point); the full ordered
        list is also returned for callers that want it whole.
        """
        if not plan:
            return []
        merged: List[TransitionBlock] = []

        def _ingest(run: List[TransitionBlock]) -> None:
            merged.extend(run)
            if on_flush is not None:
                on_flush(run)

        channel = MergeOnFlushChannel(
            start=plan[0].episode,
            flush_interval=self.workers,
            on_flush=_ingest,
        )
        specs = [
            self._episode_spec(task, payload, random_fraction)
            for task in plan
        ]
        for result in self._run_specs(specs):
            channel.push(TransitionBlock.from_payload(result))
        channel.finish()
        return merged

    def _run_specs(self, specs: List[Dict]) -> Iterable[Dict]:
        if self.mode == "logical" or self.workers == 1 or len(specs) <= 1:
            return map(run_collect_episode, specs)
        return self._run_pool(specs)

    def _run_pool(self, specs: List[Dict]) -> Iterable[Dict]:
        # pool.map yields in *input* order no matter which worker finishes
        # first; an episode failure raises here after the pool winds down
        # (fail-fast abort — only the already-flushed prefix was ingested).
        with ProcessPoolExecutor(max_workers=self.workers) as pool:
            yield from pool.map(run_collect_episode, specs)
