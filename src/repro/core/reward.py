"""Reward functions.

The paper's Eq. (1): ``r(k) = 1 - sum_j w_j(k)`` — "the cumulative
discounted reward R(k) reflects the total number of finished microservices
starting from the current time window".
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.utils.batchpairs import batched_pair

__all__ = ["reward_eq1", "reward_eq1_batch", "cumulative_discounted_reward"]


def reward_eq1(wip: np.ndarray) -> float:
    """Eq. (1): one minus the aggregate work-in-progress."""
    wip = np.asarray(wip, dtype=np.float64)
    if np.any(wip < 0):
        raise ValueError(f"WIP must be non-negative, got {wip}")
    return 1.0 - float(wip.sum())


@batched_pair("reward_eq1", shapes="(K, state_dim) -> (K,)")
def reward_eq1_batch(wip: np.ndarray) -> np.ndarray:
    """Eq. (1) over a ``(K, state_dim)`` batch; returns ``(K,)`` rewards.

    Row ``k`` equals ``reward_eq1(wip[k])`` bit-for-bit (the axis-1 sum
    reduces each row in the same order as the flat sum of one row).
    """
    wip = np.asarray(wip, dtype=np.float64)
    if wip.ndim != 2:
        raise ValueError(f"expected a (K, state_dim) batch, got {wip.shape}")
    if np.any(wip < 0):
        raise ValueError("WIP must be non-negative")
    return 1.0 - wip.sum(axis=1)


def cumulative_discounted_reward(rewards: Sequence[float], gamma: float) -> float:
    """R(k) = sum_t gamma^(t-k) r(t) over a finite trajectory."""
    if not 0.0 <= gamma <= 1.0:
        raise ValueError(f"gamma must lie in [0, 1], got {gamma!r}")
    total = 0.0
    discount = 1.0
    for reward in rewards:
        total += discount * reward
        discount *= gamma
    return total
