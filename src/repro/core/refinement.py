"""Model refinement: the Lend–Giveback procedure (Algorithm 1).

Near the WIP boundary (w_j ≈ 0) the raw neural model is unreliable: the
real system is dominated by arrival randomness there, so "no clear
connection between w(k) and m(k) could be observed" (Section IV-C2).
Because microservice types are loosely coupled — w_j(k+1) is mostly
determined by w_j(k) and m_j(k) — the refinement *lends* tasks to a
below-threshold dimension to move the query into the well-modelled
region, predicts, then *gives back* the lent tasks:

    for each dimension j with s_j(k) < tau_j:
        rho_j ~ Uniform(tau_j, omega_j)
        t(k) = s(k) with t_j += rho_j
        t(k+1) = f̂_Φ(t(k), a(k))
        ŝ_j(k+1) = max(t_j(k+1) - rho_j, 0)

where tau_j / omega_j are the p / (100-p) percentiles of w_j over the
dataset D.  Dimensions at or above tau_j pass through the raw model.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.dataset import TransitionDataset
from repro.core.environment_model import EnvironmentModel
from repro.telemetry.profile import NULL_PROFILER, PhaseProfiler
from repro.telemetry.tracer import NULL_TRACER, Tracer
from repro.utils.batchpairs import batched_pair
from repro.utils.rng import RngStream, fallback_stream

__all__ = ["RefinedModel"]


class RefinedModel:
    """Wraps an :class:`EnvironmentModel` with Algorithm 1."""

    def __init__(
        self,
        model: EnvironmentModel,
        tau: np.ndarray,
        omega: np.ndarray,
        rng: Optional[RngStream] = None,
        tracer: Optional[Tracer] = None,
        profiler: Optional[PhaseProfiler] = None,
    ):
        tau = np.asarray(tau, dtype=np.float64)
        omega = np.asarray(omega, dtype=np.float64)
        if tau.shape != (model.state_dim,):
            raise ValueError(
                f"tau shape {tau.shape} != ({model.state_dim},)"
            )
        if omega.shape != tau.shape:
            raise ValueError(f"omega shape {omega.shape} != tau shape {tau.shape}")
        if np.any(omega < tau):
            raise ValueError("omega must be >= tau per dimension")
        if rng is None:
            rng = fallback_stream("refine")
        self.model = model
        self.tau = tau
        self.omega = omega
        self._rng = rng
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.profiler = profiler if profiler is not None else NULL_PROFILER
        #: Count of Lend–Giveback activations (for tests/ablation).
        self.lend_count = 0
        #: Sum of |refined - raw| corrections (the lend–giveback delta).
        self.lend_delta_total = 0.0

    @classmethod
    def from_dataset(
        cls,
        model: EnvironmentModel,
        dataset: TransitionDataset,
        percentile: float = 20.0,
        rng: Optional[RngStream] = None,
        tau_floor: float = 1.0,
        tracer: Optional[Tracer] = None,
        profiler: Optional[PhaseProfiler] = None,
    ) -> "RefinedModel":
        """Initialise tau/omega by "simple statistical analysis" over D.

        ``tau_floor`` keeps the boundary region non-empty when the dataset
        is dominated by zero-WIP samples (the p-percentile of a mostly-zero
        column is 0, which would disable the refinement exactly where the
        paper needs it — at w_j ~ 0).
        """
        tau, omega = dataset.wip_percentiles(percentile)
        tau = np.maximum(tau, tau_floor)
        omega = np.maximum(omega, tau + tau_floor)
        return cls(
            model, tau, omega, rng=rng, tracer=tracer, profiler=profiler
        )

    @property
    def state_dim(self) -> int:
        return self.model.state_dim

    @property
    def action_dim(self) -> int:
        return self.model.action_dim

    # Prediction -------------------------------------------------------------
    def predict(self, state: np.ndarray, action: np.ndarray) -> np.ndarray:
        """Refined one-step prediction (single state only).

        Follows Algorithm 1 line by line: an independent Lend–Giveback
        per below-threshold dimension, then the per-dimension results are
        assembled into ŝ(k+1) (above-threshold dimensions use the raw
        model).  The output is clamped at 0 in every dimension.
        """
        if self.profiler.enabled:
            with self.profiler.phase("refine/predict"):
                return self._predict(state, action)
        return self._predict(state, action)

    def _predict(self, state: np.ndarray, action: np.ndarray) -> np.ndarray:
        state = np.asarray(state, dtype=np.float64)
        action = np.asarray(action, dtype=np.float64)
        if state.ndim != 1:
            raise ValueError(
                "RefinedModel.predict takes one state at a time "
                f"(got shape {state.shape})"
            )
        return self._predict_rows(
            state[np.newaxis], np.atleast_2d(action)
        )[0]

    @batched_pair("predict", shapes="(K, state_dim), (K, action_dim) -> (K, state_dim)")
    def predict_batch(
        self, states: np.ndarray, actions: np.ndarray
    ) -> np.ndarray:
        """Refined predictions for a ``(K, state_dim)`` batch of states.

        One batched raw-model forward plus one lend forward per
        below-threshold *dimension* (covering every affected rollout row
        at once), instead of K * dims batch-of-1 forwards.  For K=1 the
        sequence of model forwards and uniform draws is identical to
        :meth:`predict`, so trajectories are bit-for-bit the same.
        """
        states = np.atleast_2d(np.asarray(states, dtype=np.float64))
        actions = np.atleast_2d(np.asarray(actions, dtype=np.float64))
        if states.shape[0] != actions.shape[0]:
            raise ValueError(
                f"state/action batch sizes differ: "
                f"{states.shape[0]} vs {actions.shape[0]}"
            )
        if self.profiler.enabled:
            with self.profiler.phase("model/predict_batch"):
                return self._predict_rows(states, actions)
        return self._predict_rows(states, actions)

    def _predict_rows(
        self, states: np.ndarray, actions: np.ndarray
    ) -> np.ndarray:
        """Algorithm 1 over rows: dimension-major, matching the serial
        per-dimension draw order when there is a single row."""
        base = np.asarray(self.model.predict(states, actions))
        refined = np.maximum(base, 0.0)
        for j in range(self.state_dim):
            low, high = self.tau[j], self.omega[j]
            if high <= low:
                continue  # degenerate thresholds: nothing to lend
            rows = np.nonzero(states[:, j] < low)[0]
            if rows.size == 0:
                continue
            rho = self._rng.uniform(low, high, size=rows.size)
            lent = states[rows].copy()
            lent[:, j] += rho  # Lend
            if self.profiler.enabled:
                with self.profiler.phase("refine/lend"):
                    predicted = self.model.predict(lent, actions[rows])
            else:
                predicted = self.model.predict(lent, actions[rows])
            giveback = np.maximum(predicted[:, j] - rho, 0.0)  # Giveback
            refined[rows, j] = giveback
            self.lend_count += int(rows.size)
            self.lend_delta_total += float(
                np.sum(np.abs(giveback - np.maximum(base[rows, j], 0.0)))
            )
            if self.tracer.enabled:
                self.tracer.count("refinement/lends", int(rows.size))
        return refined

    def rollout(
        self, initial_state: np.ndarray, actions: np.ndarray
    ) -> np.ndarray:
        """Iterative multi-step prediction through the refined model."""
        actions = np.atleast_2d(np.asarray(actions, dtype=np.float64))
        state = np.asarray(initial_state, dtype=np.float64).copy()
        trajectory = np.zeros((actions.shape[0], self.state_dim))
        for t, action in enumerate(actions):
            state = self.predict(state, action)
            trajectory[t] = state
        return trajectory

    def below_threshold(self, state: np.ndarray) -> np.ndarray:
        """Boolean mask of dimensions the refinement would adjust."""
        return np.asarray(state, dtype=np.float64) < self.tau

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RefinedModel(tau={np.round(self.tau, 1)}, "
            f"lends={self.lend_count})"
        )
