"""The neural environment (performance) model f̂_Φ.

Section IV-C1: the model takes x = (s(k) || a(k)) and predicts s(k+1),
trained to minimise the one-step square error over D (Eq. 2) with
gradient descent and backpropagation.

State encoding: WIP is non-negative and spans three orders of magnitude
(near zero under background load, ~10³ during bursts), so inputs are
``log1p(s)``.  The regression target is the state *difference*
``s(k+1) - s(k)`` rather than the raw next state — per-window WIP changes
are physically bounded by arrival and processing rates regardless of the
absolute queue size, which makes the delta well-conditioned across load
regimes and lets the model extrapolate correctly into the burst regime.
(This is the parameterisation of Nagabandi et al. [25], which the paper
cites as its model-based foundation.)  Actions stay in raw consumer
counts.  Everything is additionally z-scored with statistics refreshed at
each fit.

Beyond one-step prediction, the model supports the *iterative rollout*
evaluation of Section VI-B ("we predict subsequent states and rewards
using the predicted state of the last time window"), which is also how
policy training consumes it.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.dataset import TransitionDataset
from repro.nn import MLP, Adam, MeanSquaredError
from repro.telemetry.profile import NULL_PROFILER, PhaseProfiler
from repro.telemetry.tracer import NULL_TRACER, Tracer
from repro.utils.batchpairs import batched_pair
from repro.utils.rng import RngStream, fallback_stream
from repro.utils.validation import check_positive

__all__ = ["EnvironmentModel"]

#: Cap on predicted log1p(WIP): e^15 ~ 3.3M requests, far beyond any run.
_LOG_CAP = 15.0


class EnvironmentModel:
    """MLP dynamics model in log-state space with z-score normalisation."""

    def __init__(
        self,
        state_dim: int,
        action_dim: int,
        hidden_sizes: Sequence[int] = (20, 20, 20),
        learning_rate: float = 1e-3,
        rng: Optional[RngStream] = None,
        log_space: bool = True,
        predict_delta: bool = True,
        tracer: Optional[Tracer] = None,
        profiler: Optional[PhaseProfiler] = None,
    ):
        check_positive("state_dim", state_dim)
        check_positive("action_dim", action_dim)
        if rng is None:
            rng = fallback_stream("env-model")
        self.state_dim = state_dim
        self.action_dim = action_dim
        self.log_space = log_space
        self.predict_delta = predict_delta
        self.network = MLP(
            [state_dim + action_dim, *hidden_sizes, state_dim],
            hidden_activation="relu",
            output_activation="linear",
            rng=rng.fork("envmodel/net"),
        )
        self.optimizer = Adam(learning_rate)
        self.loss = MeanSquaredError()
        self._rng = rng
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.profiler = profiler if profiler is not None else NULL_PROFILER
        #: Lifetime epoch counter (the `step` of model/epoch_loss metrics).
        self.epochs_trained = 0
        in_dim = state_dim + action_dim
        self._norm: Dict[str, np.ndarray] = {
            "x_mean": np.zeros(in_dim),
            "x_std": np.ones(in_dim),
            "y_mean": np.zeros(state_dim),
            "y_std": np.ones(state_dim),
        }
        self.trained = False

    # Encoding --------------------------------------------------------------
    def _encode_state(self, states: np.ndarray) -> np.ndarray:
        states = np.maximum(np.asarray(states, dtype=np.float64), 0.0)
        return np.log1p(states) if self.log_space else states

    def _encode_inputs(self, states: np.ndarray, actions: np.ndarray) -> np.ndarray:
        return np.concatenate(
            [self._encode_state(states), np.asarray(actions, dtype=np.float64)],
            axis=1,
        )

    def _encode_targets(
        self, states: np.ndarray, next_states: np.ndarray
    ) -> np.ndarray:
        if self.predict_delta:
            return np.asarray(next_states, dtype=np.float64) - np.asarray(
                states, dtype=np.float64
            )
        return self._encode_state(next_states)

    def _decode_prediction(
        self, states: np.ndarray, raw: np.ndarray
    ) -> np.ndarray:
        if self.predict_delta:
            return np.maximum(np.asarray(states, dtype=np.float64) + raw, 0.0)
        if self.log_space:
            return np.expm1(np.clip(raw, 0.0, _LOG_CAP))
        return np.maximum(raw, 0.0)

    # Training --------------------------------------------------------------
    def fit(
        self,
        dataset: TransitionDataset,
        epochs: int = 40,
        batch_size: int = 64,
    ) -> List[float]:
        """Minimise Eq. (2) over D; returns per-epoch mean losses.

        Refitting on a grown dataset refreshes the normalisation statistics
        and continues from the current weights (the paper "train[s the]
        environment model incrementally with newly collected training
        data").
        """
        if self.profiler.enabled:
            with self.profiler.phase("model/fit"):
                return self._fit(dataset, epochs, batch_size)
        return self._fit(dataset, epochs, batch_size)

    def _fit(
        self,
        dataset: TransitionDataset,
        epochs: int,
        batch_size: int,
    ) -> List[float]:
        check_positive("epochs", epochs)
        states, actions, next_states = dataset.arrays()
        x = self._encode_inputs(states, actions)
        y = self._encode_targets(states, next_states)
        self._norm = {
            "x_mean": x.mean(axis=0),
            "x_std": np.maximum(x.std(axis=0), 1e-6),
            "y_mean": y.mean(axis=0),
            "y_std": np.maximum(y.std(axis=0), 1e-6),
        }
        x_n = (x - self._norm["x_mean"]) / self._norm["x_std"]
        y_n = (y - self._norm["y_mean"]) / self._norm["y_std"]

        history: List[float] = []
        batch_rng = self._rng.fork(f"epochs-{self.optimizer.iterations}")
        n = x_n.shape[0]
        for _ in range(epochs):
            # Per-epoch granularity is cheap: the disabled profiler hands
            # back a shared no-op context manager.
            with self.profiler.phase("model/epoch"):
                order = batch_rng.permutation(n)
                losses = []
                for start in range(0, n, batch_size):
                    idx = order[start : start + batch_size]
                    losses.append(
                        self.network.train_batch(
                            x_n[idx],
                            y_n[idx],
                            optimizer=self.optimizer,
                            loss=self.loss,
                        )
                    )
                epoch_loss = float(np.mean(losses))
            history.append(epoch_loss)
            self.epochs_trained += 1
            if self.tracer.enabled:
                self.tracer.metric(
                    "model/epoch_loss", epoch_loss, step=self.epochs_trained
                )
        self.trained = True
        return history

    def evaluate(self, dataset: TransitionDataset) -> float:
        """Mean squared one-step error (normalised units) on a dataset."""
        states, actions, next_states = dataset.arrays()
        x = self._encode_inputs(states, actions)
        y = self._encode_targets(states, next_states)
        x_n = (x - self._norm["x_mean"]) / self._norm["x_std"]
        y_n = (y - self._norm["y_mean"]) / self._norm["y_std"]
        value, _ = self.loss(self.network.forward(x_n), y_n)
        if self.tracer.enabled:
            self.tracer.metric(
                "model/val_loss", value, step=self.epochs_trained
            )
        return value

    # Prediction -------------------------------------------------------------
    def predict(self, state: np.ndarray, action: np.ndarray) -> np.ndarray:
        """One-step prediction ŝ(k+1) = f̂_Φ(s(k), a(k)); batch or single."""
        state = np.asarray(state, dtype=np.float64)
        action = np.asarray(action, dtype=np.float64)
        single = state.ndim == 1
        state2 = np.atleast_2d(state)
        action2 = np.atleast_2d(action)
        if state2.shape[1] != self.state_dim:
            raise ValueError(f"state dim {state2.shape[1]} != {self.state_dim}")
        if action2.shape[1] != self.action_dim:
            raise ValueError(
                f"action dim {action2.shape[1]} != {self.action_dim}"
            )
        if state2.shape[0] != action2.shape[0]:
            raise ValueError("state/action batch sizes differ")
        x = self._encode_inputs(state2, action2)
        x_n = (x - self._norm["x_mean"]) / self._norm["x_std"]
        y_n = self.network.forward(x_n)
        y = y_n * self._norm["y_std"] + self._norm["y_mean"]
        decoded = self._decode_prediction(state2, y)
        return decoded[0] if single else decoded

    @batched_pair("predict", shapes="(K, state_dim), (K, action_dim) -> (K, state_dim)")
    def predict_batch(
        self, states: np.ndarray, actions: np.ndarray
    ) -> np.ndarray:
        """Batched one-step prediction for a ``(K, state_dim)`` block.

        Same computation as :meth:`predict` on a 2-D batch — one network
        forward for all K rollouts — split out so the synthetic-rollout
        engine's hot path shows up under its own profiler phase.
        """
        states = np.asarray(states, dtype=np.float64)
        if states.ndim != 2:
            raise ValueError(
                f"expected a (K, state_dim) batch, got shape {states.shape}"
            )
        if self.profiler.enabled:
            with self.profiler.phase("model/predict_batch"):
                return self.predict(states, actions)
        return self.predict(states, actions)

    def rollout(
        self, initial_state: np.ndarray, actions: np.ndarray
    ) -> np.ndarray:
        """Iterative multi-step prediction from an initial state.

        Feeds each prediction back as the next input — the green dotted
        trace of the paper's Fig. 5.  Returns the (T, state_dim) array of
        predicted states s(1..T).
        """
        actions = np.atleast_2d(np.asarray(actions, dtype=np.float64))
        state = np.asarray(initial_state, dtype=np.float64).copy()
        trajectory = np.zeros((actions.shape[0], self.state_dim))
        for t, action in enumerate(actions):
            state = np.maximum(self.predict(state, action), 0.0)
            trajectory[t] = state
        return trajectory

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"EnvironmentModel({self.network!r}, trained={self.trained})"
