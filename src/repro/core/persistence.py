"""Persist and restore trained MIRAS agents.

A saved agent directory contains:

- ``config.json`` — the full :class:`MirasConfig` (nested dataclasses),
- ``dataset.npz`` — the interaction dataset D,
- ``environment_model.npz`` + ``environment_model_norm.npz`` — f̂_Φ,
- ``actor.npz`` / ``critic.npz`` (+ ``*_target.npz``) — the DDPG networks,
- ``replay.npz`` — the DDPG replay buffer (contents, cursor, and
  wraparound state, restored bit-exactly),
- ``results.json`` — per-iteration training diagnostics.

Loading reconstructs a fully functional agent bound to a caller-provided
environment (the environment itself — a live simulation — is not
serialised; bind to any system with matching dimensions).

Known limitation: optimiser state (Adam moments) is not persisted — a
loaded agent's *policy decisions* are bit-identical and continued
training works against the restored replay buffer, but gradient steps
resume with fresh Adam moments.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Union

import numpy as np

from repro.core.agent import IterationResult, MirasAgent
from repro.core.config import MirasConfig, ModelConfig, PolicyConfig
from repro.core.refinement import RefinedModel
from repro.nn.serialization import load_mlp, save_mlp
from repro.rl.ddpg import DDPGConfig
from repro.sim.env import MicroserviceEnv

__all__ = ["save_agent", "load_agent", "config_to_dict", "config_from_dict"]


def config_to_dict(config: MirasConfig) -> dict:
    """MirasConfig -> plain JSON-serialisable dict."""
    return dataclasses.asdict(config)


def config_from_dict(data: dict) -> MirasConfig:
    """Inverse of :func:`config_to_dict`."""
    data = dict(data)
    model = ModelConfig(**data.pop("model"))
    policy_data = dict(data.pop("policy"))
    ddpg = DDPGConfig(**policy_data.pop("ddpg"))
    policy = PolicyConfig(ddpg=ddpg, **policy_data)
    return MirasConfig(model=model, policy=policy, **data)


def save_agent(directory: Union[str, Path], agent: MirasAgent) -> Path:
    """Write a trained agent to ``directory`` (created if needed)."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)

    (directory / "config.json").write_text(
        json.dumps(config_to_dict(agent.config), indent=2, default=list)
    )

    if len(agent.dataset):
        states, actions, next_states = agent.dataset.arrays()
        np.savez(
            directory / "dataset.npz",
            states=states,
            actions=actions,
            next_states=next_states,
        )

    save_mlp(directory / "environment_model", agent.model.network)
    np.savez(directory / "environment_model_norm.npz", **agent.model._norm)
    save_mlp(directory / "actor", agent.ddpg.actor.network)
    save_mlp(directory / "actor_target", agent.ddpg.actor.target_network)
    save_mlp(directory / "critic", agent.ddpg.critic.network)
    save_mlp(directory / "critic_target", agent.ddpg.critic.target_network)
    np.savez(directory / "replay.npz", **agent.ddpg.replay.state_dict())

    (directory / "results.json").write_text(
        json.dumps([dataclasses.asdict(r) for r in agent.results], indent=2)
    )
    return directory


def load_agent(
    directory: Union[str, Path], env: MicroserviceEnv, seed: int = 0
) -> MirasAgent:
    """Reconstruct an agent saved by :func:`save_agent`, bound to ``env``."""
    directory = Path(directory)
    config = config_from_dict(
        json.loads((directory / "config.json").read_text())
    )
    agent = MirasAgent(env, config, seed=seed)

    dataset_path = directory / "dataset.npz"
    if dataset_path.exists():
        with np.load(dataset_path) as archive:
            states = archive["states"]
            actions = archive["actions"]
            next_states = archive["next_states"]
        if states.shape[1] != env.state_dim:
            raise ValueError(
                f"saved agent has state_dim {states.shape[1]}, environment "
                f"has {env.state_dim}"
            )
        for s, a, s2 in zip(states, actions, next_states):
            agent.dataset.add(s, a, s2)

    agent.model.network = load_mlp(directory / "environment_model.npz")
    with np.load(directory / "environment_model_norm.npz") as norm:
        agent.model._norm = {key: norm[key].copy() for key in norm.files}
    agent.model.trained = True
    if len(agent.dataset) and config.model.refinement_enabled:
        agent.refined_model = RefinedModel.from_dataset(
            agent.model,
            agent.dataset,
            percentile=config.model.refinement_percentile,
            rng=agent._rngs["refine"].fork(f"n{len(agent.dataset)}"),
        )
    elif agent.model.trained:
        agent.refined_model = agent.model

    agent.ddpg.actor.network = load_mlp(directory / "actor.npz")
    agent.ddpg.actor.target_network = load_mlp(directory / "actor_target.npz")
    agent.ddpg.critic.network = load_mlp(directory / "critic.npz")
    agent.ddpg.critic.target_network = load_mlp(
        directory / "critic_target.npz"
    )

    replay_path = directory / "replay.npz"
    if replay_path.exists():
        with np.load(replay_path) as archive:
            agent.ddpg.replay.load_state_dict(
                {key: archive[key] for key in archive.files}
            )

    results_path = directory / "results.json"
    if results_path.exists():
        agent.results = [
            IterationResult(**entry)
            for entry in json.loads(results_path.read_text())
        ]
    return agent
