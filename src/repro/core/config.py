"""MIRAS hyper-parameters, with the paper's MSD and LIGO presets.

Section VI-A3: "For MSD dataset, we use a 3-layer neural network as the
predictive model, each layer has 20 neurons.  Its Actor network has 3
layers, each of which has 256 neurons. ... For LIGO, we use a one-layer
20-neuron neural network as the predictive model. ... both networks of
LIGO have 512 neurons at each layer."  Data-collection schedules: MSD
1,000 steps/iteration with resets every 25 steps and 25-step model
rollouts; LIGO 2,000 steps/iteration with 10-step rollouts.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Sequence

from repro.rl.ddpg import DDPGConfig
from repro.rl.distributed import COLLECT_MODES
from repro.utils.validation import (
    check_in_range,
    check_non_negative,
    check_positive,
)

__all__ = ["ModelConfig", "PolicyConfig", "MirasConfig"]


@dataclass
class ModelConfig:
    """Environment-model (f̂_Φ) hyper-parameters."""

    hidden_sizes: Sequence[int] = (20, 20, 20)
    learning_rate: float = 1e-3
    epochs: int = 40
    batch_size: int = 64
    #: Lend–Giveback percentile p (Algorithm 1): tau = p-pct, omega = (100-p)-pct.
    refinement_percentile: float = 20.0
    refinement_enabled: bool = True

    def __post_init__(self):
        check_positive("learning_rate", self.learning_rate)
        check_positive("epochs", self.epochs)
        check_positive("batch_size", self.batch_size)
        check_in_range(
            "refinement_percentile",
            self.refinement_percentile,
            0.0,
            50.0,
            inclusive=(False, False),
        )


@dataclass
class PolicyConfig:
    """Policy-training schedule on the learnt model."""

    ddpg: DDPGConfig = field(default_factory=DDPGConfig)
    #: Steps per synthetic rollout ("one episode before resetting the
    #: predictive model": 25 for MSD, 10 for LIGO).
    rollout_length: int = 25
    #: Synthetic rollouts per policy-improvement phase.
    rollouts_per_iteration: int = 40
    #: DDPG gradient updates per synthetic environment step.
    updates_per_step: int = 1
    #: Early-stop policy training when the mean rollout return stops
    #: improving for this many consecutive rollout batches ("until
    #: performance of the policy stops improving", Algorithm 2).
    patience: int = 5
    #: Synthetic rollouts advanced together per pass of the vectorised
    #: rollout engine (K in BatchedModelEnv).  1 reproduces the serial
    #: schedule bit-for-bit; larger values trade per-episode update
    #: interleaving for batched model/actor forwards.
    rollout_batch: int = 1
    #: Real-environment collection topology (repro.rl.distributed):
    #: ``serial`` is the historical in-loop collector; ``logical``
    #: executes the fixed round-robin interleave schedule in-process
    #: (deterministic, CI-pinnable); ``physical`` fans the same schedule
    #: over collector processes for throughput.  ``logical`` and
    #: ``physical`` produce byte-identical training state for any worker
    #: count.
    collect_mode: str = "serial"
    #: Collector processes for the distributed modes (0 auto-detects
    #: ``os.cpu_count()``).  Never feeds entropy or ordering — a pure
    #: throughput knob.
    collect_workers: int = 1
    #: Width of the fixed logical-interleave schedule: episode ``e`` runs
    #: on lane ``e mod collect_lanes`` with lane-labelled seed streams.
    #: A *schedule* constant, deliberately independent of
    #: ``collect_workers``, so changing the worker count can never change
    #: which seeds the episodes draw.
    collect_lanes: int = 4

    def __post_init__(self):
        check_positive("rollout_length", self.rollout_length)
        check_positive("rollouts_per_iteration", self.rollouts_per_iteration)
        check_positive("updates_per_step", self.updates_per_step)
        check_positive("patience", self.patience)
        check_positive("rollout_batch", self.rollout_batch)
        check_positive("collect_lanes", self.collect_lanes)
        check_non_negative("collect_workers", self.collect_workers)
        if self.collect_mode not in COLLECT_MODES:
            raise ValueError(
                f"collect_mode must be one of {COLLECT_MODES}, "
                f"got {self.collect_mode!r}"
            )


@dataclass
class MirasConfig:
    """The full Algorithm-2 schedule."""

    model: ModelConfig = field(default_factory=ModelConfig)
    policy: PolicyConfig = field(default_factory=PolicyConfig)
    #: Real-environment steps collected per outer iteration (1,000 MSD /
    #: 2,000 LIGO in the paper).
    steps_per_iteration: int = 1000
    #: Reset ("drain") the real environment every this many collection steps
    #: (25 in the paper).
    reset_interval: int = 25
    #: Outer iterations (the paper observes convergence around 11).
    iterations: int = 12
    #: Real-env steps used to evaluate the policy after each iteration
    #: (25 for MSD, 100 for LIGO).
    eval_steps: int = 25
    #: Fraction of collection steps taken with random actions in the first
    #: iteration (there is no useful policy yet).
    initial_random_fraction: float = 1.0
    #: At each collection reset, probability of injecting a random request
    #: burst so the dataset covers the high-WIP regime the evaluation
    #: bursts (Section VI-D) will visit.  The paper trains against a live
    #: system whose workload already spans load levels; the emulated
    #: background Poisson alone leaves WIP low, so this restores coverage.
    collect_burst_probability: float = 0.3
    #: Burst size cap in units of the consumer budget C (total requests
    #: drawn uniformly from [0, scale * C], split randomly across types).
    collect_burst_scale: float = 20.0
    #: Keep the actor/critic weights from the iteration with the best
    #: real-environment evaluation ("until the policy performs well in
    #: real environment", Algorithm 2).  Protects short runs against a
    #: late policy collapse.
    keep_best_policy: bool = True
    #: Optional early stop for the outer loop: Algorithm 2 repeats "until
    #: the policy performs well in real environment" — iteration stops as
    #: soon as an evaluation reaches this aggregated reward (None: always
    #: run the configured number of iterations).
    target_eval_reward: Optional[float] = None
    #: If > 0, each per-iteration evaluation starts with a request burst of
    #: this many budgets' worth of requests (total = scale * C, split
    #: evenly over workflow types).  Aligns policy selection with the
    #: bursty deployment conditions of Section VI-D; 0 evaluates under
    #: background load only.
    eval_burst_scale: float = 10.0

    def __post_init__(self):
        check_positive("steps_per_iteration", self.steps_per_iteration)
        check_positive("reset_interval", self.reset_interval)
        check_positive("iterations", self.iterations)
        check_positive("eval_steps", self.eval_steps)
        check_in_range(
            "initial_random_fraction", self.initial_random_fraction, 0.0, 1.0
        )
        check_in_range(
            "collect_burst_probability", self.collect_burst_probability, 0.0, 1.0
        )
        check_non_negative("collect_burst_scale", self.collect_burst_scale)
        check_non_negative("eval_burst_scale", self.eval_burst_scale)

    # Presets -----------------------------------------------------------------
    @classmethod
    def msd_paper(cls) -> "MirasConfig":
        """The paper's full-scale MSD schedule (hours of wall-clock)."""
        return cls(
            model=ModelConfig(hidden_sizes=(20, 20, 20)),
            policy=PolicyConfig(
                ddpg=DDPGConfig(hidden_sizes=(256, 256, 256)),
                rollout_length=25,
            ),
            steps_per_iteration=1000,
            reset_interval=25,
            iterations=12,
            eval_steps=25,
        )

    @classmethod
    def ligo_paper(cls) -> "MirasConfig":
        """The paper's full-scale LIGO schedule.

        Note the deliberately *smaller* predictive model: "we use a smaller
        neural network to tackle the overfitting problem" (footnote 4).
        """
        return cls(
            model=ModelConfig(hidden_sizes=(20,)),
            policy=PolicyConfig(
                ddpg=DDPGConfig(hidden_sizes=(512, 512, 512)),
                rollout_length=10,
            ),
            steps_per_iteration=2000,
            reset_interval=25,
            iterations=12,
            eval_steps=100,
        )

    @classmethod
    def msd_fast(cls) -> "MirasConfig":
        """Scaled-down MSD schedule for tests and quick benches.

        Same code path as :meth:`msd_paper`, smaller step counts and
        networks so a full Algorithm-2 run finishes in seconds.
        """
        return cls(
            model=ModelConfig(hidden_sizes=(20, 20, 20), epochs=30),
            policy=PolicyConfig(
                ddpg=DDPGConfig(
                    hidden_sizes=(128, 128), batch_size=64, gamma=0.99
                ),
                rollout_length=25,
                rollouts_per_iteration=25,
                patience=6,
                updates_per_step=2,
            ),
            steps_per_iteration=250,
            reset_interval=25,
            iterations=6,
            eval_steps=25,
        )

    @classmethod
    def ligo_fast(cls) -> "MirasConfig":
        """Scaled-down LIGO schedule for tests and quick benches."""
        return cls(
            model=ModelConfig(hidden_sizes=(20,), epochs=30),
            policy=PolicyConfig(
                ddpg=DDPGConfig(
                    hidden_sizes=(128, 128), batch_size=64, gamma=0.99
                ),
                rollout_length=10,
                rollouts_per_iteration=30,
                patience=6,
                updates_per_step=2,
            ),
            steps_per_iteration=400,
            reset_interval=25,
            iterations=6,
            eval_steps=25,
        )

    def scaled(self, factor: float) -> "MirasConfig":
        """A copy with all step counts multiplied by ``factor`` (>= minimum 1)."""
        check_positive("factor", factor)
        return replace(
            self,
            steps_per_iteration=max(1, int(self.steps_per_iteration * factor)),
            eval_steps=max(1, int(self.eval_steps * factor)),
        )
