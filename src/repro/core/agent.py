"""The MIRAS agent: iterative model-based RL (Algorithm 2).

    Initialize mu_Theta, f_Phi, and D
    repeat
        Collect interactions with real environment using mu_Theta, add to D
        Train environment model f_Phi using D
        repeat
            Collect synthetic samples from refined f_Phi
            Update policy mu_Theta using parameter-noise DDPG
        until performance of the policy stops improving
    until the policy performs well in real environment

Action bookkeeping: the actor emits a point on the simplex; the executed
allocation is ``m = floor(C * a)``.  The dataset D stores the *executed*
integer allocation (that is what the real dynamics responded to, and what
the environment model must learn), while the DDPG replay stores ``m / C``
so critic and actor operate on a consistent simplex-scaled action space.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Union

import numpy as np

from repro.core.config import MirasConfig
from repro.core.dataset import TransitionDataset
from repro.core.environment_model import EnvironmentModel
from repro.core.model_env import BatchedModelEnv, ModelEnv
from repro.core.refinement import RefinedModel
from repro.rl.ddpg import DDPGAgent
from repro.rl.distributed import (
    DistributedCollector,
    EnvSpec,
    TransitionBlock,
    episode_plan,
    policy_payload,
)
from repro.sim.env import MicroserviceEnv
from repro.telemetry.profile import PhaseProfiler
from repro.telemetry.tracer import Tracer
from repro.utils.rng import RngStream, spawn_rngs

__all__ = ["MirasAgent", "IterationResult"]


@dataclass
class IterationResult:
    """Diagnostics for one outer iteration of Algorithm 2."""

    iteration: int
    dataset_size: int
    model_loss: float
    policy_rollouts: int
    policy_mean_return: float
    #: Aggregated reward over the real-environment evaluation (Fig. 6's
    #: vertical axis).
    eval_reward: float
    eval_mean_wip: float
    eval_mean_response_time: float


class MirasAgent:
    """Owns the dataset, the environment model, and the DDPG policy."""

    def __init__(
        self,
        env: MicroserviceEnv,
        config: Optional[MirasConfig] = None,
        seed: int = 0,
        tracer: Optional[Tracer] = None,
        profiler: Optional[PhaseProfiler] = None,
        env_spec: Optional[EnvSpec] = None,
    ):
        self.env = env
        self.config = config or MirasConfig()
        #: Picklable recipe for environment replicas; required by the
        #: distributed collection modes (repro.rl.distributed), which
        #: build one fresh environment per episode per worker.
        self.env_spec = env_spec
        self.seed = seed
        #: Global episode counter across outer iterations — episode
        #: indices (and hence the label-derived seed streams) never
        #: repeat between iterations.
        self._episodes_collected = 0
        #: Telemetry tracer; inherits the environment's system tracer so a
        #: traced system automatically gets training-loop scalars too.
        self.tracer = tracer if tracer is not None else env.system.tracer
        #: Phase profiler; likewise inherited from the system so one
        #: profiler covers simulation dispatch and training phases.
        self.profiler = profiler if profiler is not None else env.system.profiler
        self._rngs = spawn_rngs(
            seed, ["collect", "model", "refine", "model-env", "ddpg"]
        )
        self.dataset = TransitionDataset(env.state_dim, env.action_dim)
        self.model = EnvironmentModel(
            env.state_dim,
            env.action_dim,
            hidden_sizes=self.config.model.hidden_sizes,
            learning_rate=self.config.model.learning_rate,
            rng=self._rngs["model"],
            tracer=self.tracer,
            profiler=self.profiler,
        )
        self.ddpg = DDPGAgent(
            env.state_dim,
            env.action_dim,
            config=self.config.policy.ddpg,
            rng=self._rngs["ddpg"],
            tracer=self.tracer,
            profiler=self.profiler,
        )
        self.refined_model: Optional[Union[RefinedModel, EnvironmentModel]] = None
        self.results: List[IterationResult] = []

    # --- Phase 1: real-environment data collection -----------------------
    def _simplex_to_executed(self, simplex: np.ndarray) -> np.ndarray:
        return self.env.allocation_from_simplex(simplex)

    def collect_real_interactions(
        self, steps: int, random_fraction: float = 0.0
    ) -> int:
        """Run the (exploring) policy on the real system; grow D.

        Every ``config.reset_interval`` steps the environment is drained
        (the paper's reset).  ``random_fraction`` of the steps use uniform
        Dirichlet actions instead of the policy — iteration 0 has no useful
        policy yet.  Returns the number of transitions added.
        """
        if steps <= 0:
            raise ValueError(f"steps must be positive, got {steps}")
        rng = self._rngs["collect"].fork(f"steps-{len(self.dataset)}")
        state = self.env.reset()
        state = self._maybe_inject_burst(state, rng)
        added = 0
        # Transitions are buffered and bulk-inserted via store_batch.  The
        # replay buffer is only *read* during collection when an exploring
        # act() is about to refresh its perturbation (parameter-noise
        # adaptation samples replayed states), so flushing right before
        # that point keeps the buffer state those reads observe — and the
        # final buffer contents — identical to per-step add() calls.
        pending: List[tuple] = []

        def flush() -> None:
            if not pending:
                return
            states, actions, rewards, next_states = zip(*pending)
            pending.clear()
            self.ddpg.store_batch(
                np.stack(states),
                np.stack(actions),
                np.asarray(rewards, dtype=np.float64),
                np.stack(next_states),
            )

        for step in range(steps):
            if step > 0 and step % self.config.reset_interval == 0:
                state = self.env.reset()
                state = self._maybe_inject_burst(state, rng)
                flush()
                self.ddpg.refresh_perturbation()
            if float(rng.uniform()) < random_fraction:
                simplex = rng.generator.dirichlet(np.ones(self.env.action_dim))
            else:
                if self.ddpg.refresh_due():
                    flush()
                simplex = self.ddpg.act(state, explore=True)
            executed = self._simplex_to_executed(simplex)
            next_state, reward, _ = self.env.step(executed)
            self.dataset.add(state, executed.astype(np.float64), next_state)
            pending.append(
                (state, executed / self.env.consumer_budget, reward, next_state)
            )
            state = next_state
            added += 1
        flush()
        return added

    def collect_distributed(
        self, steps: int, random_fraction: float = 0.0
    ) -> int:
        """Distributed actor/learner collection (repro.rl.distributed).

        Slices ``steps`` into the fixed logical-interleave episode
        schedule, runs the episodes over ``policy.collect_workers``
        collectors (in-process for ``logical`` mode, a process pool for
        ``physical``), and ingests the merged transition blocks in
        episode order — dataset rows, replay via ``store_batch``, and one
        ``span.collect`` trace record per episode.  The merged result is
        byte-identical for any worker count and either mode; see
        docs/PERFORMANCE.md for the determinism contract.

        Unlike the serial collector, exploration runs against a frozen
        snapshot of the actor (one parameter-space perturbation per
        episode, no sigma adaptation mid-collection): workers never read
        the learner's replay buffer.  Returns the transitions added.
        """
        if steps <= 0:
            raise ValueError(f"steps must be positive, got {steps}")
        if self.env_spec is None:
            raise RuntimeError(
                "distributed collection needs an env_spec (a picklable "
                "'module:callable' environment recipe); construct the "
                "agent with env_spec=EnvSpec.make(...) or use "
                "collect_mode='serial'"
            )
        cfg = self.config
        policy = cfg.policy
        mode = "physical" if policy.collect_mode == "physical" else "logical"
        collector = DistributedCollector(
            self.env_spec,
            workers=policy.collect_workers,
            mode=mode,
            burst_probability=cfg.collect_burst_probability,
            burst_scale=cfg.collect_burst_scale,
        )
        plan = episode_plan(
            steps,
            cfg.reset_interval,
            policy.collect_lanes,
            self.seed,
            first_episode=self._episodes_collected,
        )
        added = 0

        def ingest(run: List[TransitionBlock]) -> None:
            nonlocal added
            for block in run:
                for row in range(block.steps):
                    self.dataset.add(
                        block.states[row],
                        block.executed[row].astype(np.float64),
                        block.next_states[row],
                    )
                self.ddpg.store_batch(
                    block.states,
                    block.executed / self.env.consumer_budget,
                    block.rewards,
                    block.next_states,
                )
                if self.tracer.enabled:
                    self.tracer.emit(
                        "span.collect",
                        lane=block.lane,
                        episode=block.episode,
                        steps=block.steps,
                        reward=block.episode_return,
                        sim_time=block.sim_time_end,
                    )
                added += block.steps

        collector.collect(
            policy_payload(self.ddpg),
            plan,
            random_fraction=random_fraction,
            on_flush=ingest,
        )
        self._episodes_collected += len(plan)
        return added

    def _maybe_inject_burst(
        self, state: np.ndarray, rng: RngStream
    ) -> np.ndarray:
        """Occasionally start a collection episode with a request burst.

        Keeps the dataset (and hence the environment model and policy)
        covering the high-WIP regime that the Section VI-D evaluation
        bursts will drive the system into.
        """
        cfg = self.config
        if cfg.collect_burst_probability <= 0 or cfg.collect_burst_scale <= 0:
            return state
        if float(rng.uniform()) >= cfg.collect_burst_probability:
            return state
        total = int(
            rng.uniform(0.0, cfg.collect_burst_scale * self.env.consumer_budget)
        )
        if total == 0:
            return state
        names = self.env.system.ensemble.workflow_names()
        shares = rng.generator.dirichlet(np.ones(len(names)))
        counts = {
            name: int(round(total * share))
            for name, share in zip(names, shares)
        }
        self.env.system.inject_burst(counts)
        return self.env.observe()

    # --- Phase 2: model training --------------------------------------------
    def train_model(self) -> float:
        """Fit f̂_Φ on D (Eq. 2) and rebuild the refined model.

        Returns the final-epoch training loss.
        """
        history = self.model.fit(
            self.dataset,
            epochs=self.config.model.epochs,
            batch_size=self.config.model.batch_size,
        )
        if self.config.model.refinement_enabled:
            self.refined_model = RefinedModel.from_dataset(
                self.model,
                self.dataset,
                percentile=self.config.model.refinement_percentile,
                rng=self._rngs["refine"].fork(f"n{len(self.dataset)}"),
                tracer=self.tracer,
                profiler=self.profiler,
            )
        else:
            self.refined_model = self.model
        return history[-1]

    # --- Phase 3: policy training on the model -----------------------------
    def build_model_env(self) -> ModelEnv:
        """A fresh synthetic environment over the current refined model."""
        if self.refined_model is None:
            raise RuntimeError("train_model() must run before policy training")
        return ModelEnv(
            self.refined_model,
            self.dataset,
            consumer_budget=self.env.consumer_budget,
            rollout_length=self.config.policy.rollout_length,
            rng=self._rngs["model-env"].fork(f"n{len(self.dataset)}"),
        )

    def build_batched_model_env(
        self, batch_size: Optional[int] = None
    ) -> BatchedModelEnv:
        """The vectorised synthetic environment (K parallel rollouts)."""
        if self.refined_model is None:
            raise RuntimeError("train_model() must run before policy training")
        return BatchedModelEnv(
            self.refined_model,
            self.dataset,
            consumer_budget=self.env.consumer_budget,
            rollout_length=self.config.policy.rollout_length,
            batch_size=batch_size or self.config.policy.rollout_batch,
            rng=self._rngs["model-env"].fork(f"nb{len(self.dataset)}"),
        )

    def train_policy(self) -> tuple:
        """Inner loop of Algorithm 2: synthetic rollouts + DDPG updates.

        Rollouts advance ``policy.rollout_batch`` (K) episodes per pass
        through the vectorised :class:`BatchedModelEnv` — one batched
        model forward and one perturbed-actor forward per synthetic step
        instead of K batch-of-1 passes.  With K=1 the schedule (RNG
        draws, update cadence, patience accounting) is identical to the
        historical serial loop.

        Stops early once the mean rollout return stops improving for
        ``policy.patience`` consecutive rollouts.  Returns
        (rollouts_run, mean_return_of_last_rollouts).
        """
        cfg = self.config.policy
        model_env = self.build_batched_model_env()
        returns: List[float] = []
        best_return = -np.inf
        stale = 0
        rollouts_run = 0
        stop = False
        while not stop and rollouts_run < cfg.rollouts_per_iteration:
            k = min(cfg.rollout_batch, cfg.rollouts_per_iteration - rollouts_run)
            with self.profiler.phase("agent/rollout_batch"):
                episode_returns = self._run_rollout_batch(model_env, k)
            # Patience bookkeeping consumes episodes in rollout order, as
            # if they had finished one at a time.
            for episode_return in episode_returns:
                episode_return = float(episode_return)
                returns.append(episode_return)
                rollouts_run += 1
                if episode_return > best_return + 1e-9:
                    best_return = episode_return
                    stale = 0
                else:
                    stale += 1
                    if stale >= cfg.patience:
                        stop = True
                        break
        tail = returns[-min(5, len(returns)) :]
        return rollouts_run, float(np.mean(tail))

    def _run_rollout_batch(
        self, model_env: BatchedModelEnv, k: int
    ) -> np.ndarray:
        """Advance K synthetic episodes in lockstep; returns (K,) returns."""
        cfg = self.config.policy
        states = model_env.reset(k)
        self.ddpg.refresh_perturbation()
        episode_returns = np.zeros(k)
        done = False
        while not done:
            simplexes = self.ddpg.act_batch(states, explore=True)
            executed = model_env.allocation_from_simplex_batch(simplexes)
            next_states, rewards, done = model_env.step(executed)
            self.ddpg.store_batch(
                states,
                executed / self.env.consumer_budget,
                rewards,
                next_states,
            )
            if len(self.ddpg.replay) >= cfg.ddpg.batch_size:
                self.ddpg.update_many(cfg.updates_per_step * k)
            states = next_states
            episode_returns += rewards
        return episode_returns

    # --- Evaluation on the real environment -----------------------------------
    def evaluate(self, steps: Optional[int] = None) -> IterationResult:
        """Run the greedy policy on the real system (Fig. 6 measurement).

        With ``config.eval_burst_scale`` > 0 the evaluation episode starts
        with a deterministic burst (scale * C requests split evenly over
        workflow types), so iteration-to-iteration scores are comparable
        and reflect burst handling, not just steady-state behaviour.
        """
        steps = steps or self.config.eval_steps
        state = self.env.reset()
        if self.config.eval_burst_scale > 0:
            names = self.env.system.ensemble.workflow_names()
            per_type = int(
                self.config.eval_burst_scale
                * self.env.consumer_budget
                / len(names)
            )
            if per_type > 0:
                self.env.system.inject_burst({n: per_type for n in names})
                state = self.env.observe()
        total_reward = 0.0
        wip_sums = []
        response_times: List[float] = []
        for _ in range(steps):
            simplex = self.ddpg.act_greedy(state)
            executed = self._simplex_to_executed(simplex)
            state, reward, observation = self.env.step(executed)
            total_reward += reward
            wip_sums.append(float(state.sum()))
            response_times.extend(observation.response_times)
        return IterationResult(
            iteration=len(self.results),
            dataset_size=len(self.dataset),
            model_loss=float("nan"),
            policy_rollouts=0,
            policy_mean_return=float("nan"),
            eval_reward=total_reward,
            eval_mean_wip=float(np.mean(wip_sums)),
            eval_mean_response_time=(
                float(np.mean(response_times)) if response_times else 0.0
            ),
        )

    # --- Algorithm 2 outer loop --------------------------------------------------
    def iterate(
        self, iterations: Optional[int] = None, verbose: bool = False
    ) -> List[IterationResult]:
        """Run the full iterative procedure; returns per-iteration results.

        With ``config.keep_best_policy`` (default), the actor/critic
        weights from the iteration with the highest evaluation reward are
        restored at the end, so a noisy late iteration cannot destroy an
        already-good policy.
        """
        iterations = iterations or self.config.iterations
        best_reward = max(
            (r.eval_reward for r in self.results), default=-np.inf
        )
        best_snapshot = None
        for iteration in range(iterations):
            random_fraction = (
                self.config.initial_random_fraction if len(self.results) == 0 else 0.0
            )
            # Once-per-iteration phases: no ``enabled`` guard needed, the
            # disabled profiler hands back a shared no-op context manager.
            with self.profiler.phase("agent/collect"):
                if self.config.policy.collect_mode == "serial":
                    self.collect_real_interactions(
                        self.config.steps_per_iteration,
                        random_fraction=random_fraction,
                    )
                else:
                    self.collect_distributed(
                        self.config.steps_per_iteration,
                        random_fraction=random_fraction,
                    )
            with self.profiler.phase("agent/train_model"):
                model_loss = self.train_model()
            with self.profiler.phase("agent/train_policy"):
                rollouts, mean_return = self.train_policy()
            with self.profiler.phase("agent/evaluate"):
                result = self.evaluate()
            result.model_loss = model_loss
            result.policy_rollouts = rollouts
            result.policy_mean_return = mean_return
            self.results.append(result)
            self._trace_iteration(result)
            if result.eval_reward > best_reward:
                best_reward = result.eval_reward
                best_snapshot = self._snapshot_policy()
            if verbose:  # pragma: no cover - console output
                print(
                    f"[MIRAS iter {result.iteration}] |D|={result.dataset_size} "
                    f"model_loss={model_loss:.4f} rollouts={rollouts} "
                    f"eval_reward={result.eval_reward:.1f}"
                )
            if (
                self.config.target_eval_reward is not None
                and result.eval_reward >= self.config.target_eval_reward
            ):
                break  # "the policy performs well in real environment"
        if self.config.keep_best_policy and best_snapshot is not None:
            self._restore_policy(best_snapshot)
        return self.results

    def _trace_iteration(self, result: IterationResult) -> None:
        """Emit the per-iteration scalars of one Algorithm 2 pass."""
        if not self.tracer.enabled:
            return
        step = result.iteration
        self.tracer.metric("train/model_loss", result.model_loss, step=step)
        self.tracer.metric("train/eval_reward", result.eval_reward, step=step)
        self.tracer.metric(
            "train/eval_mean_wip", result.eval_mean_wip, step=step
        )
        self.tracer.metric(
            "train/eval_mean_response_time",
            result.eval_mean_response_time,
            step=step,
        )
        self.tracer.metric(
            "train/policy_rollouts", result.policy_rollouts, step=step
        )
        self.tracer.metric(
            "train/policy_mean_return", result.policy_mean_return, step=step
        )
        self.tracer.metric(
            "train/dataset_size", result.dataset_size, step=step
        )
        self.tracer.metric(
            "train/param_noise_sigma",
            self.ddpg.param_noise.sigma,
            step=step,
        )
        if isinstance(self.refined_model, RefinedModel):
            self.tracer.metric(
                "train/refinement_lends",
                self.refined_model.lend_count,
                step=step,
            )
            self.tracer.metric(
                "train/refinement_lend_delta",
                self.refined_model.lend_delta_total,
                step=step,
            )

    def _snapshot_policy(self) -> dict:
        """Copy the actor/critic (and target) weights."""
        return {
            "actor": self.ddpg.actor.network.state_dict(),
            "actor_target": self.ddpg.actor.target_network.state_dict(),
            "critic": self.ddpg.critic.network.state_dict(),
            "critic_target": self.ddpg.critic.target_network.state_dict(),
        }

    def _restore_policy(self, snapshot: dict) -> None:
        self.ddpg.actor.network.load_state_dict(snapshot["actor"])
        self.ddpg.actor.target_network.load_state_dict(snapshot["actor_target"])
        self.ddpg.critic.network.load_state_dict(snapshot["critic"])
        self.ddpg.critic.target_network.load_state_dict(
            snapshot["critic_target"]
        )

    def training_trace(self) -> List[float]:
        """Aggregated evaluation rewards per iteration (Fig. 6 series)."""
        return [r.eval_reward for r in self.results]

    def act(self, state: np.ndarray) -> np.ndarray:
        """Greedy integer allocation for deployment."""
        return self._simplex_to_executed(self.ddpg.act_greedy(state))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MirasAgent(|D|={len(self.dataset)}, "
            f"iterations={len(self.results)})"
        )
