"""The interaction dataset D.

"D is the collected training data set, the element of which is tuple
(s(k), a(k), s(k+1))" (Section IV-C1).  The dataset owns the input/output
normalisation statistics the environment model trains with, and the
per-dimension WIP percentiles the Lend–Giveback refinement needs
(Algorithm 1's tau_j and omega_j).
"""

from __future__ import annotations

from typing import Dict, Iterator, Tuple

import numpy as np

from repro.utils.rng import RngStream
from repro.utils.validation import check_in_range, check_positive

__all__ = ["TransitionDataset"]


class TransitionDataset:
    """Growable store of (state, action, next_state) transitions."""

    def __init__(self, state_dim: int, action_dim: int):
        check_positive("state_dim", state_dim)
        check_positive("action_dim", action_dim)
        self.state_dim = state_dim
        self.action_dim = action_dim
        self._states: list = []
        self._actions: list = []
        self._next_states: list = []

    # Growth ------------------------------------------------------------------
    def add(
        self, state: np.ndarray, action: np.ndarray, next_state: np.ndarray
    ) -> None:
        """Append one transition."""
        state = np.asarray(state, dtype=np.float64)
        action = np.asarray(action, dtype=np.float64)
        next_state = np.asarray(next_state, dtype=np.float64)
        if state.shape != (self.state_dim,):
            raise ValueError(f"state shape {state.shape} != ({self.state_dim},)")
        if action.shape != (self.action_dim,):
            raise ValueError(
                f"action shape {action.shape} != ({self.action_dim},)"
            )
        if next_state.shape != (self.state_dim,):
            raise ValueError(
                f"next_state shape {next_state.shape} != ({self.state_dim},)"
            )
        self._states.append(state)
        self._actions.append(action)
        self._next_states.append(next_state)

    def extend(self, other: "TransitionDataset") -> None:
        """Append every transition from another dataset."""
        if (other.state_dim, other.action_dim) != (self.state_dim, self.action_dim):
            raise ValueError("dataset dimension mismatch")
        self._states.extend(other._states)
        self._actions.extend(other._actions)
        self._next_states.extend(other._next_states)

    # Views --------------------------------------------------------------------
    def arrays(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(states, actions, next_states) as stacked arrays."""
        if not self._states:
            raise RuntimeError("dataset is empty")
        return (
            np.stack(self._states),
            np.stack(self._actions),
            np.stack(self._next_states),
        )

    def inputs_targets(self) -> Tuple[np.ndarray, np.ndarray]:
        """Model-ready (x, y): x = s || a (Section IV-C1), y = s'."""
        states, actions, next_states = self.arrays()
        return np.concatenate([states, actions], axis=1), next_states

    # Statistics -----------------------------------------------------------------
    def normalization(self) -> Dict[str, np.ndarray]:
        """Mean/std for inputs and targets (std floored at 1e-6)."""
        x, y = self.inputs_targets()
        return {
            "x_mean": x.mean(axis=0),
            "x_std": np.maximum(x.std(axis=0), 1e-6),
            "y_mean": y.mean(axis=0),
            "y_std": np.maximum(y.std(axis=0), 1e-6),
        }

    def wip_percentiles(self, p: float) -> Tuple[np.ndarray, np.ndarray]:
        """Algorithm 1's thresholds: (tau, omega) per WIP dimension.

        ``tau_j`` is the p-percentile of w_j in D and ``omega_j`` the
        (100-p)-percentile.
        """
        check_in_range("p", p, 0.0, 50.0, inclusive=(False, False))
        states, _, _ = self.arrays()
        tau = np.percentile(states, p, axis=0)
        omega = np.percentile(states, 100.0 - p, axis=0)
        return tau, omega

    # Training helpers ---------------------------------------------------------
    def split(
        self, test_fraction: float, rng: RngStream
    ) -> Tuple["TransitionDataset", "TransitionDataset"]:
        """Random (train, test) split."""
        check_in_range(
            "test_fraction", test_fraction, 0.0, 1.0, inclusive=(False, False)
        )
        n = len(self)
        if n < 2:
            raise RuntimeError("need at least 2 transitions to split")
        indices = rng.permutation(n)
        n_test = max(1, int(round(n * test_fraction)))
        test_idx = set(indices[:n_test].tolist())
        train = TransitionDataset(self.state_dim, self.action_dim)
        test = TransitionDataset(self.state_dim, self.action_dim)
        for i in range(n):
            target = test if i in test_idx else train
            target.add(self._states[i], self._actions[i], self._next_states[i])
        return train, test

    def minibatches(
        self, batch_size: int, rng: RngStream
    ) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        """Shuffled (x, y) minibatches covering one epoch."""
        check_positive("batch_size", batch_size)
        x, y = self.inputs_targets()
        order = rng.permutation(len(self))
        for start in range(0, len(self), batch_size):
            idx = order[start : start + batch_size]
            yield x[idx], y[idx]

    def sample_states(self, count: int, rng: RngStream) -> np.ndarray:
        """Random states from D (model-env episode starts)."""
        check_positive("count", count)
        states, _, _ = self.arrays()
        idx = rng.choice(len(self), size=count, replace=count > len(self))
        return states[idx]

    def __len__(self) -> int:
        return len(self._states)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TransitionDataset(n={len(self)}, dims="
            f"{self.state_dim}/{self.action_dim})"
        )
