"""Synthetic environment backed by the learnt (refined) model.

Policy learning interacts with this instead of the real system: "we train
a deep reinforcement learning agent by letting it interact with the learnt
environment model f̂_Φ instead of the actual real environment, and observe
rewards and state transitions" (Section IV-D).  The interface mirrors
:class:`repro.sim.env.MicroserviceEnv` (reset/step/step_simplex) so the
same DDPG loop runs against either.
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

import numpy as np

from repro.core.dataset import TransitionDataset
from repro.core.environment_model import EnvironmentModel
from repro.core.refinement import RefinedModel
from repro.core.reward import reward_eq1, reward_eq1_batch
from repro.utils.rng import RngStream, fallback_stream
from repro.utils.validation import check_positive

__all__ = ["ModelEnv", "BatchedModelEnv"]


class ModelEnv:
    """reset/step environment over a learnt dynamics model."""

    def __init__(
        self,
        model: Union[EnvironmentModel, RefinedModel],
        dataset: TransitionDataset,
        consumer_budget: int,
        rollout_length: int = 25,
        rng: Optional[RngStream] = None,
    ):
        check_positive("consumer_budget", consumer_budget)
        check_positive("rollout_length", rollout_length)
        if rng is None:
            rng = fallback_stream("model-env")
        self.model = model
        self.dataset = dataset
        self.consumer_budget = consumer_budget
        self.rollout_length = rollout_length
        self._rng = rng
        self._state: Optional[np.ndarray] = None
        self._steps_in_rollout = 0
        self.total_steps = 0

    @property
    def state_dim(self) -> int:
        return self.model.state_dim

    @property
    def action_dim(self) -> int:
        return self.model.action_dim

    # Action mapping (same contract as the real env) ------------------------
    def allocation_from_simplex(self, simplex: np.ndarray) -> np.ndarray:
        """m_j = floor(C * a_j), valid whenever the input sums to one."""
        simplex = np.asarray(simplex, dtype=np.float64)
        if simplex.shape != (self.action_dim,):
            raise ValueError(
                f"simplex shape {simplex.shape} != ({self.action_dim},)"
            )
        if np.any(simplex < -1e-9) or abs(float(simplex.sum()) - 1.0) > 1e-6:
            raise ValueError(f"not a probability simplex: {simplex}")
        return np.floor(
            self.consumer_budget * np.clip(simplex, 0, 1)
        ).astype(np.int64)

    # Core interface -------------------------------------------------------
    def reset(self, initial_state: Optional[np.ndarray] = None) -> np.ndarray:
        """Start a rollout from a dataset state (or a provided one)."""
        if initial_state is not None:
            state = np.asarray(initial_state, dtype=np.float64)
            if state.shape != (self.state_dim,):
                raise ValueError(
                    f"state shape {state.shape} != ({self.state_dim},)"
                )
            self._state = state.copy()
        else:
            self._state = self.dataset.sample_states(1, self._rng)[0].copy()
        self._steps_in_rollout = 0
        return self._state.copy()

    def step(
        self, allocation: np.ndarray
    ) -> Tuple[np.ndarray, float, bool]:
        """Apply m(k) through the model; returns (s(k+1), r(k+1), done).

        ``done`` becomes True when the rollout-length budget is exhausted
        ("one episode before resetting the predictive model").
        """
        if self._state is None:
            raise RuntimeError("call reset() before step()")
        allocation = np.asarray(allocation, dtype=np.float64)
        if allocation.shape != (self.action_dim,):
            raise ValueError(
                f"allocation shape {allocation.shape} != ({self.action_dim},)"
            )
        if allocation.sum() > self.consumer_budget + 1e-9:
            raise ValueError(
                f"allocation {allocation} exceeds budget {self.consumer_budget}"
            )
        next_state = np.maximum(
            np.asarray(self.model.predict(self._state, allocation)), 0.0
        )
        reward = reward_eq1(next_state)
        self._state = next_state
        self._steps_in_rollout += 1
        self.total_steps += 1
        done = self._steps_in_rollout >= self.rollout_length
        return next_state.copy(), reward, done

    def step_simplex(
        self, simplex: np.ndarray
    ) -> Tuple[np.ndarray, float, bool]:
        """Step with a softmax-actor output."""
        return self.step(self.allocation_from_simplex(simplex))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ModelEnv(budget={self.consumer_budget}, "
            f"rollout={self.rollout_length}, steps={self.total_steps})"
        )


class BatchedModelEnv:
    """K synchronous synthetic rollouts as ``(K, state_dim)`` arrays.

    Advances all rollouts through one batched model call per step — the
    vectorised half of the training-loop hot path.  All K rollouts share
    one step counter and terminate together at ``rollout_length`` (the
    paper resets the predictive model after every episode anyway, so
    synthetic episodes always have equal length).

    Determinism contract: for ``batch_size=1`` the RNG draws and model
    forwards are call-for-call identical to :class:`ModelEnv`, so K=1
    trajectories are byte-identical to the serial environment under the
    same seed (pinned by tests/core/test_batched_model_env.py).
    """

    def __init__(
        self,
        model: Union[EnvironmentModel, RefinedModel],
        dataset: TransitionDataset,
        consumer_budget: int,
        rollout_length: int = 25,
        batch_size: int = 1,
        rng: Optional[RngStream] = None,
    ):
        check_positive("consumer_budget", consumer_budget)
        check_positive("rollout_length", rollout_length)
        check_positive("batch_size", batch_size)
        if rng is None:
            rng = fallback_stream("model-env")
        self.model = model
        self.dataset = dataset
        self.consumer_budget = consumer_budget
        self.rollout_length = rollout_length
        self.batch_size = batch_size
        self._rng = rng
        self._states: Optional[np.ndarray] = None
        self._steps_in_rollout = 0
        #: Total synthetic *transitions* generated (K per step call).
        self.total_steps = 0

    @property
    def state_dim(self) -> int:
        return self.model.state_dim

    @property
    def action_dim(self) -> int:
        return self.model.action_dim

    # Action mapping (same contract as the serial env, row-wise) ------------
    def allocation_from_simplex_batch(
        self, simplexes: np.ndarray
    ) -> np.ndarray:
        """``m_j = floor(C * a_j)`` applied to every row."""
        simplexes = np.asarray(simplexes, dtype=np.float64)
        if simplexes.ndim != 2 or simplexes.shape[1] != self.action_dim:
            raise ValueError(
                f"simplex batch shape {simplexes.shape} != "
                f"(K, {self.action_dim})"
            )
        if np.any(simplexes < -1e-9) or np.any(
            np.abs(simplexes.sum(axis=1) - 1.0) > 1e-6
        ):
            raise ValueError(f"not a probability simplex: {simplexes}")
        return np.floor(
            self.consumer_budget * np.clip(simplexes, 0, 1)
        ).astype(np.int64)

    # Core interface -------------------------------------------------------
    def reset(self, batch_size: Optional[int] = None) -> np.ndarray:
        """Start K rollouts from dataset states; returns ``(K, state_dim)``."""
        k = batch_size if batch_size is not None else self.batch_size
        check_positive("batch_size", k)
        self._states = self.dataset.sample_states(k, self._rng).copy()
        self._steps_in_rollout = 0
        return self._states.copy()

    def step(
        self, allocations: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, bool]:
        """Apply one ``(K, action_dim)`` allocation block to all rollouts.

        Returns ``(next_states, rewards, done)`` where ``rewards`` has
        shape ``(K,)`` and ``done`` applies to the whole batch.
        """
        if self._states is None:
            raise RuntimeError("call reset() before step()")
        allocations = np.asarray(allocations, dtype=np.float64)
        if allocations.shape != (self._states.shape[0], self.action_dim):
            raise ValueError(
                f"allocation batch shape {allocations.shape} != "
                f"({self._states.shape[0]}, {self.action_dim})"
            )
        if np.any(allocations.sum(axis=1) > self.consumer_budget + 1e-9):
            raise ValueError(
                f"allocation exceeds budget {self.consumer_budget}"
            )
        next_states = np.maximum(
            np.asarray(self.model.predict_batch(self._states, allocations)),
            0.0,
        )
        rewards = reward_eq1_batch(next_states)
        self._states = next_states
        self._steps_in_rollout += 1
        self.total_steps += next_states.shape[0]
        done = self._steps_in_rollout >= self.rollout_length
        return next_states.copy(), rewards, done

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BatchedModelEnv(K={self.batch_size}, "
            f"budget={self.consumer_budget}, "
            f"rollout={self.rollout_length}, steps={self.total_steps})"
        )
