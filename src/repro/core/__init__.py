"""MIRAS: model-based reinforcement learning for resource allocation.

The paper's primary contribution (Sections III–IV):

- :mod:`repro.core.dataset` — the interaction dataset D of
  (s(k), a(k), s(k+1)) tuples,
- :mod:`repro.core.environment_model` — the neural performance model
  f̂_Φ(s, a) → ŝ' trained by one-step square error (Eq. 2),
- :mod:`repro.core.refinement` — the Lend–Giveback boundary refinement
  (Algorithm 1),
- :mod:`repro.core.model_env` — a synthetic environment backed by the
  refined model, on which the DDPG policy trains,
- :mod:`repro.core.agent` — the iterative model/policy training loop
  (Algorithm 2),
- :mod:`repro.core.config` — all hyper-parameters, with the paper's MSD
  and LIGO presets.
"""

from repro.core.agent import IterationResult, MirasAgent
from repro.core.config import MirasConfig, ModelConfig, PolicyConfig
from repro.core.dataset import TransitionDataset
from repro.core.environment_model import EnvironmentModel
from repro.core.model_env import BatchedModelEnv, ModelEnv
from repro.core.persistence import load_agent, save_agent
from repro.core.refinement import RefinedModel
from repro.core.reward import (
    reward_eq1,
    reward_eq1_batch,
    cumulative_discounted_reward,
)

__all__ = [
    "MirasAgent",
    "IterationResult",
    "MirasConfig",
    "ModelConfig",
    "PolicyConfig",
    "TransitionDataset",
    "EnvironmentModel",
    "RefinedModel",
    "save_agent",
    "load_agent",
    "ModelEnv",
    "BatchedModelEnv",
    "reward_eq1",
    "reward_eq1_batch",
    "cumulative_discounted_reward",
]
