"""Batched event substrate: the million-request simulator.

:class:`BatchedWorkflowSystem` is a drop-in subclass of
:class:`repro.sim.system.MicroserviceWorkflowSystem` that replaces the
object-per-request hot path with array-backed state:

- requests live in a :class:`repro.sim.requests.RequestPool`
  (struct-of-arrays, integer-indexed),
- queues are :class:`repro.sim.queueing.IndexFifo` index buffers,
- events are typed integer rows on a :class:`repro.sim.events.TypedEventLoop`,
- dependency routing runs on a
  :class:`repro.sim.tds.CompiledDependencyTable`.

The control surface (``apply_allocation``, ``run_window``, ``drain``,
``inject_burst``, observations, conservation checks) is inherited
unchanged.  Semantics are *event-for-event identical* to the serial
substrate: same seed, same scenario -> byte-identical traces and equal
:func:`repro.sim.substrate.substrate_snapshot` results.  The contract —
and the exact preconditions of the vectorised window fast path below —
is written down in docs/SIMULATOR.md and pinned by
tests/sim/test_batched_substrate.py.

Two execution tiers:

1. **Exact tier** — the typed event loop pops one event at a time and
   drives :class:`repro.sim.microservice.BatchedMicroservice` executors.
   Always available; handles tracing, scaling, faults, arrivals.
2. **Vectorised window replay** (the fast path) — when a window is a
   pure processing race (only task-finish events pending, no tracing, no
   draining consumers), the whole window is re-simulated arithmetically:
   per-microservice completion chains with block-prefetched service
   draws, then one global merge that replays dependency routing, queue
   counters and metrics with numpy.  Any condition the replay cannot
   reproduce exactly (a queue runs dry, a completion-time tie, a publish
   into a microservice with idle consumers) *aborts before any state
   mutation* — the RNG prefetch rolls back, the popped events are
   re-inserted, and the exact tier runs the window instead.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.sim.events import TypedEventLoop
from repro.sim.microservice import BatchedMicroservice
from repro.sim.requests import RequestPool
from repro.sim.system import MicroserviceWorkflowSystem
from repro.sim.tds import CompiledDependencyTable, TaskDependencyService

__all__ = ["BatchedWorkflowSystem", "BatchedInvoker"]


class BatchedInvoker:
    """Integer-indexed workflow invoker (Fig. 1 steps 1, 2 and 4).

    Mirrors :class:`repro.sim.invoker.WorkflowInvoker` exactly —
    submission order, TDS read accounting, AND-join publish points,
    completion detection — but addresses workflow instances by pool row
    and tasks by compiled-table indices.  The AND-join test is a
    countdown (``wf_pred_remaining`` hits zero) instead of the serial
    set-membership scan; both fire at the same completion event.
    """

    def __init__(
        self,
        loop: TypedEventLoop,
        tds: TaskDependencyService,
        table: CompiledDependencyTable,
        pool: RequestPool,
        services: List[BatchedMicroservice],
        on_workflow_complete=None,
    ):
        self.loop = loop
        self.tds = tds
        self.table = table
        self.pool = pool
        self.services = services
        self.on_workflow_complete = on_workflow_complete
        self.submitted_total = 0
        self.completed_total = 0
        self._workflow_index = {
            name: i for i, name in enumerate(table.workflow_names)
        }
        self._task_names = list(table.ensemble.task_names())

    def workflow_index(self, workflow_type: str) -> int:
        try:
            return self._workflow_index[workflow_type]
        except KeyError:
            raise KeyError(f"unknown workflow type {workflow_type!r}") from None

    # Submission ------------------------------------------------------------
    def submit(self, workflow_type: str, arrival_window: int) -> int:
        """Steps 1–2 of Fig. 1; returns the workflow's pool row index."""
        w = self.workflow_index(workflow_type)
        table = self.table
        pool = self.pool
        now = self.loop.now
        wfi = pool.add_workflow(
            w, now, table.size[w], arrival_window, table.pred_counts[w]
        )
        self.submitted_total += 1
        self.tds.account_reads(1)  # entry-tasks query
        for _local, g in table.entries[w]:
            ti = pool.add_task(g, wfi, now)
            self.services[g].publish(ti)
        return wfi

    # Completion routing ------------------------------------------------------
    def handle_task_completion(self, task: int, now: float) -> None:
        """Step 4 of Fig. 1: publish ready successors; detect completion."""
        pool = self.pool
        table = self.table
        wfi = int(pool.task_workflow[task])
        g = int(pool.task_type[task])
        w = int(pool.wf_type[wfi])
        local = int(table.local_of_task[w][g])
        if pool.wf_task_done[wfi, local]:
            raise RuntimeError(
                f"task {self._task_names[g]!r} completed twice for "
                f"workflow request {wfi}"
            )
        pool.wf_task_done[wfi, local] = 1

        self.tds.account_reads(1)  # successors query
        for s_local, s_g in table.successors[w][local]:
            self.tds.account_reads(1)  # predecessors query (AND-join check)
            remaining = int(pool.wf_pred_remaining[wfi, s_local]) - 1
            pool.wf_pred_remaining[wfi, s_local] = remaining
            if remaining == 0:
                ti = pool.add_task(s_g, wfi, self.loop.now)
                self.services[s_g].publish(ti)
            elif remaining < 0:  # pragma: no cover - double-completion guard
                raise RuntimeError(
                    f"AND-join counter underflow for workflow request {wfi}"
                )

        done = int(pool.wf_done_count[wfi]) + 1
        pool.wf_done_count[wfi] = done
        if done == int(pool.wf_total_tasks[wfi]):
            pool.wf_completion[wfi] = now
            self.completed_total += 1
            if self.on_workflow_complete is not None:
                self.on_workflow_complete(wfi)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BatchedInvoker(submitted={self.submitted_total}, "
            f"completed={self.completed_total})"
        )


class BatchedWorkflowSystem(MicroserviceWorkflowSystem):
    """Array-backed workflow system, semantics-equal to the serial one.

    Construction, control surface and observations are inherited; only
    the substrate (:meth:`_build_substrate`) and the window advance
    (:meth:`_advance_window`) differ.  ``fast_windows`` / ``fast_aborts``
    count vectorised replays and their fallbacks, so benchmarks and
    tests can assert the fast path actually engaged.

    API deltas (documented in docs/SIMULATOR.md): :meth:`submit` and
    :meth:`inject_burst` return integer pool row indices instead of
    :class:`repro.sim.requests.WorkflowRequest` objects.
    """

    # Substrate wiring ----------------------------------------------------
    def _build_substrate(self) -> None:
        self.loop = TypedEventLoop(profiler=self.profiler)
        self.table = CompiledDependencyTable(self.ensemble)
        self.pool = RequestPool(self.table.max_tasks)
        self.microservices: Dict[str, BatchedMicroservice] = {}
        self._services: List[BatchedMicroservice] = []
        # Same insertion and RNG-fork order as the serial substrate:
        # ensemble.task_types order IS global task-index order.
        for g, task_type in enumerate(self.ensemble.task_types):
            ms = BatchedMicroservice(
                task_type,
                index=g,
                loop=self.loop,
                cluster=self.cluster,
                rng=self._rngs["service_times"].fork(task_type.name),
                pool=self.pool,
                on_task_complete=self._on_batched_task_complete,
                startup_delay_range=self.config.startup_delay_range,
                scale_down_mode=self.config.scale_down_mode,
                tracer=self.tracer,
            )
            self.microservices[task_type.name] = ms
            self._services.append(ms)
        self.invoker = BatchedInvoker(
            self.loop,
            self.tds,
            self.table,
            self.pool,
            self._services,
            on_workflow_complete=self._on_batched_workflow_complete,
        )
        self.loop.bind_executors(self._execute_finish, self._execute_ready)
        self._task_names = list(self.ensemble.task_names())
        #: Windows advanced by the vectorised replay / aborted attempts.
        self.fast_windows = 0
        self.fast_aborts = 0
        #: Abort tallies by reason (diagnostics; see docs/SIMULATOR.md).
        self.fast_abort_reasons: Dict[str, int] = {}
        self._build_fast_tables()

    def _execute_finish(self, ms_index: int, slot: int) -> None:
        self._services[ms_index].on_finished(slot)

    def _execute_ready(self, ms_index: int, slot: int) -> None:
        self._services[ms_index].on_ready(slot)

    # Workload interface -------------------------------------------------
    def submit(self, workflow_type: str) -> int:
        """Submit one workflow request now; returns its pool row index."""
        wfi = self.invoker.submit(workflow_type, self.window_index)
        self._window_arrivals[workflow_type] = (
            self._window_arrivals.get(workflow_type, 0) + 1
        )
        self.delay_tracker.record_arrival(self.window_index, workflow_type)
        if self.tracer.enabled:
            self._trace_request_ids[wfi] = self._requests_traced
            self.tracer.emit(
                "event.arrival",
                workflow=workflow_type,
                request_id=self._requests_traced,
            )
            self._requests_traced += 1
        return wfi

    def inject_burst(self, counts: Mapping[str, int]) -> List[int]:
        """Submit a burst immediately; returns pool row indices.

        Submissions that can trigger immediate dispatch (an entry queue
        has an idle consumer) or must emit per-request trace events go
        through the exact per-request path; the remainder is appended as
        whole arrays — workflow rows, task rows, TDS read accounting and
        queue contents land exactly as the per-request loop would leave
        them (see docs/SIMULATOR.md on burst-order equivalence).
        """
        pool = self.pool
        table = self.table
        requests: List[int] = []
        for workflow_type, count in counts.items():
            if count < 0:
                raise ValueError(
                    f"burst count for {workflow_type!r} must be >= 0, got {count}"
                )
            w = self.invoker.workflow_index(workflow_type)
            entry_services = [self._services[g] for _l, g in table.entries[w]]
            remaining = count
            while remaining and (
                self.tracer.enabled
                or any(ms.has_idle() for ms in entry_services)
            ):
                requests.append(self.submit(workflow_type))
                remaining -= 1
            if not remaining:
                continue
            now = self.loop.now
            first = pool.add_workflows(
                remaining, w, now, table.size[w], self.window_index,
                table.pred_counts[w],
            )
            wfis = np.arange(first, first + remaining, dtype=np.int64)
            self.invoker.submitted_total += remaining
            self.tds.account_reads(remaining)  # one entry-tasks query each
            for _local, g in table.entries[w]:
                tis = pool.add_tasks(
                    np.full(remaining, g, dtype=np.int32), wfis, now
                )
                self._services[g].publish_many(tis)
            self._window_arrivals[workflow_type] = (
                self._window_arrivals.get(workflow_type, 0) + remaining
            )
            self.delay_tracker.record_arrivals(
                remaining, self.window_index, workflow_type
            )
            requests.extend(wfis.tolist())
        return requests

    # Completion bookkeeping ----------------------------------------------
    def _on_batched_task_complete(self, task: int, now: float) -> None:
        pool = self.pool
        name = self._task_names[pool.task_type[task]]
        self._window_task_completions[name] = (
            self._window_task_completions.get(name, 0) + 1
        )
        if self.tracer.enabled:
            # Same emit point as the serial substrate's _on_task_complete:
            # after event.task_complete, before successor publishes.
            self.tracer.emit(
                "event.task_span",
                service=name,
                request_id=self._trace_request_ids.get(
                    int(pool.task_workflow[task]), -1
                ),
                published=float(pool.task_published_at[task]),
                started=float(pool.task_started_at[task]),
                deliveries=int(pool.task_deliveries[task]),
                wasted=float(pool.task_wasted_work[task]),
            )
        self.invoker.handle_task_completion(task, now)

    def _on_batched_workflow_complete(self, wfi: int) -> None:
        pool = self.pool
        wf_type = self.table.workflow_names[int(pool.wf_type[wfi])]
        self._window_completions[wf_type] = (
            self._window_completions.get(wf_type, 0) + 1
        )
        delay = float(pool.wf_completion[wfi] - pool.wf_arrival[wfi])
        self._window_response_times.append(delay)
        self._window_response_by_type.setdefault(wf_type, []).append(delay)
        self.delay_tracker.record_completion(
            int(pool.wf_arrival_window[wfi]), wf_type, delay
        )
        if self.tracer.enabled:
            self.tracer.emit(
                "event.workflow_complete",
                workflow=wf_type,
                request_id=self._trace_request_ids.pop(wfi, -1),
                response_time=delay,
            )

    # Vectorised window replay ---------------------------------------------
    def _build_fast_tables(self) -> None:
        """Flatten the compiled dependency table for array lookups."""
        table = self.table
        num_w = table.num_workflow_types
        num_t = table.num_task_types
        max_tasks = table.max_tasks
        #: (workflow type, global task index) -> local index (-1 absent).
        self._local_mat = np.full((num_w, num_t), -1, dtype=np.int64)
        #: (workflow type, local index) -> number of successors.
        self._succ_cnt_mat = np.zeros((num_w, max_tasks), dtype=np.int64)
        #: Per workflow type: successor edges flattened in DAG edge
        #: order, with CSR-style offsets per local index.
        self._edges_local: List[np.ndarray] = []
        self._edges_global: List[np.ndarray] = []
        self._edge_ptr: List[np.ndarray] = []
        for w in range(num_w):
            self._local_mat[w] = table.local_of_task[w]
            locs: List[int] = []
            globs: List[int] = []
            ptr = [0]
            for succs in table.successors[w]:
                for s_local, s_global in succs:
                    locs.append(s_local)
                    globs.append(s_global)
                ptr.append(len(locs))
            self._edges_local.append(np.array(locs, dtype=np.int64))
            self._edges_global.append(np.array(globs, dtype=np.int64))
            edge_ptr = np.array(ptr, dtype=np.int64)
            self._edge_ptr.append(edge_ptr)
            self._succ_cnt_mat[w, : table.size[w]] = np.diff(edge_ptr)
        #: Strictly larger than any per-completion successor count, so
        #: ``rank * K + edge`` orders publishes lexicographically.
        self._edge_key_base = int(self._succ_cnt_mat.max()) + 1

    def _advance_window(self, end: float) -> None:
        if self._fast_window_ok():
            if self._try_fast_window(end):
                self.fast_windows += 1
                return
            self.fast_aborts += 1
        self.loop.run_until(end)

    def _fast_window_ok(self) -> bool:
        """Static preconditions of the vectorised replay (docs/SIMULATOR.md)."""
        if self.tracer.enabled or self.profiler.enabled:
            return False
        if not self.loop.only_finish_events_pending:
            return False
        for ms in self._services:
            if ms.draining:
                return False
        return True

    def _try_fast_window(self, end: float) -> bool:
        """Attempt one vectorised window; True if committed.

        All abort conditions are detected before any state mutation
        other than RNG prefetch consumption (rolled back) and the
        popped due events (re-inserted), so an abort leaves the system
        exactly as the exact tier expects it.
        """
        loop = self.loop
        due = loop.pop_due_finish_events(end)
        if not due:
            loop.commit_fast_window(end, 0, 0)
            return True
        per_ms: Dict[int, List[Tuple[float, int, int]]] = {}
        for event_time, seq, ms_i, slot in due:
            per_ms.setdefault(ms_i, []).append((event_time, seq, slot))

        # Phase 1: per-microservice completion chains (pure; only the
        # RNG prefetch advances, guarded by rollback marks).
        marks: Dict[int, Tuple] = {}
        chains: Dict[int, Tuple[List[float], List[int], List[int], List[float], int]] = {}
        parked: List[Tuple[int, int, float, float, int]] = []

        def _rollback(reason: str) -> None:
            self.fast_abort_reasons[reason] = (
                self.fast_abort_reasons.get(reason, 0) + 1
            )
            for m_i, mark in marks.items():
                self._services[m_i].prefetch.rollback(mark)
            for row in due:
                loop.push_finish_event(row[0], row[1], row[2], row[3])
            return None

        for ms_i, events in per_ms.items():
            ms = self._services[ms_i]
            fixed = ms._fixed_service
            if fixed is None:
                marks[ms_i] = ms.prefetch.begin()
            depth = len(ms.fifo)
            prefix = ms.fifo.peek_prefix(depth)
            pops = 0
            local_heap = list(events)
            heapq.heapify(local_heap)
            local_cur: Dict[int, int] = {}
            local_start: Dict[int, float] = {}
            comps_t: List[float] = []
            comps_slot: List[int] = []
            comps_task: List[int] = []
            comps_start: List[float] = []
            tie = 1 << 60  # new events order after initial seqs on ties
            while local_heap:
                event_time, _tb, slot = heapq.heappop(local_heap)
                cur = local_cur.get(slot)
                if cur is None:
                    cur = ms.current_task[slot]
                    start = ms.processing_started[slot]
                else:
                    start = local_start[slot]
                comps_t.append(event_time)
                comps_slot.append(slot)
                comps_task.append(cur)
                comps_start.append(start)
                if pops == depth:
                    # Queue ran dry: the next dispatch would depend on
                    # mid-window arrivals — only the exact tier orders
                    # those correctly.
                    _rollback("starvation")
                    return False
                nxt = int(prefix[pops])
                pops += 1
                if fixed is not None:
                    service_time = fixed
                else:
                    service_time = ms.prefetch.lognormal(ms._mu, ms._sigma)
                finish_time = event_time + service_time
                local_cur[slot] = nxt
                local_start[slot] = event_time
                if finish_time <= end:
                    tie += 1
                    heapq.heappush(local_heap, (finish_time, tie, slot))
                else:
                    parked.append((ms_i, slot, event_time, finish_time, nxt))
            chains[ms_i] = (comps_t, comps_slot, comps_task, comps_start, pops)

        # Phase 2: global merge (still read-only w.r.t. system state).
        ms_ids = sorted(chains)
        times = np.concatenate(
            [np.asarray(chains[m][0], dtype=np.float64) for m in ms_ids]
        )
        n = times.size
        sorted_times = np.sort(times)
        if sorted_times.size > 1 and np.any(
            sorted_times[1:] == sorted_times[:-1]
        ):
            # Completion-time tie: serial breaks it by seq; the merge
            # cannot, so replay exactly.
            _rollback("time-tie")
            return False
        type_arr = np.concatenate(
            [np.full(len(chains[m][0]), m, dtype=np.int64) for m in ms_ids]
        )
        task_arr = np.concatenate(
            [np.asarray(chains[m][2], dtype=np.int64) for m in ms_ids]
        )
        order = np.argsort(times, kind="stable")
        times_g = times[order]
        type_g = type_arr[order]
        task_g = task_arr[order]

        pool = self.pool
        wf_g = pool.task_workflow[task_g]
        w_g = pool.wf_type[wf_g].astype(np.int64)
        local_g = self._local_mat[w_g, type_g]

        # Abort: double completion (exact tier raises the real error).
        if pool.wf_task_done[wf_g, local_g].any():
            _rollback("double-completion")
            return False
        done_key = wf_g * self.table.max_tasks + local_g
        if np.unique(done_key).size != n:
            _rollback("double-completion")
            return False

        # Successor-edge expansion, in (completion rank, edge) order.
        pub_wf_parts: List[np.ndarray] = []
        pub_local_parts: List[np.ndarray] = []
        pub_global_parts: List[np.ndarray] = []
        pub_key_parts: List[np.ndarray] = []
        pub_rank_parts: List[np.ndarray] = []
        key_base = self._edge_key_base
        for w in np.unique(w_g):
            mask = w_g == w
            loc = local_g[mask]
            ranks = np.nonzero(mask)[0]
            ptr = self._edge_ptr[w]
            starts = ptr[loc]
            cnts = ptr[loc + 1] - starts
            total = int(cnts.sum())
            if total == 0:
                continue
            rep = np.repeat(np.arange(loc.size), cnts)
            offsets = np.arange(total) - np.repeat(np.cumsum(cnts) - cnts, cnts)
            edge_idx = starts[rep] + offsets
            pub_wf_parts.append(wf_g[mask][rep])
            pub_local_parts.append(self._edges_local[w][edge_idx])
            pub_global_parts.append(self._edges_global[w][edge_idx])
            pub_key_parts.append(ranks[rep] * key_base + offsets)
            pub_rank_parts.append(ranks[rep])
        if pub_wf_parts:
            pub_wf = np.concatenate(pub_wf_parts)
            pub_local = np.concatenate(pub_local_parts)
            pub_global = np.concatenate(pub_global_parts)
            pub_key = np.concatenate(pub_key_parts)
            pub_rank = np.concatenate(pub_rank_parts)
        else:
            pub_wf = pub_local = pub_global = pub_key = pub_rank = np.empty(
                0, dtype=np.int64
            )

        # AND-join countdown, computed without mutating the pool: the
        # k-th decrement (in global publish order) of a counter at v0
        # triggers the publish exactly when k == v0.
        v0 = pool.wf_pred_remaining[pub_wf, pub_local].astype(np.int64)
        group = pub_wf * self.table.max_tasks + pub_local
        sort_idx = np.lexsort((pub_key, group))
        group_s = group[sort_idx]
        if group_s.size:
            new_group = np.empty(group_s.size, dtype=bool)
            new_group[0] = True
            new_group[1:] = group_s[1:] != group_s[:-1]
            group_pos = np.nonzero(new_group)[0]
            sizes = np.diff(np.append(group_pos, group_s.size))
            cum = np.arange(group_s.size) - np.repeat(group_pos, sizes)
            v0_s = v0[sort_idx]
            if np.any(cum + 1 > v0_s):  # counter would underflow
                _rollback("join-underflow")
                return False
            trig = sort_idx[cum + 1 == v0_s]
            trig = trig[np.argsort(pub_key[trig])]
        else:
            trig = np.empty(0, dtype=np.int64)
        new_types = pub_global[trig]
        new_wfs = pub_wf[trig]
        new_times = times_g[pub_rank[trig]]

        # Abort: a publish into a microservice with an idle consumer
        # would dispatch immediately — a cross-service cascade the
        # per-service chains above did not simulate.
        target_types = np.unique(new_types)
        for g in target_types:
            if self._services[g].has_idle():
                _rollback("publish-into-idle")
                return False

        # Workflow completions: the rank at which a workflow's done
        # count reaches its size.
        wf_sort = np.lexsort((np.arange(n), wf_g))
        wf_s = wf_g[wf_sort]
        new_wf = np.empty(n, dtype=bool)
        new_wf[0] = True
        new_wf[1:] = wf_s[1:] != wf_s[:-1]
        wf_pos = np.nonzero(new_wf)[0]
        wf_sizes = np.diff(np.append(wf_pos, n))
        wf_cum = np.arange(n) - np.repeat(wf_pos, wf_sizes)
        complete_mask = (
            pool.wf_done_count[wf_s] + wf_cum + 1 == pool.wf_total_tasks[wf_s]
        )
        complete_ranks = np.sort(wf_sort[complete_mask])
        comp_wfs = wf_g[complete_ranks]
        comp_times = times_g[complete_ranks]

        # ---- Commit (no aborts past this point) -------------------------
        seq0 = loop._seq_next
        # Per-microservice queue/consumer state.
        for ms_i in ms_ids:
            ms = self._services[ms_i]
            comps_t, comps_slot, _tasks, comps_start, pops = chains[ms_i]
            popped = ms.fifo.peek_prefix(pops)
            pool.task_deliveries[popped] += 1
            ms.fifo.consume(pops)
            completed_here = len(comps_t)
            ms.unacked += pops - completed_here
            ms.acked_total += completed_here
            ms.tasks_completed += completed_here
            busy_time = ms.slot_busy_time
            slot_done = ms.slot_tasks_completed
            for event_time, slot, start in zip(comps_t, comps_slot, comps_start):
                # Left-fold in completion order: bit-identical to the
                # serial per-event accumulation.
                busy_time[slot] += event_time - start
                slot_done[slot] += 1
            marks.pop(ms_i, None)
        # In-flight tasks at the window boundary: re-insert their finish
        # events with the seq the serial loop would have assigned (one
        # schedule per completion, in completion order).
        if parked:
            starts = np.array([p[2] for p in parked], dtype=np.float64)
            seqs = seq0 + np.searchsorted(times_g, starts)
            for (ms_i, slot, start, finish_time, task), seq in zip(
                parked, seqs.tolist()
            ):
                loop.push_finish_event(finish_time, seq, ms_i, slot)
                ms = self._services[ms_i]
                ms.current_task[slot] = task
                ms.processing_started[slot] = start
                ms.pending_token[slot] = seq
        # Dependency bookkeeping.
        pool.wf_task_done[wf_g, local_g] = 1
        if pub_wf.size:
            np.subtract.at(pool.wf_pred_remaining, (pub_wf, pub_local), 1)
        np.add.at(pool.wf_done_count, wf_g, 1)
        reads = n + int(self._succ_cnt_mat[w_g, local_g].sum())
        self.tds.account_reads(reads)
        # Publishes, in global trigger order, grouped per target queue.
        if new_types.size:
            new_tasks = pool.add_tasks(
                new_types.astype(np.int32), new_wfs, new_times
            )
            for g in target_types:
                mask = new_types == g
                self._services[g].publish_many(new_tasks[mask])
        # Window metrics.
        type_counts = np.bincount(type_g, minlength=len(self._task_names))
        for g in np.nonzero(type_counts)[0]:
            name = self._task_names[g]
            self._window_task_completions[name] = (
                self._window_task_completions.get(name, 0)
                + int(type_counts[g])
            )
        # Workflow completions, in completion order.
        if comp_wfs.size:
            pool.wf_completion[comp_wfs] = comp_times
            self.invoker.completed_total += comp_wfs.size
            for wfi in comp_wfs.tolist():
                self._on_batched_workflow_complete(wfi)
        loop.commit_fast_window(end, n, n)
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BatchedWorkflowSystem({self.ensemble.name!r}, "
            f"t={self.loop.now:.0f}s, window={self.window_index}, "
            f"fast={self.fast_windows})"
        )
