"""The microservice workflow system facade.

Wires together the cluster, TDS ensemble, per-task microservices and the
workflow invoker, and exposes the time-windowed control surface of the
paper's Section II-B: apply an allocation m(k) at a window boundary, let
the world run for one window, observe w(k+1), d(k) and the reward.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.sim.cluster import Cluster
from repro.sim.events import EventLoop
from repro.sim.invoker import WorkflowInvoker
from repro.sim.metrics import (
    DelayByArrivalWindow,
    WindowObservation,
    reward_from_wip,
)
from repro.sim.microservice import Microservice
from repro.sim.requests import TaskRequest, WorkflowRequest
from repro.sim.tds import TaskDependencyService
from repro.telemetry.profile import NULL_PROFILER, PhaseProfiler
from repro.telemetry.tracer import NULL_TRACER, Tracer
from repro.utils.rng import RngStream, spawn_rngs
from repro.utils.validation import check_positive
from repro.workflows.dag import WorkflowEnsemble

__all__ = ["SystemConfig", "MicroserviceWorkflowSystem"]


@dataclass
class SystemConfig:
    """Deployment parameters mirroring the paper's Section V/VI-A setup.

    Attributes
    ----------
    window_length:
        Control-window length in seconds (paper default: 30 s).
    consumer_budget:
        The total-consumer constraint ``C`` (14 for MSD, 30 for LIGO).
    num_nodes:
        Cluster machines (paper: 3 GCP VMs).
    node_capacity:
        Consumer slots per node; ``None`` sizes the cluster with enough
        headroom for the drain ("reset") procedure, which temporarily
        over-provisions consumers beyond ``C``.
    startup_delay_range:
        Container start-up latency bounds (paper measured 5–10 s).
    tds_replicas:
        TDS ensemble size (paper: 3 Zookeeper nodes).
    drain_consumers_per_service:
        Consumers per microservice during :meth:`MicroserviceWorkflowSystem.drain`;
        ``None`` chooses ``consumer_budget`` (aggressive over-provisioning).
    """

    window_length: float = 30.0
    consumer_budget: int = 14
    num_nodes: int = 3
    node_capacity: Optional[int] = None
    startup_delay_range: tuple = (5.0, 10.0)
    tds_replicas: int = 3
    drain_consumers_per_service: Optional[int] = None
    #: "drain" (graceful, Kubernetes-like) or "kill" (immediate + nack).
    scale_down_mode: str = "drain"

    def __post_init__(self):
        check_positive("window_length", self.window_length)
        check_positive("consumer_budget", self.consumer_budget)
        check_positive("num_nodes", self.num_nodes)
        check_positive("tds_replicas", self.tds_replicas)
        if self.scale_down_mode not in ("drain", "kill"):
            raise ValueError(
                f"scale_down_mode must be 'drain' or 'kill', "
                f"got {self.scale_down_mode!r}"
            )

    def resolved_drain_consumers(self, num_task_types: int) -> int:
        """Per-service consumer count used by the drain ("reset").

        Default: three budgets' worth spread across the services —
        "sufficient consumers of each microservice" without exploding the
        cluster for ensembles with many task types.
        """
        if self.drain_consumers_per_service is not None:
            return self.drain_consumers_per_service
        return max(2, math.ceil(3 * self.consumer_budget / num_task_types))

    def resolved_node_capacity(self, num_task_types: int) -> int:
        """Slots per node, with drain headroom when not set explicitly.

        30% headroom covers gracefully-draining consumers that still hold
        a slot while their replacement allocation spins up.
        """
        if self.node_capacity is not None:
            return self.node_capacity
        drain_total = (
            self.resolved_drain_consumers(num_task_types) * num_task_types
        )
        peak = max(self.consumer_budget, drain_total)
        return math.ceil(1.3 * peak / self.num_nodes) + 1


class MicroserviceWorkflowSystem:
    """The complete emulated infrastructure of the paper's Fig. 1."""

    def __init__(
        self,
        ensemble: WorkflowEnsemble,
        config: Optional[SystemConfig] = None,
        seed: int = 0,
        tracer: Optional[Tracer] = None,
        profiler: Optional[PhaseProfiler] = None,
        window_hooks: Optional[
            Sequence[Callable[[WindowObservation], None]]
        ] = None,
    ):
        self.ensemble = ensemble
        self.config = config or SystemConfig()
        #: Phase profiler shared with the event loop (and, via
        #: MirasAgent, the training stack); the disabled NULL_PROFILER by
        #: default.  Profiler output is wall-clock measurement and lives
        #: outside the trace-determinism contract.
        self.profiler = profiler if profiler is not None else NULL_PROFILER
        #: Telemetry tracer shared by every component of this system;
        #: defaults to the disabled NULL_TRACER (near-zero overhead).
        #: Timestamps come from the simulation clock, never wall time.
        #: The clock binding is late: the lambda reads ``self.loop``,
        #: which :meth:`_build_substrate` assigns below.
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.tracer.bind_clock(lambda: self.loop.now)
        #: Called with each WindowObservation at the end of run_window()
        #: — the periodic snapshot hook live consumers (metrics
        #: dashboards, progress meters) attach to.  Fixed at construction
        #: so the set of observers cannot drift mid-run.
        self.window_hooks: Tuple[Callable[[WindowObservation], None], ...] = (
            tuple(window_hooks) if window_hooks else ()
        )
        self._rngs = spawn_rngs(
            seed, ["service_times", "startup", "workload", "misc"]
        )

        self.cluster = Cluster(
            num_nodes=self.config.num_nodes,
            node_capacity=self.config.resolved_node_capacity(
                ensemble.num_task_types
            ),
            tracer=self.tracer,
        )
        self.tds = TaskDependencyService(
            ensemble, replicas=self.config.tds_replicas
        )
        self._build_substrate()

        self.window_index = 0
        self.delay_tracker = DelayByArrivalWindow()
        self.history: List[WindowObservation] = []
        self._window_arrivals: Dict[str, int] = {}
        self._window_completions: Dict[str, int] = {}
        self._window_response_times: List[float] = []
        self._window_response_by_type: Dict[str, List[float]] = {}
        self._window_task_completions: Dict[str, int] = {}
        self._arrival_window_of: Dict[int, int] = {}
        self._arrival_callbacks: List[Callable[[WorkflowRequest], None]] = []
        # Run-local request ids for trace records: the invoker's global
        # request_id counter differs between same-seed runs in one
        # process, which would break trace byte-reproducibility.
        self._requests_traced = 0
        self._trace_request_ids: Dict[int, int] = {}

    # Substrate wiring ----------------------------------------------------
    def _build_substrate(self) -> None:
        """Create the event loop, microservices and invoker.

        Template method: :class:`repro.sim.batched.BatchedWorkflowSystem`
        overrides this to install the array-backed substrate while every
        other wiring step (cluster, TDS, RNG streams, tracer binding)
        stays shared.  The two substrates must fork per-microservice RNG
        streams in the same ``ensemble.task_types`` order — fork order,
        not fork label, determines stream identity.
        """
        self.loop = EventLoop(profiler=self.profiler)
        self.microservices: Dict[str, Microservice] = {}
        for task_type in self.ensemble.task_types:
            self.microservices[task_type.name] = Microservice(
                task_type,
                loop=self.loop,
                cluster=self.cluster,
                rng=self._rngs["service_times"].fork(task_type.name),
                on_task_complete=self._on_task_complete,
                startup_delay_range=self.config.startup_delay_range,
                scale_down_mode=self.config.scale_down_mode,
                tracer=self.tracer,
            )
        self.invoker = WorkflowInvoker(
            self.loop,
            self.tds,
            {name: ms.queue for name, ms in self.microservices.items()},
            on_workflow_complete=self._on_workflow_complete,
        )

    # Workload interface -------------------------------------------------
    @property
    def workload_rng(self) -> RngStream:
        """Seeded stream for arrival processes attached to this system."""
        return self._rngs["workload"]

    def submit(self, workflow_type: str) -> WorkflowRequest:
        """Submit one workflow request now (used by arrival processes)."""
        request = self.invoker.submit(workflow_type)
        self._window_arrivals[workflow_type] = (
            self._window_arrivals.get(workflow_type, 0) + 1
        )
        self._arrival_window_of[request.request_id] = self.window_index
        self.delay_tracker.record_arrival(self.window_index, workflow_type)
        if self.tracer.enabled:
            self._trace_request_ids[request.request_id] = self._requests_traced
            self.tracer.emit(
                "event.arrival",
                workflow=workflow_type,
                request_id=self._requests_traced,
            )
            self._requests_traced += 1
        return request

    def inject_burst(self, counts: Mapping[str, int]) -> List[WorkflowRequest]:
        """Submit a burst of requests immediately (Section VI-D scenarios)."""
        requests: List[WorkflowRequest] = []
        for workflow_type, count in counts.items():
            if count < 0:
                raise ValueError(
                    f"burst count for {workflow_type!r} must be >= 0, got {count}"
                )
            for _ in range(count):
                requests.append(self.submit(workflow_type))
        return requests

    # Completion bookkeeping ----------------------------------------------
    def _on_task_complete(self, task_request: TaskRequest, now: float) -> None:
        name = task_request.task_type
        self._window_task_completions[name] = (
            self._window_task_completions.get(name, 0) + 1
        )
        if self.tracer.enabled:
            # Emitted before successor publishes, so a task's span always
            # precedes the publish records it triggers — the ordering
            # repro.telemetry.critical leans on when walking chains.
            self.tracer.emit(
                "event.task_span",
                service=name,
                request_id=self._trace_request_ids.get(
                    task_request.workflow.request_id, -1
                ),
                published=task_request.published_at,
                started=task_request.started_at,
                deliveries=task_request.deliveries,
                wasted=task_request.wasted_work,
            )
        self.invoker.handle_task_completion(task_request, now)

    def _on_workflow_complete(self, request: WorkflowRequest) -> None:
        wf_type = request.workflow_type
        self._window_completions[wf_type] = (
            self._window_completions.get(wf_type, 0) + 1
        )
        delay = request.response_time()
        self._window_response_times.append(delay)
        self._window_response_by_type.setdefault(wf_type, []).append(delay)
        arrival_window = self._arrival_window_of.pop(request.request_id, None)
        if arrival_window is not None:
            self.delay_tracker.record_completion(arrival_window, wf_type, delay)
        if self.tracer.enabled:
            self.tracer.emit(
                "event.workflow_complete",
                workflow=wf_type,
                request_id=self._trace_request_ids.pop(
                    request.request_id, -1
                ),
                response_time=delay,
            )

    # Control surface --------------------------------------------------------
    def apply_allocation(self, allocation: Sequence[int]) -> None:
        """Scale every microservice to the given consumer counts m(k).

        The vector is indexed by :meth:`WorkflowEnsemble.task_index` order.
        Raises if any entry is negative or fractional; the consumer-budget
        constraint is the *allocator's* responsibility (checked by
        :class:`repro.sim.env.MicroserviceEnv` and the baselines), matching
        the paper where the policy output layer enforces it.
        """
        allocation = np.asarray(allocation)
        if allocation.shape != (self.ensemble.num_task_types,):
            raise ValueError(
                f"allocation has shape {allocation.shape}, expected "
                f"({self.ensemble.num_task_types},)"
            )
        if np.any(allocation < 0):
            raise ValueError(f"allocation must be non-negative: {allocation}")
        if not np.all(allocation == np.floor(allocation)):
            raise ValueError(f"allocation must be integral: {allocation}")
        for task_name, count in zip(self.ensemble.task_names(), allocation):
            self.microservices[task_name].scale_to(int(count))

    def current_allocation(self) -> np.ndarray:
        """Current consumer count per microservice."""
        return np.array(
            [self.microservices[n].allocated for n in self.ensemble.task_names()],
            dtype=np.int64,
        )

    def wip_vector(self) -> np.ndarray:
        """The state w(k): work-in-progress per microservice."""
        return np.array(
            [self.microservices[n].wip for n in self.ensemble.task_names()],
            dtype=np.float64,
        )

    def _advance_window(self, end: float) -> None:
        """Advance simulation time to ``end`` (one window of events).

        Template method: the serial substrate runs the event loop
        directly; the batched substrate first attempts its vectorised
        window replay and falls back to the exact loop.
        """
        self.loop.run_until(end)

    def run_window(self) -> WindowObservation:
        """Advance one control window and return its observation."""
        start = self.loop.now
        end = start + self.config.window_length
        self._advance_window(end)
        wip = self.wip_vector()
        # Publishes since the last window's observation — a persistent
        # snapshot so burst injections between windows are attributed to
        # the window that observes them.
        if not hasattr(self, "_published_snapshot"):
            self._published_snapshot = {
                name: 0 for name in self.microservices
            }
        task_publishes = {}
        for name, ms in self.microservices.items():
            task_publishes[name] = (
                ms.queue.published_total - self._published_snapshot[name]
            )
            self._published_snapshot[name] = ms.queue.published_total
        observation = WindowObservation(
            index=self.window_index,
            start_time=start,
            end_time=end,
            wip=wip,
            allocation=self.current_allocation(),
            reward=reward_from_wip(wip),
            arrivals=dict(self._window_arrivals),
            completions=dict(self._window_completions),
            response_times=list(self._window_response_times),
            response_times_by_type={
                wf: list(times)
                for wf, times in self._window_response_by_type.items()
            },
            task_completions=dict(self._window_task_completions),
            task_publishes=task_publishes,
        )
        self.history.append(observation)
        if self.tracer.enabled:
            self.tracer.emit(
                "span.window",
                index=self.window_index,
                start=start,
                end=end,
                reward=observation.reward,
                wip={n: ms.wip for n, ms in self.microservices.items()},
                allocation={
                    n: ms.allocated for n, ms in self.microservices.items()
                },
                busy={
                    n: ms.busy_consumers
                    for n, ms in self.microservices.items()
                },
                starting={
                    n: ms.starting_consumers
                    for n, ms in self.microservices.items()
                },
                queue_ready={
                    n: ms.queue.ready_count
                    for n, ms in self.microservices.items()
                },
                arrivals=sum(self._window_arrivals.values()),
                completions=sum(self._window_completions.values()),
            )
        self.window_index += 1
        self._window_arrivals = {}
        self._window_completions = {}
        self._window_response_times = []
        self._window_response_by_type = {}
        self._window_task_completions = {}
        for hook in self.window_hooks:
            hook(observation)
        return observation

    def drain(
        self,
        max_windows: int = 40,
        target_wip: float = 0.0,
        consumers_per_service: Optional[int] = None,
    ) -> int:
        """The paper's "reset": over-provision until WIP is (near) zero.

        "'Reset' means to provision sufficient consumers of each
        microservice to reduce WIP close to 0" (Section VI-A3).  Returns the
        number of windows the drain took.  The previous allocation is *not*
        restored — callers apply a fresh one, as the RL loop does.
        """
        if consumers_per_service is None:
            consumers_per_service = self.config.resolved_drain_consumers(
                self.ensemble.num_task_types
            )
        check_positive("consumers_per_service", consumers_per_service)
        drain_allocation = np.full(
            self.ensemble.num_task_types, consumers_per_service, dtype=np.int64
        )
        self.apply_allocation(drain_allocation)
        windows = 0
        while windows < max_windows:
            self.run_window()
            windows += 1
            if float(self.wip_vector().sum()) <= target_wip:
                break
        return windows

    # Conservation / sanity ------------------------------------------------
    def conservation_ok(self) -> bool:
        """No task request lost anywhere in the system."""
        return all(
            ms.queue.conservation_ok() for ms in self.microservices.values()
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MicroserviceWorkflowSystem({self.ensemble.name!r}, "
            f"t={self.loop.now:.0f}s, window={self.window_index})"
        )
