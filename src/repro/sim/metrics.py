"""Window-level metric records.

The paper collects data and makes decisions "at the beginning of each time
window" (Section II-B).  A :class:`WindowObservation` is everything the
controller and the experiment harness can see about one window:

- ``wip`` — the state vector w(k+1) observed at the window's end,
- ``reward`` — the paper's Eq. (1): ``1 - sum_j w_j``,
- arrival/completion counts and response-time statistics,
- the allocation that was active during the window.

:class:`DelayByArrivalWindow` implements the paper's exact d_i(k)
definition — "averaging delays of all requests of type i that **arrive**
during (T_k, T_k+1)" — which is only fully known once those requests finish.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.utils.batchpairs import batched_pair

__all__ = ["WindowObservation", "DelayByArrivalWindow", "reward_from_wip"]


def reward_from_wip(wip: np.ndarray) -> float:
    """The paper's reward, Eq. (1): ``r(k) = 1 - sum_j w_j(k)``."""
    return 1.0 - float(np.sum(wip))


@dataclass
class WindowObservation:
    """Everything observed for one control window."""

    index: int
    start_time: float
    end_time: float
    #: State vector at the end of the window (w(k+1)), one entry per task type.
    wip: np.ndarray
    #: Allocation active during the window (m(k)).
    allocation: np.ndarray
    #: Eq. (1) reward computed from ``wip``.
    reward: float
    #: Workflow requests that arrived during the window, per workflow type.
    arrivals: Dict[str, int] = field(default_factory=dict)
    #: Workflow requests completed during the window, per workflow type.
    completions: Dict[str, int] = field(default_factory=dict)
    #: Response times of workflows completed during the window.
    response_times: List[float] = field(default_factory=list)
    #: Same, grouped by workflow type (the per-workflow curves the paper
    #: discusses for LIGO's CAT/Full/Injection).
    response_times_by_type: Dict[str, List[float]] = field(
        default_factory=dict
    )
    #: Task-level completions during the window, per task type.
    task_completions: Dict[str, int] = field(default_factory=dict)
    #: Task requests published (arrived at each queue) during the window.
    task_publishes: Dict[str, int] = field(default_factory=dict)

    @property
    def total_arrivals(self) -> int:
        return sum(self.arrivals.values())

    @property
    def total_completions(self) -> int:
        return sum(self.completions.values())

    def mean_response_time(self) -> float:
        """Mean response time of workflows completed this window.

        Returns 0.0 when nothing completed — callers that need to
        distinguish "empty" should check ``total_completions``.
        """
        if not self.response_times:
            return 0.0
        return float(np.mean(self.response_times))

    def mean_response_time_for(self, workflow_type: str) -> float:
        """Mean response time of one workflow type this window (0 if none)."""
        times = self.response_times_by_type.get(workflow_type, [])
        if not times:
            return 0.0
        return float(np.mean(times))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"WindowObservation(k={self.index}, wip_sum={float(self.wip.sum()):.0f}, "
            f"reward={self.reward:.1f}, completed={self.total_completions})"
        )


class DelayByArrivalWindow:
    """Attribute workflow delays to the window the request *arrived* in.

    This is the paper's d_i(k).  Because a request's delay is only known at
    completion (possibly many windows later), entries accumulate lazily;
    :meth:`mean_delay` reports the average over *finished* requests of that
    arrival window (partial until the tail completes).
    """

    def __init__(self):
        self._delays: Dict[Tuple[int, str], List[float]] = defaultdict(list)
        self._arrived: Dict[Tuple[int, str], int] = defaultdict(int)

    def record_arrival(self, window_index: int, workflow_type: str) -> None:
        self._arrived[(window_index, workflow_type)] += 1

    @batched_pair("record_arrival", shapes="K, _, _ -> _")
    def record_arrivals(
        self, count: int, window_index: int, workflow_type: str
    ) -> None:
        """Record ``count`` arrivals at once (burst submission path)."""
        if count < 0:
            raise ValueError(f"arrival count must be non-negative, got {count}")
        if count:
            self._arrived[(window_index, workflow_type)] += count

    def record_completion(
        self, arrival_window: int, workflow_type: str, delay: float
    ) -> None:
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        self._delays[(arrival_window, workflow_type)].append(delay)

    def mean_delay(self, window_index: int, workflow_type: str) -> Optional[float]:
        """d_i(k); ``None`` when no request of that type arrived in window k."""
        if self._arrived.get((window_index, workflow_type), 0) == 0:
            return None
        delays = self._delays.get((window_index, workflow_type), [])
        if not delays:
            return None  # arrived but none finished yet
        return float(np.mean(delays))

    def completion_fraction(self, window_index: int, workflow_type: str) -> float:
        """Fraction of window-k arrivals of this type that have finished."""
        arrived = self._arrived.get((window_index, workflow_type), 0)
        if arrived == 0:
            return 1.0
        return len(self._delays.get((window_index, workflow_type), [])) / arrived

    def delay_vector(
        self, window_index: int, workflow_names: Tuple[str, ...]
    ) -> np.ndarray:
        """d(k) as a vector; missing entries are NaN."""
        values = [
            self.mean_delay(window_index, name) for name in workflow_names
        ]
        return np.array(
            [np.nan if v is None else v for v in values], dtype=np.float64
        )
