"""Workflow and task request records.

A :class:`WorkflowRequest` is one submission of a workflow type (the unit
whose response time the paper reports); it fans out into one
:class:`TaskRequest` per task in the workflow's DAG, published according to
the AND-join dependency rules.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional, Set

import numpy as np

from repro.utils.batchpairs import batched_pair

__all__ = ["WorkflowRequest", "TaskRequest", "RequestPool"]

_request_ids = itertools.count()
_task_ids = itertools.count()


@dataclass
class WorkflowRequest:
    """One submitted workflow instance.

    Attributes
    ----------
    workflow_type:
        Name of the workflow type (e.g. ``Type1``, ``CAT``).
    arrival_time:
        Simulation time at which the request entered the system.
    completed_tasks:
        Task names of this instance that have finished processing; drives
        the AND-join readiness test.
    completion_time:
        Set when the last task finishes ("the time when the workflow's last
        task is finished", Section II-B).
    """

    workflow_type: str
    arrival_time: float
    total_tasks: int
    request_id: int = field(default_factory=lambda: next(_request_ids))
    completed_tasks: Set[str] = field(default_factory=set)
    completion_time: Optional[float] = None

    @property
    def is_complete(self) -> bool:
        return self.completion_time is not None

    def response_time(self) -> float:
        """Arrival-to-last-task-finish duration (the paper's "delay")."""
        if self.completion_time is None:
            raise RuntimeError(
                f"workflow request {self.request_id} is not complete yet"
            )
        return self.completion_time - self.arrival_time

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self.is_complete else f"{len(self.completed_tasks)} tasks"
        return (
            f"WorkflowRequest(id={self.request_id}, type={self.workflow_type!r}, "
            f"{state})"
        )


@dataclass
class TaskRequest:
    """One task of one workflow instance, queued at a microservice."""

    task_type: str
    workflow: WorkflowRequest
    published_at: float
    task_id: int = field(default_factory=lambda: next(_task_ids))
    #: Number of delivery attempts (redeliveries after consumer kills).
    deliveries: int = 0
    #: Cumulative processing time wasted by interrupted attempts.
    wasted_work: float = 0.0
    #: Start of the latest processing attempt (set at every dispatch, so
    #: at completion it is the start of the successful attempt).
    started_at: float = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TaskRequest(id={self.task_id}, task={self.task_type!r}, "
            f"wf={self.workflow.request_id})"
        )


class RequestPool:
    """Struct-of-arrays storage for millions of workflow/task requests.

    The batched substrate's replacement for per-request
    :class:`WorkflowRequest`/:class:`TaskRequest` objects: one row per
    request in a set of parallel numpy arrays, addressed by integer
    index.  Workflow row ``i`` is the ``i``-th submission of the run
    (the run-local ordinal the serial path uses for trace request ids),
    and task rows are appended in publish order.

    AND-join bookkeeping is a per-workflow countdown: row ``i`` holds
    one remaining-predecessor counter per task of its workflow type
    (``wf_pred_remaining[i, local]``), decremented as predecessors
    finish; a successor is published exactly when its counter hits zero
    — the same moment the serial invoker's ``all(p in completed)`` test
    first passes.  ``wf_task_done`` guards against double completion
    (the serial path's "completed twice" error).

    Arrays grow by doubling; burst submission appends whole batches via
    :meth:`add_workflows`/:meth:`add_tasks` without touching Python
    per row.
    """

    def __init__(self, max_tasks_per_workflow: int, capacity: int = 1024):
        if max_tasks_per_workflow < 1:
            raise ValueError(
                f"max_tasks_per_workflow must be positive, "
                f"got {max_tasks_per_workflow}"
            )
        if capacity < 1:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.max_tasks = max_tasks_per_workflow
        # Workflow rows -------------------------------------------------
        self.num_workflows = 0
        self.wf_type = np.empty(capacity, dtype=np.int32)
        self.wf_arrival = np.empty(capacity, dtype=np.float64)
        self.wf_completion = np.full(capacity, np.nan, dtype=np.float64)
        self.wf_total_tasks = np.empty(capacity, dtype=np.int32)
        self.wf_done_count = np.empty(capacity, dtype=np.int32)
        self.wf_arrival_window = np.empty(capacity, dtype=np.int32)
        self.wf_pred_remaining = np.empty(
            (capacity, max_tasks_per_workflow), dtype=np.int16
        )
        self.wf_task_done = np.empty(
            (capacity, max_tasks_per_workflow), dtype=np.int8
        )
        # Task rows -----------------------------------------------------
        self.num_tasks = 0
        self.task_type = np.empty(capacity, dtype=np.int32)
        self.task_workflow = np.empty(capacity, dtype=np.int64)
        self.task_published_at = np.empty(capacity, dtype=np.float64)
        self.task_deliveries = np.empty(capacity, dtype=np.int32)
        self.task_wasted_work = np.empty(capacity, dtype=np.float64)
        self.task_started_at = np.empty(capacity, dtype=np.float64)

    # Growth ------------------------------------------------------------
    def _grow_workflows(self, needed: int) -> None:
        capacity = self.wf_type.size
        if needed <= capacity:
            return
        new_cap = max(needed, 2 * capacity)
        for name in (
            "wf_type", "wf_arrival", "wf_completion", "wf_total_tasks",
            "wf_done_count", "wf_arrival_window",
        ):
            old = getattr(self, name)
            new = np.empty(new_cap, dtype=old.dtype)
            new[:self.num_workflows] = old[:self.num_workflows]
            setattr(self, name, new)
        self.wf_completion[self.num_workflows:] = np.nan
        for name in ("wf_pred_remaining", "wf_task_done"):
            old = getattr(self, name)
            new = np.empty((new_cap, self.max_tasks), dtype=old.dtype)
            new[:self.num_workflows] = old[:self.num_workflows]
            setattr(self, name, new)

    def _grow_tasks(self, needed: int) -> None:
        capacity = self.task_type.size
        if needed <= capacity:
            return
        new_cap = max(needed, 2 * capacity)
        for name in (
            "task_type", "task_workflow", "task_published_at",
            "task_deliveries", "task_wasted_work", "task_started_at",
        ):
            old = getattr(self, name)
            new = np.empty(new_cap, dtype=old.dtype)
            new[:self.num_tasks] = old[:self.num_tasks]
            setattr(self, name, new)

    # Workflow rows ------------------------------------------------------
    def add_workflow(
        self,
        workflow_type: int,
        arrival_time: float,
        total_tasks: int,
        arrival_window: int,
        pred_counts: np.ndarray,
    ) -> int:
        """Append one workflow row; returns its index (run-local ordinal)."""
        i = self.num_workflows
        self._grow_workflows(i + 1)
        self.wf_type[i] = workflow_type
        self.wf_arrival[i] = arrival_time
        self.wf_completion[i] = np.nan
        self.wf_total_tasks[i] = total_tasks
        self.wf_done_count[i] = 0
        self.wf_arrival_window[i] = arrival_window
        self.wf_pred_remaining[i, :pred_counts.size] = pred_counts
        self.wf_task_done[i, :] = 0
        self.num_workflows = i + 1
        return i

    @batched_pair("add_workflow", shapes="K, _, _, _, _, (n_task_types,) -> _")
    def add_workflows(
        self,
        count: int,
        workflow_type: int,
        arrival_time: float,
        total_tasks: int,
        arrival_window: int,
        pred_counts: np.ndarray,
    ) -> int:
        """Append ``count`` identical workflow rows; returns the first index.

        Row ``k`` matches what the ``k``-th serial :meth:`add_workflow`
        call would have written (burst submissions share their type,
        arrival time and window).
        """
        first = self.num_workflows
        end = first + count
        self._grow_workflows(end)
        self.wf_type[first:end] = workflow_type
        self.wf_arrival[first:end] = arrival_time
        self.wf_completion[first:end] = np.nan
        self.wf_total_tasks[first:end] = total_tasks
        self.wf_done_count[first:end] = 0
        self.wf_arrival_window[first:end] = arrival_window
        self.wf_pred_remaining[first:end, :pred_counts.size] = pred_counts
        self.wf_task_done[first:end, :] = 0
        self.num_workflows = end
        return first

    # Task rows ----------------------------------------------------------
    def add_task(
        self, task_type: int, workflow: int, published_at: float
    ) -> int:
        """Append one task row; returns its index."""
        i = self.num_tasks
        self._grow_tasks(i + 1)
        self.task_type[i] = task_type
        self.task_workflow[i] = workflow
        self.task_published_at[i] = published_at
        self.task_deliveries[i] = 0
        self.task_wasted_work[i] = 0.0
        self.task_started_at[i] = 0.0
        self.num_tasks = i + 1
        return i

    @batched_pair("add_task", shapes="(K,), (K,), _ -> (K,)")
    def add_tasks(self, task_types, workflows, published_at) -> np.ndarray:
        """Append a batch of task rows; returns their indices in order.

        ``published_at`` is a scalar (burst submission: one shared
        timestamp) or a per-row array (window replay: each successor is
        published at its trigger's completion time).
        """
        task_types = np.asarray(task_types, dtype=np.int32)
        workflows = np.asarray(workflows, dtype=np.int64)
        n = task_types.size
        first = self.num_tasks
        end = first + n
        self._grow_tasks(end)
        self.task_type[first:end] = task_types
        self.task_workflow[first:end] = workflows
        self.task_published_at[first:end] = published_at
        self.task_deliveries[first:end] = 0
        self.task_wasted_work[first:end] = 0.0
        self.task_started_at[first:end] = 0.0
        self.num_tasks = end
        return np.arange(first, end, dtype=np.int64)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RequestPool(workflows={self.num_workflows}, "
            f"tasks={self.num_tasks})"
        )
