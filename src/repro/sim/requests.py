"""Workflow and task request records.

A :class:`WorkflowRequest` is one submission of a workflow type (the unit
whose response time the paper reports); it fans out into one
:class:`TaskRequest` per task in the workflow's DAG, published according to
the AND-join dependency rules.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional, Set

__all__ = ["WorkflowRequest", "TaskRequest"]

_request_ids = itertools.count()
_task_ids = itertools.count()


@dataclass
class WorkflowRequest:
    """One submitted workflow instance.

    Attributes
    ----------
    workflow_type:
        Name of the workflow type (e.g. ``Type1``, ``CAT``).
    arrival_time:
        Simulation time at which the request entered the system.
    completed_tasks:
        Task names of this instance that have finished processing; drives
        the AND-join readiness test.
    completion_time:
        Set when the last task finishes ("the time when the workflow's last
        task is finished", Section II-B).
    """

    workflow_type: str
    arrival_time: float
    total_tasks: int
    request_id: int = field(default_factory=lambda: next(_request_ids))
    completed_tasks: Set[str] = field(default_factory=set)
    completion_time: Optional[float] = None

    @property
    def is_complete(self) -> bool:
        return self.completion_time is not None

    def response_time(self) -> float:
        """Arrival-to-last-task-finish duration (the paper's "delay")."""
        if self.completion_time is None:
            raise RuntimeError(
                f"workflow request {self.request_id} is not complete yet"
            )
        return self.completion_time - self.arrival_time

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self.is_complete else f"{len(self.completed_tasks)} tasks"
        return (
            f"WorkflowRequest(id={self.request_id}, type={self.workflow_type!r}, "
            f"{state})"
        )


@dataclass
class TaskRequest:
    """One task of one workflow instance, queued at a microservice."""

    task_type: str
    workflow: WorkflowRequest
    published_at: float
    task_id: int = field(default_factory=lambda: next(_task_ids))
    #: Number of delivery attempts (redeliveries after consumer kills).
    deliveries: int = 0
    #: Cumulative processing time wasted by interrupted attempts.
    wasted_work: float = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TaskRequest(id={self.task_id}, task={self.task_type!r}, "
            f"wf={self.workflow.request_id})"
        )
