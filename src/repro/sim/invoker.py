"""Workflow invoker and dependency-driven task routing.

Implements the four-step request flow of the paper's Fig. 1:

1. on workflow arrival, ask the TDS which task(s) start the workflow,
2. publish the request to those tasks' queues,
3. a consumer processes the request,
4. on completion, query the TDS for subsequent task(s) and publish to them —
   honouring AND-join synchronisation (a successor is published only once
   **all** of its predecessors in this workflow instance have completed).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.sim.events import EventLoop
from repro.sim.queueing import AckQueue
from repro.sim.requests import TaskRequest, WorkflowRequest
from repro.sim.tds import TaskDependencyService

__all__ = ["WorkflowInvoker"]

WorkflowCompletionCallback = Callable[[WorkflowRequest], None]


class WorkflowInvoker:
    """Routes workflow requests through their task DAGs."""

    def __init__(
        self,
        loop: EventLoop,
        tds: TaskDependencyService,
        queues: Dict[str, AckQueue],
        on_workflow_complete: Optional[WorkflowCompletionCallback] = None,
    ):
        self.loop = loop
        self.tds = tds
        self.queues = queues
        self.on_workflow_complete = on_workflow_complete
        self.submitted_total = 0
        self.completed_total = 0

    # Submission ------------------------------------------------------------
    def submit(self, workflow_type: str) -> WorkflowRequest:
        """Step 1–2 of Fig. 1: create a request and publish its entry tasks."""
        workflow = self.tds.ensemble.workflow(workflow_type)
        request = WorkflowRequest(
            workflow_type=workflow_type,
            arrival_time=self.loop.now,
            total_tasks=workflow.size,
        )
        self.submitted_total += 1
        for task in self.tds.entry_tasks(workflow_type):
            self._publish(request, task)
        return request

    def _publish(self, workflow_request: WorkflowRequest, task: str) -> None:
        queue = self.queues.get(task)
        if queue is None:
            raise KeyError(
                f"no queue for task type {task!r} (workflow "
                f"{workflow_request.workflow_type!r})"
            )
        queue.publish(
            TaskRequest(
                task_type=task,
                workflow=workflow_request,
                published_at=self.loop.now,
            )
        )

    # Completion routing ------------------------------------------------------
    def handle_task_completion(self, task_request: TaskRequest, now: float) -> None:
        """Step 4 of Fig. 1: publish ready successors; detect completion."""
        workflow_request = task_request.workflow
        task = task_request.task_type
        if task in workflow_request.completed_tasks:
            raise RuntimeError(
                f"task {task!r} completed twice for workflow request "
                f"{workflow_request.request_id}"
            )
        workflow_request.completed_tasks.add(task)

        wf_type = workflow_request.workflow_type
        for successor in self.tds.successors(wf_type, task):
            predecessors = self.tds.predecessors(wf_type, successor)
            if all(p in workflow_request.completed_tasks for p in predecessors):
                self._publish(workflow_request, successor)

        if len(workflow_request.completed_tasks) == workflow_request.total_tasks:
            workflow_request.completion_time = now
            self.completed_total += 1
            if self.on_workflow_complete is not None:
                self.on_workflow_complete(workflow_request)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"WorkflowInvoker(submitted={self.submitted_total}, "
            f"completed={self.completed_total})"
        )
