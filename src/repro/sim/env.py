"""RL-style environment interface over the microservice workflow system.

Maps the paper's Section IV-B definitions onto a ``reset``/``step`` API:

- **state** s(k) = w(k), the WIP vector (fully observable at window ends),
- **action** a(k) = m(k), the consumer allocation, constrained to
  ``sum_j m_j <= C``; the softmax-actor convenience
  :meth:`MicroserviceEnv.allocation_from_simplex` applies the paper's
  ``m_j = floor(C * a_j)`` mapping,
- **reward** r(k) = 1 - sum_j w_j(k) (Eq. 1).

One environment step is one real control window — the "tens of seconds, or
even minutes" interaction the paper's sample-efficiency argument is about.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.sim.metrics import WindowObservation
from repro.sim.system import MicroserviceWorkflowSystem
from repro.utils.rng import RngStream
from repro.utils.validation import check_positive

__all__ = ["MicroserviceEnv", "ConstraintViolation"]


class ConstraintViolation(ValueError):
    """Raised when an allocation exceeds the consumer budget C."""


class MicroserviceEnv:
    """reset/step interface used by MIRAS and all learning baselines."""

    def __init__(
        self,
        system: MicroserviceWorkflowSystem,
        consumer_budget: Optional[int] = None,
    ):
        self.system = system
        self.consumer_budget = (
            consumer_budget
            if consumer_budget is not None
            else system.config.consumer_budget
        )
        check_positive("consumer_budget", self.consumer_budget)
        self.steps_taken = 0
        self.episodes = 0

    # Dimensions ------------------------------------------------------------
    @property
    def state_dim(self) -> int:
        """J, the number of microservices."""
        return self.system.ensemble.num_task_types

    @property
    def action_dim(self) -> int:
        """J — one allocation entry per microservice."""
        return self.system.ensemble.num_task_types

    # Action helpers -----------------------------------------------------------
    def allocation_from_simplex(self, simplex: np.ndarray) -> np.ndarray:
        """The paper's mapping ``m_j = floor(C * a_j)`` from a softmax output.

        Because the inputs sum to one, the floors always satisfy the budget.
        """
        simplex = np.asarray(simplex, dtype=np.float64)
        if simplex.shape != (self.action_dim,):
            raise ValueError(
                f"simplex action has shape {simplex.shape}, expected "
                f"({self.action_dim},)"
            )
        if np.any(simplex < -1e-9) or abs(float(simplex.sum()) - 1.0) > 1e-6:
            raise ValueError(
                f"action is not a probability simplex: {simplex} "
                f"(sum={simplex.sum()!r})"
            )
        allocation = np.floor(self.consumer_budget * np.clip(simplex, 0, 1))
        return allocation.astype(np.int64)

    def random_allocation(self, rng: RngStream) -> np.ndarray:
        """A uniformly random feasible allocation (for data collection)."""
        simplex = rng.generator.dirichlet(np.ones(self.action_dim))
        return self.allocation_from_simplex(simplex)

    def uniform_allocation(self) -> np.ndarray:
        """Budget split evenly (remainder to the lowest indices)."""
        base = self.consumer_budget // self.action_dim
        allocation = np.full(self.action_dim, base, dtype=np.int64)
        for i in range(self.consumer_budget - base * self.action_dim):
            allocation[i] += 1
        return allocation

    def check_budget(self, allocation: np.ndarray) -> np.ndarray:
        """Validate ``sum_j m_j <= C``; returns the validated int vector."""
        allocation = np.asarray(allocation)
        if allocation.shape != (self.action_dim,):
            raise ValueError(
                f"allocation has shape {allocation.shape}, expected "
                f"({self.action_dim},)"
            )
        if np.any(allocation < 0):
            raise ConstraintViolation(
                f"negative consumer counts: {allocation}"
            )
        total = int(allocation.sum())
        if total > self.consumer_budget:
            raise ConstraintViolation(
                f"allocation uses {total} consumers, budget is "
                f"{self.consumer_budget}"
            )
        return allocation.astype(np.int64)

    # Core interface --------------------------------------------------------
    def observe(self) -> np.ndarray:
        """Current state w(k) without advancing time."""
        return self.system.wip_vector()

    def reset(self, max_windows: int = 40) -> np.ndarray:
        """Drain WIP to ~0 (the paper's episode reset) and return the state."""
        self.system.drain(max_windows=max_windows)
        self.system.apply_allocation(self.uniform_allocation())
        self.episodes += 1
        return self.observe()

    def step(
        self, allocation: np.ndarray
    ) -> Tuple[np.ndarray, float, WindowObservation]:
        """Apply m(k), run one window, return (s(k+1), r(k+1), observation)."""
        allocation = self.check_budget(allocation)
        self.system.apply_allocation(allocation)
        observation = self.system.run_window()
        self.steps_taken += 1
        return observation.wip.copy(), observation.reward, observation

    def step_simplex(
        self, simplex: np.ndarray
    ) -> Tuple[np.ndarray, float, WindowObservation]:
        """Step with a softmax-actor output instead of integer counts."""
        return self.step(self.allocation_from_simplex(simplex))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MicroserviceEnv({self.system.ensemble.name!r}, "
            f"C={self.consumer_budget}, steps={self.steps_taken})"
        )
