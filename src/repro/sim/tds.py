"""Task Dependency Service (Zookeeper-ensemble analog).

The paper uses three Zookeeper nodes as TDS servers "to increase
availability": the TDS stores each workflow type's task-dependency table
(Fig. 2) and answers two queries — which tasks start a workflow (step 1 of
Fig. 1) and which tasks follow a completed task (step 4).

We model an ensemble of replica servers with majority-quorum reads: a read
succeeds while a majority of replicas are up, round-robining across healthy
replicas (load distribution).  Replica failure/recovery is scriptable so
tests can exercise failover.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.workflows.dag import WorkflowEnsemble

__all__ = [
    "TaskDependencyService",
    "TdsServer",
    "TdsUnavailableError",
    "CompiledDependencyTable",
]


class TdsUnavailableError(RuntimeError):
    """Raised when fewer than a majority of TDS replicas are up."""


class TdsServer:
    """One replica holding a full copy of the dependency tables."""

    def __init__(self, server_id: int, ensemble: WorkflowEnsemble):
        self.server_id = server_id
        self._ensemble = ensemble
        self.up = True
        self.reads_served = 0

    def entry_tasks(self, workflow_type: str) -> Tuple[str, ...]:
        self._check_up()
        self.reads_served += 1
        return self._ensemble.workflow(workflow_type).entry_tasks

    def successors(self, workflow_type: str, task: str) -> Tuple[str, ...]:
        self._check_up()
        self.reads_served += 1
        return self._ensemble.workflow(workflow_type).successors(task)

    def predecessors(self, workflow_type: str, task: str) -> Tuple[str, ...]:
        self._check_up()
        self.reads_served += 1
        return self._ensemble.workflow(workflow_type).predecessors(task)

    def _check_up(self) -> None:
        if not self.up:
            raise TdsUnavailableError(f"TDS replica {self.server_id} is down")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "up" if self.up else "down"
        return f"TdsServer(id={self.server_id}, {state})"


class TaskDependencyService:
    """Replicated dependency store with majority-quorum availability."""

    def __init__(self, ensemble: WorkflowEnsemble, replicas: int = 3):
        if replicas < 1:
            raise ValueError(f"need at least one TDS replica, got {replicas}")
        self.ensemble = ensemble
        self.servers: List[TdsServer] = [
            TdsServer(i, ensemble) for i in range(replicas)
        ]
        self._next = 0

    # Availability management --------------------------------------------
    @property
    def quorum(self) -> int:
        return len(self.servers) // 2 + 1

    @property
    def healthy_count(self) -> int:
        return sum(1 for s in self.servers if s.up)

    def fail_server(self, server_id: int) -> None:
        """Take one replica down (test/chaos hook)."""
        self._server(server_id).up = False

    def recover_server(self, server_id: int) -> None:
        """Bring one replica back."""
        self._server(server_id).up = True

    def _server(self, server_id: int) -> TdsServer:
        for server in self.servers:
            if server.server_id == server_id:
                return server
        raise KeyError(f"no TDS replica with id {server_id}")

    def _pick(self) -> TdsServer:
        if self.healthy_count < self.quorum:
            raise TdsUnavailableError(
                f"only {self.healthy_count}/{len(self.servers)} TDS replicas "
                f"up; quorum is {self.quorum}"
            )
        # Round-robin over healthy replicas.
        for _ in range(len(self.servers)):
            server = self.servers[self._next % len(self.servers)]
            self._next += 1
            if server.up:
                return server
        raise TdsUnavailableError("no healthy TDS replica found")  # pragma: no cover

    # Queries -------------------------------------------------------------
    def entry_tasks(self, workflow_type: str) -> Tuple[str, ...]:
        """First task(s) of a workflow (step 1 of Fig. 1)."""
        return self._pick().entry_tasks(workflow_type)

    def successors(self, workflow_type: str, task: str) -> Tuple[str, ...]:
        """Subsequent task(s) after ``task`` completes (step 4 of Fig. 1)."""
        return self._pick().successors(workflow_type, task)

    def predecessors(self, workflow_type: str, task: str) -> Tuple[str, ...]:
        """Prerequisite tasks of ``task`` (AND-join synchronisation check)."""
        return self._pick().predecessors(workflow_type, task)

    def read_distribution(self) -> Dict[int, int]:
        """Reads served per replica (for load-balance assertions)."""
        return {s.server_id: s.reads_served for s in self.servers}

    # Batched accounting ---------------------------------------------------
    def account_reads(self, count: int) -> None:
        """Account ``count`` dependency reads answered from a local table.

        The batched substrate answers dependency queries from a
        :class:`CompiledDependencyTable` instead of round-tripping
        through a replica per read, but the *availability and load
        accounting* must stay observably identical to ``count``
        sequential reads: the same quorum check, the same round-robin
        pointer advance, the same per-replica ``reads_served`` counts.
        With every replica up that collapses to arithmetic; with any
        replica down the round-robin skip pattern is replayed read by
        read.
        """
        if count < 0:
            raise ValueError(f"read count must be non-negative, got {count}")
        servers = self.servers
        replicas = len(servers)
        if count == 0:
            # Even a zero-read batch mirrors zero serial reads: no
            # quorum check, no pointer movement.
            return
        if self.healthy_count == replicas:
            start = self._next % replicas
            base, extra = divmod(count, replicas)
            for offset, server in enumerate(servers):
                server.reads_served += base + (
                    1 if (offset - start) % replicas < extra else 0
                )
            self._next += count
            return
        for _ in range(count):
            self._pick().reads_served += 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TaskDependencyService(replicas={len(self.servers)}, "
            f"healthy={self.healthy_count})"
        )


class CompiledDependencyTable:
    """Integer-indexed dependency tables for the batched substrate.

    Compiles an ensemble's DAGs once into flat arrays so the hot path
    never touches strings or dicts:

    - tasks are global task-type indices (``ensemble.task_index`` order,
      the same order allocation vectors use),
    - within each workflow type, tasks also get a dense *local* index in
      ``topological_order`` position, addressing the per-instance
      AND-join counters of :class:`repro.sim.requests.RequestPool`,
    - successor lists preserve the DAG's edge insertion order, so
      publishes fire in exactly the order the serial invoker iterates
      ``successors(task)``.

    Availability semantics stay with :class:`TaskDependencyService` —
    the compiled table is a cache of its *contents*, and the batched
    invoker pairs every lookup with
    :meth:`TaskDependencyService.account_reads`.
    """

    def __init__(self, ensemble: WorkflowEnsemble):
        self.ensemble = ensemble
        task_names = ensemble.task_names()
        self.num_task_types = len(task_names)
        workflow_names = ensemble.workflow_names()
        self.workflow_names = workflow_names
        self.num_workflow_types = len(workflow_names)
        #: Max DAG size across workflow types (RequestPool row width).
        self.max_tasks = max(
            ensemble.workflow(w).size for w in workflow_names
        )
        # Per workflow type w (indexed by ensemble.workflow_index):
        self.size: List[int] = []
        #: Entry tasks as (local index, global task-type index) pairs.
        self.entries: List[Tuple[Tuple[int, int], ...]] = []
        #: local index -> global task-type index.
        self.task_of_local: List[np.ndarray] = []
        #: global task-type index -> local index (-1 when absent).
        self.local_of_task: List[np.ndarray] = []
        #: Remaining-predecessor counts per local index (int16).
        self.pred_counts: List[np.ndarray] = []
        #: Successors per local index, as (local, global) pairs in DAG
        #: edge order.
        self.successors: List[Tuple[Tuple[Tuple[int, int], ...], ...]] = []
        for w_name in workflow_names:
            workflow = ensemble.workflow(w_name)
            order = workflow.topological_order()
            local_index = {task: i for i, task in enumerate(order)}
            self.size.append(workflow.size)
            task_of_local = np.array(
                [ensemble.task_index(t) for t in order], dtype=np.int64
            )
            self.task_of_local.append(task_of_local)
            local_of_task = np.full(self.num_task_types, -1, dtype=np.int64)
            local_of_task[task_of_local] = np.arange(
                workflow.size, dtype=np.int64
            )
            self.local_of_task.append(local_of_task)
            self.entries.append(tuple(
                (local_index[t], ensemble.task_index(t))
                for t in workflow.entry_tasks
            ))
            self.pred_counts.append(np.array(
                [len(workflow.predecessors(t)) for t in order],
                dtype=np.int16,
            ))
            self.successors.append(tuple(
                tuple(
                    (local_index[s], ensemble.task_index(s))
                    for s in workflow.successors(t)
                )
                for t in order
            ))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CompiledDependencyTable(workflows={self.num_workflow_types}, "
            f"tasks={self.num_task_types})"
        )
