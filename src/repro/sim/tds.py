"""Task Dependency Service (Zookeeper-ensemble analog).

The paper uses three Zookeeper nodes as TDS servers "to increase
availability": the TDS stores each workflow type's task-dependency table
(Fig. 2) and answers two queries — which tasks start a workflow (step 1 of
Fig. 1) and which tasks follow a completed task (step 4).

We model an ensemble of replica servers with majority-quorum reads: a read
succeeds while a majority of replicas are up, round-robining across healthy
replicas (load distribution).  Replica failure/recovery is scriptable so
tests can exercise failover.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.workflows.dag import WorkflowEnsemble

__all__ = ["TaskDependencyService", "TdsServer", "TdsUnavailableError"]


class TdsUnavailableError(RuntimeError):
    """Raised when fewer than a majority of TDS replicas are up."""


class TdsServer:
    """One replica holding a full copy of the dependency tables."""

    def __init__(self, server_id: int, ensemble: WorkflowEnsemble):
        self.server_id = server_id
        self._ensemble = ensemble
        self.up = True
        self.reads_served = 0

    def entry_tasks(self, workflow_type: str) -> Tuple[str, ...]:
        self._check_up()
        self.reads_served += 1
        return self._ensemble.workflow(workflow_type).entry_tasks

    def successors(self, workflow_type: str, task: str) -> Tuple[str, ...]:
        self._check_up()
        self.reads_served += 1
        return self._ensemble.workflow(workflow_type).successors(task)

    def predecessors(self, workflow_type: str, task: str) -> Tuple[str, ...]:
        self._check_up()
        self.reads_served += 1
        return self._ensemble.workflow(workflow_type).predecessors(task)

    def _check_up(self) -> None:
        if not self.up:
            raise TdsUnavailableError(f"TDS replica {self.server_id} is down")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "up" if self.up else "down"
        return f"TdsServer(id={self.server_id}, {state})"


class TaskDependencyService:
    """Replicated dependency store with majority-quorum availability."""

    def __init__(self, ensemble: WorkflowEnsemble, replicas: int = 3):
        if replicas < 1:
            raise ValueError(f"need at least one TDS replica, got {replicas}")
        self.ensemble = ensemble
        self.servers: List[TdsServer] = [
            TdsServer(i, ensemble) for i in range(replicas)
        ]
        self._next = 0

    # Availability management --------------------------------------------
    @property
    def quorum(self) -> int:
        return len(self.servers) // 2 + 1

    @property
    def healthy_count(self) -> int:
        return sum(1 for s in self.servers if s.up)

    def fail_server(self, server_id: int) -> None:
        """Take one replica down (test/chaos hook)."""
        self._server(server_id).up = False

    def recover_server(self, server_id: int) -> None:
        """Bring one replica back."""
        self._server(server_id).up = True

    def _server(self, server_id: int) -> TdsServer:
        for server in self.servers:
            if server.server_id == server_id:
                return server
        raise KeyError(f"no TDS replica with id {server_id}")

    def _pick(self) -> TdsServer:
        if self.healthy_count < self.quorum:
            raise TdsUnavailableError(
                f"only {self.healthy_count}/{len(self.servers)} TDS replicas "
                f"up; quorum is {self.quorum}"
            )
        # Round-robin over healthy replicas.
        for _ in range(len(self.servers)):
            server = self.servers[self._next % len(self.servers)]
            self._next += 1
            if server.up:
                return server
        raise TdsUnavailableError("no healthy TDS replica found")  # pragma: no cover

    # Queries -------------------------------------------------------------
    def entry_tasks(self, workflow_type: str) -> Tuple[str, ...]:
        """First task(s) of a workflow (step 1 of Fig. 1)."""
        return self._pick().entry_tasks(workflow_type)

    def successors(self, workflow_type: str, task: str) -> Tuple[str, ...]:
        """Subsequent task(s) after ``task`` completes (step 4 of Fig. 1)."""
        return self._pick().successors(workflow_type, task)

    def predecessors(self, workflow_type: str, task: str) -> Tuple[str, ...]:
        """Prerequisite tasks of ``task`` (AND-join synchronisation check)."""
        return self._pick().predecessors(workflow_type, task)

    def read_distribution(self) -> Dict[int, int]:
        """Reads served per replica (for load-balance assertions)."""
        return {s.server_id: s.reads_served for s in self.servers}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TaskDependencyService(replicas={len(self.servers)}, "
            f"healthy={self.healthy_count})"
        )
