"""Fault injection for robustness testing.

The paper's infrastructure is built for availability (TDS ensemble, ack
mechanism, Kubernetes restarts); this module exercises those mechanisms:

- **consumer crashes**: a busy container dies mid-task; its unacked
  request is redelivered (the ack mechanism's guarantee) and the
  replication controller immediately starts a replacement (start-up delay
  applies),
- **TDS replica outages**: a replica goes down for a while; queries
  continue as long as a majority is healthy.

:class:`ChaosInjector` schedules such faults randomly on the system's
event loop, for stress tests and failure-injection suites.
"""

from __future__ import annotations

from typing import Optional

from repro.sim.consumer import ConsumerState
from repro.sim.microservice import Microservice
from repro.sim.system import MicroserviceWorkflowSystem
from repro.utils.rng import RngStream
from repro.utils.validation import check_non_negative, check_positive, require

__all__ = ["crash_one_consumer", "ChaosInjector"]


def crash_one_consumer(microservice: Microservice) -> bool:
    """Crash one busy (else idle) consumer and start a replacement.

    The crash is a hard kill regardless of the scale-down mode: the
    in-flight request is nacked (redelivered, never lost) and a fresh
    container is launched to restore the allocation, paying the usual
    start-up latency.  Returns False when there is nothing to crash.

    Works on either substrate: a batched microservice carries its own
    :meth:`repro.sim.microservice.BatchedMicroservice.crash_one` twin
    with identical victim choice and event order.
    """
    if hasattr(microservice, "crash_one"):
        return microservice.crash_one()
    victim: Optional = None
    for state in (ConsumerState.BUSY, ConsumerState.IDLE):
        for consumer in microservice.consumers:
            if consumer.state is state:
                victim = consumer
                break
        if victim is not None:
            break
    if victim is None:
        return False

    if microservice.tracer.enabled:
        microservice.tracer.emit(
            "event.fault", fault="consumer_crash", target=microservice.name
        )
    if victim.pending_event is not None:
        victim.pending_event.cancel()
        victim.pending_event = None
    if victim.state is ConsumerState.BUSY:
        require(victim.current_tag is not None,
                "busy consumer has no delivery tag")
        elapsed = microservice.loop.now - victim.processing_started_at
        victim.current_request.wasted_work += elapsed
        microservice.queue.nack(victim.current_tag)
        victim.current_tag = None
        victim.current_request = None
        microservice.consumers_killed_busy += 1
    victim.state = ConsumerState.STOPPED
    microservice.consumers.remove(victim)
    microservice.cluster.release(victim.node)
    # Replacement container (restores the allocation m_j).
    microservice._start_consumer()
    return True


class ChaosInjector:
    """Random fault schedule over a running system."""

    def __init__(
        self,
        system: MicroserviceWorkflowSystem,
        rng: Optional[RngStream] = None,
        consumer_crash_rate: float = 0.0,
        tds_outage_rate: float = 0.0,
        tds_outage_duration: float = 60.0,
    ):
        check_non_negative("consumer_crash_rate", consumer_crash_rate)
        check_non_negative("tds_outage_rate", tds_outage_rate)
        check_positive("tds_outage_duration", tds_outage_duration)
        self.system = system
        self.rng = rng if rng is not None else system.workload_rng.fork("chaos")
        self.consumer_crash_rate = consumer_crash_rate
        self.tds_outage_rate = tds_outage_rate
        self.tds_outage_duration = tds_outage_duration
        self.active = False
        self.crashes_injected = 0
        self.outages_injected = 0

    def start(self) -> "ChaosInjector":
        """Begin scheduling faults; returns self."""
        if self.active:
            raise RuntimeError("chaos injector already started")
        self.active = True
        if self.consumer_crash_rate > 0:
            self._schedule_crash()
        if self.tds_outage_rate > 0:
            self._schedule_outage()
        return self

    def stop(self) -> None:
        self.active = False

    # Consumer crashes ---------------------------------------------------
    def _schedule_crash(self) -> None:
        delay = float(self.rng.exponential(1.0 / self.consumer_crash_rate))
        self.system.loop.schedule(delay, self._crash)

    def _crash(self) -> None:
        if not self.active:
            return
        names = list(self.system.microservices)
        target = self.system.microservices[
            names[int(self.rng.integers(0, len(names)))]
        ]
        if crash_one_consumer(target):
            self.crashes_injected += 1
        self._schedule_crash()

    # TDS outages ----------------------------------------------------------
    def _schedule_outage(self) -> None:
        delay = float(self.rng.exponential(1.0 / self.tds_outage_rate))
        self.system.loop.schedule(delay, self._outage)

    def _outage(self) -> None:
        if not self.active:
            return
        tds = self.system.tds
        healthy = [s.server_id for s in tds.servers if s.up]
        # Never take the last majority down: the infrastructure's
        # availability guarantee only covers minority failures.
        if len(healthy) > tds.quorum:
            victim = healthy[int(self.rng.integers(0, len(healthy)))]
            tds.fail_server(victim)
            self.outages_injected += 1
            if self.system.tracer.enabled:
                self.system.tracer.emit(
                    "event.fault", fault="tds_outage", target=victim
                )
            self.system.loop.schedule(
                self.tds_outage_duration,
                lambda server_id=victim: self._recover(server_id),
            )
        self._schedule_outage()

    def _recover(self, server_id: int) -> None:
        self.system.tds.recover_server(server_id)
        if self.system.tracer.enabled:
            self.system.tracer.emit(
                "event.fault", fault="tds_recover", target=server_id
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ChaosInjector(crashes={self.crashes_injected}, "
            f"outages={self.outages_injected})"
        )
