"""A microservice: one request queue plus a scalable consumer pool.

"Each task type is modeled as a microservice that consists of a request
queue and a set of consumers subscribing to the queue to handle requests"
(Section II-A).  Scaling follows the paper's Kubernetes measurements:

- **scale up**: new consumers take a uniform(5, 10) s start-up delay before
  their first consume (container creation; "can be parallelized"),
- **scale down**: the replication controller removes containers.  We first
  cancel still-starting consumers, then idle ones, then busy ones.  A busy
  victim's fate depends on the scale-down mode:

  - ``"drain"`` (default, matching Kubernetes' SIGTERM grace period): the
    consumer finishes its in-flight task, then exits.  It stops counting
    against the allocation immediately (like a Terminating pod) and takes
    no further work.
  - ``"kill"``: the consumer dies instantly and nacks its in-flight
    request, so the ack mechanism redelivers it and no request is lost —
    the elapsed processing is wasted.

  Either way the allocation m_j drops to the target at once, so the
  consumer-budget constraint stays enforced ("In all following experiments
  we make sure that the constraints are enforced").
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional, Tuple

from repro.sim.cluster import Cluster
from repro.sim.consumer import (
    Consumer,
    ConsumerState,
    lognormal_params,
    sample_service_time,
)
from repro.sim.events import EventLoop, TypedEventLoop
from repro.sim.queueing import AckQueue, IndexFifo
from repro.sim.requests import RequestPool, TaskRequest
from repro.sim.substrate import PrefetchStream
from repro.telemetry.tracer import NULL_TRACER, Tracer
from repro.utils.batchpairs import batched_pair
from repro.utils.rng import RngStream
from repro.utils.validation import isclose_zero, require
from repro.workflows.dag import TaskType

__all__ = ["Microservice", "BatchedMicroservice", "BatchedQueueView"]

#: Called with (task_request, completion_time) when a task finishes.
TaskCompletionCallback = Callable[[TaskRequest, float], None]

#: Called with (task_index, completion_time) on the batched substrate.
BatchedTaskCompletionCallback = Callable[[int, float], None]

# Consumer lifecycle states of the batched substrate, as the same strings
# serial ``ConsumerState.value`` yields — snapshots compare directly.
_STARTING = "starting"
_IDLE = "idle"
_BUSY = "busy"
_STOPPED = "stopped"


class Microservice:
    """Queue + consumer pool for one task type."""

    def __init__(
        self,
        task_type: TaskType,
        loop: EventLoop,
        cluster: Cluster,
        rng: RngStream,
        on_task_complete: TaskCompletionCallback,
        startup_delay_range: Tuple[float, float] = (5.0, 10.0),
        scale_down_mode: str = "drain",
        tracer: Optional[Tracer] = None,
    ):
        low, high = startup_delay_range
        if not 0 <= low <= high:
            raise ValueError(
                f"bad startup_delay_range {startup_delay_range!r}"
            )
        if scale_down_mode not in ("drain", "kill"):
            raise ValueError(
                f"scale_down_mode must be 'drain' or 'kill', "
                f"got {scale_down_mode!r}"
            )
        self.task_type = task_type
        self.loop = loop
        self.cluster = cluster
        self.rng = rng
        self.on_task_complete = on_task_complete
        self.startup_delay_range = startup_delay_range
        self.scale_down_mode = scale_down_mode
        self.tracer = tracer if tracer is not None else NULL_TRACER

        self.queue = AckQueue(task_type.name, tracer=self.tracer)
        self.queue.subscribe(self._dispatch)
        self.consumers: List[Consumer] = []
        #: Busy consumers finishing their last task before exiting
        #: (Terminating pods); they no longer count toward the allocation.
        self.draining: List[Consumer] = []
        # Lifetime counters.
        self.tasks_completed = 0
        self.consumers_killed_busy = 0
        self.consumers_killed_starting = 0
        self.consumers_started = 0

    @property
    def name(self) -> str:
        return self.task_type.name

    # Scaling -------------------------------------------------------------
    @property
    def allocated(self) -> int:
        """Current consumer count (the paper's m_j)."""
        return len(self.consumers)

    def scale_to(self, target: int) -> None:
        """Adjust the consumer pool to exactly ``target`` containers."""
        if target < 0:
            raise ValueError(f"consumer count must be >= 0, got {target}")
        while self.allocated < target:
            self._start_consumer()
        while self.allocated > target:
            self._remove_one_consumer()

    def _start_consumer(self) -> None:
        node = self.cluster.place()
        consumer = Consumer(self, node)
        self.consumers.append(consumer)
        self.consumers_started += 1
        low, high = self.startup_delay_range
        delay = float(self.rng.uniform(low, high)) if high > 0 else 0.0
        consumer.pending_event = self.loop.schedule(
            delay, lambda c=consumer: self._on_started(c)
        )
        if self.tracer.enabled:
            self.tracer.emit(
                "event.consumer_start",
                service=self.name,
                consumer_id=consumer.trace_id,
                node=node.node_id,
                startup_delay=delay,
            )

    def _on_started(self, consumer: Consumer) -> None:
        if consumer.state is not ConsumerState.STARTING:
            return  # was killed while starting; activation already cancelled
        consumer.state = ConsumerState.IDLE
        consumer.pending_event = None
        if self.tracer.enabled:
            self.tracer.emit(
                "event.consumer_ready",
                service=self.name,
                consumer_id=consumer.trace_id,
                startup_latency=self.loop.now - consumer.created_at,
            )
        self._dispatch()

    def _remove_one_consumer(self) -> None:
        """Remove the cheapest consumer: starting > idle > busy."""
        victim = self._pick_victim()
        if victim.state is ConsumerState.BUSY and self.scale_down_mode == "drain":
            # Graceful termination: finish the in-flight task, then exit.
            # The consumer leaves the allocation count immediately.
            self.consumers.remove(victim)
            self.draining.append(victim)
            self._trace_stop(victim, "drain")
            return
        if victim.pending_event is not None:
            victim.pending_event.cancel()
            victim.pending_event = None
        if victim.state is ConsumerState.STARTING:
            self.consumers_killed_starting += 1
            self._trace_stop(victim, "cancel-starting")
        elif victim.state is ConsumerState.BUSY:
            self._trace_stop(victim, "kill")
        else:
            self._trace_stop(victim, "idle")
        if victim.state is ConsumerState.BUSY:
            # Kill mode: the in-flight request is redelivered; elapsed
            # work is wasted.
            require(victim.current_tag is not None,
                    "busy consumer has no delivery tag")
            require(victim.current_request is not None,
                    "busy consumer has no in-flight request")
            elapsed = self.loop.now - victim.processing_started_at
            victim.current_request.wasted_work += elapsed
            self.queue.nack(victim.current_tag)
            victim.current_tag = None
            victim.current_request = None
            self.consumers_killed_busy += 1
        victim.state = ConsumerState.STOPPED
        self.consumers.remove(victim)
        self.cluster.release(victim.node)

    def _trace_stop(self, consumer: Consumer, mode: str) -> None:
        """Emit a container-removal event (no-op when tracing is off)."""
        if self.tracer.enabled:
            self.tracer.emit(
                "event.consumer_stop",
                service=self.name,
                consumer_id=consumer.trace_id,
                mode=mode,
            )

    def _pick_victim(self) -> Consumer:
        for state in (ConsumerState.STARTING, ConsumerState.IDLE):
            for consumer in self.consumers:
                if consumer.state is state:
                    return consumer
        return self.consumers[-1]  # newest busy consumer

    # Processing ------------------------------------------------------------
    def _dispatch(self) -> None:
        """Hand ready messages to idle consumers (push delivery)."""
        for consumer in self.consumers:
            if consumer.state is not ConsumerState.IDLE:
                continue
            item = self.queue.consume()
            if item is None:
                return
            tag, request = item
            consumer.state = ConsumerState.BUSY
            consumer.current_tag = tag
            consumer.current_request = request
            consumer.processing_started_at = self.loop.now
            request.started_at = self.loop.now
            service_time = sample_service_time(
                self.task_type.mean_service_time, self.task_type.cv, self.rng
            )
            consumer.pending_event = self.loop.schedule(
                service_time, lambda c=consumer: self._on_finished(c)
            )

    def _on_finished(self, consumer: Consumer) -> None:
        if consumer.state is not ConsumerState.BUSY:
            return  # killed before finishing; nack already handled it
        require(consumer.current_tag is not None,
                "finished consumer has no delivery tag")
        require(consumer.current_request is not None,
                "finished consumer has no in-flight request")
        request = self.queue.ack(consumer.current_tag)
        now = self.loop.now
        service_time = now - consumer.processing_started_at
        consumer.tasks_completed += 1
        consumer.busy_time += service_time
        if self.tracer.enabled:
            self.tracer.emit(
                "event.task_complete",
                service=self.name,
                service_time=service_time,
            )
        consumer.current_tag = None
        consumer.current_request = None
        consumer.pending_event = None
        self.tasks_completed += 1
        if consumer in self.draining:
            # Terminating pod: its last task is done; release the slot.
            consumer.state = ConsumerState.STOPPED
            self.draining.remove(consumer)
            self.cluster.release(consumer.node)
            self._trace_stop(consumer, "drained")
        else:
            consumer.state = ConsumerState.IDLE
        self.on_task_complete(request, now)
        self._dispatch()

    # Introspection -----------------------------------------------------------
    @property
    def wip(self) -> int:
        """Work-in-progress w_j: queued + in-processing requests."""
        return self.queue.depth

    @property
    def busy_consumers(self) -> int:
        return sum(1 for c in self.consumers if c.state is ConsumerState.BUSY)

    @property
    def starting_consumers(self) -> int:
        return sum(1 for c in self.consumers if c.state is ConsumerState.STARTING)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Microservice({self.name!r}, consumers={self.allocated}, "
            f"wip={self.wip})"
        )


class BatchedQueueView:
    """:class:`repro.sim.queueing.AckQueue`-shaped introspection facade.

    The batched microservice keeps its queue as an :class:`IndexFifo`
    plus plain counters; this view exposes the same read-only surface
    (``published_total``, ``depth``, ``conservation_ok()``, ...) so code
    written against ``ms.queue`` — the system's window accounting,
    conservation checks and tests — works on either substrate.
    """

    __slots__ = ("_ms",)

    def __init__(self, ms: "BatchedMicroservice"):
        self._ms = ms

    @property
    def name(self) -> str:
        return self._ms.name

    @property
    def published_total(self) -> int:
        return self._ms.published_total

    @property
    def acked_total(self) -> int:
        return self._ms.acked_total

    @property
    def redelivered_total(self) -> int:
        return self._ms.redelivered_total

    @property
    def ready_count(self) -> int:
        return len(self._ms.fifo)

    @property
    def unacked_count(self) -> int:
        return self._ms.unacked

    @property
    def depth(self) -> int:
        return len(self._ms.fifo) + self._ms.unacked

    def conservation_ok(self) -> bool:
        """published == acked + ready + unacked (no message ever lost)."""
        return self._ms.published_total == (
            self._ms.acked_total + self.ready_count + self._ms.unacked
        )

    def __len__(self) -> int:
        return self.depth

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BatchedQueueView({self.name!r}, ready={self.ready_count}, "
            f"unacked={self.unacked_count})"
        )


class BatchedMicroservice:
    """Array-backed queue + consumer pool, event-for-event equal to
    :class:`Microservice`.

    Consumers are integer *slots* (birth ordinals — the same run-local
    ids serial consumers carry as ``trace_id``) indexing parallel state
    lists; the queue holds task indices into a shared
    :class:`repro.sim.requests.RequestPool`.  Every mutation happens at
    the same point, in the same order, with the same RNG draws as the
    serial twin, so same-seed runs produce byte-identical traces and
    equal :func:`repro.sim.substrate.substrate_snapshot` results
    (docs/SIMULATOR.md states the contract; the pinning suite is
    tests/sim/test_batched_substrate.py).

    Ordering invariants the implementation leans on:

    - slots are appended in increasing order and removals preserve
      order, so ``order`` (the live-consumer list) is always sorted —
      "first starting/idle consumer in list order" becomes a min-heap
      pop, and the serial kill fallback ``consumers[-1]`` is
      ``order[-1]``;
    - the idle/starting heaps use lazy invalidation: entries whose slot
      state moved on are discarded at pop time;
    - service-time and startup draws interleave on the per-microservice
      stream exactly as serially, via :class:`PrefetchStream`.
    """

    def __init__(
        self,
        task_type: TaskType,
        index: int,
        loop: TypedEventLoop,
        cluster: Cluster,
        rng: RngStream,
        pool: RequestPool,
        on_task_complete: BatchedTaskCompletionCallback,
        startup_delay_range: Tuple[float, float] = (5.0, 10.0),
        scale_down_mode: str = "drain",
        tracer: Optional[Tracer] = None,
    ):
        low, high = startup_delay_range
        if not 0 <= low <= high:
            raise ValueError(
                f"bad startup_delay_range {startup_delay_range!r}"
            )
        if scale_down_mode not in ("drain", "kill"):
            raise ValueError(
                f"scale_down_mode must be 'drain' or 'kill', "
                f"got {scale_down_mode!r}"
            )
        self.task_type = task_type
        #: Position in the system's microservice list (event payload id).
        self.index = index
        self.loop = loop
        self.cluster = cluster
        self.rng = rng
        self.pool = pool
        self.on_task_complete = on_task_complete
        self.startup_delay_range = startup_delay_range
        self.scale_down_mode = scale_down_mode
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.prefetch = PrefetchStream(rng)
        mean, cv = task_type.mean_service_time, task_type.cv
        if mean <= 0:
            raise ValueError(
                f"mean service time must be positive, got {mean!r}"
            )
        if cv < 0:
            raise ValueError(f"cv must be non-negative, got {cv!r}")
        if isclose_zero(cv):
            self._fixed_service: Optional[float] = mean
            self._mu = 0.0
            self._sigma = 0.0
        else:
            self._fixed_service = None
            self._mu, self._sigma = lognormal_params(mean, cv)

        self.fifo = IndexFifo()
        self.queue = BatchedQueueView(self)
        self.published_total = 0
        self.acked_total = 0
        self.redelivered_total = 0
        self.unacked = 0
        # Per-slot consumer tables (index = slot = birth ordinal).
        self.state: List[str] = []
        self.created_at: List[float] = []
        self.current_task: List[int] = []
        self.processing_started: List[float] = []
        self.slot_busy_time: List[float] = []
        self.slot_tasks_completed: List[int] = []
        self.node: List = []
        self.pending_token: List[int] = []
        #: Live slots in serial ``consumers``-list order (always sorted).
        self.order: List[int] = []
        #: Busy slots finishing their last task before exiting.
        self.draining: List[int] = []
        self._idle_heap: List[int] = []
        self._starting_heap: List[int] = []
        # Lifetime counters (names match the serial twin).
        self.tasks_completed = 0
        self.consumers_killed_busy = 0
        self.consumers_killed_starting = 0
        self.consumers_started = 0

    @property
    def name(self) -> str:
        return self.task_type.name

    # Scaling -------------------------------------------------------------
    @property
    def allocated(self) -> int:
        """Current consumer count (the paper's m_j)."""
        return len(self.order)

    def scale_to(self, target: int) -> None:
        """Adjust the consumer pool to exactly ``target`` containers."""
        if target < 0:
            raise ValueError(f"consumer count must be >= 0, got {target}")
        while self.allocated < target:
            self._start_consumer()
        while self.allocated > target:
            self._remove_one_consumer()

    def _start_consumer(self) -> None:
        node = self.cluster.place()
        slot = self.consumers_started
        self.state.append(_STARTING)
        self.created_at.append(self.loop.now)
        self.current_task.append(-1)
        self.processing_started.append(0.0)
        self.slot_busy_time.append(0.0)
        self.slot_tasks_completed.append(0)
        self.node.append(node)
        self.pending_token.append(-1)
        self.order.append(slot)
        heapq.heappush(self._starting_heap, slot)
        self.consumers_started += 1
        low, high = self.startup_delay_range
        delay = self.prefetch.uniform(low, high) if high > 0 else 0.0
        self.pending_token[slot] = self.loop.schedule_ready(
            delay, self.index, slot
        )
        if self.tracer.enabled:
            self.tracer.emit(
                "event.consumer_start",
                service=self.name,
                consumer_id=slot,
                node=node.node_id,
                startup_delay=delay,
            )

    def on_ready(self, slot: int) -> None:
        """Consumer-ready event executor (start-up delay elapsed)."""
        if self.state[slot] != _STARTING:
            return  # was killed while starting; activation already cancelled
        self.state[slot] = _IDLE
        self.pending_token[slot] = -1
        heapq.heappush(self._idle_heap, slot)
        if self.tracer.enabled:
            self.tracer.emit(
                "event.consumer_ready",
                service=self.name,
                consumer_id=slot,
                startup_latency=self.loop.now - self.created_at[slot],
            )
        self._dispatch()

    def _remove_one_consumer(self) -> None:
        """Remove the cheapest consumer: starting > idle > busy."""
        victim = self._pick_victim()
        state = self.state[victim]
        if state == _BUSY and self.scale_down_mode == "drain":
            # Graceful termination: finish the in-flight task, then exit.
            # The consumer leaves the allocation count immediately.
            self.order.remove(victim)
            self.draining.append(victim)
            self._trace_stop(victim, "drain")
            return
        token = self.pending_token[victim]
        if token >= 0:
            self.loop.cancel(token)
            self.pending_token[victim] = -1
        if state == _STARTING:
            self.consumers_killed_starting += 1
            self._trace_stop(victim, "cancel-starting")
        elif state == _BUSY:
            self._trace_stop(victim, "kill")
        else:
            self._trace_stop(victim, "idle")
        if state == _BUSY:
            # Kill mode: the in-flight request is redelivered; elapsed
            # work is wasted.
            task = self.current_task[victim]
            require(task >= 0, "busy consumer has no in-flight request")
            elapsed = self.loop.now - self.processing_started[victim]
            self.pool.task_wasted_work[task] += elapsed
            self._nack(task)
            self.current_task[victim] = -1
            self.consumers_killed_busy += 1
        self.state[victim] = _STOPPED
        self.order.remove(victim)
        self.cluster.release(self.node[victim])

    def _pick_victim(self) -> int:
        victim = self._peek_live(self._starting_heap, _STARTING)
        if victim < 0:
            victim = self._peek_live(self._idle_heap, _IDLE)
        if victim < 0:
            victim = self.order[-1]  # newest busy consumer
        return victim

    def _peek_live(self, heap: List[int], state: str) -> int:
        """Smallest slot in ``heap`` still in ``state`` (lazy cleanup)."""
        while heap and self.state[heap[0]] != state:
            heapq.heappop(heap)
        return heap[0] if heap else -1

    def _pop_idle(self) -> int:
        heap = self._idle_heap
        while heap:
            slot = heapq.heappop(heap)
            if self.state[slot] == _IDLE:
                return slot
        return -1

    def crash_one(self) -> bool:
        """Crash one busy (else idle) consumer and start a replacement.

        Batched twin of :func:`repro.sim.faults.crash_one_consumer`'s
        serial body, with identical victim choice and event order.
        """
        victim = -1
        for state in (_BUSY, _IDLE):
            for slot in self.order:
                if self.state[slot] == state:
                    victim = slot
                    break
            if victim >= 0:
                break
        if victim < 0:
            return False
        if self.tracer.enabled:
            self.tracer.emit(
                "event.fault", fault="consumer_crash", target=self.name
            )
        token = self.pending_token[victim]
        if token >= 0:
            self.loop.cancel(token)
            self.pending_token[victim] = -1
        if self.state[victim] == _BUSY:
            task = self.current_task[victim]
            require(task >= 0, "busy consumer has no in-flight request")
            elapsed = self.loop.now - self.processing_started[victim]
            self.pool.task_wasted_work[task] += elapsed
            self._nack(task)
            self.current_task[victim] = -1
            self.consumers_killed_busy += 1
        self.state[victim] = _STOPPED
        self.order.remove(victim)
        self.cluster.release(self.node[victim])
        # Replacement container (restores the allocation m_j).
        self._start_consumer()
        return True

    def _trace_stop(self, slot: int, mode: str) -> None:
        """Emit a container-removal event (no-op when tracing is off)."""
        if self.tracer.enabled:
            self.tracer.emit(
                "event.consumer_stop",
                service=self.name,
                consumer_id=slot,
                mode=mode,
            )

    # Queue side ----------------------------------------------------------
    def publish(self, task: int) -> None:
        """Enqueue one task index and wake idle consumers."""
        self.fifo.push(task)
        self.published_total += 1
        if self.tracer.enabled:
            self.tracer.emit(
                "event.publish", queue=self.name, depth=self.wip
            )
        self._dispatch()

    @batched_pair("publish", shapes="(K,) -> _")
    def publish_many(self, tasks) -> None:
        """Enqueue a batch of task indices, then dispatch once.

        One dispatch pass after a bulk append pairs messages with idle
        consumers in exactly the order per-message publishes would have
        (oldest message to lowest idle slot, same draw order), so this
        is publish-for-publish equivalent to the serial loop — except
        for per-publish trace events, which is why the burst path only
        takes it when tracing is off.
        """
        self.fifo.push_many(tasks)
        self.published_total += len(tasks)
        self._dispatch()

    def _nack(self, task: int) -> None:
        """Redeliver an unacked task at the front of the queue."""
        self.unacked -= 1
        self.fifo.push_front(task)
        self.redelivered_total += 1
        if self.tracer.enabled:
            self.tracer.emit(
                "event.redeliver", queue=self.name, depth=self.wip
            )
        self._dispatch()

    # Processing ----------------------------------------------------------
    def _dispatch(self) -> None:
        """Hand ready messages to idle consumers (push delivery)."""
        fifo = self.fifo
        pool = self.pool
        loop = self.loop
        while len(fifo):
            slot = self._pop_idle()
            if slot < 0:
                return
            task = fifo.pop()
            pool.task_deliveries[task] += 1
            pool.task_started_at[task] = loop.now
            self.unacked += 1
            self.state[slot] = _BUSY
            self.current_task[slot] = task
            self.processing_started[slot] = loop.now
            if self._fixed_service is not None:
                service_time = self._fixed_service
            else:
                service_time = self.prefetch.lognormal(self._mu, self._sigma)
            self.pending_token[slot] = loop.schedule_finish(
                service_time, self.index, slot
            )

    def on_finished(self, slot: int) -> None:
        """Task-finish event executor."""
        if self.state[slot] != _BUSY:
            return  # killed before finishing; nack already handled it
        task = self.current_task[slot]
        require(task >= 0, "finished consumer has no in-flight request")
        self.unacked -= 1
        self.acked_total += 1
        now = self.loop.now
        service_time = now - self.processing_started[slot]
        self.slot_tasks_completed[slot] += 1
        self.slot_busy_time[slot] += service_time
        if self.tracer.enabled:
            self.tracer.emit(
                "event.task_complete",
                service=self.name,
                service_time=service_time,
            )
        self.current_task[slot] = -1
        self.pending_token[slot] = -1
        self.tasks_completed += 1
        if slot in self.draining:
            # Terminating pod: its last task is done; release the slot.
            self.state[slot] = _STOPPED
            self.draining.remove(slot)
            self.cluster.release(self.node[slot])
            self._trace_stop(slot, "drained")
        else:
            self.state[slot] = _IDLE
            heapq.heappush(self._idle_heap, slot)
        self.on_task_complete(task, now)
        self._dispatch()

    # Introspection -------------------------------------------------------
    @property
    def wip(self) -> int:
        """Work-in-progress w_j: queued + in-processing requests."""
        return len(self.fifo) + self.unacked

    @property
    def busy_consumers(self) -> int:
        return sum(1 for s in self.order if self.state[s] == _BUSY)

    @property
    def starting_consumers(self) -> int:
        return sum(1 for s in self.order if self.state[s] == _STARTING)

    def has_idle(self) -> bool:
        """True when at least one consumer is idle right now."""
        return self._peek_live(self._idle_heap, _IDLE) >= 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BatchedMicroservice({self.name!r}, consumers={self.allocated}, "
            f"wip={self.wip})"
        )
