"""A microservice: one request queue plus a scalable consumer pool.

"Each task type is modeled as a microservice that consists of a request
queue and a set of consumers subscribing to the queue to handle requests"
(Section II-A).  Scaling follows the paper's Kubernetes measurements:

- **scale up**: new consumers take a uniform(5, 10) s start-up delay before
  their first consume (container creation; "can be parallelized"),
- **scale down**: the replication controller removes containers.  We first
  cancel still-starting consumers, then idle ones, then busy ones.  A busy
  victim's fate depends on the scale-down mode:

  - ``"drain"`` (default, matching Kubernetes' SIGTERM grace period): the
    consumer finishes its in-flight task, then exits.  It stops counting
    against the allocation immediately (like a Terminating pod) and takes
    no further work.
  - ``"kill"``: the consumer dies instantly and nacks its in-flight
    request, so the ack mechanism redelivers it and no request is lost —
    the elapsed processing is wasted.

  Either way the allocation m_j drops to the target at once, so the
  consumer-budget constraint stays enforced ("In all following experiments
  we make sure that the constraints are enforced").
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.sim.cluster import Cluster
from repro.sim.consumer import Consumer, ConsumerState, sample_service_time
from repro.sim.events import EventLoop
from repro.sim.queueing import AckQueue
from repro.sim.requests import TaskRequest
from repro.telemetry.tracer import NULL_TRACER, Tracer
from repro.utils.rng import RngStream
from repro.utils.validation import require
from repro.workflows.dag import TaskType

__all__ = ["Microservice"]

#: Called with (task_request, completion_time) when a task finishes.
TaskCompletionCallback = Callable[[TaskRequest, float], None]


class Microservice:
    """Queue + consumer pool for one task type."""

    def __init__(
        self,
        task_type: TaskType,
        loop: EventLoop,
        cluster: Cluster,
        rng: RngStream,
        on_task_complete: TaskCompletionCallback,
        startup_delay_range: Tuple[float, float] = (5.0, 10.0),
        scale_down_mode: str = "drain",
        tracer: Optional[Tracer] = None,
    ):
        low, high = startup_delay_range
        if not 0 <= low <= high:
            raise ValueError(
                f"bad startup_delay_range {startup_delay_range!r}"
            )
        if scale_down_mode not in ("drain", "kill"):
            raise ValueError(
                f"scale_down_mode must be 'drain' or 'kill', "
                f"got {scale_down_mode!r}"
            )
        self.task_type = task_type
        self.loop = loop
        self.cluster = cluster
        self.rng = rng
        self.on_task_complete = on_task_complete
        self.startup_delay_range = startup_delay_range
        self.scale_down_mode = scale_down_mode
        self.tracer = tracer if tracer is not None else NULL_TRACER

        self.queue = AckQueue(task_type.name, tracer=self.tracer)
        self.queue.subscribe(self._dispatch)
        self.consumers: List[Consumer] = []
        #: Busy consumers finishing their last task before exiting
        #: (Terminating pods); they no longer count toward the allocation.
        self.draining: List[Consumer] = []
        # Lifetime counters.
        self.tasks_completed = 0
        self.consumers_killed_busy = 0
        self.consumers_killed_starting = 0
        self.consumers_started = 0

    @property
    def name(self) -> str:
        return self.task_type.name

    # Scaling -------------------------------------------------------------
    @property
    def allocated(self) -> int:
        """Current consumer count (the paper's m_j)."""
        return len(self.consumers)

    def scale_to(self, target: int) -> None:
        """Adjust the consumer pool to exactly ``target`` containers."""
        if target < 0:
            raise ValueError(f"consumer count must be >= 0, got {target}")
        while self.allocated < target:
            self._start_consumer()
        while self.allocated > target:
            self._remove_one_consumer()

    def _start_consumer(self) -> None:
        node = self.cluster.place()
        consumer = Consumer(self, node)
        self.consumers.append(consumer)
        self.consumers_started += 1
        low, high = self.startup_delay_range
        delay = float(self.rng.uniform(low, high)) if high > 0 else 0.0
        consumer.pending_event = self.loop.schedule(
            delay, lambda c=consumer: self._on_started(c)
        )
        if self.tracer.enabled:
            self.tracer.emit(
                "event.consumer_start",
                service=self.name,
                consumer_id=consumer.trace_id,
                node=node.node_id,
                startup_delay=delay,
            )

    def _on_started(self, consumer: Consumer) -> None:
        if consumer.state is not ConsumerState.STARTING:
            return  # was killed while starting; activation already cancelled
        consumer.state = ConsumerState.IDLE
        consumer.pending_event = None
        if self.tracer.enabled:
            self.tracer.emit(
                "event.consumer_ready",
                service=self.name,
                consumer_id=consumer.trace_id,
                startup_latency=self.loop.now - consumer.created_at,
            )
        self._dispatch()

    def _remove_one_consumer(self) -> None:
        """Remove the cheapest consumer: starting > idle > busy."""
        victim = self._pick_victim()
        if victim.state is ConsumerState.BUSY and self.scale_down_mode == "drain":
            # Graceful termination: finish the in-flight task, then exit.
            # The consumer leaves the allocation count immediately.
            self.consumers.remove(victim)
            self.draining.append(victim)
            self._trace_stop(victim, "drain")
            return
        if victim.pending_event is not None:
            victim.pending_event.cancel()
            victim.pending_event = None
        if victim.state is ConsumerState.STARTING:
            self.consumers_killed_starting += 1
            self._trace_stop(victim, "cancel-starting")
        elif victim.state is ConsumerState.BUSY:
            self._trace_stop(victim, "kill")
        else:
            self._trace_stop(victim, "idle")
        if victim.state is ConsumerState.BUSY:
            # Kill mode: the in-flight request is redelivered; elapsed
            # work is wasted.
            require(victim.current_tag is not None,
                    "busy consumer has no delivery tag")
            require(victim.current_request is not None,
                    "busy consumer has no in-flight request")
            elapsed = self.loop.now - victim.processing_started_at
            victim.current_request.wasted_work += elapsed
            self.queue.nack(victim.current_tag)
            victim.current_tag = None
            victim.current_request = None
            self.consumers_killed_busy += 1
        victim.state = ConsumerState.STOPPED
        self.consumers.remove(victim)
        self.cluster.release(victim.node)

    def _trace_stop(self, consumer: Consumer, mode: str) -> None:
        """Emit a container-removal event (no-op when tracing is off)."""
        if self.tracer.enabled:
            self.tracer.emit(
                "event.consumer_stop",
                service=self.name,
                consumer_id=consumer.trace_id,
                mode=mode,
            )

    def _pick_victim(self) -> Consumer:
        for state in (ConsumerState.STARTING, ConsumerState.IDLE):
            for consumer in self.consumers:
                if consumer.state is state:
                    return consumer
        return self.consumers[-1]  # newest busy consumer

    # Processing ------------------------------------------------------------
    def _dispatch(self) -> None:
        """Hand ready messages to idle consumers (push delivery)."""
        for consumer in self.consumers:
            if consumer.state is not ConsumerState.IDLE:
                continue
            item = self.queue.consume()
            if item is None:
                return
            tag, request = item
            consumer.state = ConsumerState.BUSY
            consumer.current_tag = tag
            consumer.current_request = request
            consumer.processing_started_at = self.loop.now
            service_time = sample_service_time(
                self.task_type.mean_service_time, self.task_type.cv, self.rng
            )
            consumer.pending_event = self.loop.schedule(
                service_time, lambda c=consumer: self._on_finished(c)
            )

    def _on_finished(self, consumer: Consumer) -> None:
        if consumer.state is not ConsumerState.BUSY:
            return  # killed before finishing; nack already handled it
        require(consumer.current_tag is not None,
                "finished consumer has no delivery tag")
        require(consumer.current_request is not None,
                "finished consumer has no in-flight request")
        request = self.queue.ack(consumer.current_tag)
        now = self.loop.now
        service_time = now - consumer.processing_started_at
        consumer.tasks_completed += 1
        consumer.busy_time += service_time
        if self.tracer.enabled:
            self.tracer.emit(
                "event.task_complete",
                service=self.name,
                service_time=service_time,
            )
        consumer.current_tag = None
        consumer.current_request = None
        consumer.pending_event = None
        self.tasks_completed += 1
        if consumer in self.draining:
            # Terminating pod: its last task is done; release the slot.
            consumer.state = ConsumerState.STOPPED
            self.draining.remove(consumer)
            self.cluster.release(consumer.node)
            self._trace_stop(consumer, "drained")
        else:
            consumer.state = ConsumerState.IDLE
        self.on_task_complete(request, now)
        self._dispatch()

    # Introspection -----------------------------------------------------------
    @property
    def wip(self) -> int:
        """Work-in-progress w_j: queued + in-processing requests."""
        return self.queue.depth

    @property
    def busy_consumers(self) -> int:
        return sum(1 for c in self.consumers if c.state is ConsumerState.BUSY)

    @property
    def starting_consumers(self) -> int:
        return sum(1 for c in self.consumers if c.state is ConsumerState.STARTING)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Microservice({self.name!r}, consumers={self.allocated}, "
            f"wip={self.wip})"
        )
