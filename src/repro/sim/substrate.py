"""Shared substrate utilities: RNG prefetching and state snapshots.

Two pieces the batched substrate (:mod:`repro.sim.batched`) builds on:

- :class:`PrefetchStream` — a block-prefetching facade over one
  :class:`repro.utils.rng.RngStream` that stays *bit-identical* to
  scalar draws.  numpy's sized draws consume the bit generator exactly
  like the same number of scalar draws, so a block of 512 lognormals
  costs one numpy call yet leaves the stream indistinguishable from 512
  serial calls.  The facade is also *rewindable*: an aborted vectorised
  window rolls the generator back to the position the serial path would
  occupy.

- :func:`substrate_snapshot` — one deep, JSON-compatible dictionary of
  everything observable about a system (queues, consumers, counters,
  cluster, TDS, window history, RNG states).  The serial and batched
  substrates produce *identical* snapshots for the same seed and
  scenario; the equivalence suite (tests/sim/test_batched_substrate.py)
  pins that, and docs/SIMULATOR.md states the contract.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

__all__ = ["PrefetchStream", "substrate_snapshot"]


class PrefetchStream:
    """Block-prefetching, rewindable facade over one ``RngStream``.

    The serial microservice draws one lognormal per dispatch and one
    uniform per container start **from the same stream**, interleaved in
    event order.  This facade reproduces that draw sequence exactly
    while amortising numpy call overhead:

    - draws of one kind are served from a prefetched block
      (``tolist()``-ed once, so takes are plain Python floats),
    - switching kinds (lognormal -> uniform or back) *resyncs* first:
      the generator rewinds to the saved pre-block state and re-draws
      exactly the consumed count, leaving it bit-identical to that many
      scalar draws,
    - :meth:`begin` / :meth:`rollback` bracket a speculative window: on
      rollback the generator and buffer return to the marked position,
      so an aborted vectorised window consumes nothing.

    ``sync()`` normalises the stream back to its serial-equivalent
    position (used before snapshotting generator state).
    """

    __slots__ = (
        "stream", "_gen", "_block", "_kind", "_a", "_b",
        "_buf", "_pos", "_pre_block_state",
    )

    def __init__(self, stream, block: int = 512):
        if block < 1:
            raise ValueError(f"block size must be positive, got {block}")
        self.stream = stream
        self._gen = stream.generator
        self._block = block
        self._kind: Optional[str] = None
        self._a = 0.0
        self._b = 0.0
        self._buf: List[float] = []
        self._pos = 0
        self._pre_block_state: Optional[dict] = None

    # Draws -------------------------------------------------------------
    def lognormal(self, mean: float, sigma: float) -> float:
        """One lognormal draw, bit-identical to the scalar path."""
        if self._kind != "lognormal" or self._a != mean or self._b != sigma:
            self.sync()
            self._kind, self._a, self._b = "lognormal", mean, sigma
            self._fill()
        elif self._pos >= len(self._buf):
            self._fill()
        value = self._buf[self._pos]
        self._pos += 1
        return value

    def uniform(self, low: float, high: float) -> float:
        """One uniform draw, bit-identical to the scalar path."""
        if self._kind != "uniform" or self._a != low or self._b != high:
            self.sync()
            self._kind, self._a, self._b = "uniform", low, high
            self._fill()
        elif self._pos >= len(self._buf):
            self._fill()
        value = self._buf[self._pos]
        self._pos += 1
        return value

    def _fill(self) -> None:
        self._pre_block_state = self._gen.bit_generator.state
        if self._kind == "lognormal":
            block = self._gen.lognormal(self._a, self._b, self._block)
        else:
            block = self._gen.uniform(self._a, self._b, self._block)
        self._buf = block.tolist()
        self._pos = 0

    # Position management ------------------------------------------------
    def sync(self) -> None:
        """Rewind unconsumed prefetch so the generator state equals the
        serial path's after the draws actually taken."""
        if self._buf and self._pos < len(self._buf):
            self._gen.bit_generator.state = self._pre_block_state
            if self._pos:
                if self._kind == "lognormal":
                    self._gen.lognormal(self._a, self._b, self._pos)
                else:
                    self._gen.uniform(self._a, self._b, self._pos)
        self._buf = []
        self._pos = 0
        self._kind = None
        self._pre_block_state = None

    def begin(self) -> Tuple:
        """Mark the current position for a speculative window."""
        return (
            self._kind, self._a, self._b, self._buf, self._pos,
            self._pre_block_state, self._gen.bit_generator.state,
        )

    def rollback(self, mark: Tuple) -> None:
        """Return to a :meth:`begin` mark (aborted speculative window)."""
        (
            self._kind, self._a, self._b, self._buf, self._pos,
            self._pre_block_state, gen_state,
        ) = mark
        self._gen.bit_generator.state = gen_state

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PrefetchStream({self.stream.name!r}, kind={self._kind}, "
            f"buffered={len(self._buf) - self._pos})"
        )


def _rng_state(stream) -> Dict[str, Any]:
    """JSON-compatible bit-generator state of one stream."""
    state = stream.generator.bit_generator.state
    return {
        "bit_generator": state.get("bit_generator"),
        "state": {k: int(v) for k, v in state.get("state", {}).items()},
    }


def _observation_dict(observation) -> Dict[str, Any]:
    return {
        "index": observation.index,
        "start_time": observation.start_time,
        "end_time": observation.end_time,
        "wip": observation.wip.tolist(),
        "allocation": observation.allocation.tolist(),
        "reward": observation.reward,
        "arrivals": dict(observation.arrivals),
        "completions": dict(observation.completions),
        "response_times": list(observation.response_times),
        "response_times_by_type": {
            k: list(v) for k, v in observation.response_times_by_type.items()
        },
        "task_completions": dict(observation.task_completions),
        "task_publishes": dict(observation.task_publishes),
    }


def substrate_snapshot(system) -> Dict[str, Any]:
    """Deep state snapshot of a workflow system, substrate-agnostic.

    Returns one JSON-compatible dictionary covering the event loop,
    per-microservice queues (contents included), consumer tables,
    lifetime counters, cluster placement, TDS read accounting, the full
    window-observation history, the delay tracker, and every RNG
    stream's bit-generator state.  A serial
    :class:`repro.sim.system.MicroserviceWorkflowSystem` and a batched
    :class:`repro.sim.batched.BatchedWorkflowSystem` built from the same
    seed and driven through the same scenario return **equal**
    snapshots — the metrics half of the equivalence contract
    (docs/SIMULATOR.md).

    In-flight workflow instances are identified by their submission
    rank *within the referenced set* (live requests in queues and
    consumers), which is substrate-independent; completed workflows are
    covered by the response-time history and the delay tracker.

    On a batched system the snapshot first ``sync()``s each prefetch
    stream, normalising unconsumed prefetch so generator states are
    comparable (semantically a no-op).
    """
    batched = hasattr(system, "pool")
    referenced: List[int] = []
    per_ms_raw: Dict[str, Dict[str, Any]] = {}

    if batched:
        pool = system.pool
        for name, ms in system.microservices.items():
            ready = [
                (
                    int(pool.task_workflow[t]),
                    float(pool.task_published_at[t]),
                    int(pool.task_deliveries[t]),
                    float(pool.task_wasted_work[t]),
                )
                for t in ms.fifo.to_list()
            ]
            consumers = []
            for slot in ms.order:
                task = None
                current = ms.current_task[slot]
                if current >= 0:
                    task = (
                        int(pool.task_workflow[current]),
                        float(pool.task_published_at[current]),
                        int(pool.task_deliveries[current]),
                        float(pool.task_wasted_work[current]),
                        float(ms.processing_started[slot]),
                    )
                consumers.append({
                    "slot": slot,
                    "state": ms.state[slot],
                    "created_at": float(ms.created_at[slot]),
                    "node": ms.node[slot].node_id,
                    "tasks_completed": int(ms.slot_tasks_completed[slot]),
                    "busy_time": float(ms.slot_busy_time[slot]),
                    "task": task,
                })
            draining = []
            for slot in ms.draining:
                current = ms.current_task[slot]
                draining.append({
                    "slot": slot,
                    "node": ms.node[slot].node_id,
                    "task": (
                        int(pool.task_workflow[current]),
                        float(pool.task_published_at[current]),
                        int(pool.task_deliveries[current]),
                        float(pool.task_wasted_work[current]),
                        float(ms.processing_started[slot]),
                    ),
                })
            referenced.extend(r[0] for r in ready)
            referenced.extend(
                c["task"][0] for c in consumers if c["task"] is not None
            )
            referenced.extend(d["task"][0] for d in draining)
            ms.prefetch.sync()
            per_ms_raw[name] = {
                "ready": ready,
                "consumers": consumers,
                "draining": draining,
                "queue": {
                    "published": ms.published_total,
                    "acked": ms.acked_total,
                    "redelivered": ms.redelivered_total,
                    "ready": len(ms.fifo),
                    "unacked": ms.unacked,
                    "conservation_ok": ms.queue.conservation_ok(),
                },
                "counters": {
                    "tasks_completed": ms.tasks_completed,
                    "killed_busy": ms.consumers_killed_busy,
                    "killed_starting": ms.consumers_killed_starting,
                    "started": ms.consumers_started,
                },
                "rng_state": _rng_state(ms.rng),
            }
    else:
        state_names = {
            "starting": "starting", "idle": "idle",
            "busy": "busy", "stopped": "stopped",
        }
        for name, ms in system.microservices.items():
            ready = [
                (
                    request.workflow.request_id,
                    float(request.published_at),
                    int(request.deliveries),
                    float(request.wasted_work),
                )
                for request in ms.queue._ready
            ]
            consumers = []
            for consumer in ms.consumers:
                task = None
                if consumer.current_request is not None:
                    request = consumer.current_request
                    task = (
                        request.workflow.request_id,
                        float(request.published_at),
                        int(request.deliveries),
                        float(request.wasted_work),
                        float(consumer.processing_started_at),
                    )
                consumers.append({
                    "slot": consumer.trace_id,
                    "state": state_names[consumer.state.value],
                    "created_at": float(consumer.created_at),
                    "node": consumer.node.node_id,
                    "tasks_completed": consumer.tasks_completed,
                    "busy_time": float(consumer.busy_time),
                    "task": task,
                })
            draining = []
            for consumer in ms.draining:
                request = consumer.current_request
                draining.append({
                    "slot": consumer.trace_id,
                    "node": consumer.node.node_id,
                    "task": (
                        request.workflow.request_id,
                        float(request.published_at),
                        int(request.deliveries),
                        float(request.wasted_work),
                        float(consumer.processing_started_at),
                    ),
                })
            referenced.extend(r[0] for r in ready)
            referenced.extend(
                c["task"][0] for c in consumers if c["task"] is not None
            )
            referenced.extend(d["task"][0] for d in draining)
            per_ms_raw[name] = {
                "ready": ready,
                "consumers": consumers,
                "draining": draining,
                "queue": {
                    "published": ms.queue.published_total,
                    "acked": ms.queue.acked_total,
                    "redelivered": ms.queue.redelivered_total,
                    "ready": ms.queue.ready_count,
                    "unacked": ms.queue.unacked_count,
                    "conservation_ok": ms.queue.conservation_ok(),
                },
                "counters": {
                    "tasks_completed": ms.tasks_completed,
                    "killed_busy": ms.consumers_killed_busy,
                    "killed_starting": ms.consumers_killed_starting,
                    "started": ms.consumers_started,
                },
                "rng_state": _rng_state(ms.rng),
            }

    # Substrate-independent ranks for live workflow instances: both
    # substrates reference the same live set in submission order.
    rank = {wf: i for i, wf in enumerate(sorted(set(referenced)))}

    def _rerank(row: Tuple) -> Tuple:
        return (rank[row[0]],) + tuple(row[1:])

    microservices: Dict[str, Dict[str, Any]] = {}
    for name, raw in per_ms_raw.items():
        microservices[name] = {
            "ready": [_rerank(r) for r in raw["ready"]],
            "consumers": [
                {**c, "task": None if c["task"] is None else _rerank(c["task"])}
                for c in raw["consumers"]
            ],
            "draining": [
                {**d, "task": _rerank(d["task"])} for d in raw["draining"]
            ],
            "queue": raw["queue"],
            "counters": raw["counters"],
            "rng_state": raw["rng_state"],
        }

    return {
        "loop": {
            "now": float(system.loop.now),
            "processed": system.loop.processed,
            "pending": system.loop.pending,
        },
        "window_index": system.window_index,
        "invoker": {
            "submitted": system.invoker.submitted_total,
            "completed": system.invoker.completed_total,
        },
        "microservices": microservices,
        "cluster": {
            str(k): v for k, v in system.cluster.load_by_node().items()
        },
        "tds": {
            "reads": {
                str(k): v for k, v in system.tds.read_distribution().items()
            },
            "healthy": system.tds.healthy_count,
        },
        "delay_tracker": {
            "arrived": {
                f"{w}:{t}": count
                for (w, t), count in sorted(
                    system.delay_tracker._arrived.items()
                )
            },
            "delays": {
                f"{w}:{t}": list(delays)
                for (w, t), delays in sorted(
                    system.delay_tracker._delays.items()
                )
            },
        },
        "history": [_observation_dict(o) for o in system.history],
        "rngs": {
            name: _rng_state(stream)
            for name, stream in sorted(system._rngs.items())
        },
    }
