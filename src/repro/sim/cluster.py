"""Cluster nodes and container placement (Kubernetes/GCP analog).

The paper's testbed is three identical VMs; Kubernetes "manages load
balancing of containers among the three machines".  We model nodes with a
unit-slot capacity (consumers have identical computational capacity per the
paper's resource model) and least-loaded placement, which is both what a
balanced scheduler converges to and optimal for unit-size items.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.telemetry.tracer import NULL_TRACER, Tracer

__all__ = ["Node", "Cluster", "CapacityError"]


class CapacityError(RuntimeError):
    """Raised when a placement would exceed the cluster's total slots."""


class Node:
    """One machine with a fixed number of consumer slots."""

    def __init__(self, node_id: int, capacity: int):
        if capacity < 1:
            raise ValueError(f"node capacity must be >= 1, got {capacity}")
        self.node_id = node_id
        self.capacity = capacity
        self.used = 0

    @property
    def free(self) -> int:
        return self.capacity - self.used

    def allocate(self) -> None:
        if self.used >= self.capacity:
            raise CapacityError(f"node {self.node_id} is full")
        self.used += 1

    def release(self) -> None:
        if self.used <= 0:
            raise RuntimeError(f"node {self.node_id} has no slot to release")
        self.used -= 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Node(id={self.node_id}, used={self.used}/{self.capacity})"


class Cluster:
    """A pool of nodes with least-loaded container placement."""

    def __init__(
        self,
        num_nodes: int = 3,
        node_capacity: int = 8,
        tracer: Optional[Tracer] = None,
    ):
        if num_nodes < 1:
            raise ValueError(f"need at least one node, got {num_nodes}")
        self.nodes: List[Node] = [Node(i, node_capacity) for i in range(num_nodes)]
        self._tracer = tracer if tracer is not None else NULL_TRACER

    @property
    def total_capacity(self) -> int:
        return sum(node.capacity for node in self.nodes)

    @property
    def total_used(self) -> int:
        return sum(node.used for node in self.nodes)

    @property
    def total_free(self) -> int:
        return self.total_capacity - self.total_used

    def place(self) -> Node:
        """Allocate one slot on the least-loaded node (ties: lowest id)."""
        best = min(self.nodes, key=lambda n: (n.used, n.node_id))
        if best.free <= 0:
            raise CapacityError(
                f"cluster full: {self.total_used}/{self.total_capacity} slots used"
            )
        best.allocate()
        if self._tracer.enabled:
            self._tracer.emit(
                "event.placement", node=best.node_id, used=best.used
            )
        return best

    def release(self, node: Node) -> None:
        """Free one slot previously obtained from :meth:`place`."""
        node.release()
        if self._tracer.enabled:
            self._tracer.emit(
                "event.release", node=node.node_id, used=node.used
            )

    def load_by_node(self) -> Dict[int, int]:
        """Used slots per node (for load-balance assertions)."""
        return {node.node_id: node.used for node in self.nodes}

    def imbalance(self) -> int:
        """Max minus min used slots across nodes; <= 1 under least-loaded."""
        used = [node.used for node in self.nodes]
        return max(used) - min(used)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Cluster(nodes={len(self.nodes)}, "
            f"used={self.total_used}/{self.total_capacity})"
        )
