"""Discrete-event emulation of the microservice workflow infrastructure.

This package substitutes the paper's physical testbed (3 GCP VMs running
Zookeeper, RabbitMQ, Docker and Kubernetes — Section V) with a faithful
discrete-event model:

- :mod:`repro.sim.events` — simulation clock and event heap,
- :mod:`repro.sim.queueing` — RabbitMQ-style queues with ack/redelivery,
- :mod:`repro.sim.tds` — the replicated Task Dependency Service,
- :mod:`repro.sim.cluster` — nodes, container placement, start-up latency,
- :mod:`repro.sim.microservice` — queue + consumer-pool microservices,
- :mod:`repro.sim.invoker` — the workflow invoker of Fig. 1,
- :mod:`repro.sim.system` — the full system facade with 30 s time windows,
- :mod:`repro.sim.env` — the RL-style reset/step interface used by MIRAS,
- :mod:`repro.sim.batched` — the array-backed million-request substrate
  (semantics contract in docs/SIMULATOR.md).
"""

from repro.sim.batched import BatchedWorkflowSystem
from repro.sim.cluster import CapacityError, Cluster, Node
from repro.sim.env import MicroserviceEnv
from repro.sim.events import EventLoop, TypedEventLoop
from repro.sim.faults import ChaosInjector, crash_one_consumer
from repro.sim.metrics import WindowObservation
from repro.sim.microservice import BatchedMicroservice
from repro.sim.queueing import AckQueue, DeliveryTag, IndexFifo
from repro.sim.requests import RequestPool, TaskRequest, WorkflowRequest
from repro.sim.substrate import PrefetchStream, substrate_snapshot
from repro.sim.system import MicroserviceWorkflowSystem, SystemConfig
from repro.sim.tds import (
    CompiledDependencyTable,
    TaskDependencyService,
    TdsUnavailableError,
)

__all__ = [
    "EventLoop",
    "TypedEventLoop",
    "ChaosInjector",
    "crash_one_consumer",
    "AckQueue",
    "DeliveryTag",
    "IndexFifo",
    "TaskRequest",
    "WorkflowRequest",
    "RequestPool",
    "TaskDependencyService",
    "TdsUnavailableError",
    "CompiledDependencyTable",
    "Cluster",
    "Node",
    "CapacityError",
    "MicroserviceWorkflowSystem",
    "BatchedWorkflowSystem",
    "BatchedMicroservice",
    "PrefetchStream",
    "substrate_snapshot",
    "SystemConfig",
    "WindowObservation",
    "MicroserviceEnv",
]
