"""Discrete-event emulation of the microservice workflow infrastructure.

This package substitutes the paper's physical testbed (3 GCP VMs running
Zookeeper, RabbitMQ, Docker and Kubernetes — Section V) with a faithful
discrete-event model:

- :mod:`repro.sim.events` — simulation clock and event heap,
- :mod:`repro.sim.queueing` — RabbitMQ-style queues with ack/redelivery,
- :mod:`repro.sim.tds` — the replicated Task Dependency Service,
- :mod:`repro.sim.cluster` — nodes, container placement, start-up latency,
- :mod:`repro.sim.microservice` — queue + consumer-pool microservices,
- :mod:`repro.sim.invoker` — the workflow invoker of Fig. 1,
- :mod:`repro.sim.system` — the full system facade with 30 s time windows,
- :mod:`repro.sim.env` — the RL-style reset/step interface used by MIRAS.
"""

from repro.sim.cluster import CapacityError, Cluster, Node
from repro.sim.env import MicroserviceEnv
from repro.sim.events import EventLoop
from repro.sim.faults import ChaosInjector, crash_one_consumer
from repro.sim.metrics import WindowObservation
from repro.sim.queueing import AckQueue, DeliveryTag
from repro.sim.requests import TaskRequest, WorkflowRequest
from repro.sim.system import MicroserviceWorkflowSystem, SystemConfig
from repro.sim.tds import TaskDependencyService, TdsUnavailableError

__all__ = [
    "EventLoop",
    "ChaosInjector",
    "crash_one_consumer",
    "AckQueue",
    "DeliveryTag",
    "TaskRequest",
    "WorkflowRequest",
    "TaskDependencyService",
    "TdsUnavailableError",
    "Cluster",
    "Node",
    "CapacityError",
    "MicroserviceWorkflowSystem",
    "SystemConfig",
    "WindowObservation",
    "MicroserviceEnv",
]
