"""Consumer containers (Docker-container analog).

A consumer subscribes to its microservice's queue, processes one task
request at a time, and acks on completion.  The lifecycle mirrors what the
paper measured on Kubernetes: "it usually takes 5 to 10 seconds for
Kubernetes to generate a new container or destroy an existing container" —
new consumers spend a start-up delay before their first consume, and a
killed busy consumer nacks its in-flight request so the queue redelivers it
(the paper's no-lost-requests ack mechanism).
"""

from __future__ import annotations

import enum
import itertools
import math
from typing import Optional, Tuple, TYPE_CHECKING

import numpy as np

from repro.sim.events import EventHandle
from repro.sim.queueing import DeliveryTag
from repro.sim.requests import TaskRequest
from repro.utils.batchpairs import batched_pair
from repro.utils.validation import isclose_zero

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.sim.cluster import Node
    from repro.sim.microservice import Microservice

__all__ = [
    "Consumer",
    "ConsumerState",
    "sample_service_time",
    "sample_service_times",
    "lognormal_params",
]

_consumer_ids = itertools.count()


class ConsumerState(enum.Enum):
    """Container lifecycle states."""

    STARTING = "starting"
    IDLE = "idle"
    BUSY = "busy"
    STOPPED = "stopped"


def lognormal_params(mean: float, cv: float) -> Tuple[float, float]:
    """``(mu, sigma)`` of the lognormal with the given mean and CV.

    Shared by the serial and batched service-time samplers so both
    parameterise the distribution with bit-identical doubles.
    """
    if mean <= 0:
        raise ValueError(f"mean service time must be positive, got {mean!r}")
    if cv < 0:
        raise ValueError(f"cv must be non-negative, got {cv!r}")
    sigma_sq = math.log(1.0 + cv * cv)
    mu = math.log(mean) - sigma_sq / 2.0
    return mu, math.sqrt(sigma_sq)


def sample_service_time(mean: float, cv: float, rng) -> float:
    """Sample a lognormal service time with the given mean and CV.

    The paper: "the processing time of each microservice is not fixed, due
    to variant sizes of input data".  A lognormal is the standard heavy-ish
    tailed model for such task durations.  ``cv=0`` degenerates to the mean.
    """
    if mean <= 0:
        raise ValueError(f"mean service time must be positive, got {mean!r}")
    if cv < 0:
        raise ValueError(f"cv must be non-negative, got {cv!r}")
    if isclose_zero(cv):
        return mean
    mu, sigma = lognormal_params(mean, cv)
    return float(rng.lognormal(mean=mu, sigma=sigma))


@batched_pair("sample_service_time", shapes="K, _, _, _ -> (K,)")
def sample_service_times(batch: int, mean: float, cv: float, rng) -> np.ndarray:
    """``batch`` lognormal service times in one draw; shape ``(batch,)``.

    Draw ``k`` is bit-identical to the ``k``-th serial
    :func:`sample_service_time` call on the same stream, and the
    generator state afterwards matches ``batch`` serial draws exactly
    (numpy's sized draws consume the bit generator identically to the
    same number of scalar draws) — the property the batched substrate's
    prefetching relies on.  ``cv=0`` degenerates to the mean and, like
    the serial path, draws nothing.
    """
    if batch < 0:
        raise ValueError(f"batch must be non-negative, got {batch}")
    if mean <= 0:
        raise ValueError(f"mean service time must be positive, got {mean!r}")
    if cv < 0:
        raise ValueError(f"cv must be non-negative, got {cv!r}")
    if isclose_zero(cv):
        return np.full(batch, mean, dtype=np.float64)
    mu, sigma = lognormal_params(mean, cv)
    return rng.lognormal(mean=mu, sigma=sigma, size=batch)


class Consumer:
    """One container processing task requests for a single microservice."""

    def __init__(self, microservice: "Microservice", node: "Node"):
        self.consumer_id = next(_consumer_ids)
        #: Run-local id used in trace records: the process-global
        #: ``consumer_id`` differs between same-seed runs in one process,
        #: which would break trace byte-reproducibility.
        self.trace_id: int = microservice.consumers_started
        self.microservice = microservice
        self.node = node
        self.state = ConsumerState.STARTING
        #: Simulation time of container creation (start-up latency origin).
        self.created_at: float = microservice.loop.now
        self.current_tag: Optional[DeliveryTag] = None
        self.current_request: Optional[TaskRequest] = None
        self.processing_started_at: float = 0.0
        #: Handle to the pending activation or finish event (for kills).
        self.pending_event: Optional[EventHandle] = None
        # Lifetime counters.
        self.tasks_completed = 0
        self.busy_time = 0.0

    @property
    def is_active(self) -> bool:
        """True while the consumer occupies a cluster slot."""
        return self.state is not ConsumerState.STOPPED

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Consumer(id={self.consumer_id}, "
            f"service={self.microservice.name!r}, state={self.state.value})"
        )
