"""Consumer containers (Docker-container analog).

A consumer subscribes to its microservice's queue, processes one task
request at a time, and acks on completion.  The lifecycle mirrors what the
paper measured on Kubernetes: "it usually takes 5 to 10 seconds for
Kubernetes to generate a new container or destroy an existing container" —
new consumers spend a start-up delay before their first consume, and a
killed busy consumer nacks its in-flight request so the queue redelivers it
(the paper's no-lost-requests ack mechanism).
"""

from __future__ import annotations

import enum
import itertools
import math
from typing import Optional, TYPE_CHECKING

from repro.sim.events import EventHandle
from repro.sim.queueing import DeliveryTag
from repro.sim.requests import TaskRequest
from repro.utils.validation import isclose_zero

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.sim.cluster import Node
    from repro.sim.microservice import Microservice

__all__ = ["Consumer", "ConsumerState", "sample_service_time"]

_consumer_ids = itertools.count()


class ConsumerState(enum.Enum):
    """Container lifecycle states."""

    STARTING = "starting"
    IDLE = "idle"
    BUSY = "busy"
    STOPPED = "stopped"


def sample_service_time(mean: float, cv: float, rng) -> float:
    """Sample a lognormal service time with the given mean and CV.

    The paper: "the processing time of each microservice is not fixed, due
    to variant sizes of input data".  A lognormal is the standard heavy-ish
    tailed model for such task durations.  ``cv=0`` degenerates to the mean.
    """
    if mean <= 0:
        raise ValueError(f"mean service time must be positive, got {mean!r}")
    if cv < 0:
        raise ValueError(f"cv must be non-negative, got {cv!r}")
    if isclose_zero(cv):
        return mean
    sigma_sq = math.log(1.0 + cv * cv)
    mu = math.log(mean) - sigma_sq / 2.0
    return float(rng.lognormal(mean=mu, sigma=math.sqrt(sigma_sq)))


class Consumer:
    """One container processing task requests for a single microservice."""

    def __init__(self, microservice: "Microservice", node: "Node"):
        self.consumer_id = next(_consumer_ids)
        #: Run-local id used in trace records: the process-global
        #: ``consumer_id`` differs between same-seed runs in one process,
        #: which would break trace byte-reproducibility.
        self.trace_id: int = microservice.consumers_started
        self.microservice = microservice
        self.node = node
        self.state = ConsumerState.STARTING
        #: Simulation time of container creation (start-up latency origin).
        self.created_at: float = microservice.loop.now
        self.current_tag: Optional[DeliveryTag] = None
        self.current_request: Optional[TaskRequest] = None
        self.processing_started_at: float = 0.0
        #: Handle to the pending activation or finish event (for kills).
        self.pending_event: Optional[EventHandle] = None
        # Lifetime counters.
        self.tasks_completed = 0
        self.busy_time = 0.0

    @property
    def is_active(self) -> bool:
        """True while the consumer occupies a cluster slot."""
        return self.state is not ConsumerState.STOPPED

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Consumer(id={self.consumer_id}, "
            f"service={self.microservice.name!r}, state={self.state.value})"
        )
