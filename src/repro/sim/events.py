"""Simulation clock and event heap.

A minimal, deterministic discrete-event engine: events are ``(time, seq,
callback)`` triples on a binary heap; ties in time are broken by insertion
order (``seq``), which makes every run bit-reproducible under a fixed seed.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional, Tuple

from repro.telemetry.profile import NULL_PROFILER, PhaseProfiler

__all__ = ["EventLoop", "EventHandle"]

#: Phase name under which event dispatch is attributed when profiling.
DISPATCH_PHASE = "sim/dispatch"


class EventHandle:
    """Handle to a scheduled event; allows O(1) cancellation."""

    __slots__ = ("cancelled",)

    def __init__(self):
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True


class EventLoop:
    """Deterministic discrete-event loop.

    The loop does not run free — callers advance it explicitly with
    :meth:`run_until`, which matches the paper's time-window structure:
    the controller acts, then the world advances by one window.
    """

    def __init__(
        self,
        start_time: float = 0.0,
        profiler: Optional[PhaseProfiler] = None,
    ):
        self._now = start_time
        self._heap: List[Tuple[float, int, EventHandle, Callable[[], None]]] = []
        self._seq = itertools.count()
        self._processed = 0
        #: Phase profiler attributing dispatch time; the disabled
        #: NULL_PROFILER by default, so the untraced hot path pays one
        #: attribute read and a branch per run_until call (not per event).
        self.profiler = profiler if profiler is not None else NULL_PROFILER

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def pending(self) -> int:
        """Number of scheduled (possibly cancelled) events."""
        return len(self._heap)

    @property
    def processed(self) -> int:
        """Number of events executed so far."""
        return self._processed

    def schedule(self, delay: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay!r})")
        return self.schedule_at(self._now + delay, callback)

    def schedule_at(self, when: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` at absolute time ``when``."""
        if when < self._now:
            raise ValueError(
                f"cannot schedule into the past (when={when!r}, now={self._now!r})"
            )
        handle = EventHandle()
        heapq.heappush(self._heap, (when, next(self._seq), handle, callback))
        return handle

    def run_until(self, when: float, max_events: Optional[int] = None) -> int:
        """Execute all events with timestamp <= ``when``; advance the clock.

        Returns the number of events executed.  ``max_events`` is a safety
        valve for tests; exceeding it raises ``RuntimeError`` (it would mean
        a runaway self-scheduling loop).
        """
        # Drop cancelled events sitting at the head of the heap before
        # entering the dispatch phase: they execute nothing, so their
        # removal should cost neither a tuple unpack nor profiler
        # attribution.  (Events are never scheduled in the past, so this
        # cannot consume anything a backwards run_until should reject.)
        heap = self._heap
        while heap and heap[0][0] <= when and heap[0][2].cancelled:
            heapq.heappop(heap)
        # Only attribute the dispatch phase when something will actually
        # dispatch: after the drain above, a due head is non-cancelled.
        # A cancelled-only (or empty) window just advances the clock.
        if self.profiler.enabled and heap and heap[0][0] <= when:
            with self.profiler.phase(DISPATCH_PHASE):
                return self._run_until(when, max_events)
        return self._run_until(when, max_events)

    def _run_until(self, when: float, max_events: Optional[int]) -> int:
        if when < self._now:
            raise ValueError(
                f"cannot run backwards (when={when!r}, now={self._now!r})"
            )
        executed = 0
        while self._heap and self._heap[0][0] <= when:
            # Peek before unpacking: cancelled heads are popped and
            # dropped without building locals for time/seq/callback.
            if self._heap[0][2].cancelled:
                heapq.heappop(self._heap)
                continue
            event_time, _, _handle, callback = heapq.heappop(self._heap)
            self._now = event_time
            callback()
            executed += 1
            self._processed += 1
            if max_events is not None and executed > max_events:
                raise RuntimeError(
                    f"exceeded max_events={max_events} before reaching t={when}"
                )
        self._now = when
        return executed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"EventLoop(now={self._now:.3f}, pending={self.pending})"
